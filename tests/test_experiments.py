"""Unit tests for the experiment drivers (scaled down)."""

import pytest

from repro.experiments import fig2, mttr, overhead, report
from repro.experiments.site import SiteConfig, build_site
from repro.faults.models import Category
from repro.sim.calendar import YEAR


def test_report_table_renders():
    txt = report.table(["a", "bb"], [(1, 2.5), ("x", "y")], title="T")
    lines = txt.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert "2.50" in txt


def test_fig2_run_once_pairing():
    before, after = fig2.run_once(seed=3)
    assert len(before.records) == len(after.records)
    assert after.total_hours() < before.total_hours()


def test_fig2_replicated_shape():
    result = fig2.run_replicated([0, 1, 2])
    assert result.replications == 3
    assert result.total_before > 5 * result.total_after
    # mid-crash dominates the before column (the paper's headline)
    assert result.before_hours[Category.MID_CRASH] == max(
        result.before_hours.values())
    rows = result.rows()
    assert rows[-1][0] == "TOTAL"
    txt = fig2.format_result(result)
    assert "Figure 2" in txt and "mid-crash" in txt


def test_fig2_requires_seeds():
    with pytest.raises(ValueError):
        fig2.run_replicated([])


def test_fig2_parallel_matches_serial():
    serial = fig2.run_replicated([5, 6])
    par = fig2.run_replicated([5, 6], parallel=True)
    assert par.before_hours == serial.before_hours
    assert par.after_hours == serial.after_hours


def test_fig2_detection_summary():
    result = fig2.run_replicated([0, 1])
    assert result.detection_before["weekend"] > result.detection_before["day"]
    assert result.detection_after["day"] < 0.2       # hours


def test_overhead_shape():
    r = overhead.run(seed=4)
    assert len(r.bmc_cpu) == overhead.N_SAMPLES
    # agents are an order of magnitude cheaper on both axes
    assert r.mean_ratio_cpu() > 4.0
    assert r.mean_ratio_mem() > 10.0
    # agents' footprint is flat
    assert max(r.agent_mem) == min(r.agent_mem)
    assert "Figure 3" in overhead.format_cpu(r)
    assert "Figure 4" in overhead.format_memory(r)


def test_mttr_claims():
    r = mttr.run(seed=2, samples_per_category=150)
    # the 2 h restart and ~4 h escalation claims, loosely
    assert 1.0 < r.manual_median_repair_h < 5.0
    assert 3.0 < r.manual_escalated_mean_h < 9.0
    assert r.agent_mean_repair_h < r.manual_median_repair_h
    assert "MTTR" in mttr.format_result(r)


def test_site_scales_to_paper_size_cheaply():
    """The full 215-server site must at least build quickly."""
    site = build_site(SiteConfig(db_servers=20, tp_servers=10,
                                 fe_servers=12, with_workload=False,
                                 with_feeds=False))
    assert len(site.dc.hosts) == 20 + 10 + 12 + 3
    assert len(site.databases) == 20
    # every server including the admin pair is agented; only the
    # external gateway is unmanaged
    assert len(site.suites) == 44
    # every non-admin host has the agent complement
    for suite in site.suites.values():
        assert len(suite.agents) >= 5
