"""Federation building blocks: WAN links, cross-site name service,
digest freshness, regional demand and the geo front door."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.nameservice import FederatedNameService, NameService
from repro.net.network import Wan, WanLink
from repro.net.routing import WanCourier
from repro.ontology.dgspl import FederatedDgspl, SiteDigest, TierDigest
from repro.sim import Simulator
from repro.traffic.frontdoor import GeoFrontDoor
from repro.traffic.slo import Sli, rollup_slis
from repro.traffic.workload import (FINANCIAL_CLASSES, DemandCurve,
                                    financial_curve, regional_curves)


# -- WAN links ---------------------------------------------------------------


def _wan():
    wan = Wan()
    wan.connect("lon", "nyc", base_latency_ms=35.0)
    wan.connect("hkg", "lon", base_latency_ms=90.0)
    wan.connect("hkg", "nyc", base_latency_ms=100.0)
    return wan


def test_wanlink_partition_means_unreachable_not_slow():
    """The core semantic split: a partitioned line fails sends outright
    (latency is meaningless), a degraded line still delivers -- slowly."""
    link = WanLink("lon", "nyc", base_latency_ms=35.0)
    ok, ms = link.send(4096)
    assert ok and ms == 35.0

    link.partition()
    assert not link.reachable()
    ok, ms = link.send(4096)
    assert not ok
    assert link.latency_ms() == 0.0     # no number: nothing crosses
    assert link.drops == 1

    link.repair()
    link.degrade()
    assert link.reachable()             # slow is still reachable
    ok, ms = link.send(4096)
    assert ok and ms == 35.0 * WanLink.DEGRADED_FACTOR


def test_wan_partition_site_cuts_every_line_and_repairs():
    wan = _wan()
    wan.partition_site("nyc")
    assert not wan.reachable("lon", "nyc")
    assert not wan.reachable("hkg", "nyc")
    assert wan.reachable("hkg", "lon")      # the survivors still talk
    wan.repair_site("nyc")
    assert wan.reachable("lon", "nyc")


def test_wan_courier_counts_partition_failures():
    wan = _wan()
    courier = WanCourier(wan)
    assert courier.send("lon", "nyc").ok
    wan.partition_site("nyc")
    d = courier.send("lon", "nyc")
    assert not d.ok and d.error == "wan-partitioned"
    assert courier.delivered == 1 and courier.failed == 1


# -- federated name service --------------------------------------------------


def _fed_ns():
    sim = Simulator()
    wan = _wan()
    fns = FederatedNameService(wan)
    zones = {}
    for site in ("hkg", "lon", "nyc"):
        zones[site] = NameService(sim)
        fns.delegate(site, zones[site])
    return wan, fns, zones


def test_federated_lookup_delegates_across_the_wan():
    wan, fns, zones = _fed_ns()
    zones["nyc"].register("db01", "192.168.1.10")
    ip, ms, authority = fns.lookup("db01@nyc", from_site="lon")
    assert ip == "192.168.1.10"
    assert authority == "nyc"
    assert ms >= 2 * 35.0               # at least one WAN round trip


def test_federated_lookup_fails_closed_under_partition():
    wan, fns, zones = _fed_ns()
    zones["nyc"].register("db01", "192.168.1.10")
    wan.partition_site("nyc")
    ip, ms, authority = fns.lookup("db01@nyc", from_site="lon")
    assert ip is None and authority is None
    assert fns.wan_failures == 1


def test_resolve_service_prefers_home_then_searches_peers():
    wan, fns, zones = _fed_ns()
    zones["lon"].register("svc.oracle_db000", "10.1.0.5")
    ip, ms, authority = fns.resolve_service("svc.oracle_db000",
                                            from_site="nyc")
    assert ip == "10.1.0.5" and authority == "lon"
    # home zone wins over any peer copy
    zones["nyc"].register("svc.oracle_db000", "10.2.0.9")
    ip, _ms, authority = fns.resolve_service("svc.oracle_db000",
                                             from_site="nyc")
    assert ip == "10.2.0.9" and authority == "nyc"


# -- federated DGSPL ---------------------------------------------------------


def _digest(site: str, generated_at: float) -> SiteDigest:
    tier = TierDigest(app_type="database", services=4, hosts=4,
                      total_load=2.0, total_power=4000.0)
    return SiteDigest(site=site, generated_at=generated_at, hosts_up=10,
                      tiers={"database": tier})


def test_fed_dgspl_freshness_checks_both_clocks():
    """A site drops out of the merged view when its digest is stale on
    *either* clock: generated long ago (dead site keeps resending old
    state) or received long ago (partitioned site stops arriving)."""
    fd = FederatedDgspl(freshness=600.0)
    fd.ingest(_digest("nyc", generated_at=0.0), now=100.0)
    assert fd.is_fresh("nyc", now=400.0)
    # received recently but generated too long ago
    fd.ingest(_digest("lon", generated_at=0.0), now=700.0)
    assert not fd.is_fresh("lon", now=710.0)
    # generated recently but received too long ago
    assert not fd.is_fresh("nyc", now=800.0)
    assert fd.capacity("nyc", "database", now=800.0) == 0.0


def test_fed_dgspl_capacity_prices_load():
    fd = FederatedDgspl(freshness=600.0)
    fd.ingest(_digest("nyc", generated_at=50.0), now=100.0)
    cap = fd.capacity("nyc", "database", now=200.0)
    assert cap == pytest.approx(4000.0 / (1.0 + 0.5))


# -- regional demand ---------------------------------------------------------


def test_regional_curves_split_population_exactly():
    curves = regional_curves(1_000_000)
    assert sorted(curves) == ["amer", "apac", "emea"]
    assert sum(c.population for c in curves.values()) == 1_000_000


def test_tz_offset_shifts_the_diurnal_peak():
    """APAC (UTC+8) peaks 8 hours earlier in simulation time."""
    base = financial_curve(100_000)
    apac = DemandCurve(FINANCIAL_CLASSES, 100_000, tz_offset=8 * 3600.0)
    cls = base.classes[0]
    t = 2 * 3600.0                      # 02:00 UTC = 10:00 in APAC
    assert float(apac.rate(cls, t)) > 4 * float(base.rate(cls, t))


def test_zero_tz_offset_is_byte_identical_to_single_site():
    base = financial_curve(250_000)
    shifted = DemandCurve(FINANCIAL_CLASSES, 250_000, tz_offset=0.0)
    t = np.linspace(0.0, 86400.0, 97)
    for cls_a, cls_b in zip(base.classes, shifted.classes):
        assert np.array_equal(base.rate(cls_a, t), shifted.rate(cls_b, t))


# -- geo front door ----------------------------------------------------------


def _geo(geo_steering=True):
    fd = FederatedDgspl(freshness=600.0)
    fd.ingest(_digest("lon", generated_at=50.0), now=100.0)
    fd.ingest(_digest("nyc", generated_at=50.0), now=100.0)
    geo = GeoFrontDoor(
        fd, home_site={"emea": "lon", "amer": "nyc"},
        region_latency_ms={("emea", "lon"): 8.0, ("emea", "nyc"): 75.0,
                           ("amer", "nyc"): 10.0, ("amer", "lon"): 75.0},
        geo_steering=geo_steering)
    geo.register_site("lon")
    geo.register_site("nyc")
    return geo


def test_geo_steering_prefers_the_low_latency_site():
    geo = _geo()
    split, shed = geo.steer("emea", "database", 1000, now=200.0)
    assert shed == 0
    alloc = dict(split)
    assert alloc["lon"] > alloc.get("nyc", 0)


def test_geo_steering_sheds_only_when_every_site_is_dark():
    geo = _geo()
    geo.flag_down("lon")
    split, shed = geo.steer("emea", "database", 1000, now=200.0)
    assert shed == 0 and dict(split) == {"nyc": 1000}
    geo.flag_down("nyc")
    split, shed = geo.steer("emea", "database", 1000, now=200.0)
    assert split == [] and shed == 1000


def test_geo_steering_disabled_pins_to_home():
    geo = _geo(geo_steering=False)
    split, shed = geo.steer("emea", "database", 1000, now=200.0)
    assert dict(split) == {"lon": 1000}
    geo.flag_down("lon")
    split, shed = geo.steer("emea", "database", 1000, now=200.0)
    assert split == [] and shed == 1000     # no steering: home or nothing


# -- request-weighted rollup -------------------------------------------------


def test_rollup_sums_raw_counters_not_ratios():
    a, b = Sli("db"), Sli("db")
    a.record_batch(90, 10, 5.0)         # 0.9 availability on 100
    b.record_batch(9990, 10, 5.0)       # 0.999 on 10000
    roll = rollup_slis([a, b])
    assert roll["attempted"] == 10100
    # request-weighted: dominated by the big site, not the mean of ratios
    assert roll["availability"] == pytest.approx(10080 / 10100)
