"""Federation world contracts: N=1 parity with the single-site build,
byte-identical determinism, and checkpoint/restore equivalence."""

from __future__ import annotations

import json

from repro.experiments.site import SiteConfig, build_site
from repro.federation import (FederationConfig, SiteSpec,
                              build_federation, three_site_config)
from repro.persist import (restore_federation, snapshot_federation,
                           snapshot_site)
from repro.sim.calendar import HOUR
from repro.traffic.workload import Region


def _solo_config(seed: int = 5) -> SiteConfig:
    return SiteConfig.test_scale(site_name="london", seed=seed,
                                 with_workload=False, with_feeds=False,
                                 spare_servers=1)


def _one_site_federation(seed: int = 5) -> FederationConfig:
    return FederationConfig(
        sites=[SiteSpec("london", "emea", _solo_config(seed))],
        regions=(Region("emea", 1.0, 0.0),),
        with_traffic=False)


def test_n1_federation_is_byte_identical_to_standalone_site():
    """The refactor contract: wrapping one site in a federation (no
    traffic tier, nothing to steer to) must not perturb a single
    random draw -- the site's full state hash matches a standalone
    build run for the same duration."""
    until = 2 * HOUR + 5.0

    solo = build_site(_solo_config())
    solo.sim.run(until=until)
    solo_hash = snapshot_site(solo)["state_hash"]

    fed = build_federation(_one_site_federation())
    fed.run(until - fed.now)
    fed_hash = snapshot_site(fed.sites["london"])["state_hash"]

    assert fed_hash == solo_hash


def test_three_site_run_is_deterministic():
    """Same config, same seed, fresh processes of the barrier loop:
    the summaries (counters, availability, WAN stats) are identical."""

    def one_run() -> str:
        fed = build_federation(three_site_config(population=60_000))
        fed.start_traffic()
        fed.run(1 * HOUR - fed.now)
        site = fed.sites["nyc"]
        for name in sorted(site.dc.hosts):
            site.dc.hosts[name].crash()
        fed.run(1 * HOUR)
        return json.dumps(fed.summary(), sort_keys=True)

    assert one_run() == one_run()


def test_checkpoint_restore_continues_identically():
    """Snapshot mid-run, restore into a fresh federation, run both to
    the end: the restored arm must match the uninterrupted one, and
    re-snapshotting at the checkpoint must be idempotent."""
    def build():
        fed = build_federation(three_site_config(population=60_000))
        fed.start_traffic()
        return fed

    fed = build()
    fed.run(1 * HOUR - fed.now)
    snap = snapshot_federation(fed)

    restored = restore_federation(snap)
    assert snapshot_federation(restored)["state_hash"] == snap["state_hash"]

    fed.run(1 * HOUR)
    restored.run(1 * HOUR)
    assert (json.dumps(restored.summary(), sort_keys=True)
            == json.dumps(fed.summary(), sort_keys=True))


def test_site_loss_is_detected_and_survivors_host_takeovers():
    """The headline behaviour at test scale: a dead site is flagged,
    the survivors pick up its pinned databases, and recovery of the
    remaining sites' service keeps global availability partial, not
    zero."""
    fed = build_federation(three_site_config(population=60_000))
    fed.start_traffic()
    fed.run(1 * HOUR - fed.now)
    site = fed.sites["nyc"]
    for name in sorted(site.dc.hosts):
        site.dc.hosts[name].crash()
    fed.run(1 * HOUR)

    summary = fed.summary()
    assert summary["site_loss_events"] == 1
    assert "nyc" in fed.lost_sites
    assert summary["crosssite"]["succeeded"] > 0
    hosted = sum(s["takeovers_hosted"]
                 for name, s in summary["sites"].items() if name != "nyc")
    assert hosted == summary["crosssite"]["succeeded"]
    assert 0.0 < summary["global"]["availability"] < 1.0
    assert summary["global"]["user_minutes_lost"] > 0.0
