"""Unit tests for the analyst workload generator."""

import pytest

from repro.apps.database import Database
from repro.batch.lsf import LsfCluster, LsfMaster
from repro.batch.workload import OvernightWorkload
from repro.sim.calendar import DAY, HOUR


@pytest.fixture
def lsf(dc, sim, rs):
    master = LsfMaster(dc.host("adm01"))
    master.start()
    db = Database(dc.host("db01"), "ora01", max_job_slots=50)
    db.start()
    sim.run(until=sim.now + 200.0)
    cluster = LsfCluster(dc, master, rng=rs.get("lsf"),
                         base_crash_prob=0.0)
    cluster.register_server(db)
    return cluster


def test_nightly_batch_submits_on_weekday_evening(sim, lsf, rs):
    wl = OvernightWorkload(lsf, rs.get("wl"), jobs_per_night=10,
                           daytime_jobs_per_hour=0.0)
    wl.start()
    # epoch is Monday 00:00; submissions land at 20:00
    sim.run(until=19.9 * HOUR)
    assert len(wl.submitted) == 0
    sim.run(until=21.0 * HOUR)
    assert len(wl.submitted) == 10


def test_no_nightly_batch_on_weekend(sim, lsf, rs):
    wl = OvernightWorkload(lsf, rs.get("wl"), jobs_per_night=10,
                           daytime_jobs_per_hour=0.0)
    wl.start()
    # run through Friday night...
    sim.run(until=5 * DAY)
    friday_count = len(wl.submitted)
    assert friday_count == 50       # Mon-Fri
    # ...and the weekend: nothing new
    sim.run(until=7 * DAY)
    assert len(wl.submitted) == friday_count


def test_manual_targeting_pins_to_habitual_server(sim, lsf, rs):
    wl = OvernightWorkload(lsf, rs.get("wl"), manual_targeting=True)
    job = wl.make_job()
    assert job.requested_server == "db01"
    wl2 = OvernightWorkload(lsf, rs.get("wl2"), manual_targeting=False)
    assert wl2.make_job().requested_server is None


def test_daytime_jobs_only_in_business_hours(sim, lsf, rs):
    wl = OvernightWorkload(lsf, rs.get("wl"), jobs_per_night=0,
                           daytime_jobs_per_hour=4.0)
    wl.start()
    sim.run(until=7.0 * HOUR)       # before business hours
    assert len(wl.submitted) == 0
    sim.run(until=17.0 * HOUR)
    assert len(wl.submitted) > 0


def test_bounced_submissions_counted(sim, lsf, rs):
    lsf.master.crash("x")
    wl = OvernightWorkload(lsf, rs.get("wl"), jobs_per_night=5,
                           daytime_jobs_per_hour=0.0)
    wl.start()
    sim.run(until=21 * HOUR)
    assert wl.bounced == 5
    assert wl.submitted == []


def test_completion_stats(sim, lsf, rs):
    wl = OvernightWorkload(lsf, rs.get("wl"), jobs_per_night=5,
                           daytime_jobs_per_hour=0.0)
    wl.start()
    sim.run(until=3 * DAY)      # Mon, Tue and Wed evenings
    stats = wl.completion_stats()
    assert stats["submitted"] == 15
    assert stats["done"] + stats["failed"] <= stats["submitted"]
    assert 0.0 <= stats["completion_rate"] <= 1.0


def test_stop_halts_generation(sim, lsf, rs):
    wl = OvernightWorkload(lsf, rs.get("wl"), jobs_per_night=5,
                           daytime_jobs_per_hour=0.0)
    wl.start()
    sim.run(until=21 * HOUR)
    n = len(wl.submitted)
    wl.stop()
    sim.run(until=3 * DAY)
    assert len(wl.submitted) == n
