"""Unit tests for the spare-server pool (repro.relocate.spares)."""

import pytest

from repro.apps.frontend import FrontendApp
from repro.apps.webserver import WebServer
from repro.relocate import SparePool


@pytest.fixture
def spares(dc):
    pool = SparePool(dc)
    for name in ("sp02", "sp01"):       # registration order irrelevant
        host = dc.add_host(name, "sun-e10k", group="spare")
        FrontendApp(host, f"finapp_{name}", auto_start=False)
        WebServer(host, f"httpd_{name}", auto_start=False)
        pool.register(host)
    return pool


def test_register_captures_idle_slots_as_template(spares):
    slkt = spares.slkt_of("sp01")
    assert set(slkt.apps) == {"finapp_sp01", "httpd_sp01"}
    assert not slkt.apps["finapp_sp01"].auto_start
    assert slkt.apps["finapp_sp01"].app_type == "frontend"
    assert spares.is_spare("sp01") and not spares.is_spare("db01")


def test_available_is_name_ordered(spares):
    assert spares.available() == ["sp01", "sp02"]


def test_claim_and_release(spares):
    assert spares.claim("sp01", "fe01/finapp01")
    assert spares.claimed_for("sp01") == "fe01/finapp01"
    assert spares.available() == ["sp02"]
    # a claimed spare cannot be claimed again
    assert not spares.claim("sp01", "fe01/other")
    # nor can a host that is not a spare
    assert not spares.claim("db01", "x")
    spares.release("sp01")
    assert spares.available() == ["sp01", "sp02"]
    assert spares.claims_made == 1 and spares.claims_released == 1
    # releasing an unclaimed spare is a no-op
    spares.release("sp01")
    assert spares.claims_released == 1


def test_down_spare_not_available(spares, dc):
    dc.host("sp01").crash("power")
    assert spares.available() == ["sp02"]


def test_deregister(spares):
    spares.claim("sp02", "x")
    spares.deregister("sp02")
    assert not spares.is_spare("sp02")
    assert spares.claimed_for("sp02") is None
    assert spares.available() == ["sp01"]
