"""Unit tests for the operator coverage model."""

import numpy as np
import pytest

from repro.faults.models import CATEGORY_PROFILES, Category
from repro.ops.operators import OperatorModel
from repro.sim import RandomStreams
from repro.sim.calendar import DAY, HOUR, MINUTE


@pytest.fixture
def ops(rs):
    return OperatorModel(rs.get("ops"))


TUESDAY_10AM = DAY + 10 * HOUR
TUESDAY_2AM = DAY + 2 * HOUR
SATURDAY_NOON = 5 * DAY + 12 * HOUR


def _mean_detection(ops, t, n=3000, scale=1.0):
    return np.mean([ops.manual_detection_delay(t, scale)
                    for _ in range(n)])


def test_manual_detection_means_by_period(ops):
    day = _mean_detection(ops, TUESDAY_10AM)
    night = _mean_detection(ops, TUESDAY_2AM)
    weekend = _mean_detection(ops, SATURDAY_NOON)
    # the paper's 1 h / 10 h / 25 h
    assert abs(day - 1 * HOUR) < 0.15 * HOUR
    assert abs(night - 10 * HOUR) < 1.0 * HOUR
    assert abs(weekend - 25 * HOUR) < 2.5 * HOUR


def test_detection_scale_shrinks_delay(ops):
    full = _mean_detection(ops, TUESDAY_2AM, scale=1.0)
    vis = _mean_detection(ops, TUESDAY_2AM, scale=0.2)
    assert vis < full / 3


def test_detection_floor_five_minutes(ops):
    vals = [ops.manual_detection_delay(TUESDAY_10AM, scale=0.001)
            for _ in range(100)]
    assert min(vals) >= 5 * MINUTE


def test_agent_detection_bounded_by_grid(ops):
    for t in np.linspace(0, DAY, 97):
        d = ops.agent_detection_delay(float(t))
        assert 0 < d <= 5 * MINUTE + 20.0


def test_agent_detection_respects_period(rs):
    slow = OperatorModel(rs.get("slow"), agent_period=HOUR)
    vals = [slow.agent_detection_delay(float(t))
            for t in np.linspace(0, DAY, 50)]
    assert max(vals) > 30 * MINUTE


def test_night_tax_slows_manual_repair(ops):
    prof = CATEGORY_PROFILES[Category.MID_CRASH]
    day = np.mean([ops.manual_repair_time(prof, TUESDAY_10AM)[0]
                   for _ in range(2000)])
    night = np.mean([ops.manual_repair_time(prof, TUESDAY_2AM)[0]
                     for _ in range(2000)])
    assert night > day * 1.3


def test_pinpointing_shrinks_diagnosis(ops):
    prof = CATEGORY_PROFILES[Category.MID_CRASH]   # pinpoint_factor 0.25
    plain = np.mean([ops.manual_repair_time(prof, TUESDAY_10AM)[0]
                     for _ in range(2000)])
    helped = np.mean([ops.manual_repair_time(prof, TUESDAY_10AM,
                                             pinpointed=True)[0]
                      for _ in range(2000)])
    assert helped < plain


def test_escalation_rate_matches_profile(ops):
    prof = CATEGORY_PROFILES[Category.COMPLETELY_DOWN]  # 0.6 first-fix
    esc = [ops.manual_repair_time(prof, TUESDAY_10AM)[1]
           for _ in range(2000)]
    assert abs(np.mean(esc) - 0.4) < 0.05


def test_resolve_agent_auto_path_is_fast(ops):
    prof = CATEGORY_PROFILES[Category.LSF]
    rs = [ops.resolve_agent(prof, TUESDAY_2AM) for _ in range(300)]
    autos = [r for r in rs if r.auto]
    assert len(autos) > 200
    assert np.mean([r.downtime for r in autos]) < 30 * MINUTE


def test_resolve_agent_unfixable_falls_to_human(ops):
    prof = CATEGORY_PROFILES[Category.HARDWARE]
    rs = [ops.resolve_agent(prof, TUESDAY_10AM) for _ in range(100)]
    assert all(not r.auto for r in rs)
    assert all(r.detection < 6 * MINUTE for r in rs)
    assert np.mean([r.repair for r in rs]) > 30 * MINUTE


def test_prevented_faults_cost_nothing(ops):
    prof = CATEGORY_PROFILES[Category.HUMAN]
    rs = [ops.resolve_agent(prof, TUESDAY_10AM) for _ in range(500)]
    prevented = [r for r in rs if r.prevented]
    assert abs(len(prevented) / 500 - prof.prevention_prob) < 0.1
    assert all(r.downtime == 0.0 for r in prevented)


def test_resolve_manual_uses_category_visibility(rs):
    ops = OperatorModel(rs.get("vis"))
    vis_prof = CATEGORY_PROFILES[Category.FRONT_END]      # scale 0.3
    latent_prof = CATEGORY_PROFILES[Category.MID_CRASH]   # scale 1.0
    vis = np.mean([ops.resolve_manual(vis_prof, TUESDAY_2AM).detection
                   for _ in range(2000)])
    latent = np.mean([ops.resolve_manual(latent_prof,
                                         TUESDAY_2AM).detection
                      for _ in range(2000)])
    assert vis < latent / 2
