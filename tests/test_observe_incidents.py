"""The incident-report workflow end to end: one observed fault storm,
then the acceptance claims -- accounting reconciles exactly and
burn-rate pages beat the cron grid."""

import json

import pytest

from repro.experiments import incidents
from repro.observe.incidents import render_markdown_all, write_json


@pytest.fixture(scope="module")
def result():
    return incidents.run(seed=0)


def test_every_injected_fault_gets_a_report(result):
    fids = {rep.fault_id for rep in result.reports}
    assert {"F0001", "F0002", "F0003"} <= fids
    for rep in result.reports:
        assert rep.injected_at is not None
        assert rep.detected_at is not None
        assert rep.resolved_by != "unresolved"
        stamps = [t for t, _ in rep.timeline]
        assert stamps == sorted(stamps)


def test_downtime_reconciles_exactly_with_the_ledger(result):
    recon = result.reconciliation
    assert recon["downtime_ok"], recon
    assert recon["downtime_reports_h"] == pytest.approx(
        recon["downtime_ledger_h"], abs=1e-6)
    assert recon["downtime_ledger_h"] > 0.0


def test_user_minutes_reconcile_with_the_slo_join(result):
    recon = result.reconciliation
    assert recon["user_minutes_ok"], recon
    assert recon["user_minutes_reports"] == pytest.approx(
        recon["user_minutes_joined"], rel=1e-9)
    assert recon["user_minutes_reports"] > 0.0


def test_burn_rate_pages_beat_the_cron_grid(result):
    assert result.pages_sent >= 1
    assert result.alert_latency, "no alert was attributed to a fault"
    assert result.alerts_beat_cron
    for fid, lat in result.alert_latency.items():
        assert 0.0 <= lat < result.detection_bound, (fid, lat)


def test_detection_latency_accessor(result):
    # latency is the earliest of agent detection and the first page
    for rep in result.reports:
        if rep.fault_id in result.alert_latency:
            assert rep.detection_latency is not None
            assert rep.detection_latency <= result.alert_latency[
                rep.fault_id] + 1e-9


def test_json_and_markdown_artifacts(result, tmp_path):
    doc = result.to_json()
    assert doc["run"]["alerts_beat_cron"] is True
    assert len(doc["incidents"]) == len(result.reports)
    json.dumps(doc)                     # fully serialisable

    path = tmp_path / "incidents.json"
    write_json(result.reports, str(path), recon=result.reconciliation)
    loaded = json.loads(path.read_text())
    assert loaded["reconciliation"]["downtime_ok"] is True

    md = result.to_markdown()
    assert "## Incident F0001" in md
    assert "alerts beat it: True" in md
    assert render_markdown_all(result.reports, result.reconciliation) in md


def test_console_board_carries_the_alert_pane(result):
    assert "-- alerts:" in result.board
    assert f"{result.pages_sent} page(s) sent" in result.board


def test_format_result_renders(result):
    text = incidents.format_result(result)
    assert "reconciliation" in text and "[OK]" in text
    assert "MISMATCH" not in text
