"""Unit tests for the static local knowledge templates."""

import pytest

from repro.ontology.base import OntologyDoc, OntologyError
from repro.ontology.slkt import Slkt, build_slkt


def test_build_from_healthy_host(database, frontend):
    slkt = build_slkt(database.host)
    assert slkt.hostname == "db01"
    assert slkt.hardware.model == "sun-e4500"
    tmpl = slkt.app(database.name)
    assert tmpl.port == database.port
    assert tmpl.app_type == "database"
    # process names and counts captured
    assert ("oracle_pmon", 1) in tmpl.processes
    assert tmpl.startup_sequence == ("mount", "recover", "open")


def test_dependencies_captured(frontend):
    slkt = build_slkt(frontend.host)
    tmpl = slkt.app(frontend.name)
    assert ("db01", frontend.backend.name) in tmpl.depends_on


def test_check_clean_host(database):
    slkt = build_slkt(database.host)
    assert slkt.check(database.host) == []


def test_check_detects_app_down(database):
    slkt = build_slkt(database.host)
    database.crash("x")
    kinds = {d.kind for d in slkt.check(database.host)}
    assert "app-down" in kinds


def test_check_detects_missing_processes(database):
    slkt = build_slkt(database.host)
    victim = database.host.ptable.by_command("oracle_server")[0]
    database.host.ptable.kill(victim.pid)
    devs = slkt.check(database.host)
    assert any(d.kind == "proc-count" and "oracle_server" in d.detail
               for d in devs)


def test_check_detects_degraded_hardware(database):
    from repro.cluster.hardware import ComponentKind
    slkt = build_slkt(database.host)
    database.host.inventory.of_kind(ComponentKind.MEMORY_BANK)[0].fail(0.0)
    devs = slkt.check(database.host)
    assert any(d.kind == "hw-degraded" and d.subject == "memory"
               for d in devs)


def test_check_detects_missing_app(database):
    slkt = build_slkt(database.host)
    del database.host.apps[database.name]
    devs = slkt.check(database.host)
    assert any(d.kind == "missing-app" for d in devs)


def test_check_detects_offline_filesystem(database):
    slkt = build_slkt(database.host)
    database.host.fs.mounts["/apps"].online = False
    devs = slkt.check(database.host)
    assert any(d.kind == "fs-missing" for d in devs)


def test_roundtrip(database, frontend):
    slkt = build_slkt(database.host)
    doc = slkt.to_doc(42.0)
    back = Slkt.from_doc(OntologyDoc.parse(doc.render()))
    assert back.hostname == slkt.hostname
    assert back.hardware == slkt.hardware
    assert back.apps == slkt.apps


def test_from_wrong_doc():
    with pytest.raises(OntologyError):
        Slkt.from_doc(OntologyDoc("ISSL"))
    with pytest.raises(OntologyError):
        Slkt.from_doc(OntologyDoc("SLKT"))      # no host record


def test_hardware_power_known_and_unknown_models():
    from repro.ontology.slkt import HardwareTemplate
    known = HardwareTemplate("sun-e10k", 16, 16384, 12, 4.0)
    unknown = HardwareTemplate("cray-1", 1, 8192, 1, 4.0)
    assert known.power > 0
    assert unknown.power > 0
