"""Unit tests for crond."""

import pytest


def test_job_fires_on_absolute_grid(sim, db_host):
    ticks = []
    db_host.crond.register("t", 300.0, lambda: ticks.append(sim.now))
    sim.run(until=1000.0)
    assert ticks == [300.0, 600.0, 900.0]


def test_offset_shifts_grid(sim, db_host):
    ticks = []
    db_host.crond.register("t", 300.0, lambda: ticks.append(sim.now),
                           offset=50.0)
    sim.run(until=700.0)
    assert ticks == [50.0, 350.0, 650.0]


def test_register_replaces(sim, db_host):
    a, b = [], []
    db_host.crond.register("t", 300.0, lambda: a.append(1))
    db_host.crond.register("t", 300.0, lambda: b.append(1))
    sim.run(until=400.0)
    assert a == [] and b == [1]


def test_remove(sim, db_host):
    ticks = []
    db_host.crond.register("t", 100.0, lambda: ticks.append(1))
    sim.run(until=250.0)
    assert db_host.crond.remove("t")
    sim.run(until=1000.0)
    assert len(ticks) == 2
    assert not db_host.crond.remove("t")


def test_disabled_job_misses(sim, db_host):
    ticks = []
    job = db_host.crond.register("t", 100.0, lambda: ticks.append(1))
    db_host.crond.enable("t", False)
    sim.run(until=350.0)
    assert ticks == []
    assert job.missed == 3
    db_host.crond.enable("t")
    sim.run(until=450.0)
    assert ticks == [1]


def test_crond_death_and_restart_keeps_grid(sim, db_host):
    ticks = []
    db_host.crond.register("t", 300.0, lambda: ticks.append(sim.now))
    sim.run(until=350.0)
    db_host.crond.kill()
    sim.run(until=950.0)
    assert ticks == [300.0]
    db_host.crond.restart()
    sim.run(until=1300.0)
    # resumes on the original grid, not a shifted one
    assert ticks == [300.0, 1200.0]


def test_host_down_misses_then_resumes(sim, db_host):
    ticks = []
    db_host.crond.register("t", 300.0, lambda: ticks.append(sim.now))
    sim.run(until=350.0)
    db_host.crash("x")
    sim.run(until=900.0)
    db_host.boot()
    sim.run(until=1600.0)
    assert ticks[0] == 300.0
    assert all(t % 300.0 == 0.0 for t in ticks)
    job = db_host.crond.jobs["t"]
    assert job.missed >= 1


def test_bad_period_rejected(db_host):
    with pytest.raises(ValueError):
        db_host.crond.register("t", 0.0, lambda: None)


def test_next_fire(sim, db_host):
    db_host.crond.register("t", 300.0, lambda: None, offset=10.0)
    assert db_host.crond.next_fire("t") == 10.0


def test_set_period_rearms_onto_new_grid(sim, db_host):
    ticks = []
    db_host.crond.register("t", 300.0, lambda: ticks.append(sim.now))
    sim.run(until=350.0)
    db_host.crond.set_period("t", 600.0)
    sim.run(until=2000.0)
    assert ticks == [300.0, 600.0, 1200.0, 1800.0]
    with pytest.raises(ValueError):
        db_host.crond.set_period("t", -1.0)


def test_demand_wake_fires_now_then_returns_to_grid(sim, db_host):
    ticks = []
    job = db_host.crond.register("t", 300.0,
                                 lambda: ticks.append(sim.now))
    sim.run(until=420.0)
    assert db_host.crond.demand_wake("t")
    sim.run(until=sim.now)          # drain the zero-delay event
    assert ticks == [300.0, 420.0]
    assert job.demand_runs == 1
    sim.run(until=1000.0)
    # the off-grid wake did not shift the absolute grid
    assert ticks == [300.0, 420.0, 600.0, 900.0]


def test_demand_wake_refused_while_down_or_dead(sim, db_host):
    ticks = []
    db_host.crond.register("t", 300.0, lambda: ticks.append(sim.now))
    db_host.crond.kill()
    assert not db_host.crond.demand_wake("t")
    db_host.crond.restart()
    db_host.crash("x")
    assert not db_host.crond.demand_wake("t")
    assert not db_host.crond.demand_wake("nosuchjob")
    db_host.crond.enable("t", False)
    assert not db_host.crond.demand_wake("t")
    assert ticks == []


def test_demand_wake_same_instant_is_deduped(sim, db_host):
    ticks = []
    job = db_host.crond.register("t", 300.0,
                                 lambda: ticks.append(sim.now))
    sim.run(until=100.0)
    assert db_host.crond.demand_wake("t")
    # a second trigger in the same instant rides the armed wake
    assert db_host.crond.demand_wake("t")
    sim.run(until=sim.now)
    assert ticks == [100.0]
    assert job.demand_runs == 1


def test_downtime_missed_accounting_then_demand_then_grid(sim, db_host):
    """Grid resumption after downtime: missed wakes are counted, a
    demand wake catches up off-grid, and the next wake is back on the
    absolute grid."""
    ticks = []
    job = db_host.crond.register("t", 300.0,
                                 lambda: ticks.append(sim.now))
    sim.run(until=350.0)
    db_host.crash("power")
    sim.run(until=1250.0)           # grid points 600, 900, 1200 missed
    db_host.boot()
    sim.run(until=db_host.sim.now + db_host.boot_duration + 1.0)
    assert job.missed >= 3          # (+1 if the boot spans 1500 too)
    assert ticks == [300.0]
    assert db_host.crond.demand_wake("t")
    sim.run(until=sim.now)
    assert len(ticks) == 2          # the catch-up wake, off-grid
    sim.run(until=2200.0)
    # back on the original absolute grid afterwards
    assert ticks[2:] == [t for t in (1500.0, 1800.0, 2100.0)
                         if t > ticks[1]]
