"""Unit tests for crond."""

import pytest


def test_job_fires_on_absolute_grid(sim, db_host):
    ticks = []
    db_host.crond.register("t", 300.0, lambda: ticks.append(sim.now))
    sim.run(until=1000.0)
    assert ticks == [300.0, 600.0, 900.0]


def test_offset_shifts_grid(sim, db_host):
    ticks = []
    db_host.crond.register("t", 300.0, lambda: ticks.append(sim.now),
                           offset=50.0)
    sim.run(until=700.0)
    assert ticks == [50.0, 350.0, 650.0]


def test_register_replaces(sim, db_host):
    a, b = [], []
    db_host.crond.register("t", 300.0, lambda: a.append(1))
    db_host.crond.register("t", 300.0, lambda: b.append(1))
    sim.run(until=400.0)
    assert a == [] and b == [1]


def test_remove(sim, db_host):
    ticks = []
    db_host.crond.register("t", 100.0, lambda: ticks.append(1))
    sim.run(until=250.0)
    assert db_host.crond.remove("t")
    sim.run(until=1000.0)
    assert len(ticks) == 2
    assert not db_host.crond.remove("t")


def test_disabled_job_misses(sim, db_host):
    ticks = []
    job = db_host.crond.register("t", 100.0, lambda: ticks.append(1))
    db_host.crond.enable("t", False)
    sim.run(until=350.0)
    assert ticks == []
    assert job.missed == 3
    db_host.crond.enable("t")
    sim.run(until=450.0)
    assert ticks == [1]


def test_crond_death_and_restart_keeps_grid(sim, db_host):
    ticks = []
    db_host.crond.register("t", 300.0, lambda: ticks.append(sim.now))
    sim.run(until=350.0)
    db_host.crond.kill()
    sim.run(until=950.0)
    assert ticks == [300.0]
    db_host.crond.restart()
    sim.run(until=1300.0)
    # resumes on the original grid, not a shifted one
    assert ticks == [300.0, 1200.0]


def test_host_down_misses_then_resumes(sim, db_host):
    ticks = []
    db_host.crond.register("t", 300.0, lambda: ticks.append(sim.now))
    sim.run(until=350.0)
    db_host.crash("x")
    sim.run(until=900.0)
    db_host.boot()
    sim.run(until=1600.0)
    assert ticks[0] == 300.0
    assert all(t % 300.0 == 0.0 for t in ticks)
    job = db_host.crond.jobs["t"]
    assert job.missed >= 1


def test_bad_period_rejected(db_host):
    with pytest.raises(ValueError):
        db_host.crond.register("t", 0.0, lambda: None)


def test_next_fire(sim, db_host):
    db_host.crond.register("t", 300.0, lambda: None, offset=10.0)
    assert db_host.crond.next_fire("t") == 10.0
