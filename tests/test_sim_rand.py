"""Unit tests for the named random streams."""

import numpy as np

from repro.sim import RandomStreams


def test_same_name_same_generator():
    rs = RandomStreams(7)
    assert rs.get("x") is rs.get("x")


def test_same_seed_reproduces():
    a = RandomStreams(7).get("faults.db").integers(1 << 40, size=5)
    b = RandomStreams(7).get("faults.db").integers(1 << 40, size=5)
    assert (a == b).all()


def test_different_seeds_differ():
    a = RandomStreams(7).get("x").integers(1 << 40, size=8)
    b = RandomStreams(8).get("x").integers(1 << 40, size=8)
    assert (a != b).any()


def test_different_names_independent():
    rs = RandomStreams(7)
    a = rs.get("a").integers(1 << 40, size=8)
    b = rs.get("b").integers(1 << 40, size=8)
    assert (a != b).any()


def test_adding_consumer_does_not_perturb_existing():
    rs1 = RandomStreams(7)
    _ = rs1.get("early").random(10)
    v1 = rs1.get("late").random(5)

    rs2 = RandomStreams(7)
    # different consumption order / extra stream in between
    _ = rs2.get("someone-else").random(3)
    v2 = rs2.get("late").random(5)
    assert np.allclose(v1, v2)


def test_child_scope_prefixes():
    rs = RandomStreams(7)
    child = rs.child("faults")
    assert child.get("db") is rs.get("faults.db")
    grand = child.child("inner")
    assert grand.get("x") is rs.get("faults.inner.x")


def test_spawn_seeds_deterministic_and_distinct():
    s1 = RandomStreams(3).spawn_seeds(10)
    s2 = RandomStreams(3).spawn_seeds(10)
    assert s1 == s2
    assert len(set(s1)) == 10


def test_names_listing():
    rs = RandomStreams(0)
    rs.get("one")
    rs.get("two")
    assert set(rs.names()) == {"one", "two"}


# -- explicit state round trips (the persistence layer's prerequisite) --------

def test_getstate_setstate_reproduces_draw_sequence():
    rs = RandomStreams(13)
    rs.get("a").random(100)
    rs.get("b").integers(1000, size=7)
    state = rs.getstate()
    want_a = rs.get("a").random(25).tolist()
    want_b = rs.get("b").integers(1000, size=25).tolist()

    rs2 = RandomStreams(13)
    rs2.setstate(state)
    assert rs2.get("a").random(25).tolist() == want_a
    assert rs2.get("b").integers(1000, size=25).tolist() == want_b


def test_setstate_drops_streams_absent_from_snapshot():
    rs = RandomStreams(5)
    rs.get("kept").random(3)
    state = rs.getstate()
    rs.get("extra").random(3)           # materialised after the snapshot
    rs.setstate(state)
    assert set(rs.names()) == {"kept"}
    # the dropped stream re-derives from the root seed, as if fresh
    fresh = RandomStreams(5).get("extra").random(4).tolist()
    assert rs.get("extra").random(4).tolist() == fresh


def test_setstate_rejects_wrong_seed():
    state = RandomStreams(1).getstate()
    try:
        RandomStreams(2).setstate(state)
    except ValueError:
        pass
    else:
        raise AssertionError("seed mismatch must raise")


def test_getstate_is_json_serialisable():
    import json
    rs = RandomStreams(9)
    rs.get("x").random(11)
    blob = json.dumps(rs.getstate(), sort_keys=True)
    rs2 = RandomStreams(9)
    rs2.setstate(json.loads(blob))
    assert (rs2.get("x").random(5).tolist()
            == rs.get("x").random(5).tolist())
