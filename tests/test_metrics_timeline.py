"""Unit tests for ASCII timelines."""

from repro.metrics.timeline import render_dashboard, render_timeline, sparkline
from repro.metrics.timeseries import TimeSeries


def _ts(name, values):
    ts = TimeSeries(name)
    for i, v in enumerate(values):
        ts.append(float(i * 60), v)
    return ts


def test_sparkline_fixed_width():
    assert len(sparkline([1, 2, 3], width=40)) == 40
    assert len(sparkline(range(1000), width=40)) == 40
    assert sparkline([], width=10) == " " * 10


def test_sparkline_monotone_input_monotone_output():
    s = sparkline(list(range(100)), width=20)
    ramp = " .:-=+*#%@"
    levels = [ramp.index(c) for c in s]
    assert levels == sorted(levels)
    assert levels[0] == 0 and levels[-1] == len(ramp) - 1


def test_sparkline_flat_series():
    s = sparkline([5.0] * 30, width=10)
    assert len(set(s)) == 1


def test_sparkline_pinned_scale():
    # with lo/hi pinned, a mid value maps mid-ramp
    s = sparkline([50.0] * 10, width=5, lo=0.0, hi=100.0)
    ramp = " .:-=+*#%@"
    assert all(3 <= ramp.index(c) <= 6 for c in s)


def test_render_timeline_blocks():
    ts = _ts("cpu_idle", [90, 80, 30, 95])
    lines = render_timeline(ts, width=20)
    assert len(lines) == 3
    assert "cpu_idle" in lines[0] and "max=95.0" in lines[0]
    assert lines[1].startswith("|") and lines[1].endswith("|")
    assert "h)" in lines[2]


def test_render_timeline_empty():
    lines = render_timeline(TimeSeries("x"))
    assert "no samples" in lines[0]


def test_render_dashboard_aligned():
    dash = render_dashboard({
        "os.cpu_idle": _ts("a", [90, 50, 90]),
        "disks.worst_asvc_t": _ts("b", [8, 9, 60]),
        "empty": TimeSeries("c"),
    }, width=30)
    lines = dash.splitlines()
    assert len(lines) == 3
    bars = [l.index("|") for l in lines if "|" in l]
    assert len(set(bars)) == 1          # aligned columns


def test_perf_agent_timelines_feed_dashboard(database, notifications):
    from repro.core.performance_agent import PerformanceAgent
    from repro.metrics.timeline import render_dashboard
    agent = PerformanceAgent(database.host, notifications=notifications)
    database.host.crond.remove(agent.name)      # manual drive only
    for _ in range(3):
        database.host.sim.run(until=database.host.sim.now + 300)
        agent.run()
    ts = agent.timeline("os", "cpu_idle")
    assert ts is not None and len(ts) == 3
    dash = render_dashboard({"cpu_idle": ts})
    assert "avg" in dash
