"""The paired cross-check: the ledger-driven control plane must make
exactly the decisions the full rescan makes.

Two angles:

- ``paired`` mode runs both planners inside one site every sweep and
  every DGSPL build, counting any divergence;
- separate ``scan`` and ``ledger`` sites driven through an identical
  fault campaign must produce byte-identical decision logs.
"""

import pytest

from repro.experiments.site import SiteConfig, build_site


def _site(mode, wake="adaptive"):
    return build_site(SiteConfig.test_scale(
        seed=29, control_plane=mode, with_workload=False,
        with_feeds=False, wake_policy=wake))


def _campaign(site):
    """Deterministic faults covering every decision type: a dead crond
    (cron_repair), a host crash (escalate), a recovery (clear), plus a
    silenced-but-crond-alive host (demand-wake knock, then escalate).
    Windows are generous enough for backed-off adaptive agents, whose
    staleness gap can reach wake_max_period + flag grace."""
    admin = site.admin
    site.run(1500.0)                        # past warm-up, flags green
    site.dc.host("db001").crond.kill()      # all agents stop; crond dead
    site.run(2 * admin.watch_period)
    fe = site.dc.host("fe001")
    fe.crash("power supply")                # host down
    site.run(2 * admin.watch_period)
    fe.boot()                               # recovery -> clear
    site.run(fe.boot_duration + 3 * admin.watch_period)
    db = site.dc.host("db000")
    for agent in site.suites["db000"].agents:
        db.crond.remove(agent.name)         # quiet agents, crond alive
    site.run(site.config.wake_max_period + 5 * admin.watch_period)


@pytest.mark.parametrize("wake", ["fixed", "adaptive"])
def test_paired_mode_never_diverges(wake):
    site = _site("paired", wake)
    _campaign(site)
    admin = site.admin
    assert admin.sweep_mismatches == 0
    assert admin.dgspl_mismatches == 0
    assert admin.model_resyncs == 0
    # the campaign actually produced decisions of every kind
    actions = {line.split()[1] for line in admin.decisions}
    assert actions == {"cron_repair", "escalate", "clear", "demand_wake"}
    assert admin.cron_repairs >= 1
    assert admin.demand_wakes >= 1
    assert "db000" in admin.hosts_escalated


@pytest.mark.parametrize("wake", ["fixed", "adaptive"])
def test_scan_and_ledger_runs_are_byte_identical(wake):
    scan, ledger = _site("scan", wake), _site("ledger", wake)
    _campaign(scan)
    _campaign(ledger)
    assert scan.admin.decisions            # non-trivial campaign
    assert scan.admin.decisions == ledger.admin.decisions
    assert scan.admin.cron_repairs == ledger.admin.cron_repairs
    assert scan.admin.hosts_escalated == ledger.admin.hosts_escalated
    # and the paging behaviour matched decision for decision
    sms = lambda s: [(n.subject, n.time) for n in s.notifications.sent
                     if n.medium == "sms"]
    assert sms(scan) == sms(ledger)


def test_ledger_sweeps_examine_only_candidates():
    """The point of the refactor: a quiet site's sweep touches nobody.
    Decisions come from the few hosts with conditions, not a rescan."""
    from repro.trace import install_tracer
    site = _site("ledger")
    tracer = install_tracer(site.sim)
    site.run(1500.0)
    sweeps = tracer.spans_named("admin.flag_sweep")
    settled = [s for s in sweeps if s.attrs.get("examined") is not None
               and s.start > 1200.0]
    assert settled, "expected post-warm-up sweeps on the record"
    # healthy steady state: no candidates at all, versus a full scan
    # which would have examined every registered host every time
    assert all(s.attrs["examined"] == 0 for s in settled)
    assert all(s.attrs["mode"] == "ledger" for s in settled)


def test_dgspl_identical_across_modes():
    scan, ledger = _site("scan"), _site("ledger")
    for s in (scan, ledger):
        s.run(3700.0)
    assert scan.admin.dgspl is not None
    assert (scan.admin.dgspl.to_doc().render()
            == ledger.admin.dgspl.to_doc().render())


def test_scan_site_has_no_ledger():
    site = _site("scan")
    assert site.ledger is None
    assert site.admin.ledger is None
    site.run(1500.0)
    assert site.admin.dgspl is not None     # old path still whole
