"""Unit tests for the application state machine."""

import pytest

from repro.apps.base import Application, AppState, ProcessSpec, StartupStep


@pytest.fixture
def app(dc, sim):
    a = Application(dc.host("db01"), "svc", port=7777,
                    processes=[ProcessSpec("svc_main", 2, 1.0, 10.0)],
                    startup=[StartupStep("warm", 30.0),
                             StartupStep("bind", 10.0)])
    return a


def test_startup_sequence_takes_time(app, sim):
    app.start()
    assert app.state is AppState.STARTING
    assert not app.probe()[0]
    sim.run(until=sim.now + app.startup_duration() + 1)
    assert app.state is AppState.RUNNING
    assert app.probe()[0]


def test_processes_appear_and_disappear(app, sim):
    app.start()
    sim.run(until=sim.now + 50.0)
    assert len(app.host.ptable.by_command("svc_main")) == 2
    app.stop()
    assert app.host.ptable.by_command("svc_main") == []
    assert app.state is AppState.STOPPED


def test_crash_reaps_processes_and_logs(app, sim):
    app.start()
    sim.run(until=sim.now + 50.0)
    app.crash("segfault")
    assert app.state is AppState.CRASHED
    assert not app.processes_present()
    recs = app.host.syslog.errors_since(0.0, tag="svc")
    assert any("segfault" in r.message for r in recs)
    assert app.crash_count == 1


def test_hang_keeps_processes_but_kills_service(app, sim):
    app.start()
    sim.run(until=sim.now + 50.0)
    app.hang()
    assert app.state is AppState.HUNG
    assert app.processes_present()
    ok, ms, err = app.probe()
    assert not ok and err == "timeout"


def test_restart_heals_crash(app, sim):
    app.start()
    sim.run(until=sim.now + 50.0)
    app.crash("x")
    app.restart()
    sim.run(until=sim.now + app.startup_duration() + 1)
    assert app.state is AppState.RUNNING
    assert app.restart_count == 1


def test_restart_clears_hang(app, sim):
    app.start()
    sim.run(until=sim.now + 50.0)
    app.hang()
    app.restart()
    sim.run(until=sim.now + app.startup_duration() + 1)
    assert app.is_healthy()


def test_bad_config_aborts_startup(app, sim):
    app.config_ok = False
    app.start()
    sim.run(until=sim.now + app.startup_duration() + 1)
    assert app.state is AppState.CRASHED
    app.config_ok = True
    app.restart()
    sim.run(until=sim.now + app.startup_duration() + 1)
    assert app.is_healthy()


def test_corrupt_data_aborts_startup(app, sim):
    app.start()
    sim.run(until=sim.now + 50.0)
    app.data_ok = False
    app.crash("corruption")
    app.restart()
    sim.run(until=sim.now + app.startup_duration() + 1)
    assert app.state is AppState.CRASHED


def test_degrade_and_recover(app, sim):
    app.start()
    sim.run(until=sim.now + 50.0)
    healthy_ms = app.probe()[1]
    app.degrade("slow disk")
    assert app.state is AppState.DEGRADED
    ok, ms, _ = app.probe()
    assert ms > healthy_ms or not ok
    app.recover_degradation()
    assert app.is_healthy()


def test_control_script(app, sim):
    host = app.host
    assert host.shell.run("svc_ctl status").exit_code == 1
    assert host.shell.run("svc_ctl start").ok
    sim.run(until=sim.now + app.startup_duration() + 1)
    assert host.shell.run("svc_ctl status").ok
    assert host.shell.run("svc_ctl stop").ok
    assert app.state is AppState.STOPPED
    assert host.shell.run("svc_ctl bogus").exit_code == 2


def test_response_stretches_with_load(app, sim):
    app.start()
    sim.run(until=sim.now + app.startup_duration() + 1)
    ms0 = app.probe()[1]
    app.host.extra_runnable = app.host.effective_cpus() * 10
    ms1 = app.probe()[1]
    assert ms1 > ms0


def test_cannot_start_on_dead_host(app, sim):
    app.host.crash("x")
    app.start()
    sim.run(until=sim.now + 100.0)
    assert app.state is AppState.STOPPED
    assert app.procs == []


def test_double_start_is_idempotent(app, sim):
    app.start()
    app.start()
    sim.run(until=sim.now + app.startup_duration() + 1)
    assert len(app.host.ptable.by_command("svc_main")) == 2
