"""Unit tests for the flat-ASCII ontology codec."""

import pytest

from repro.ontology.base import (OntologyDoc, OntologyError, decode_list,
                                 encode_list)


def test_render_parse_roundtrip():
    doc = OntologyDoc("SLKT", 123.5)
    doc.add("host", name="db01", cpus="8")
    doc.add("application", name="ora", port="1521")
    parsed = OntologyDoc.parse(doc.render())
    assert parsed.kind == "SLKT"
    assert parsed.generated_at == 123.5
    assert parsed.records == doc.records


def test_rendered_form_is_flat_ascii():
    doc = OntologyDoc("DLSP", 0.0)
    doc.add("host", name="x")
    lines = doc.render()
    assert lines[0] == "#ONTOLOGY DLSP 1"
    assert all("\n" not in l for l in lines)
    assert "record=host" in lines
    assert "name=x" in lines


def test_record_queries():
    doc = OntologyDoc("X")
    doc.add("a", v="1")
    doc.add("b", v="2")
    doc.add("a", v="3")
    assert len(doc.of_type("a")) == 2
    assert doc.first("b")["v"] == "2"
    assert doc.first("zzz") is None


def test_bad_keys_and_values_rejected():
    doc = OntologyDoc("X")
    with pytest.raises(OntologyError):
        doc.add("r", **{"bad key": "v"})
    with pytest.raises(OntologyError):
        doc.add("r", **{"k=v": "v"})
    with pytest.raises(OntologyError):
        doc.add("r", k="line1\nline2")


def test_parse_errors():
    with pytest.raises(OntologyError):
        OntologyDoc.parse([])
    with pytest.raises(OntologyError):
        OntologyDoc.parse(["not a header"])
    with pytest.raises(OntologyError):
        OntologyDoc.parse(["#ONTOLOGY X 99", "#GENERATED 0.0"])
    with pytest.raises(OntologyError):
        OntologyDoc.parse(["#ONTOLOGY X 1"])
    with pytest.raises(OntologyError):
        OntologyDoc.parse(["#ONTOLOGY X 1", "#GENERATED zero"])
    # field outside a record
    with pytest.raises(OntologyError):
        OntologyDoc.parse(["#ONTOLOGY X 1", "#GENERATED 0.0", "",
                           "orphan=1"])
    # duplicate keys within a record
    with pytest.raises(OntologyError):
        OntologyDoc.parse(["#ONTOLOGY X 1", "#GENERATED 0.0", "",
                           "record=r", "k=1", "k=2"])


def test_comment_lines_ignored():
    doc = OntologyDoc.parse(["#ONTOLOGY X 1", "#GENERATED 5.0",
                             "# a human wrote this", "",
                             "record=r", "k=v"])
    assert doc.records == [{"record": "r", "k": "v"}]


def test_values_may_contain_equals():
    doc = OntologyDoc("X")
    doc.add("r", expr="a=b")
    parsed = OntologyDoc.parse(doc.render())
    assert parsed.records[0]["expr"] == "a=b"


def test_list_codec():
    assert decode_list(encode_list(["a", "b", "c"])) == ["a", "b", "c"]
    assert decode_list("") == []
    with pytest.raises(OntologyError):
        encode_list(["has,comma"])


def test_fs_io_roundtrip(db_host):
    doc = OntologyDoc("ISSL", 9.0)
    doc.add("entry", name="db01")
    doc.write_to(db_host.fs, "/apps/issl", now=9.0)
    back = OntologyDoc.read_from(db_host.fs, "/apps/issl")
    assert back.records == doc.records
