"""Unit tests for the DGSPL-driven job manager."""

import pytest

from repro.apps.database import Database
from repro.batch.jobs import BatchJob, JobState
from repro.batch.lsf import LsfCluster, LsfMaster
from repro.core.admin import AdministrationServers
from repro.core.jobmgr import JobManager
from repro.core.suite import AgentSuite


@pytest.fixture
def rig(dc, sim, rs, channel, notifications, pool):
    """Two databases (weak db01, strong big01), admin pair, LSF,
    job manager."""
    big_host = dc.add_host("big01", "sun-e10k")
    dc.connect("big01", "public0")
    dc.connect("big01", "agentnet")
    weak = Database(dc.host("db01"), "ora_weak", max_job_slots=4)
    strong = Database(big_host, "ora_strong", max_job_slots=6)
    master = LsfMaster(dc.host("adm01"))
    for app in (weak, strong, master):
        app.start()
    sim.run(until=sim.now + 300.0)
    admin = AdministrationServers(dc, dc.host("adm01"), dc.host("adm02"),
                                  pool, channel=channel,
                                  notifications=notifications)
    for hostname in ("db01", "big01"):
        suite = AgentSuite(dc.host(hostname), channel=channel,
                           admin_targets=["adm01", "adm02"],
                           notifications=notifications,
                           deliver_dlsp=admin.receive_dlsp)
        admin.register_suite(suite)
    lsf = LsfCluster(dc, master, rng=rs.get("lsf"), base_crash_prob=0.0)
    lsf.register_server(weak)
    lsf.register_server(strong)
    mgr = JobManager(admin, lsf, notifications=notifications)
    # let status agents ship DLSPs and the admin build a DGSPL
    sim.run(until=sim.now + 1000.0)
    assert admin.dgspl is not None
    return admin, lsf, mgr, weak, strong


def test_failed_job_resubmitted_to_stronger_server(rig, sim):
    admin, lsf, mgr, weak, strong = rig
    job = BatchJob("overnight", "analyst", duration=7200.0,
                   requested_server="db01")
    lsf.submit(job)
    assert job.database is weak
    weak.crash("mid-job")
    # exit hook fires synchronously: the job is already requeued
    assert mgr.resubmitted == 1
    assert job.requested_server == "big01"    # equal-or-higher power
    sim.run(until=sim.now + 120.0)
    assert job.state is JobState.RUNNING
    assert job.database is strong


def test_max_resubmits_then_give_up(rig, sim, notifications):
    admin, lsf, mgr, weak, strong = rig
    job = BatchJob("cursed", "analyst", duration=7200.0)
    job.resubmits = mgr.MAX_RESUBMITS
    lsf.submit(job)
    (job.database).crash("boom")
    assert mgr.gave_up == 1
    assert any("manual handling" in n.subject for n in notifications.sent)


def test_gives_up_without_dgspl(rig, sim, notifications):
    admin, lsf, mgr, weak, strong = rig
    admin.dgspl = None
    job = BatchJob("j", "u", duration=7200.0, requested_server="db01")
    lsf.submit(job)
    weak.crash("x")
    assert mgr.gave_up == 1


def test_no_action_when_coordinators_down(rig, sim):
    admin, lsf, mgr, weak, strong = rig
    admin.primary.crash("x")
    admin.standby.crash("x")
    job = BatchJob("j", "u", duration=7200.0, requested_server="big01")
    lsf.submit(job)
    strong.crash("x")
    assert mgr.resubmitted == 0 and mgr.gave_up == 0


def test_double_checks_dgspl_against_live_state(rig, sim):
    """The DGSPL can lag a crash; the manager must not pin a job to a
    server that just died."""
    admin, lsf, mgr, weak, strong = rig
    job = BatchJob("j", "u", duration=7200.0, requested_server="db01")
    lsf.submit(job)
    # both servers die: the shortlist (stale) still lists big01
    weak.crash("x")        # fires resubmission logic
    # job went to big01 or gave up; now crash big01 too before dispatch
    if job.state is JobState.RUNNING:
        strong.crash("x")
    assert mgr.gave_up >= 1 or job.resubmits >= 1


def test_five_minute_checks_restart_lsf(rig, sim):
    admin, lsf, mgr, weak, strong = rig
    lsf.master.crash("x")
    sim.run(until=sim.now + 600.0 + lsf.master.startup_duration())
    assert mgr.checks_run >= 1
    assert lsf.up
    assert mgr.lsf_restarts_requested >= 1


def test_snapshot_contents(rig, sim):
    admin, lsf, mgr, weak, strong = rig
    job = BatchJob("j", "u", duration=7200.0)
    lsf.submit(job)
    snap = mgr.snapshot()
    assert snap["lsf_up"]
    assert snap["jobs_running"] == 1
    assert job.job_id in snap["time_left_s"]
    assert set(snap["jobs_per_server"]) == {"db01", "big01"}


def test_daily_summary_email(rig, sim, notifications):
    admin, lsf, mgr, weak, strong = rig
    from repro.sim.calendar import DAY
    sim.run(until=sim.now + DAY + 3600.0)
    assert mgr.daily_reports_sent >= 1
    assert any(n.subject == "daily batch summary"
               for n in notifications.sent)
