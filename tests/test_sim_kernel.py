"""Unit tests for the discrete-event kernel."""

import math

import pytest

from repro.sim import Event, Interrupt, Signal, SimProcess, Simulator


def test_schedule_runs_in_time_order(sim):
    order = []
    sim.schedule(5.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(9.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 9.0


def test_ties_broken_by_insertion_order(sim):
    order = []
    for tag in "abc":
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == ["a", "b", "c"]


def test_priority_beats_insertion_order(sim):
    order = []
    sim.schedule(1.0, order.append, "late")
    sim.schedule(1.0, order.append, "early", priority=-1)
    sim.run()
    assert order == ["early", "late"]


def test_run_until_advances_clock_even_without_events(sim):
    sim.schedule(1.0, lambda: None)
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_run_until_does_not_fire_later_events(sim):
    fired = []
    sim.schedule(50.0, fired.append, 1)
    sim.run(until=10.0)
    assert fired == []
    sim.run(until=60.0)
    assert fired == [1]


def test_cancelled_event_does_not_fire(sim):
    fired = []
    ev = sim.schedule(1.0, fired.append, 1)
    ev.cancel()
    sim.run()
    assert fired == []
    assert not ev.alive and not ev.fired


def test_negative_delay_rejected(sim):
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.schedule(float("nan"), lambda: None)


def test_schedule_at_past_rejected(sim):
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(1.0, lambda: None)


def test_events_scheduled_during_run_fire(sim):
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, order.append, "second")

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 2.0


def test_max_events_budget(sim):
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_peek_skips_cancelled(sim):
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.peek() == 2.0


def test_peek_empty_is_inf(sim):
    assert sim.peek() == math.inf


def test_generator_process_sleeps(sim):
    trace = []

    def proc():
        trace.append(sim.now)
        yield 10.0
        trace.append(sim.now)
        yield 5.0
        trace.append(sim.now)
        return "done"

    p = sim.spawn(proc())
    sim.run()
    assert trace == [0.0, 10.0, 15.0]
    assert p.done and p.result == "done"


def test_process_waits_on_signal(sim):
    got = []
    s = sim.signal("test")

    def waiter():
        value = yield s
        got.append(value)

    sim.spawn(waiter())
    sim.schedule(5.0, s.fire, 42)
    sim.run()
    assert got == [42]


def test_signal_wakes_all_current_waiters_once(sim):
    got = []
    s = sim.signal()

    def waiter(tag):
        value = yield s
        got.append((tag, value))

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.schedule(1.0, s.fire, "x")
    sim.schedule(2.0, s.fire, "y")    # nobody waiting: no effect
    sim.run()
    assert sorted(got) == [("a", "x"), ("b", "x")]
    assert s.fire_count == 2


def test_process_interrupt(sim):
    trace = []

    def sleeper():
        try:
            yield 1000.0
        except Interrupt as exc:
            trace.append(exc.cause)
        return "woken"

    p = sim.spawn(sleeper())
    sim.schedule(5.0, p.interrupt, "alarm")
    sim.run()
    assert trace == ["alarm"]
    assert p.result == "woken"
    assert sim.now == 5.0


def test_process_stop(sim):
    trace = []

    def body():
        trace.append("start")
        yield 100.0
        trace.append("never")

    p = sim.spawn(body())
    sim.schedule(1.0, p.stop)
    sim.run()
    assert trace == ["start"]
    assert p.done


def test_process_finished_signal(sim):
    results = []

    def child():
        yield 3.0
        return 99

    def parent():
        p = sim.spawn(child())
        value = yield p.finished
        results.append(value)

    sim.spawn(parent())
    sim.run()
    assert results == [99]


def test_signal_subscribers_called_synchronously(sim):
    seen = []
    s = sim.signal()
    s.subscribe(seen.append)
    s.fire(1)
    assert seen == [1]          # no event-loop turn needed
    s.fire(2)
    assert seen == [1, 2]       # persistent across fires


def test_signal_unsubscribe(sim):
    seen = []
    s = sim.signal()
    s.subscribe(seen.append)
    s.unsubscribe(seen.append)
    s.fire(1)
    assert seen == []
    s.unsubscribe(seen.append)      # idempotent


def test_signal_subscribers_and_waiters_coexist(sim):
    events = []
    s = sim.signal()
    s.subscribe(lambda v: events.append(("sub", v)))

    def waiter():
        v = yield s
        events.append(("proc", v))

    sim.spawn(waiter())
    sim.schedule(1.0, s.fire, 9)
    sim.run()
    assert ("sub", 9) in events and ("proc", 9) in events


def test_process_invalid_yield_raises(sim):
    def bad():
        yield "nonsense"

    sim.spawn(bad())
    with pytest.raises(TypeError):
        sim.run()


def test_periodic_fires_and_cancels(sim):
    ticks = []
    ctl = sim.every(10.0, lambda: ticks.append(sim.now))
    sim.run(until=35.0)
    assert ticks == [0.0, 10.0, 20.0, 30.0]
    ctl.cancel()
    sim.run(until=100.0)
    assert len(ticks) == 4


def test_run_not_reentrant(sim):
    def evil():
        sim.run(until=10.0)

    sim.schedule(1.0, evil)
    with pytest.raises(RuntimeError):
        sim.run()


def test_event_repr_safe_on_partial_init(sim):
    ev = sim.schedule(1.5, sim.run)
    assert "1.500" in repr(ev) and "alive" in repr(ev)
    partial = Event.__new__(Event)        # nothing set yet
    assert "Event" in repr(partial)       # must not raise


def test_process_repr_safe_on_partial_init(sim):
    def p():
        yield 1.0

    proc = sim.spawn(p(), name="worker")
    assert "worker" in repr(proc)
    partial = SimProcess.__new__(SimProcess)
    assert "SimProcess" in repr(partial)  # must not raise
