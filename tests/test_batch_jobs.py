"""Unit tests for the batch-job model."""

import pytest

from repro.batch.jobs import BatchJob, JobState


def test_job_ids_unique():
    a = BatchJob("a", "u", duration=10.0)
    b = BatchJob("b", "u", duration=10.0)
    assert a.job_id != b.job_id
    assert a.state is JobState.PENDING


def test_complete_lifecycle(sim, database):
    job = BatchJob("j", "u", duration=50.0)
    exits = []
    job.on_exit(exits.append)
    database.attach_job(job)
    job.mark_running(database, sim.now, None)
    job.complete(sim.now + 50.0)
    assert job.state is JobState.DONE
    assert job.finished_at == 50.0 + job.started_at
    assert exits == [job]
    assert database.job_count() == 0


def test_fail_cancels_completion_event(sim, database):
    fired = []
    job = BatchJob("j", "u", duration=100.0)
    database.attach_job(job)
    completion = sim.schedule(100.0, fired.append, 1)
    job.mark_running(database, sim.now, completion)
    job.fail(sim.now + 10.0, "boom")
    sim.run()
    assert fired == []
    assert job.state is JobState.FAILED
    assert job.failures == 1
    assert database.host.name in job.failed_on


def test_terminal_states_are_sticky(sim, database):
    job = BatchJob("j", "u", duration=10.0)
    database.attach_job(job)
    job.mark_running(database, sim.now, None)
    job.complete(10.0)
    job.fail(11.0, "late")
    assert job.state is JobState.DONE


def test_exit_fires_once_per_terminal_transition(sim, database):
    count = []
    job = BatchJob("j", "u", duration=10.0)
    job.on_exit(lambda j: count.append(1))
    database.attach_job(job)
    job.mark_running(database, sim.now, None)
    job.fail(5.0, "x")
    job.fail(6.0, "y")
    assert count == [1]


def test_cancel(sim, database):
    job = BatchJob("j", "u", duration=10.0)
    database.attach_job(job)
    job.mark_running(database, sim.now, None)
    job.cancel(sim.now)
    assert job.state is JobState.CANCELLED
    assert database.job_count() == 0


def test_resubmit_resets_state(sim, database):
    job = BatchJob("j", "u", duration=10.0)
    database.attach_job(job)
    job.mark_running(database, sim.now, None)
    job.fail(5.0, "x")
    job.reset_for_resubmit()
    assert job.state is JobState.PENDING
    assert job.resubmits == 1
    assert job.started_at is None
    assert database.host.name in job.failed_on   # memory survives


def test_resubmit_requires_failed():
    job = BatchJob("j", "u", duration=10.0)
    with pytest.raises(ValueError):
        job.reset_for_resubmit()


def test_time_left(sim, database):
    job = BatchJob("j", "u", duration=100.0)
    database.attach_job(job)
    job.mark_running(database, sim.now, None)
    assert job.time_left(sim.now + 30.0) == pytest.approx(70.0)
    assert job.time_left(sim.now + 500.0) == 0.0
    job.complete(sim.now + 100.0)
    assert job.time_left(sim.now) == 0.0
