"""Unit tests for the LSF-like scheduler."""

import pytest

from repro.apps.database import Database
from repro.batch.jobs import BatchJob, JobState
from repro.batch.lsf import LsfCluster, LsfMaster
from repro.batch.policies import RandomPolicy


@pytest.fixture
def lsf(dc, sim, rs):
    master = LsfMaster(dc.host("adm01"))
    master.start()
    dbs = []
    for hostname, name in (("db01", "ora01"), ("fe01", "ora02")):
        db = Database(dc.host(hostname), name, max_job_slots=2)
        db.start()
        dbs.append(db)
    sim.run(until=sim.now + 200.0)
    cluster = LsfCluster(dc, master, rng=rs.get("lsf"),
                         base_crash_prob=0.0)
    for db in dbs:
        cluster.register_server(db)
    return cluster


def _job(duration=100.0, target=None):
    return BatchJob("j", "analyst", duration=duration,
                    requested_server=target)


def test_submit_dispatch_complete(sim, lsf):
    job = _job(duration=50.0)
    assert lsf.submit(job)
    assert job.state is JobState.RUNNING
    sim.run(until=sim.now + 60.0)
    assert job.state is JobState.DONE
    assert lsf.jobs_done == 1


def test_slot_limit_queues_excess(sim, lsf):
    jobs = [_job(duration=1000.0) for _ in range(6)]
    for j in jobs:
        lsf.submit(j)
    running = [j for j in jobs if j.state is JobState.RUNNING]
    pending = [j for j in jobs if j.state is JobState.PENDING]
    assert len(running) == 4          # 2 servers x 2 slots
    assert len(pending) == 2
    # slots free up as jobs finish
    sim.run(until=sim.now + 1100.0)
    assert all(j.state is JobState.DONE for j in jobs[:4])


def test_pinned_job_waits_for_its_server(sim, lsf):
    blockers = [_job(duration=500.0, target="db01") for _ in range(2)]
    for b in blockers:
        lsf.submit(b)
    pinned = _job(duration=50.0, target="db01")
    lsf.submit(pinned)
    assert pinned.state is JobState.PENDING
    sim.run(until=sim.now + 700.0)
    assert pinned.state is JobState.DONE
    assert pinned.database is None


def test_submission_bounces_when_master_down(sim, lsf):
    lsf.master.crash("x")
    assert not lsf.up
    assert not lsf.submit(_job())


def test_dispatch_pauses_while_master_down(sim, lsf):
    lsf.master.crash("x")
    # master comes back, queued work proceeds
    lsf.master.restart()
    sim.run(until=sim.now + lsf.master.startup_duration() + 70.0)
    job = _job(duration=50.0)
    assert lsf.submit(job)
    sim.run(until=sim.now + 120.0)
    assert job.state is JobState.DONE


def test_db_crash_fails_running_jobs(sim, lsf):
    job = _job(duration=1000.0, target="db01")
    lsf.submit(job)
    assert job.state is JobState.RUNNING
    job.database.crash("mid-job")
    assert job.state is JobState.FAILED
    assert lsf.jobs_failed == 1


def test_crash_coupling_under_overload(sim, dc, rs):
    """With a high base crash probability, dispatching onto a loaded
    server eventually kills it."""
    master = LsfMaster(dc.host("adm01"))
    master.start()
    db = Database(dc.host("db01"), "fragile", max_job_slots=12)
    db.start()
    sim.run(until=sim.now + 200.0)
    cluster = LsfCluster(dc, master, rng=rs.get("x"), base_crash_prob=0.5)
    cluster.register_server(db)
    for _ in range(12):
        cluster.submit(BatchJob("j", "u", duration=3600.0, cpu_slots=8))
    sim.run(until=sim.now + 4000.0)
    assert cluster.crashes_caused >= 1
    assert cluster.jobs_failed >= 1


def test_resubmit_runs_again(sim, lsf):
    job = _job(duration=100.0, target="db01")
    lsf.submit(job)
    job.database.crash("x")
    assert job.state is JobState.FAILED
    job.requested_server = "fe01"     # place it on the healthy server
    assert lsf.resubmit(job)
    sim.run(until=sim.now + 200.0)
    assert job.state is JobState.DONE
    assert job.resubmits == 1


def test_jobs_on_and_queue_stats(sim, lsf):
    a = _job(duration=500.0, target="db01")
    b = _job(duration=500.0, target="fe01")
    lsf.submit(a)
    lsf.submit(b)
    assert len(lsf.jobs_on("db01")) == 1
    stats = lsf.queue_stats()
    assert stats["running"] == 2 and stats["dispatches"] == 2


def test_bjobs_filters_by_state(sim, lsf):
    job = _job(duration=10.0)
    lsf.submit(job)
    sim.run(until=sim.now + 20.0)
    assert lsf.bjobs(JobState.DONE) == [job]
    assert lsf.bjobs() == [job]


def test_duplicate_server_registration_rejected(lsf):
    with pytest.raises(ValueError):
        lsf.register_server(lsf.servers[0])
