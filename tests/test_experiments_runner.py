"""Unit tests for the full-fidelity harness bookkeeping."""

import pytest

from repro.experiments.runner import FidelityHarness
from repro.experiments.site import SiteConfig, build_site
from repro.faults.models import Category


@pytest.fixture
def rig():
    site = build_site(SiteConfig.test_scale(seed=53, with_feeds=False,
                                            with_workload=False))
    return site, FidelityHarness(site)


def test_incident_opens_on_crash_and_closes_on_recovery(rig):
    site, harness = rig
    db = site.databases[0]
    t0 = site.sim.now
    db.crash("x")
    assert len(harness.open_incidents()) == 1
    inc = harness.open_incidents()[0]
    assert inc.category is Category.MID_CRASH
    assert inc.target == f"{db.host.name}/{db.name}"
    assert inc.start == t0
    site.run(1200.0)
    assert harness.open_incidents() == []
    assert harness.ledger.closed()[0].duration > 0


def test_hang_opens_incident_too(rig):
    site, harness = rig
    fe = site.frontends[0]
    fe.hang()
    assert len(harness.open_incidents()) == 1
    site.run(1200.0)
    assert harness.open_incidents() == []


def test_repeated_state_flaps_stay_one_incident(rig):
    site, harness = rig
    db = site.databases[0]
    db.crash("x")
    db.crash("x again")     # no state change: still one incident
    assert len(harness.ledger.incidents) == 1


def test_categories_follow_app_type(rig):
    site, harness = rig
    site.frontends[0].crash("x")
    site.lsf_master.crash("x")
    cats = {i.category for i in harness.open_incidents()}
    assert Category.FRONT_END in cats
    assert Category.LSF in cats
    site.run(1500.0)


def test_flag_scan_stamps_detection(rig):
    site, harness = rig
    db = site.databases[1]
    db.crash("x")
    site.run(1200.0)
    harness.scan_flags_for_detection()
    inc = harness.ledger.closed()[-1]
    assert inc.detected_at is not None
    # adaptive wakes can detect at the crash instant (trigger-driven
    # demand wake), so zero latency is legitimate
    assert 0 <= inc.detection_latency <= site.config.agent_period + 30


def test_run_hours_advances_clock(rig):
    site, harness = rig
    t0 = site.sim.now
    harness.run_hours(2.0)
    assert site.sim.now == t0 + 7200.0


def test_host_crash_opens_incidents_for_its_apps(rig):
    site, harness = rig
    host = site.databases[0].host
    host.crash("panic")
    targets = [i.target for i in harness.open_incidents()]
    assert f"{host.name}/{site.databases[0].name}" in targets
    # host comes back, rc starts apps, incidents close
    host.boot()
    site.run(host.boot_duration
             + site.databases[0].startup_duration() + 120.0)
    assert harness.open_incidents() == []
