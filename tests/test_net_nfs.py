"""Unit tests for the NFS shared pool."""

import pytest

from repro.cluster.filesystem import FsOfflineError
from repro.net.nfs import SharedPool


@pytest.fixture
def ha_pool(sim, dc, pool):
    pool.add_server(dc.host("adm01"))
    pool.add_server(dc.host("adm02"))
    return pool


def test_write_read_through_pool(dc, ha_pool):
    client = dc.host("db01")
    ha_pool.write(client, "/x", ["hello"])
    assert ha_pool.read(client, "/x") == ["hello"]
    assert client.nfs_calls == 2
    assert ha_pool.calls == 2


def test_survives_one_head_down(dc, ha_pool):
    dc.host("adm01").crash("x")
    client = dc.host("db01")
    ha_pool.write(client, "/x", ["still here"])
    assert ha_pool.available()


def test_fails_when_both_heads_down(dc, ha_pool):
    dc.host("adm01").crash("x")
    dc.host("adm02").crash("x")
    client = dc.host("db01")
    with pytest.raises(FsOfflineError):
        ha_pool.write(client, "/x", ["no"])
    assert client.nfs_retrans == 1
    assert ha_pool.failed_calls == 1


def test_recovers_after_boot(sim, dc, ha_pool):
    dc.host("adm01").crash("x")
    dc.host("adm02").crash("x")
    dc.host("adm01").boot()
    sim.run(until=sim.now + dc.host("adm01").boot_duration + 5)
    ha_pool.write(dc.host("db01"), "/x", ["back"])
    assert ha_pool.read(dc.host("db01"), "/x") == ["back"]


def test_listdir_exists_remove(dc, ha_pool):
    client = dc.host("db01")
    ha_pool.write(client, "/dlsp/db01", ["a"])
    ha_pool.append(client, "/dlsp/db01", "b")
    assert ha_pool.exists(client, "/dlsp/db01")
    assert "db01" in ha_pool.listdir(client, "/dlsp")
    assert ha_pool.remove(client, "/dlsp/db01")
    assert not ha_pool.exists(client, "/dlsp/db01")


def test_pool_without_servers_is_local(sim):
    pool = SharedPool(sim)
    pool.write(None, "/x", ["standalone"])
    assert pool.read(None, "/x") == ["standalone"]
