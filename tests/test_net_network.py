"""Unit tests for LANs and NICs."""

import pytest

from repro.net.network import Lan


def test_attach_assigns_ip_and_ifname(dc):
    host = dc.host("db01")
    nics = list(host.nics.values())
    assert len(nics) == 2
    subnets = {n.ip.rsplit(".", 1)[0] for n in nics}
    assert subnets == {"192.168.1", "10.0.0"}


def test_double_attach_rejected(dc):
    with pytest.raises(ValueError):
        dc.connect("db01", "public0")


def test_send_updates_counters(dc):
    lan = dc.lan("public0")
    src, dst = dc.host("db01"), dc.host("adm01")
    ok, latency = lan.send(src, dst, 14600)
    assert ok and latency > 0
    nsrc, ndst = lan.nic_of(src), lan.nic_of(dst)
    assert nsrc.packets_out == 10    # 14600 / 1460
    assert ndst.packets_in == 10
    assert nsrc.bytes_out == 14600
    assert lan.total_messages == 1


def test_send_fails_on_lan_down(dc):
    lan = dc.lan("public0")
    lan.fail()
    ok, _ = lan.send(dc.host("db01"), dc.host("adm01"), 100)
    assert not ok
    assert lan.nic_of(dc.host("db01")).errors_out == 1
    lan.repair()
    assert lan.send(dc.host("db01"), dc.host("adm01"), 100)[0]


def test_send_fails_on_dead_nic(dc):
    lan = dc.lan("public0")
    lan.nic_of(dc.host("adm01")).fail()
    assert not lan.send(dc.host("db01"), dc.host("adm01"), 100)[0]


def test_utilization_rises_with_traffic_and_decays(sim, dc):
    lan = dc.lan("public0")
    assert lan.utilization() == 0.0
    src, dst = dc.host("db01"), dc.host("adm01")
    for _ in range(50):
        lan.send(src, dst, 10**6)
    assert lan.utilization() > 0.0
    busy_latency = lan.latency_ms()
    assert busy_latency > lan.base_latency_ms
    # after the window passes, the utilisation resets
    sim.run(until=sim.now + Lan.UTIL_WINDOW + 1)
    assert lan.utilization() == 0.0


def test_path_ok_requires_membership(dc, sim):
    lan = dc.lan("public0")
    outsider = dc.add_host("outsider", "linux-x86")
    assert not lan.path_ok(dc.host("db01"), outsider)[0]


def test_collisions_on_saturated_segment(sim, dc):
    lan = dc.lan("public0")
    src, dst = dc.host("db01"), dc.host("adm01")
    # saturate: ~100 Mb/s over the window
    for _ in range(200):
        lan.send(src, dst, 4 * 10**6)
    assert lan.nic_of(src).collisions > 0
