"""Edge-case hardening for the trace metrics: every in-range quantile
of a histogram has a defined value (the alerting tier probes extremes
on freshly-created metrics, so none may raise)."""

import pytest

from repro.trace.metrics import DEFAULT_BUCKETS, Histogram


@pytest.fixture
def hist():
    return Histogram("lat")


def test_empty_histogram_quantiles_are_zero(hist):
    for q in (0.0, 0.25, 0.5, 1.0):
        assert hist.quantile(q) == 0.0
    assert hist.mean() == 0.0


def test_quantile_range_validated(hist):
    hist.observe(5.0)
    for q in (-0.1, 1.1):
        with pytest.raises(ValueError):
            hist.quantile(q)


def test_q0_and_q1_bracket_the_occupied_buckets(hist):
    hist.observe(5.0)                    # lands in the (1, 10] bucket
    assert hist.quantile(0.0) == 1.0
    assert hist.quantile(1.0) == 10.0


def test_q0_first_bucket_has_no_lower_bound(hist):
    hist.observe(0.05)
    assert hist.quantile(0.0) == 0.0
    assert hist.quantile(1.0) == DEFAULT_BUCKETS[0]


def test_overflow_bucket_reports_its_lower_bound(hist):
    hist.observe(1e6)
    assert hist.quantile(0.0) == DEFAULT_BUCKETS[-1]
    assert hist.quantile(0.5) == DEFAULT_BUCKETS[-1]
    assert hist.quantile(1.0) == DEFAULT_BUCKETS[-1]


def test_mid_quantiles_interpolate(hist):
    for _ in range(10):
        hist.observe(5.0)                # all in (1, 10]
    assert hist.quantile(0.5) == pytest.approx(1.0 + 0.5 * 9.0)
    assert 1.0 < hist.quantile(0.1) < hist.quantile(0.9) <= 10.0


def test_quantiles_monotone_across_buckets(hist):
    for v in (0.05, 0.5, 5.0, 50.0, 500.0):
        hist.observe(v)
    qs = [hist.quantile(q / 10.0) for q in range(11)]
    assert qs == sorted(qs)
    assert qs[0] == 0.0 and qs[-1] == 1800.0


def test_observe_n_matches_repeated_observe(hist):
    other = Histogram("lat2")
    hist.observe_n(5.0, 7)
    for _ in range(7):
        other.observe(5.0)
    assert hist.counts == other.counts
    assert hist.quantile(0.5) == other.quantile(0.5)
    hist.observe_n(1.0, 0)               # no-op
    assert hist.count == 7
