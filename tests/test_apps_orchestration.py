"""Unit tests for orchestrated service startup."""

import pytest

from repro.apps.distributed import DistributedService


@pytest.fixture
def cold_service(dc, database, webserver, frontend, sim):
    """The analytics stack, fully stopped."""
    svc = DistributedService(dc, "analytics")
    svc.add_component("db", database, [])
    svc.add_component("web", webserver, ["db"])
    svc.add_component("gui", frontend, ["web", "db"])
    for app in (frontend, webserver, database):
        app.stop()
    return svc


def test_orchestrated_start_brings_everything_up(cold_service, sim):
    proc = cold_service.orchestrated_start(sim)
    sim.run(until=sim.now + 1200.0)
    assert proc.done
    ok, started, err = proc.result
    assert ok, err
    assert started == cold_service.startup_order()
    assert cold_service.healthy()


def test_components_start_in_dependency_order(cold_service, sim,
                                              database, webserver,
                                              frontend):
    starts = {}

    def track(app, name):
        orig = app.start

        def wrapped():
            starts.setdefault(name, sim.now)
            orig()

        app.start = wrapped

    track(database, "db")
    track(webserver, "web")
    track(frontend, "gui")
    cold_service.orchestrated_start(sim)
    sim.run(until=sim.now + 1200.0)
    assert starts["db"] < starts["web"] < starts["gui"]
    # web waits for the db's full startup sequence, not just its start
    assert starts["web"] >= starts["db"] + database.startup_duration()


def test_orchestrated_start_times_out_on_stuck_component(cold_service,
                                                         sim, database):
    database.config_ok = False      # db will die right after starting
    proc = cold_service.orchestrated_start(
        sim, per_component_timeout=400.0)
    sim.run(until=sim.now + 2000.0)
    ok, started, err = proc.result
    assert not ok
    assert "db" in err
    assert started == []


def test_orchestrated_start_fails_fast_on_dead_host(cold_service, sim,
                                                    database):
    database.host.crash("x")
    proc = cold_service.orchestrated_start(sim)
    sim.run(until=sim.now + 100.0)
    ok, _, err = proc.result
    assert not ok and "host" in err


def test_orchestrated_start_skips_already_healthy(cold_service, sim,
                                                  database):
    database.start()
    sim.run(until=sim.now + database.startup_duration() + 5)
    restarts_before = database.restart_count
    proc = cold_service.orchestrated_start(sim)
    sim.run(until=sim.now + 1200.0)
    assert proc.result[0]
    assert database.restart_count == restarts_before
