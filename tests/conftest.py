"""Shared fixtures: a simulator, a two-LAN mini datacentre, and a
small fully-agented site."""

from __future__ import annotations

import pytest

from repro.apps.database import Database
from repro.apps.frontend import FrontendApp
from repro.apps.webserver import WebServer
from repro.cluster.datacenter import Datacenter
from repro.net.network import Lan
from repro.net.routing import AgentChannel
from repro.net.nfs import SharedPool
from repro.ops.notifications import NotificationChannel
from repro.sim import RandomStreams, Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def rs():
    return RandomStreams(1234)


@pytest.fixture
def dc(sim, rs):
    """Two hosts (db + admin pair) on a public LAN and the agent LAN."""
    dc = Datacenter(sim, rs, "testdc")
    dc.add_lan(Lan(sim, "public0", kind="public", subnet="192.168.1"))
    dc.add_lan(Lan(sim, "agentnet", kind="private", subnet="10.0.0"))
    for name, model, group in (
            ("db01", "sun-e4500", "db"),
            ("fe01", "ibm-sp2", "frontend"),
            ("adm01", "admin-server", "admin"),
            ("adm02", "admin-server", "admin")):
        dc.add_host(name, model, group=group)
        dc.connect(name, "public0")
        dc.connect(name, "agentnet")
    return dc


@pytest.fixture
def db_host(dc):
    return dc.host("db01")


@pytest.fixture
def database(dc, sim):
    """A running database on db01."""
    db = Database(dc.host("db01"), "ora01", db_type="oracle")
    db.start()
    sim.run(until=sim.now + 200.0)
    assert db.is_healthy()
    return db


@pytest.fixture
def webserver(dc, sim):
    ws = WebServer(dc.host("fe01"), "httpd01")
    ws.start()
    sim.run(until=sim.now + 60.0)
    assert ws.is_healthy()
    return ws


@pytest.fixture
def frontend(dc, sim, database):
    fe = FrontendApp(dc.host("fe01"), "finapp01", backend=database)
    fe.start()
    sim.run(until=sim.now + 120.0)
    assert fe.is_healthy()
    return fe


@pytest.fixture
def notifications(sim):
    return NotificationChannel(sim)


@pytest.fixture
def channel(dc):
    return AgentChannel(dc, "agentnet", ["public0"])


@pytest.fixture
def pool(sim):
    return SharedPool(sim)


@pytest.fixture
def test_site():
    """A small agented site (built fresh per test: mutation-heavy)."""
    from repro.experiments.site import SiteConfig, build_site
    return build_site(SiteConfig.test_scale(seed=7, with_feeds=False))
