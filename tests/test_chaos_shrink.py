"""Unit tests for the delta-debugging shrinker.

These use synthetic predicates over the scenario structure (no
episodes are executed), so they pin down the reduction algorithm
itself: minimality, violation preservation, determinism, memoisation.
The end-to-end shrink against a real planted bug lives in
``test_chaos_fuzzer.py``.
"""

import pytest

from repro.chaos.scenario import ChaosEvent, Scenario
from repro.chaos.shrink import SETTLE, shrink


def _scenario(n_events: int = 8, horizon: float = 4 * 3600.0) -> Scenario:
    events = [ChaosEvent(400.0 + 137.0 * i,
                         "db-crash" if i == 3 else "app-crash",
                         "db[0]" if i == 3 else f"fe[{i}]")
              for i in range(n_events)]
    return Scenario(name="syn", events=events, horizon=horizon)


def _has_db_crash(sc: Scenario) -> bool:
    return any(e.op == "db-crash" for e in sc.events)


def test_shrinks_to_single_culprit_event():
    res = shrink(_scenario(), _has_db_crash)
    assert len(res.shrunk.events) == 1
    assert res.shrunk.events[0].op == "db-crash"
    assert res.events_removed == 7
    assert _has_db_crash(res.shrunk)


def test_keeps_conjunction_of_two_events():
    def needs_pair(sc):
        ops = [e.op for e in sc.events]
        return "db-crash" in ops and "app-crash" in ops
    res = shrink(_scenario(), needs_pair)
    assert len(res.shrunk.events) == 2
    assert needs_pair(res.shrunk)


def test_raises_on_non_violating_input():
    with pytest.raises(ValueError, match="does not violate"):
        shrink(_scenario(), lambda sc: False)


def test_deterministic_byte_identical():
    a = shrink(_scenario(), _has_db_crash)
    b = shrink(_scenario(), _has_db_crash)
    assert a.shrunk.to_json() == b.shrunk.to_json()
    assert a.tested == b.tested and a.rounds == b.rounds


def test_times_snap_to_grid_when_allowed():
    res = shrink(_scenario(), _has_db_crash)
    ev = res.shrunk.events[0]
    assert ev.time % 300.0 == 0.0


def test_horizon_shrinks_toward_last_event():
    res = shrink(_scenario(horizon=12 * 3600.0), _has_db_crash)
    last = res.shrunk.events[-1].time
    assert res.shrunk.horizon <= last + SETTLE + 1.0


def test_time_preserving_predicate_keeps_original_time():
    # the culprit's exact (off-grid) time matters -> no snapping
    def at_exact_time(sc):
        return any(e.op == "db-crash" and e.time == 811.0
                   for e in sc.events)
    res = shrink(_scenario(), at_exact_time)
    assert res.shrunk.events[0].time == 811.0


def test_memoisation_counts_only_unique_candidates():
    calls = []
    def counting(sc):
        calls.append(sc.to_json())
        return _has_db_crash(sc)
    res = shrink(_scenario(), counting)
    assert res.tested == len(calls) == len(set(calls))


def test_shrunk_name_and_notes_reference_origin():
    res = shrink(_scenario(), _has_db_crash)
    assert res.shrunk.name == "syn-min"
    assert "shrunk from syn#" in res.shrunk.notes
