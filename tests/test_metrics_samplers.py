"""Unit tests for the workgroup samplers."""

import pytest

from repro.metrics.samplers import Sample, SamplerSuite, WORKGROUPS


@pytest.fixture
def suite(database):
    return SamplerSuite(database.host)


def test_five_workgroups(suite):
    assert set(WORKGROUPS) == {"os", "network", "disks", "app_procs",
                               "user_procs"}
    samples = suite.sample_all()
    assert [s.group for s in samples] == list(WORKGROUPS)


def test_os_sample_carries_the_336_metrics(suite):
    s = suite.sample_os()
    for key in ("run_queue", "scan_rate", "page_out", "page_faults",
                "free_mb", "cpu_idle", "blocked"):
        assert key in s.metrics


def test_samples_logged_to_circular_ascii_files(suite, database):
    suite.sample_all()
    host = database.host
    # "classified first by server name and then by measurement group"
    path = f"/logs/perf/{host.name}/os"
    lines = host.fs.read(path)
    assert len(lines) == 1
    parsed = Sample.parse("os", lines[0])
    assert parsed.metrics["run_queue"] >= 0


def test_series_accumulate(suite, sim):
    suite.sample_all()
    sim.run(until=sim.now + 600)
    suite.sample_all()
    ts = suite.get_series("os", "cpu_idle")
    assert len(ts) == 2
    assert suite.get_series("os", "nonexistent") is None


def test_disk_sample_reports_service_times(suite, database):
    database.host.add_io_demand(database.host.online_disks() * 0.9)
    s = suite.sample_disks()
    assert s.metrics["worst_asvc_t"] > 8.0
    assert s.metrics["sd0_busy"] > 80.0
    assert "fs_logs_pct" in s.metrics


def test_app_procs_sample(suite, database):
    s = suite.sample_app_procs()
    assert s.metrics[f"{database.name}_nproc"] == len(database.procs)
    assert s.metrics[f"{database.name}_mem_mb"] > 0


def test_user_procs_excludes_system_users(suite, database):
    host = database.host
    host.ptable.spawn("analyst1", "sas", cpu_pct=50.0, mem_mb=100.0)
    s = suite.sample_user_procs()
    assert s.metrics["analyst1_cpu"] == 50.0
    assert "root_cpu" not in s.metrics
    assert s.metrics["worst_user_cpu"] == 50.0


def test_network_sample_counts_nic_stats(suite, dc, database):
    lan = dc.lan("public0")
    lan.send(dc.host("db01"), dc.host("adm01"), 14600)
    s = suite.sample_network()
    assert s.metrics["hme0_opkts"] == 10
    assert "nfs_calls" in s.metrics


def test_sampling_down_host_yields_nothing(suite, database):
    database.host.crash("x")
    assert suite.sample_all() == []


def test_sample_format_roundtrip():
    s = Sample(12.5, "os", {"a": 1.25, "b": -3.0})
    parsed = Sample.parse("os", s.format())
    assert parsed.time == 12.5
    assert parsed.metrics == {"a": 1.25, "b": -3.0}
