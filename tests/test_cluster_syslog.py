"""Unit tests for syslog."""

import pytest

from repro.cluster.syslog import Syslog


@pytest.fixture
def log():
    return Syslog(maxlen=100)


def test_log_and_tail(log):
    log.info(1.0, "oracle", "started")
    log.error(2.0, "oracle", "ORA-00600 internal error")
    recs = log.tail(10)
    assert len(recs) == 2
    assert recs[-1].severity == "err"


def test_unknown_severity_rejected(log):
    with pytest.raises(ValueError):
        log.log(0.0, "daemon", "catastrophic", "x", "boom")


def test_grep_by_tag_severity_and_time(log):
    log.info(1.0, "httpd", "hello")
    log.warning(2.0, "oracle", "slow checkpoint")
    log.error(3.0, "oracle", "crash")
    assert len(log.grep(tag="oracle")) == 2
    assert len(log.grep(tag="oracle", min_severity="err")) == 1
    assert len(log.grep(since=2.5)) == 1
    assert len(log.grep(contains="checkpoint")) == 1


def test_errors_since(log):
    log.error(1.0, "a", "x")
    log.error(5.0, "a", "y")
    assert len(log.errors_since(2.0)) == 1


def test_bounded_history():
    log = Syslog(maxlen=5)
    for i in range(10):
        log.info(float(i), "t", f"m{i}")
    assert len(log.records) == 5
    assert log.total_logged == 10
    assert log.records[0].message == "m5"


def test_severity_hierarchy(log):
    log.log(1.0, "kern", "crit", "kernel", "panic-ish")
    # crit is *more* severe than err, so min_severity="err" includes it
    assert len(log.grep(min_severity="err")) == 1
    assert len(log.grep(min_severity="crit")) == 1


def test_format_is_ascii_line(log):
    rec = log.error(12.5, "oracle", "boom")
    line = rec.format()
    assert "oracle" in line and "err" in line and "boom" in line
    assert "\n" not in line
