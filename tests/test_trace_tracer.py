"""Unit tests for the sim-time tracer and the metrics registry."""

import pytest

from repro.sim import Simulator
from repro.trace import (NULL_SPAN, NULL_TRACER, MetricsRegistry, Tracer,
                         install_tracer)


# -- spans --------------------------------------------------------------------


def test_span_stamps_sim_time(sim):
    tracer = install_tracer(sim)
    sim.schedule(5.0, lambda: tracer.span("work").finish())
    sim.run()
    (sp,) = tracer.spans
    assert sp.start == 5.0 and sp.end == 5.0
    assert sp.duration == 0.0


def test_span_nesting_records_parent(sim):
    tracer = install_tracer(sim)
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    assert inner.parent is outer
    inner.finish()
    outer.finish()
    sibling = tracer.span("sibling")
    assert sibling.parent is None
    sibling.finish()


def test_span_context_manager_closes_and_flags_errors(sim):
    tracer = install_tracer(sim)
    with tracer.span("ok") as sp:
        sp.set_attr("k", 1)
    assert sp.end is not None and sp.attrs == {"k": 1}
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("x")
    boom = tracer.spans_named("boom")[0]
    assert boom.attrs["error"] == "RuntimeError"


def test_finish_is_idempotent(sim):
    tracer = install_tracer(sim)
    sp = tracer.span("once")
    sp.finish()
    end = sp.end
    sim.schedule(10.0, lambda: None)
    sim.run()
    sp.finish()
    assert sp.end == end


def test_out_of_order_finish_does_not_corrupt_stack(sim):
    tracer = install_tracer(sim)
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    outer.finish()          # parent closed first
    inner.finish()
    nxt = tracer.span("next")
    assert nxt.parent is None
    nxt.finish()


def test_record_span_uses_explicit_timestamps():
    tracer = Tracer()       # simless
    sp = tracer.record_span("manual.repair", 100.0, 160.0, category="human")
    assert sp.start == 100.0 and sp.end == 160.0 and sp.duration == 60.0
    # recorded spans never join the open-span stack
    live = tracer.span("live")
    assert live.parent is None
    live.finish()


def test_spans_named_filters_on_attrs(sim):
    tracer = install_tracer(sim)
    tracer.span("heal.restart", outcome="ok").finish()
    tracer.span("heal.restart", outcome="failed").finish()
    tracer.span("other").finish()
    assert len(tracer.spans_named("heal.restart")) == 2
    assert len(tracer.spans_named("heal.restart", outcome="ok")) == 1


# -- the disabled fast path ---------------------------------------------------


def test_simulator_defaults_to_shared_null_tracer():
    assert Simulator().tracer is NULL_TRACER
    assert not NULL_TRACER.enabled


def test_disabled_tracer_returns_shared_null_span():
    t = Tracer(enabled=False)
    a = t.span("x", attr=1)
    b = t.span("y")
    assert a is NULL_SPAN and b is NULL_SPAN      # no per-call allocation
    assert a.set_attr("k", 1) is NULL_SPAN
    with a as sp:
        sp.finish(more=2)
    assert t.spans == [] and t.instants == []
    t.instant("z")
    assert t.instants == []
    assert t.record_span("r", 0.0, 1.0) is NULL_SPAN


def test_instrumented_run_records_nothing_when_disabled(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 1
    assert NULL_TRACER.spans == []
    assert "sim.events" not in NULL_TRACER.metrics.snapshot()["counters"]


def test_capture_resumes_spans_generator_wakes(sim):
    tracer = install_tracer(sim, capture_resumes=True)

    def proc():
        yield 1.0
        yield 2.0

    sim.spawn(proc(), name="p")
    sim.run()
    assert len(tracer.spans_named("proc.resume", proc="p")) == 3


# -- fault correlation --------------------------------------------------------


def test_fault_ids_are_sequential(sim):
    tracer = install_tracer(sim)
    assert tracer.new_fault_id() == "F0001"
    assert tracer.new_fault_id() == "F0002"


def test_correlate_indexes_leaf_and_mount_names(sim):
    tracer = install_tracer(sim)
    tracer.correlate("db01/oracle", "F0001")
    tracer.correlate("fe01:/logs", "F0002")
    assert tracer.fault_id_for("db01/oracle") == "F0001"
    assert tracer.fault_id_for("oracle") == "F0001"       # agent subject
    assert tracer.fault_id_for("/logs") == "F0002"
    assert tracer.fault_id_for("fe01") == "F0002"
    assert tracer.fault_id_for("nothing") == ""


# -- metrics ------------------------------------------------------------------


def test_counter_gauge_histogram_snapshot():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.counter("c").inc(2.0)
    reg.gauge("g").set(5.0)
    reg.gauge("g").add(-1.0)
    h = reg.histogram("h", buckets=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0):
        h.observe(v)
    snap = reg.snapshot()
    assert snap["counters"]["c"] == 3.0
    assert snap["gauges"]["g"] == 4.0
    hs = snap["histograms"]["h"]
    assert hs["counts"] == [1, 1, 1]        # <=1, <=10, overflow
    assert hs["count"] == 3
    assert hs["mean"] == pytest.approx(55.5 / 3)


def test_registry_get_or_create_is_stable():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.histogram("h") is reg.histogram("h")


def test_clear_keeps_metrics(sim):
    tracer = install_tracer(sim)
    tracer.span("s").finish()
    tracer.instant("i")
    tracer.metrics.counter("kept").inc()
    tracer.clear()
    assert tracer.spans == [] and tracer.instants == []
    assert tracer.metrics.snapshot()["counters"]["kept"] == 1.0
