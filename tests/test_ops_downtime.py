"""Unit tests for the downtime ledger."""

import math

import pytest

from repro.faults.models import Category
from repro.ops.downtime import DowntimeLedger


@pytest.fixture
def ledger():
    return DowntimeLedger()


def test_open_close_cycle(ledger):
    inc = ledger.open_incident(Category.MID_CRASH, "db01/ora", 100.0)
    assert inc.open
    ledger.mark_detected("db01/ora", 160.0)
    closed = ledger.close_incident("db01/ora", 400.0, auto_repaired=True)
    assert closed is inc
    assert inc.duration == 300.0
    assert inc.detection_latency == 60.0
    assert inc.auto_repaired


def test_double_open_is_one_outage(ledger):
    a = ledger.open_incident(Category.MID_CRASH, "t", 100.0)
    b = ledger.open_incident(Category.MID_CRASH, "t", 150.0)
    assert a is b
    assert len(ledger.incidents) == 1


def test_close_unknown_returns_none(ledger):
    assert ledger.close_incident("ghost", 1.0) is None


def test_hours_by_category(ledger):
    ledger.record(Category.MID_CRASH, "a", 0.0, 7200.0)
    ledger.record(Category.MID_CRASH, "b", 0.0, 3600.0)
    ledger.record(Category.LSF, "c", 0.0, 1800.0)
    hours = ledger.hours_by_category()
    assert hours[Category.MID_CRASH] == 3.0
    assert hours[Category.LSF] == 0.5
    assert ledger.total_hours() == 3.5


def test_open_incidents_not_counted_in_hours(ledger):
    ledger.open_incident(Category.HUMAN, "t", 0.0)
    assert ledger.total_hours() == 0.0
    assert math.isnan(ledger.incidents[0].duration)


def test_open_incident_clamped_to_horizon(ledger):
    """Regression: an incident still open at campaign end must be
    clamped to the horizon, not dropped from the Fig. 2 totals."""
    horizon = 10 * 3600.0
    ledger.record(Category.MID_CRASH, "a", 0.0, 3600.0)     # closed: 1 h
    ledger.open_incident(Category.MID_CRASH, "b", horizon - 7200.0)
    # without a horizon the open incident is invisible (old behaviour)
    assert ledger.total_hours() == 1.0
    # with it, the open incident contributes its 2 h up to the horizon
    hours = ledger.hours_by_category(as_of=horizon)
    assert hours[Category.MID_CRASH] == 3.0
    assert ledger.total_hours(as_of=horizon) == 3.0


def test_incident_closed_after_horizon_counts_inside_part(ledger):
    ledger.record(Category.LSF, "a", 3600.0, 7200.0)   # closes at t=3 h
    assert ledger.total_hours(as_of=2 * 3600.0) == 1.0
    # and an incident entirely after the horizon contributes nothing
    ledger.record(Category.LSF, "b", 10 * 3600.0, 3600.0)
    assert ledger.total_hours(as_of=2 * 3600.0) == 1.0


def test_duration_until_clamps(ledger):
    inc = ledger.open_incident(Category.HUMAN, "t", 100.0)
    assert inc.duration_until(400.0) == 300.0
    assert inc.duration_until(50.0) == 0.0
    ledger.close_incident("t", 200.0)
    assert inc.duration_until(400.0) == 100.0


def test_counts_and_means(ledger):
    ledger.record(Category.HARDWARE, "a", 0.0, 3600.0)
    ledger.record(Category.HARDWARE, "b", 0.0, 7200.0)
    assert ledger.count_by_category()[Category.HARDWARE] == 2
    assert ledger.mean_duration_hours(Category.HARDWARE) == 1.5
    assert ledger.mean_duration_hours() == 1.5
    assert ledger.mean_duration_hours(Category.LSF) == 0.0


def test_detection_latencies_array(ledger):
    ledger.record(Category.LSF, "a", 0.0, 100.0, detected_at=30.0)
    ledger.record(Category.LSF, "b", 0.0, 100.0)        # undetected
    lat = ledger.detection_latencies()
    assert lat.tolist() == [30.0]


def test_auto_repair_rate(ledger):
    ledger.record(Category.LSF, "a", 0.0, 10.0, auto_repaired=True)
    ledger.record(Category.LSF, "b", 0.0, 10.0, auto_repaired=False)
    ledger.record(Category.LSF, "c", 0.0, 10.0)     # unknown: excluded
    assert ledger.auto_repair_rate() == 0.5


def test_reopen_after_close_is_new_incident(ledger):
    ledger.open_incident(Category.HUMAN, "t", 0.0)
    ledger.close_incident("t", 10.0)
    ledger.open_incident(Category.HUMAN, "t", 20.0)
    assert len(ledger.incidents) == 2
