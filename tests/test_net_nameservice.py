"""Unit tests for the name service."""

from repro.net.nameservice import NameService


def test_register_and_lookup(sim, dc):
    ns = NameService(sim)
    ns.register("db01", "192.168.1.10")
    ip, ms = ns.lookup("db01")
    assert ip == "192.168.1.10"
    assert ms == ns.base_response_ms
    assert ns.lookups == 1


def test_register_host_records_all_nics(sim, dc):
    ns = NameService(sim)
    ns.register_host(dc.host("db01"))
    ip, _ = ns.lookup("db01.public0")
    assert ip is not None
    ip2, _ = ns.lookup("db01.agentnet")
    assert ip2 is not None and ip2 != ip
    assert ns.lookup("db01")[0] is not None


def test_missing_name_counts_failure(sim):
    ns = NameService(sim)
    ip, _ = ns.lookup("ghost")
    assert ip is None
    assert ns.failures == 1


def test_outage(sim):
    ns = NameService(sim)
    ns.register("a", "1.2.3.4")
    ns.fail()
    assert ns.lookup("a") == (None, 0.0)
    assert ns.response_ms() < 0
    ns.repair()
    assert ns.lookup("a")[0] == "1.2.3.4"


def test_degraded_is_slow_but_answers(sim):
    ns = NameService(sim)
    ns.register("a", "1.2.3.4")
    ns.slow()
    ip, ms = ns.lookup("a")
    assert ip == "1.2.3.4"
    assert ms == 50.0 * ns.base_response_ms
    assert ns.response_ms() > ns.base_response_ms
