"""Unit tests for the fault campaign fast path."""

import numpy as np
import pytest

from repro.faults.campaign import Campaign, PipelineParams
from repro.faults.models import CATEGORY_PROFILES, Category
from repro.sim import RandomStreams
from repro.sim.calendar import YEAR, is_business_hours, is_weekend, period_of


@pytest.fixture
def campaign(rs):
    return Campaign(rs.get("campaign"))


def test_arrivals_cached_for_pairing(campaign):
    a = campaign.arrivals()
    b = campaign.arrivals()
    assert a is b


def test_arrival_counts_near_rates(rs):
    # law of large numbers over a scaled-up campaign
    c = Campaign(rs.get("big"), scale=40.0)
    arr = c.arrivals()
    for cat, prof in CATEGORY_PROFILES.items():
        expected = prof.rate_per_year * 40.0
        assert abs(len(arr[cat]) - expected) < 5 * np.sqrt(expected) + 5


def test_arrival_times_sorted_within_horizon(campaign):
    for times in campaign.arrivals().values():
        assert (np.diff(times) >= 0).all()
        if times.size:
            assert times[0] >= 0.0 and times[-1] <= YEAR


def test_business_pattern_lands_in_business_hours(rs):
    c = Campaign(rs.get("b"), scale=20.0)
    times = c.arrivals()[Category.HUMAN]
    assert times.size > 50
    assert all(is_business_hours(float(t)) for t in times)


def test_overnight_pattern_avoids_business_hours(rs):
    c = Campaign(rs.get("o"), scale=20.0)
    times = c.arrivals()[Category.MID_CRASH]
    assert times.size > 50
    for t in times:
        assert not is_business_hours(float(t))
    # both weeknights and weekends appear
    periods = {period_of(float(t)) for t in times}
    assert "overnight" in periods and "weekend" in periods


def test_agents_beat_manual_on_same_draw(rs):
    c = Campaign(rs.get("pair"))
    before, after = c.run_pair(before_rng=rs.get("ops.b"),
                               after_rng=rs.get("ops.a"))
    assert len(before.records) == len(after.records)
    assert after.total_hours() < before.total_hours() / 3.0


def test_detection_ordering(rs):
    c = Campaign(rs.get("det"), scale=3.0)
    before, after = c.run_pair(before_rng=rs.get("db"),
                               after_rng=rs.get("da"))
    db = before.detection_by_period()
    da = after.detection_by_period()
    # manual: day < overnight < weekend; agents: everything tiny
    assert db["day"] < db["overnight"] < db["weekend"]
    for v in da.values():
        assert v <= (5 * 60 + 30) / 3600.0


def test_unfixable_categories_improve_least(rs):
    c = Campaign(rs.get("uf"), scale=10.0)
    before, after = c.run_pair(before_rng=rs.get("ub"),
                               after_rng=rs.get("ua"))
    hb, ha = before.hours_by_category(), after.hours_by_category()

    def factor(cat):
        return hb[cat] / max(1e-9, ha[cat])

    fixable = factor(Category.MID_CRASH)
    unfixable = factor(Category.FIREWALL_NETWORK)
    assert fixable > 5 * unfixable


def test_prevention_only_on_agent_arm(rs):
    c = Campaign(rs.get("prev"), scale=10.0)
    before, after = c.run_pair(before_rng=rs.get("pb"),
                               after_rng=rs.get("pa"))
    assert before.prevention_rate() == 0.0
    assert after.prevention_rate() > 0.0


def test_downtime_weight_applied(rs):
    c = Campaign(rs.get("w"), scale=10.0)
    result = c.run(PipelineParams(False), operator_rng=rs.get("wops"))
    perf_records = [r for r in result.records
                    if r.category is Category.PERFORMANCE]
    assert perf_records
    w = CATEGORY_PROFILES[Category.PERFORMANCE].downtime_weight
    for r in perf_records[:5]:
        assert r.downtime == pytest.approx(
            (r.detection + r.repair) * w)


def test_auto_repair_rate_high_for_agents(rs):
    c = Campaign(rs.get("ar"), scale=5.0)
    after = c.run(PipelineParams(True), operator_rng=rs.get("arops"))
    assert after.auto_repair_rate() > 0.6


def test_agent_period_scales_detection(rs):
    c = Campaign(rs.get("ap"), scale=5.0)
    fast = c.run(PipelineParams(True, agent_period=60.0),
                 operator_rng=RandomStreams(1).get("x"))
    slow = c.run(PipelineParams(True, agent_period=3600.0),
                 operator_rng=RandomStreams(1).get("x"))
    fd = np.mean(list(fast.detection_by_period().values()))
    sd = np.mean(list(slow.detection_by_period().values()))
    assert sd > fd * 5
