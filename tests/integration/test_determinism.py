"""End-to-end determinism: same seed, same bytes.

The experiments promise that (a) a seed fully determines a run and
(b) the process-pool replication path is indistinguishable from the
serial one.  Both are load-bearing -- the paper comparison is only
paired if the two pipelines and the two execution modes see identical
draws -- so this test byte-compares summary dicts rather than eyeball
statistics.
"""

import json

from repro.experiments import fig2, relocation, userqos
from repro.sim.calendar import DAY

HORIZON = 45 * DAY


def canon(d) -> str:
    return json.dumps(d, sort_keys=True)


def test_userqos_same_seed_byte_identical():
    a = userqos.run_once(7, horizon=HORIZON, population=100_000).summary()
    b = userqos.run_once(7, horizon=HORIZON, population=100_000).summary()
    assert canon(a) == canon(b)
    c = userqos.run_once(8, horizon=HORIZON, population=100_000).summary()
    assert canon(a) != canon(c)


def test_fig2_same_seed_byte_identical():
    def summary(seed):
        before, after = fig2.run_once(seed, horizon=HORIZON)
        return {
            "before": {c.value: h
                       for c, h in before.hours_by_category().items()},
            "after": {c.value: h
                      for c, h in after.hours_by_category().items()},
            "detection": after.detection_by_period(),
        }

    assert canon(summary(7)) == canon(summary(7))
    assert canon(summary(7)) != canon(summary(9))


def test_relocation_same_seed_byte_identical():
    a = relocation.run_once(7, horizon=HORIZON,
                            population=100_000).summary()
    b = relocation.run_once(7, horizon=HORIZON,
                            population=100_000).summary()
    assert canon(a) == canon(b)
    c = relocation.run_once(8, horizon=HORIZON,
                            population=100_000).summary()
    assert canon(a) != canon(c)


def test_relocation_serial_and_parallel_replication_agree():
    seeds = [1, 2, 3]
    serial = relocation.run_replicated(seeds, horizon=HORIZON,
                                       population=100_000, parallel=False)
    pooled = relocation.run_replicated(seeds, horizon=HORIZON,
                                       population=100_000, parallel=True,
                                       processes=2)
    assert canon(serial) == canon(pooled)


def test_userqos_serial_and_parallel_replication_agree():
    seeds = [1, 2, 3]
    serial = userqos.run_replicated(seeds, horizon=HORIZON,
                                    population=100_000, parallel=False)
    pooled = userqos.run_replicated(seeds, horizon=HORIZON,
                                    population=100_000, parallel=True,
                                    processes=2)
    assert canon(serial) == canon(pooled)


def test_fig2_serial_and_parallel_replication_agree():
    seeds = [1, 2]
    serial = fig2.run_replicated(seeds, horizon=HORIZON, parallel=False)
    pooled = fig2.run_replicated(seeds, horizon=HORIZON, parallel=True,
                                 processes=2)
    assert serial.before_hours == pooled.before_hours
    assert serial.after_hours == pooled.after_hours
    assert serial.detection_before == pooled.detection_before
    assert serial.detection_after == pooled.detection_after
