"""Integration test: the §4 batch-rescue story end to end.

A manually-targeted overnight job crashes its database mid-run; the
administration servers resubmit it from the DGSPL shortlist onto an
equal-or-stronger server; the job completes; the crashed database is
restarted by its service agent.
"""

import pytest

from repro.batch.jobs import BatchJob, JobState
from repro.experiments.site import SiteConfig, build_site


@pytest.fixture
def site():
    return build_site(SiteConfig.test_scale(seed=17, with_feeds=False,
                                            with_workload=False))


def test_batch_rescue_story(site):
    site.run(1800.0)        # DGSPL warm
    assert site.admin.dgspl is not None

    weak = min(site.databases, key=lambda d: d.host.spec.power)
    job = BatchJob("datamine-night", "analyst7", duration=4 * 3600.0,
                   cpu_slots=2, requested_server=weak.host.name)
    site.lsf.submit(job)
    assert job.database is weak

    weak.crash("overload mid-job")

    # resubmission is synchronous with the crash
    assert site.jobmgr.resubmitted == 1
    new_server = job.requested_server
    assert new_server != weak.host.name
    powers = {db.host.name: db.host.spec.power for db in site.databases}
    assert powers[new_server] >= powers[weak.host.name]

    # the job finishes on the new server...
    site.run(4 * 3600.0 + 1200.0)
    assert job.state is JobState.DONE
    # ...and the crashed database was healed by its agent meanwhile
    assert weak.is_healthy()


def test_rescue_avoids_server_job_failed_on(site):
    site.run(1800.0)
    victim = site.databases[0]
    job = BatchJob("j", "u", duration=3600.0,
                   requested_server=victim.host.name)
    site.lsf.submit(job)
    victim.crash("x")
    assert victim.host.name in job.failed_on
    assert job.requested_server != victim.host.name


def test_rescue_counts_in_daily_summary(site):
    from repro.sim.calendar import DAY
    site.run(1800.0)
    db = site.databases[0]
    job = BatchJob("j", "u", duration=1800.0,
                   requested_server=db.host.name)
    site.lsf.submit(job)
    db.crash("x")
    site.run(DAY)
    summaries = [n for n in site.notifications.sent
                 if n.subject == "daily batch summary"]
    assert summaries
    assert "resubmitted=1" in summaries[-1].body
