"""The persistence determinism contract: segmentation is free.

The whole point of :mod:`repro.persist` is that an epoch boundary is
invisible -- a run that snapshots, dies, and resumes from JSON on disk
must be *byte-identical* to the run that never stopped: same downtime
books, same admin decision log, same event count, same full-world
state hash.  These tests are the permanent guardrail for that claim;
they run a live fault campaign both ways and diff the bytes.

The chaos time-travel test closes the loop on the debugging story: a
violation found at the end of a scenario reproduces identically when
the episode is restored at a pre-incident epoch and only the remainder
is replayed.
"""

import json
import os

import pytest

from repro.experiments.runner import FidelityHarness
from repro.experiments.site import SiteConfig, build_site
from repro.faults.models import Category
from repro.persist import CheckpointManager, canonical_json, state_hash

#: a brisk mixed campaign: host crashes, frontend trouble, a network cut
RATES = {Category.MID_CRASH: 4.0, Category.FRONT_END: 3.0,
         Category.FIREWALL_NETWORK: 1.0}


def _fresh(seed: int, horizon_h: float, **kw) -> FidelityHarness:
    defaults = dict(seed=seed, control_plane="paired", spare_servers=1,
                    with_workload=False, with_feeds=False)
    defaults.update(kw)
    harness = FidelityHarness(build_site(SiteConfig.test_scale(**defaults)))
    harness.injector.schedule_poisson(RATES, horizon_h * 3600.0)
    return harness


def _digest(harness: FidelityHarness) -> str:
    return canonical_json(harness.summary())


def test_monolithic_equals_resumed_split():
    """One 4 h run == 2 h + whole-world JSON round trip + 2 h."""
    mono = _fresh(3, 4.0)
    mono.run_hours(4.0)

    first = _fresh(3, 4.0)
    first.run_hours(2.0)
    blob = json.dumps(first.snapshot())        # through actual JSON
    second = FidelityHarness.resume(json.loads(blob))
    second.run_hours(2.0)

    assert _digest(second) == _digest(mono)
    # the admin decision log is part of the digest, but make the
    # strongest claim explicit: every decision line, in order
    assert second.site.admin.decisions == mono.site.admin.decisions


def test_kill_resume_chain_preserves_full_world_hash(tmp_path):
    """4 segments with a full kill (only JSON on disk survives) per
    epoch produce the same *complete world state* as the straight run,
    with the observability tier on."""
    horizon = 4.0
    mono = _fresh(11, horizon, observe=True)
    mono.run_hours(horizon)
    want = _digest(mono)
    want_hash = mono.snapshot()["state_hash"]

    path = None
    harness = _fresh(11, horizon, observe=True)
    for _segment in range(4):
        if path is not None:
            with open(path) as fh:            # the "new process"
                harness = FidelityHarness.resume(json.load(fh))
        harness.run_hours(horizon / 4)
        mgr = CheckpointManager(harness.site, str(tmp_path),
                                extras=harness._extras(), label="seg")
        path = mgr.epoch(force=True)
        assert path is not None, "epoch boundary was not quiescent"
        harness = None                        # nothing survives but disk

    with open(path) as fh:
        final = FidelityHarness.resume(json.load(fh))
    assert _digest(final) == want
    assert final.snapshot()["state_hash"] == want_hash


def test_checkpoint_hash_matches_recorded_hash(tmp_path):
    harness = _fresh(5, 1.0)
    harness.run_hours(1.0)
    mgr = CheckpointManager(harness.site, str(tmp_path),
                            extras=harness._extras())
    path = mgr.epoch(force=True)
    snap = CheckpointManager.load(path)
    recorded = snap.pop("state_hash")
    assert state_hash(snap) == recorded


@pytest.mark.slow
def test_chaos_time_travel_reproduces_violation(tmp_path):
    """A planted-bug violation found at the end of the adversarial
    wake scenario reproduces identically from a mid-episode epoch."""
    from repro.chaos.executor import run_episode
    from repro.chaos.scenario import Scenario

    with open(os.path.join("tests", "corpus",
                           "wake-adversarial.json")) as fh:
        sc = Scenario.from_json(fh.read())

    ckdir = str(tmp_path / "epochs")
    full = run_episode(sc, planted_bug=True, checkpoint_dir=ckdir)
    assert not full.ok, "planted bug must trip an oracle"

    epochs = sorted(os.listdir(ckdir))
    assert len(epochs) >= 2, "scenario long enough for multiple epochs"

    for epoch in (epochs[0], epochs[-1]):     # earliest and last
        replay = run_episode(
            sc, planted_bug=True,
            from_checkpoint=os.path.join(ckdir, epoch))
        assert replay.violated == full.violated
        assert replay.applied == full.applied
        assert replay.fizzled == full.fizzled
        assert replay.coverage == full.coverage
        assert canonical_json([v.to_dict() for v in replay.verdicts]) \
            == canonical_json([v.to_dict() for v in full.verdicts])
