"""End-to-end observability: fault ids must thread from injection
through agent detection, diagnosis and repair on a live site, and the
span-derived experiment numbers must agree with the legacy paths."""

import json

import pytest

from repro.experiments.latency import run as latency_run
from repro.experiments.runner import FidelityHarness
from repro.experiments.site import SiteConfig, build_site
from repro.trace import (Tracer, incident_traces, install_tracer,
                         to_chrome)


@pytest.fixture(scope="module")
def traced_storm():
    """A small live site, two injected faults, two simulated hours."""
    site = build_site(SiteConfig.test_scale(seed=7, with_feeds=False,
                                            with_workload=False))
    tracer = install_tracer(site.sim)
    harness = FidelityHarness(site)
    site.run(1800.0)
    ev_db = harness.injector.db_crash(site.databases[0])
    ev_fe = harness.injector.app_hang(site.frontends[0])
    site.run(2 * 3600.0)
    harness.scan_flags_for_detection()
    return tracer, harness, (ev_db, ev_fe)


def test_fault_id_threads_detection_diagnosis_repair(traced_storm):
    tracer, _, events = traced_storm
    for ev in events:
        assert ev.fault_id
        inc = incident_traces(tracer)[ev.fault_id]
        assert inc.injected_at == ev.time
        # the agents lived through the whole lifecycle under one id
        assert inc.detected_at is not None
        assert inc.diagnosed_at is not None
        assert inc.repaired_at is not None
        assert inc.injected_at <= inc.detected_at <= inc.diagnosed_at \
            <= inc.repaired_at
        assert inc.repair_outcome


def test_correlation_survives_repeated_agent_cycles(traced_storm):
    """A hang is re-found on every agent wake until healed; every
    detect span must carry the same fault id, none a later one."""
    tracer, _, (_, ev_fe) = traced_storm
    detects = tracer.spans_named("fault.detect", fault_id=ev_fe.fault_id)
    assert detects, "no detection spans for the hang"
    assert all(sp.attrs["fault_id"] == ev_fe.fault_id for sp in detects)


def test_chrome_export_correlates_incident(traced_storm):
    """The acceptance check: valid Chrome JSON in which at least one
    fault's detect/diagnose/repair spans share one fault id."""
    tracer, _, _ = traced_storm
    doc = json.loads(json.dumps(to_chrome(tracer)))
    by_fid = {}
    for e in doc["traceEvents"]:
        fid = (e.get("args") or {}).get("fault_id")
        if fid:
            by_fid.setdefault(fid, set()).add(e["name"])
    assert any("fault.detect" in names and "agent.diagnose" in names
               and any(n.startswith("heal.") for n in names)
               for names in by_fid.values())


def test_span_detection_matches_ledger(traced_storm):
    """Span-derived detection equals the downtime ledger's within a
    sim-second (both observe the same flag/notification machinery)."""
    tracer, harness, events = traced_storm
    incs = incident_traces(tracer)
    for ev in events:
        span_det = incs[ev.fault_id].detected_at
        ledger_inc = next(i for i in harness.ledger.incidents
                          if i.target == ev.target)
        assert ledger_inc.detected_at is not None
        assert abs(span_det - ledger_inc.detected_at) <= 1.0


def test_latency_experiment_span_vs_flag_scan():
    """The latency experiment reports span-derived numbers; each paired
    incident's flag-scan value must agree within one sim-second."""
    r = latency_run(seed=3, weeks=1)
    assert r.paired_detection_s, "no paired detection samples"
    for span_s, flag_s in r.paired_detection_s:
        assert abs(span_s - flag_s) <= 1.0
    # and the reported means come from those spans: all positive, under
    # the agent period + run bound the paper claims
    assert all(v >= 0.0 for v in r.agent_by_period.values())
    assert r.agent_max_minutes <= 10.0


def test_metrics_counters_populated(traced_storm):
    tracer, _, _ = traced_storm
    c = tracer.metrics.snapshot()["counters"]
    assert c["faults.injected"] == 2.0
    assert c["agent.runs"] > 0
    assert c["sim.events"] > 0
    assert c["agent.heals_succeeded"] >= 2.0
    assert c["admin.dgspl_builds"] > 0
