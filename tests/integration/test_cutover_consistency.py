"""Front-door reaction time across a relocation (satellite of the
incremental control plane): a door fed by the condition ledger stops
routing to a flagged-down origin within one ledger delivery --
synchronously at append time -- with no DGSPL refresh or sweep wait.
"""

import pytest

from repro.experiments.site import SiteConfig, build_site
from repro.traffic.frontdoor import FrontDoor


@pytest.fixture
def site():
    return build_site(SiteConfig.test_scale(
        seed=11, spare_servers=1, with_workload=False, with_feeds=False))


def _targets(door, n, now):
    alloc, shed = door.route(n, now)
    return {app.host.name for app, _count in alloc}


def test_host_down_condition_sheds_within_one_delivery(site):
    """A ledger-only door (never told anything directly) sheds the
    crashed origin the instant the down condition is appended -- before
    any admin sweep, DGSPL build or sim step runs."""
    site.run(1200.0)
    door = FrontDoor("frontend", site.frontends)
    door.attach_ledger(site.ledger)
    assert _targets(door, 100, site.sim.now) == {"fe000", "fe001"}

    site.dc.host("fe000").crash("power supply")
    # zero simulated seconds later: the delivery already happened
    assert "fe000" in door.down_servers()
    assert door.conditions_applied >= 1
    assert _targets(door, 100, site.sim.now) == {"fe001"}


def test_cutover_restores_routing_via_the_ledger(site):
    """Through the full relocation: drain sheds the origin, cutover
    swaps the target in -- and a directory-registered door needs no
    refresh at any point (it routes correctly at every probe)."""
    site.run(1200.0)
    door = FrontDoor("frontend", site.frontends)
    site.reroute.register_door(door)        # also attaches the ledger
    seen = []                               # conditions, as delivered
    site.ledger.on_append(seen.append)
    victim = site.dc.host("fe000")
    old_fe = victim.apps["finapp_fe000"]

    victim.crash("power supply")
    assert _targets(door, 100, site.sim.now) == {"fe001"}

    site.run(3 * site.admin.watch_period)   # escalate -> relocate
    assert site.relocator.succeeded >= 1
    # relocated instance is routable immediately post-cutover; the dead
    # origin is not
    targets = _targets(door, 100, site.sim.now)
    assert "fe000" not in targets
    assert targets == {"fe001", "sp000"}
    assert old_fe not in door.apps
    # the ledger carried the route phases to every subscriber
    routes = [(c.status, c.host, c.agent)
              for c in seen if c.kind == "route"]
    assert ("drain", "fe000", "finapp_fe000") in routes
    assert any(status == "cutover" and host == "sp000"
               for status, host, _agent in routes)


def test_ledger_only_door_survives_drain_of_other_tiers(site):
    """Route conditions are tier-scoped: a frontend door ignores a
    database drain."""
    site.run(1200.0)
    door = FrontDoor("frontend", site.frontends)
    door.attach_ledger(site.ledger)
    db_app = site.databases[0]
    site.reroute.drain(db_app)
    assert db_app.host.name not in door.down_servers()
    assert door.down_servers() == set()
