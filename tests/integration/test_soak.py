"""Soak test: two simulated days under an elevated random fault storm.

The strongest claim the paper makes is architectural: the distributed
agents keep a complex site alive without human babysitting.  This test
turns the fault rate far above production levels, runs the full stack
for two days, and checks the end state: auto-fixable damage healed,
escalations confined to the categories the paper says need humans,
bookkeeping consistent throughout.
"""

import pytest

from repro.experiments.runner import FidelityHarness
from repro.experiments.site import SiteConfig, build_site
from repro.faults.models import Category
from repro.sim.calendar import DAY


#: elevated per-day rates (production is ~0.2/day across everything)
SOAK_RATES = {
    Category.MID_CRASH: 6.0,
    Category.FRONT_END: 6.0,
    Category.HUMAN: 3.0,
    Category.PERFORMANCE: 6.0,
    Category.LSF: 2.0,
    Category.COMPLETELY_DOWN: 1.0,
}


@pytest.fixture(scope="module")
def soaked():
    site = build_site(SiteConfig.test_scale(seed=47, with_feeds=False,
                                            with_workload=False))
    harness = FidelityHarness(site)
    n = harness.injector.schedule_poisson(SOAK_RATES, 2 * DAY)
    assert n > 20, "soak needs a real storm"
    site.run(2 * DAY + 7200.0)       # storm + settling time
    return site, harness, n


def test_soak_heals_the_applications(soaked):
    site, harness, n = soaked
    # every application is back in service at the end
    for db in site.databases:
        assert db.is_healthy(), db.name
    for fe in site.frontends:
        assert fe.is_healthy(), fe.name
    assert site.lsf.up


def test_soak_closes_its_incidents(soaked):
    site, harness, n = soaked
    ledger = harness.ledger
    closed = ledger.closed()
    assert len(closed) >= 10
    assert harness.open_incidents() == []
    # repairs were fast: restart-scale, not operator-scale
    assert ledger.mean_duration_hours() < 0.75


def test_soak_agents_did_the_work(soaked):
    site, harness, n = soaked
    totals = {"heals_succeeded": 0, "faults_found": 0, "runs": 0}
    for suite in site.suites.values():
        t = suite.totals()
        for k in totals:
            totals[k] += t[k]
    assert totals["heals_succeeded"] >= 10
    assert totals["faults_found"] >= totals["heals_succeeded"]
    # agents ran all storm long (cron grid held up)
    assert totals["runs"] > 1000


def test_soak_flag_protocol_survived(soaked):
    site, harness, n = soaked
    from repro.core.flags import FlagStore
    now = site.sim.now
    for suite in site.suites.values():
        if not suite.host.is_up:
            continue
        for agent in suite.agents:
            latest = FlagStore(suite.host.fs, agent.name).latest_time()
            assert now - latest < 2 * site.config.agent_period + 60.0, (
                f"{suite.host.name}/{agent.name} stopped flagging")


def test_soak_overhead_stays_flat(soaked):
    """Self-management must not snowball under load: the agent
    footprint after the storm equals the design numbers."""
    site, harness, n = soaked
    for suite in site.suites.values():
        assert suite.cpu_pct() < 0.1
        assert suite.memory_mb() <= 0.2 * len(suite.agents) + 1e-9


def test_soak_log_discipline(soaked):
    """Circular logs and flag self-maintenance keep the disk sane
    across tens of thousands of agent wakes."""
    site, harness, n = soaked
    for host in site.dc.all_hosts():
        if not host.is_up:
            continue
        logs_mount = host.fs.mounts["/logs"]
        # after a disk-fill fault the clean_logs action recovers to
        # ~60%; everything else must stay well under the 90% threshold
        assert logs_mount.pct_used < 75.0, host.name
