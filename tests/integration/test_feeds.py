"""Integration: market-data feeds across the agented site.

§4: market data flowed in from international sites and Reuters.  The
feed rides the public LANs into the databases; when a target database
dies the feed stalls for exactly as long as the healing takes, which is
minutes under the agents.
"""

import pytest

from repro.experiments.site import SiteConfig, build_site
from repro.sim.calendar import HOUR


@pytest.fixture
def site():
    return build_site(SiteConfig.test_scale(seed=61, with_workload=False,
                                            with_feeds=True))


def test_feed_flows_into_databases(site):
    feed = site.feeds[0]
    site.run(1 * HOUR)
    assert feed.ticks_delivered > 0
    assert feed.delivery_rate() == 1.0
    assert all(db.transactions > 0 for db in feed.targets)


def test_feed_stall_bounded_by_healing_time(site):
    feed = site.feeds[0]
    site.run(1 * HOUR)
    victim = feed.targets[0]
    victim.crash("mid-feed")
    site.run(1 * HOUR)
    # the database came back via its agent, so drops are bounded:
    # ~ (detection + restart) / tick interval per target
    assert victim.is_healthy()
    assert feed.ticks_dropped <= 10
    assert feed.delivery_rate() > 0.9
    # and the stall is over
    assert feed.stalled_for(site.sim.now) < 3 * feed.interval


def test_feed_survives_one_public_lan(site):
    feed = site.feeds[0]
    site.run(0.5 * HOUR)
    site.dc.lan("public0").fail()
    dropped_before = feed.ticks_dropped
    site.run(1 * HOUR)
    # the second public LAN carries the feed (never the agent LAN)
    assert feed.ticks_dropped == dropped_before
    assert site.dc.lan("agentnet").nic_of(
        site.dc.host("reuters-gw")) is not None   # attached but unused
