"""Integration tests for the HA and network-failover stories."""

import pytest

from repro.experiments.site import SiteConfig, build_site


@pytest.fixture
def site():
    return build_site(SiteConfig.test_scale(seed=13, with_feeds=False,
                                            with_workload=False))


def test_agent_traffic_reroutes_on_private_lan_failure(site):
    site.run(3600.0)
    stats0 = site.channel.stats()
    assert stats0["rerouted"] == 0
    assert stats0["delivered"] > 0
    site.dc.lan("agentnet").fail()
    site.run(3600.0)
    stats1 = site.channel.stats()
    # traffic kept flowing, over the public LANs
    assert stats1["delivered"] > stats0["delivered"]
    assert stats1["rerouted"] > 0
    assert stats1["bytes_public"] > stats0["bytes_public"]
    # ... and healing still works over the rerouted channel
    db = site.databases[0]
    db.crash("while agent net is down")
    site.run(1200.0)
    assert db.is_healthy()


def test_reroute_back_after_repair(site):
    site.dc.lan("agentnet").fail()
    site.run(1800.0)
    rerouted_during = site.channel.stats()["rerouted"]
    assert rerouted_during > 0
    site.dc.lan("agentnet").repair()
    site.run(1800.0)
    stats = site.channel.stats()
    # no *new* reroutes after repair
    assert stats["rerouted"] == rerouted_during or (
        stats["rerouted"] - rerouted_during
        < (stats["delivered"] - rerouted_during) * 0.1)


def test_admin_failover_keeps_monitoring(site):
    site.run(1200.0)
    primary = site.admin.primary
    primary.crash("power supply")
    site.run(2 * site.admin.DGSPL_PERIOD + 120.0)
    assert site.admin.active() is site.admin.standby
    # DGSPLs keep coming from the standby
    assert site.admin.dgspl is not None
    assert site.admin.dgspl.generated_at > primary.sim.now - 2000.0
    # healing continues under the standby
    db = site.databases[0]
    db.crash("x")
    site.run(1200.0)
    assert db.is_healthy()


def test_nfs_pool_survives_one_head(site):
    site.run(1200.0)
    site.admin.primary.crash("x")
    site.run(site.admin.DGSPL_PERIOD + 120.0)
    assert site.pool.available()
    # the standby still writes the pool
    assert site.pool.read(site.admin.standby, "/dgspl/all")


def test_admin_pair_total_loss_then_recovery(site):
    site.run(1200.0)
    site.admin.primary.crash("x")
    site.admin.standby.crash("x")
    db = site.databases[0]
    # local agents still heal locally (the decentralised design point)
    db.crash("while coordinators are down")
    site.run(1200.0)
    assert db.is_healthy()
    # coordinators come back and resume
    site.admin.primary.boot()
    site.run(site.admin.primary.boot_duration + site.admin.DGSPL_PERIOD + 60)
    assert site.admin.active() is site.admin.primary
