"""End-to-end self-healing on a live small site.

Each test injects a real fault into the full stack (site + agents +
admin pair) and asserts the system repairs it without human action,
with the downtime ledger telling the story.
"""

import pytest

from repro.experiments.runner import FidelityHarness
from repro.experiments.site import SiteConfig, build_site
from repro.faults.models import Category


@pytest.fixture
def site():
    return build_site(SiteConfig.test_scale(seed=11, with_feeds=False,
                                            with_workload=False))


@pytest.fixture
def harness(site):
    return FidelityHarness(site)


def test_db_crash_healed_within_minutes(site, harness):
    db = site.databases[0]
    t0 = site.sim.now
    harness.injector.db_crash(db)
    site.run(1200.0)
    assert db.is_healthy()
    incidents = harness.ledger.closed()
    assert len(incidents) == 1
    inc = incidents[0]
    assert inc.category is Category.MID_CRASH
    # detection on the cron grid, repair = restart time
    assert inc.duration < 15 * 60.0


def test_latent_hang_cleared_by_restart(site, harness):
    fe = site.frontends[0]
    harness.injector.app_hang(fe)
    site.run(1200.0)
    assert fe.is_healthy()
    assert not harness.open_incidents()


def test_config_corruption_needs_two_wakes(site, harness):
    db = site.databases[1]
    harness.injector.config_corruption(db)
    site.run(2700.0)
    assert db.is_healthy()
    assert db.config_ok


def test_data_corruption_restored_from_backup(site, harness):
    db = site.databases[2]
    harness.injector.data_corruption(db)
    site.run(4000.0)
    assert db.is_healthy()
    assert db.data_ok


def test_runaway_killed_fleetwide(site, harness):
    host = site.databases[0].host
    harness.injector.runaway_process(host)
    site.run(900.0)
    assert not host.ptable.alive("runaway.sh")


def test_disk_fill_cleaned(site, harness):
    host = site.databases[0].host
    harness.injector.disk_fill(host, "/logs", 0.98)
    site.run(900.0)
    assert host.fs.mounts["/logs"].pct_used < 90.0


def test_lsf_crash_restarted(site, harness):
    harness.injector.lsf_crash(site.lsf_master)
    site.run(900.0)
    assert site.lsf.up


def test_cron_death_caught_by_watchdog(site, harness):
    host = site.databases[0].host
    harness.injector.cron_death(host)
    site.run(3 * site.admin.watch_period)
    assert host.crond.running
    assert site.admin.cron_repairs >= 1
    # and agents are flagging again afterwards
    suite = site.suite_for(host.name)
    site.run(600.0)
    from repro.core.flags import FlagStore
    assert FlagStore(host.fs, suite.agents[0].name).latest_time() > 0


def test_hardware_fault_escalated_not_healed(site, harness):
    from repro.cluster.hardware import ComponentKind
    host = site.databases[0].host
    harness.injector.component_failure(host, ComponentKind.DISK)
    site.run(900.0)
    sent = site.notifications.sent
    assert any("cannot fix" in n.subject and "hardware" in n.subject
               for n in sent)


def test_network_fault_reported_not_healed(site, harness):
    """Both public LANs die: application traffic (which must not ride
    the private agent network) fails, the dummy-user service probes
    catch it, nothing auto-repairs it."""
    harness.injector.lan_failure(site.dc.lan("public0"))
    harness.injector.lan_failure(site.dc.lan("public1"))
    site.run(2 * site.admin.SVC_PROBE_PERIOD + 60.0)
    assert not site.dc.lan("public0").up    # nobody "fixed" the network
    assert site.admin.service_probe_failures >= 1
    assert any("failing end-to-end" in n.subject
               for n in site.notifications.sent)


def test_single_public_lan_failure_is_survivable(site, harness):
    """With two public LANs, application traffic survives one failing."""
    harness.injector.lan_failure(site.dc.lan("public0"))
    site.run(2 * site.admin.SVC_PROBE_PERIOD + 60.0)
    assert site.admin.services_unhealthy == set()
    for svc in site.services:
        assert svc.healthy()


def test_whole_host_crash_is_escalated_by_admin(site, harness):
    host = site.databases[0].host
    site.run(1200.0)        # past the watchdog warm-up
    host.crash("panic")
    site.run(3 * site.admin.watch_period)
    assert host.name in site.admin.hosts_escalated


def test_detection_within_one_agent_period(site, harness):
    db = site.databases[0]
    harness.injector.db_crash(db)
    site.run(1200.0)
    harness.scan_flags_for_detection()
    inc = harness.ledger.closed()[0]
    assert inc.detected_at is not None
    assert inc.detection_latency <= site.config.agent_period + 30.0


def test_fault_storm_all_healed(site, harness):
    """Several simultaneous faults across the site."""
    harness.injector.db_crash(site.databases[0])
    harness.injector.app_hang(site.frontends[0])
    harness.injector.runaway_process(site.databases[1].host)
    harness.injector.disk_fill(site.frontends[1].host, "/logs", 0.97)
    site.run(2700.0)
    assert site.databases[0].is_healthy()
    assert site.frontends[0].is_healthy()
    assert not site.databases[1].host.ptable.alive("runaway.sh")
    assert site.frontends[1].host.fs.mounts["/logs"].pct_used < 90.0
    assert not harness.open_incidents()
