"""Consistency between the campaign fast path and full fidelity.

DESIGN.md's simulation-speed note claims the event-driven fast path is
semantically equivalent to full-fidelity mode for detection timing:
detection happens at the next cron grid point after the fault.  These
tests hold the two modes against each other on the same kinds of fault.
"""

import numpy as np
import pytest

from repro.experiments.runner import FidelityHarness
from repro.experiments.site import SiteConfig, build_site
from repro.ops.operators import OperatorModel
from repro.sim import RandomStreams
from repro.sim.calendar import MINUTE, next_grid


def test_fast_path_detection_matches_cron_grid_bound():
    """Fast path: agent detection = next grid + run time, so it is
    bounded by period + max run time.  Full fidelity must obey the
    same bound."""
    rs = RandomStreams(5)
    ops = OperatorModel(rs.get("ops"), agent_period=5 * MINUTE)
    for t in np.linspace(0.0, 7 * 86400.0, 40):
        d = ops.agent_detection_delay(float(t))
        grid_wait = next_grid(float(t), 5 * MINUTE) - float(t)
        assert grid_wait < d <= grid_wait + 20.0


def test_full_fidelity_detection_within_fast_path_bound():
    # the fast path models cron-grid detection, so hold the fixed wake
    # policy against it (adaptive triggers detect faster than the grid)
    site = build_site(SiteConfig.test_scale(seed=23, with_feeds=False,
                                            with_workload=False,
                                            wake_policy="fixed"))
    harness = FidelityHarness(site)
    latencies = []
    for k in range(6):
        db = site.databases[k % len(site.databases)]
        # desynchronise fault times from the cron grid
        site.run(1700.0 + 137.0 * k)
        if not db.is_healthy():
            continue
        harness.injector.db_crash(db)
        site.run(1500.0)
        harness.scan_flags_for_detection()
    for inc in harness.ledger.incidents:
        if inc.detection_latency is not None:
            latencies.append(inc.detection_latency)
    assert latencies, "no detections recorded"
    # every detection within one agent period (+ slack for the run)
    assert max(latencies) <= site.config.agent_period + 60.0


def test_full_fidelity_repair_times_match_campaign_profile():
    """The campaign's MID_CRASH auto-repair mean (8 min) should be of
    the same order as real restart-based healing in full fidelity."""
    site = build_site(SiteConfig.test_scale(seed=29, with_feeds=False,
                                            with_workload=False,
                                            wake_policy="fixed"))
    harness = FidelityHarness(site)
    durations = []
    for k in range(4):
        db = site.databases[k % len(site.databases)]
        site.run(1900.0 + 211.0 * k)
        if not db.is_healthy():
            continue
        t0 = site.sim.now
        harness.injector.db_crash(db)
        site.run(2400.0)
        if db.is_healthy():
            closed = [i for i in harness.ledger.closed()
                      if i.start >= t0]
            durations.extend(i.duration for i in closed)
    assert durations
    mean_min = np.mean(durations) / 60.0
    # campaign says ~5 min grid + ~8 min repair: same order of magnitude
    assert 2.0 < mean_min < 30.0
