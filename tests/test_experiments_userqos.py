"""Unit tests for the user-perceived QoS experiment."""

import pytest

from repro.faults.models import Category
from repro.experiments.userqos import (CATEGORY_IMPACT, format_result,
                                       run_once, run_replicated, windows_of)
from repro.sim.calendar import DAY

HORIZON = 60 * DAY        # a couple of months is enough signal for tests


@pytest.fixture(scope="module")
def result():
    return run_once(seed=3, horizon=HORIZON, population=200_000)


def test_every_category_has_an_impact_map():
    assert set(CATEGORY_IMPACT) == set(Category)
    for impact in CATEGORY_IMPACT.values():
        assert impact and all(0 < v <= 1.0 for v in impact.values())
        assert set(impact) <= {"web", "frontend", "db"}


def test_agents_strictly_better(result):
    assert result.after.availability > result.before.availability
    assert result.after.failed_requests < result.before.failed_requests
    assert result.after.user_minutes_lost < result.before.user_minutes_lost
    assert result.failed_request_ratio > 1.0
    assert 0.9 < result.before.availability < result.after.availability <= 1.0


def test_same_attempted_requests_both_pipelines(result):
    """Paired design: both pipelines face identical demand."""
    assert (result.before.outcome.total_attempted
            == result.after.outcome.total_attempted)
    assert result.before.outcome.total_attempted > 1e7


def test_peak_probe_heavier_than_overnight(result):
    assert (result.peak_hour_user_minutes
            > 5 * result.overnight_hour_user_minutes)


def test_day_downtime_costs_more_per_hour(result):
    for p in (result.before, result.after):
        day = p.user_minutes_per_hour("day")
        night = p.user_minutes_per_hour("overnight")
        assert day > night > 0


def test_windows_skip_prevented_faults(result):
    # rebuild the after-pipeline windows: none may come from a
    # prevented record, and every window must have positive duration
    import repro.sim as rsim
    from repro.faults.campaign import Campaign
    rs = rsim.RandomStreams(3)
    campaign = Campaign(rs.get("userqos.campaign"), horizon=HORIZON)
    before, after = campaign.run_pair(
        agent_period=300.0,
        before_rng=rs.get("userqos.ops.before"),
        after_rng=rs.get("userqos.ops.after"))
    wins = windows_of(after)
    assert len(wins) == sum(1 for r in after.records if not r.prevented)
    assert all(w.duration > 0 for w in wins)


def test_summary_is_plain_and_complete(result):
    import json
    s = result.summary()
    json.dumps(s)      # nothing numpy, nothing custom
    assert s["before"]["label"] == "before"
    assert s["after"]["label"] == "after"
    assert set(s["before"]["availability_by_class"]) == {
        "web", "frontend", "db"}
    assert s["replications"] == 1


def test_run_replicated_means(result):
    merged = run_replicated([3, 4], horizon=HORIZON, population=200_000)
    assert merged["replications"] == 2
    one = run_once(seed=4, horizon=HORIZON, population=200_000).summary()
    expect = 0.5 * (result.summary()["before"]["failed_requests"]
                    + one["before"]["failed_requests"])
    assert merged["before"]["failed_requests"] == pytest.approx(expect)


def test_run_replicated_rejects_empty():
    with pytest.raises(ValueError):
        run_replicated([])


def test_format_result_renders(result):
    text = format_result(result.summary())
    assert "before" in text and "after" in text
    assert "user-minutes" in text
    assert "x" in text.splitlines()[-1]      # the ratio tail
