"""Unit tests for the QoS-aware front door."""

import pytest

from repro.ontology.dgspl import Dgspl, GlobalServiceEntry
from repro.traffic.frontdoor import FrontDoor


class FakeHost:
    def __init__(self, name):
        self.name = name


class FakeApp:
    def __init__(self, host, name):
        self.host = FakeHost(host)
        self.name = name


def apps(*hosts):
    return [FakeApp(h, "httpd") for h in hosts]


def entry(server, load):
    return GlobalServiceEntry(
        server=server, server_type="ibm-sp2", os="aix", ram_mb=1024,
        cpus=4, app_name="httpd", app_type="webserver", app_version="1",
        current_load=load, users=0, location="dc", site="site")


def dgspl_at(t, loads):
    d = Dgspl(generated_at=t)
    for server, load in loads.items():
        d.add(entry(server, load))
    return d


def test_requires_servers():
    with pytest.raises(ValueError):
        FrontDoor("webserver", [])


def test_round_robin_split_exact_and_rotating():
    door = FrontDoor("webserver", apps("a", "b", "c"))
    alloc, shed = door.route(10, now=0.0)
    assert shed == 0
    assert sum(c for _, c in alloc) == 10
    counts = {a.host.name: c for a, c in alloc}
    assert counts == {"a": 4, "b": 3, "c": 3}
    # the extra request rotates on the next batch
    alloc, _ = door.route(10, now=0.0)
    counts = {a.host.name: c for a, c in alloc}
    assert counts == {"a": 3, "b": 4, "c": 3}
    assert door.rr_batches == 2 and door.routed == 20


def test_weighted_split_favours_low_load():
    door = FrontDoor("webserver", apps("a", "b"),
                     dgspl_fn=lambda: dgspl_at(0.0, {"a": 0.0, "b": 4.0}))
    alloc, shed = door.route(1000, now=10.0)
    assert shed == 0
    counts = {a.host.name: c for a, c in alloc}
    # weights 1.0 vs 0.2 -> ~833/167
    assert counts["a"] > 4 * counts["b"]
    assert counts["a"] + counts["b"] == 1000
    assert door.weighted_batches == 1


def test_stale_dgspl_degrades_to_round_robin():
    door = FrontDoor("webserver", apps("a", "b"),
                     dgspl_fn=lambda: dgspl_at(0.0, {"a": 0.0, "b": 9.0}),
                     staleness=900.0)
    door.route(100, now=10_000.0)          # DGSPL is 10000 s old: stale
    assert door.rr_batches == 1 and door.weighted_batches == 0
    door.route(100, now=800.0)             # fresh again
    assert door.weighted_batches == 1


def test_absent_dgspl_is_round_robin():
    door = FrontDoor("webserver", apps("a", "b"),
                     dgspl_fn=lambda: None)
    door.route(10, now=0.0)
    assert door.rr_batches == 1


def test_flag_down_redistributes_then_sheds():
    door = FrontDoor("webserver", apps("a", "b"))
    door.flag_down("a")
    alloc, shed = door.route(10, now=0.0)
    assert shed == 0
    assert {a.host.name for a, _ in alloc} == {"b"}
    door.flag_down("b")
    alloc, shed = door.route(10, now=0.0)
    assert alloc == [] and shed == 10
    assert door.shed_total == 10
    door.flag_up("a")
    alloc, shed = door.route(10, now=0.0)
    assert shed == 0 and {a.host.name for a, _ in alloc} == {"a"}


def test_flagged_server_excluded_from_weighted_split():
    door = FrontDoor("webserver", apps("a", "b"),
                     dgspl_fn=lambda: dgspl_at(0.0, {"a": 0.0, "b": 0.0}))
    door.flag_down("a")
    alloc, shed = door.route(10, now=1.0)
    assert shed == 0
    assert {a.host.name for a, _ in alloc} == {"b"}


def test_fresh_dgspl_listing_nobody_sheds():
    """A fresh DGSPL that lists no server of this tier means the admin
    pair saw every server sick: shed, do not round-robin into them."""
    door = FrontDoor("webserver", apps("a", "b"),
                     dgspl_fn=lambda: dgspl_at(0.0, {}))
    alloc, shed = door.route(10, now=1.0)
    assert alloc == [] and shed == 10


def test_split_is_deterministic():
    def run():
        door = FrontDoor("webserver", apps("c", "a", "b"),
                         dgspl_fn=lambda: dgspl_at(
                             0.0, {"a": 0.3, "b": 1.7, "c": 0.9}))
        out = []
        for _ in range(5):
            alloc, _ = door.route(997, now=1.0)
            out.append(tuple((a.host.name, c) for a, c in alloc))
        return out

    assert run() == run()


def test_zero_and_negative_n():
    door = FrontDoor("webserver", apps("a"))
    assert door.route(0, now=0.0) == ([], 0)
    assert door.route(-5, now=0.0) == ([], 0)
