"""Unit tests for the process table."""

from repro.cluster.process import ProcState, ProcessTable


def test_spawn_assigns_unique_pids():
    pt = ProcessTable("h")
    a = pt.spawn("root", "initd")
    b = pt.spawn("root", "initd")
    assert a.pid != b.pid
    assert len(pt) == 2


def test_lookup_by_command_and_user():
    pt = ProcessTable("h")
    pt.spawn("oracle", "ora_pmon")
    pt.spawn("oracle", "ora_dbwr")
    pt.spawn("www", "httpd")
    assert len(pt.by_command("ora_pmon")) == 1
    assert len(pt.by_user("oracle")) == 2
    assert pt.alive("httpd")
    assert not pt.alive("sendmail")


def test_kill_updates_indices():
    pt = ProcessTable("h")
    p = pt.spawn("u", "job")
    assert pt.kill(p.pid)
    assert not pt.kill(p.pid)
    assert pt.by_command("job") == []
    assert pt.get(p.pid) is None


def test_kill_command_exact_match_only():
    pt = ProcessTable("h")
    pt.spawn("u", "job")
    pt.spawn("u", "job")
    pt.spawn("u", "jobber")
    assert pt.kill_command("job") == 2
    assert pt.alive("jobber")


def test_accounting_sums():
    pt = ProcessTable("h")
    pt.spawn("u", "a", cpu_pct=50.0, mem_mb=100.0)
    pt.spawn("u", "b", cpu_pct=25.0, mem_mb=50.0)
    blocked = pt.spawn("u", "c", cpu_pct=10.0, mem_mb=10.0)
    blocked.state = ProcState.BLOCKED
    assert pt.total_cpu_pct() == 75.0        # blocked not counted
    assert pt.total_mem_mb() == 160.0
    # only genuinely busy processes queue for a CPU (25% is an idle-ish
    # daemon, below RUNNABLE_CPU_THRESHOLD)
    assert pt.runnable() == 1
    assert pt.blocked() == 1


def test_clear_wipes_everything():
    pt = ProcessTable("h")
    pt.spawn("u", "a")
    pt.clear()
    assert len(pt) == 0
    assert pt.by_command("a") == []


def test_microstate_advance():
    pt = ProcessTable("h")
    busy = pt.spawn("u", "busy", cpu_pct=100.0)
    idle = pt.spawn("u", "idle", cpu_pct=0.0)
    pt.advance(10.0)
    assert busy.micro.user + busy.micro.system == 10.0
    assert idle.micro.sleep == 10.0
    # advancing to the same time is a no-op
    pt.advance(10.0)
    assert busy.micro.total() == 10.0


def test_blocked_accumulates_wait_io():
    pt = ProcessTable("h")
    p = pt.spawn("u", "d")
    p.state = ProcState.BLOCKED
    pt.advance(5.0)
    assert p.micro.wait_io == 5.0


def test_matching_predicate():
    pt = ProcessTable("h")
    pt.spawn("u", "big", mem_mb=500.0)
    pt.spawn("u", "small", mem_mb=1.0)
    hogs = pt.matching(lambda p: p.mem_mb > 100)
    assert [p.command for p in hogs] == ["big"]
