"""Memory discipline: every unbounded-looking collection is ringed.

A year-scale run appends to shell histories, telemetry series and the
condition log millions of times; these regression tests pin (a) the
caps actually trim, (b) the ``dropped``/``trimmed`` counters own up to
what was clipped, and (c) the trimmed state survives a snapshot round
trip -- so a resumed segment inherits bounded books, not a fresh leak.
"""

from collections import deque

from repro.controlplane.ledger import ConditionLedger
from repro.metrics.timeseries import TimeSeries
from repro.observe.pipeline import TelemetryHub


class _FakeSim:
    now = 0.0


# -- shell history -----------------------------------------------------------


def test_shell_history_ring_trims_and_counts(db_host):
    shell = db_host.shell
    limit = shell.HISTORY_LIMIT
    for i in range(2 * limit + 5):
        shell.run(f"echo {i}")
    assert len(shell.history) <= 2 * limit
    assert shell.history_trimmed > 0
    assert shell.history_trimmed + len(shell.history) == 2 * limit + 5
    # the retained tail is the newest commands, oldest dropped
    assert shell.history[-1] == f"echo {2 * limit + 4}"
    assert "echo 0" not in shell.history


def test_shell_history_trim_survives_snapshot(db_host):
    shell = db_host.shell
    for i in range(2 * shell.HISTORY_LIMIT + 1):
        shell.run(f"true {i}")
    state = shell.snapshot_state()
    other = type(shell)(db_host)
    other.restore_state(state)
    assert other.history == shell.history
    assert other.history_trimmed == shell.history_trimmed


# -- timeseries rings --------------------------------------------------------


def test_timeseries_ring_bounds_growth_and_counts():
    ts = TimeSeries("x", maxlen=10)
    for i in range(100):
        ts.append(float(i), float(i))
    assert len(ts) < 2 * 10
    assert ts.dropped + len(ts) == 100
    # clipped lookups fall back to the oldest *retained* sample
    assert ts.value_at(0.0) == ts.times[0]


# -- telemetry condition log -------------------------------------------------


def test_condition_log_ring_drops_and_counts():
    hub = TelemetryHub(_FakeSim(), maxlen=2)   # log cap = 16 * 2 = 32
    ledger = ConditionLedger()
    hub.attach_ledger(ledger)
    for i in range(40):
        ledger.append("flag", "db01", status="fault", time=float(i))
    cap = 16 * 2
    assert isinstance(hub.condition_log, deque)
    assert len(hub.condition_log) == cap
    assert hub.condition_log_dropped == 40 - cap
    assert hub.events_in == 40
    # newest retained, oldest shed
    assert hub.condition_log[-1].time == 39.0
    assert hub.condition_log[0].time == float(40 - cap)


# -- condition ledger backlog cap --------------------------------------------


def test_ledger_force_trim_counts_and_flags_overrun():
    ledger = ConditionLedger(maxlen=8)
    cursor = ledger.subscribe("slow")
    for i in range(20):
        ledger.append("flag", "db01", time=float(i))
    assert ledger.backlog() <= 8
    assert ledger.trimmed == 20 - ledger.backlog()
    retained = ledger.backlog()
    fresh, overrun = cursor.poll()
    assert overrun                       # the cap blew past this cursor
    assert cursor.overruns == 1
    assert len(fresh) == retained        # only the survivors are seen
    assert fresh[-1].version == 20


def test_ledger_cursor_driven_trim_keeps_backlog_small():
    ledger = ConditionLedger(maxlen=1 << 18)
    cursor = ledger.subscribe("fast")
    for i in range(50):
        ledger.append("flag", "db01", time=float(i))
        cursor.poll()                    # consume eagerly
    assert ledger.backlog() == 0         # everything consumed -> trimmed
    assert ledger.trimmed == 50
    assert cursor.overruns == 0
