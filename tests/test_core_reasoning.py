"""Unit tests for the causal rule engine."""

from repro.core.parts import Finding
from repro.core.reasoning import CausalRule, Diagnosis, RuleEngine


def _finding(kind="service-down", subject="ora"):
    return Finding(kind, subject, "probe failed")


def test_first_confirmed_cause_wins(db_host):
    engine = RuleEngine()
    engine.extend([
        CausalRule("service-down", "bad-config",
                   lambda h, f: False, ("restore_config",)),
        CausalRule("service-down", "crash",
                   lambda h, f: True, ("restart_app",)),
        CausalRule("service-down", "never-reached",
                   lambda h, f: True, ("reboot_host",)),
    ])
    diag = engine.diagnose(db_host, _finding())
    assert diag.cause == "crash"
    assert diag.actions == ["restart_app"]
    assert diag.confirmed
    # the eliminated candidate left evidence
    assert any("eliminated: bad-config" in e for e in diag.evidence)


def test_unknown_symptom_yields_unconfirmed(db_host):
    engine = RuleEngine()
    diag = engine.diagnose(db_host, _finding("weird-noise"))
    assert not diag.confirmed
    assert not diag.actionable
    assert "unknown" in diag.cause


def test_all_tests_eliminated(db_host):
    engine = RuleEngine()
    engine.add_rule(CausalRule("s", "c", lambda h, f: False, ()))
    diag = engine.diagnose(db_host, _finding("s"))
    assert not diag.confirmed


def test_crashing_test_is_skipped(db_host):
    def bad_test(host, finding):
        raise RuntimeError("probe exploded")

    engine = RuleEngine()
    engine.extend([
        CausalRule("s", "flaky", bad_test, ("a",)),
        CausalRule("s", "solid", lambda h, f: True, ("b",)),
    ])
    diag = engine.diagnose(db_host, _finding("s"))
    assert diag.cause == "solid"
    assert any("errored" in e for e in diag.evidence)


def test_rules_dispatch_on_symptom_kind(db_host):
    engine = RuleEngine()
    engine.add_rule(CausalRule("a", "cause-a", lambda h, f: True, ()))
    engine.add_rule(CausalRule("b", "cause-b", lambda h, f: True, ()))
    assert engine.diagnose(db_host, _finding("a")).cause == "cause-a"
    assert engine.diagnose(db_host, _finding("b")).cause == "cause-b"
    assert len(engine) == 2
    assert len(engine.rules_for("a")) == 1


def test_runtime_rule_extension(db_host):
    """§4: 'Every time a fault was dealt with manually, we added a new
    troubleshooting procedure to the intelliagent source code.'"""
    engine = RuleEngine()
    diag0 = engine.diagnose(db_host, _finding("novel-fault"))
    assert not diag0.confirmed
    engine.add_rule(CausalRule("novel-fault", "learned-cause",
                               lambda h, f: True, ("restart_app",)))
    diag1 = engine.diagnose(db_host, _finding("novel-fault"))
    assert diag1.confirmed and diag1.actions == ["restart_app"]


def test_finding_passed_to_tests(db_host):
    captured = []

    def test_fn(host, finding):
        captured.append((host, finding))
        return True

    engine = RuleEngine()
    engine.add_rule(CausalRule("s", "c", test_fn, ()))
    f = _finding("s", subject="the-subject")
    engine.diagnose(db_host, f)
    assert captured[0] == (db_host, f)
