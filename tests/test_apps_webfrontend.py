"""Unit tests for web servers and front-end applications."""

from repro.apps.frontend import FrontendApp


def test_http_get_200(webserver):
    status, ms = webserver.http_get("/")
    assert status == 200 and ms > 0
    assert webserver.requests_served == 1
    assert webserver.requests_attempted == 1


def test_http_get_no_answer_when_crashed(webserver):
    webserver.crash("x")
    status, _ = webserver.http_get("/")
    assert status == 0
    # a failed GET still counts as an attempt: availability SLIs are
    # served/attempted, so the denominator must include failures
    assert webserver.requests_attempted == 1
    assert webserver.requests_served == 0


def test_http_get_times_out_when_hung(webserver):
    webserver.hang()
    status, ms = webserver.http_get("/")
    assert status == 0 and ms > 0
    assert webserver.requests_attempted == 1


def test_probe_not_overridden(webserver):
    """Regression for the removed pass-through override: WebServer must
    use the Application probe, not shadow it."""
    from repro.apps.base import Application
    from repro.apps.webserver import WebServer
    assert "probe" not in WebServer.__dict__
    assert WebServer.probe is Application.probe


def test_serve_batch_counts_attempts(webserver):
    served, failed, ms = webserver.serve_batch(100)
    assert (served, failed) == (100, 0) and ms > 0
    webserver.crash("x")
    served, failed, _ = webserver.serve_batch(40)
    assert (served, failed) == (0, 40)
    assert webserver.requests_attempted == 140
    assert webserver.requests_served == 100


def test_connection_tracking(webserver):
    assert webserver.open_connection("client-a")
    assert len(webserver.open_connections) == 1
    webserver.close_connection("client-a")
    assert webserver.open_connections == {}
    webserver.crash("x")
    assert not webserver.open_connection("client-b")


def test_frontend_login_logout(frontend):
    assert frontend.login("analyst1")
    assert frontend.sessions == 1
    assert "analyst1" in frontend.host.logged_in_users
    frontend.logout("analyst1")
    assert frontend.sessions == 0
    assert "analyst1" not in frontend.host.logged_in_users


def test_frontend_query_roundtrips_to_backend(frontend, database):
    ok, ms, err = frontend.run_query()
    assert ok and err == ""
    # the query cost includes the backend's time
    fe_only = frontend.probe()[1]
    assert ms > fe_only
    assert frontend.queries_served == 1


def test_frontend_query_fails_when_backend_dead(frontend, database):
    database.crash("x")
    ok, _, err = frontend.run_query()
    assert not ok and err.startswith("backend")
    assert frontend.is_healthy()    # the GUI itself is fine


def test_frontend_query_fails_when_frontend_dead(frontend):
    frontend.crash("x")
    ok, _, err = frontend.run_query()
    assert not ok and err.startswith("frontend")


def test_frontend_serve_batch_fails_on_dead_backend(frontend, database):
    served, failed, _ = frontend.serve_batch(10)
    assert (served, failed) == (10, 0)
    assert frontend.queries_served == 10
    database.crash("x")
    served, failed, _ = frontend.serve_batch(5)
    assert (served, failed) == (0, 5)    # GUI up, backend dead


def test_frontend_declares_dependency(frontend, database):
    assert (database.host.name, database.name) in frontend.depends_on


def test_standalone_frontend(dc, sim):
    fe = FrontendApp(dc.host("adm01"), "lonely")
    fe.start()
    sim.run(until=sim.now + fe.startup_duration() + 1)
    ok, _, _ = fe.run_query()
    assert ok
