"""Unit tests for the user-traffic workload models."""

import numpy as np
import pytest

from repro.sim import RandomStreams
from repro.sim.calendar import DAY, HOUR, WEEK
from repro.traffic.workload import (DemandCurve, DiurnalProfile,
                                    FINANCIAL_CLASSES, FINANCIAL_PROFILE,
                                    financial_curve)

MONDAY_11 = 11 * HOUR
MONDAY_03 = 3 * HOUR
SATURDAY_11 = 5 * DAY + 11 * HOUR


@pytest.fixture
def curve():
    return financial_curve(population=1_000_000)


def test_profile_normalised_to_mean_one():
    assert FINANCIAL_PROFILE.weights.mean() == pytest.approx(1.0)
    assert 8 <= FINANCIAL_PROFILE.peak_hour <= 17


def test_profile_rejects_bad_weights():
    with pytest.raises(ValueError):
        DiurnalProfile([1.0] * 23)
    with pytest.raises(ValueError):
        DiurnalProfile([1.0] * 23 + [-1.0])


def test_diurnal_shape_peak_vs_trough(curve):
    cls = curve.by_name["web"]
    assert curve.rate(cls, MONDAY_11) > 5 * curve.rate(cls, MONDAY_03)


def test_weekend_demand_lower(curve):
    cls = curve.by_name["web"]
    assert (curve.rate(cls, SATURDAY_11)
            < cls.weekend_factor * 1.01 * curve.rate(cls, MONDAY_11))


def test_vectorised_matches_scalar(curve):
    cls = curve.by_name["frontend"]
    t = np.array([MONDAY_03, MONDAY_11, SATURDAY_11, 6 * DAY + HOUR])
    vec = curve.rate(cls, t)
    for i, ti in enumerate(t):
        assert vec[i] == pytest.approx(curve.rate(cls, float(ti)))


def test_weekday_volume_matches_requests_per_user_day(curve):
    """Integrating a weekday at a fine step recovers the class's mean
    requests/user/day (the profile is normalised)."""
    cls = curve.by_name["web"]
    demand = curve.demand_per_interval(cls, 0.0, DAY, 60.0)
    total = demand.sum()
    expected = curve.population * cls.requests_per_user_day
    assert total == pytest.approx(expected, rel=0.01)


def test_total_requests_sums_classes(curve):
    per_class = sum(
        curve.demand_per_interval(c, 0.0, WEEK, 3600.0).sum()
        for c in FINANCIAL_CLASSES)
    assert curve.total_requests(0.0, WEEK, 3600.0) == pytest.approx(per_class)


def test_active_users_bounded_and_diurnal(curve):
    t = np.arange(0.0, WEEK, 300.0)
    users = curve.active_users(t)
    assert users.max() <= curve.population * curve.peak_active_fraction * 1.001
    assert curve.active_users(MONDAY_11) > 10 * curve.active_users(MONDAY_03)


def test_incident_user_minutes_peak_heavier(curve):
    peak = curve.incident_user_minutes(DAY + 11 * HOUR, HOUR)
    night = curve.incident_user_minutes(DAY + 3 * HOUR, HOUR)
    weekend = curve.incident_user_minutes(5 * DAY + 11 * HOUR, HOUR)
    assert peak > 5 * night
    assert peak > weekend
    # impact scales linearly
    half = curve.incident_user_minutes(DAY + 11 * HOUR, HOUR, impact=0.5)
    assert half == pytest.approx(peak / 2)


def test_arrival_sampling_deterministic():
    """Same seed => identical Poisson draws off the demand grid."""
    curve = financial_curve(100_000)
    cls = curve.by_name["web"]
    lam = curve.demand_per_interval(cls, 0.0, DAY, 300.0)
    a = RandomStreams(7).get("traffic.arrivals").poisson(lam)
    b = RandomStreams(7).get("traffic.arrivals").poisson(lam)
    c = RandomStreams(8).get("traffic.arrivals").poisson(lam)
    assert (a == b).all()
    assert not (a == c).all()
