"""Unit tests for microstate accounting and process pivots."""

import pytest

from repro.metrics.accounting import ProcessAccountant
from repro.metrics.microstate import MicrostateAccountant


def test_snapshot_covers_all_processes(sim, db_host):
    db_host.ptable.spawn("u", "worker", cpu_pct=80.0)
    acct = MicrostateAccountant(db_host)
    snaps = acct.snapshot()
    assert len(snaps) == len(db_host.ptable)


def test_busy_accumulates_over_time(sim, db_host):
    p = db_host.ptable.spawn("u", "worker", cpu_pct=100.0)
    acct = MicrostateAccountant(db_host)
    acct.snapshot()
    sim.run(until=sim.now + 100.0)
    snaps = acct.snapshot()
    mine = [s for s in snaps if s.pid == p.pid][0]
    assert mine.busy == pytest.approx(100.0)


def test_delta_rates(sim, db_host):
    p = db_host.ptable.spawn("u", "worker", cpu_pct=50.0)
    acct = MicrostateAccountant(db_host)
    acct.snapshot()
    sim.run(until=sim.now + 100.0)
    acct.snapshot()
    d = acct.delta(p.pid)
    assert d is not None
    assert d["usr_frac"] + d["sys_frac"] == pytest.approx(0.5)
    assert acct.delta(999999) is None


def test_busiest_ranks_by_cumulative_cpu(sim, db_host):
    db_host.ptable.spawn("u", "hot", cpu_pct=90.0)
    db_host.ptable.spawn("u", "cold", cpu_pct=1.0)
    acct = MicrostateAccountant(db_host)
    acct.snapshot()
    sim.run(until=sim.now + 50.0)
    acct.snapshot()
    top = acct.busiest(1)
    assert top[0].command == "hot"


def test_format_line():
    from repro.metrics.microstate import MicrostateSnapshot
    s = MicrostateSnapshot(1.0, 42, "cmd", "u", 1.0, 0.5, 0.1, 2.0)
    assert "pid=42" in s.format()


def test_pivot_per_user(db_host):
    db_host.ptable.spawn("alice", "sas", cpu_pct=30.0, mem_mb=10.0)
    db_host.ptable.spawn("alice", "sas", cpu_pct=20.0, mem_mb=10.0)
    rows = ProcessAccountant(db_host).per_user()
    alice = next(r for r in rows if r.key == "alice")
    assert alice.nproc == 2 and alice.cpu_pct == 50.0


def test_pivot_per_command_and_args(db_host):
    db_host.ptable.spawn("u", "sas", args="-big", cpu_pct=5.0)
    db_host.ptable.spawn("u", "sas", args="-small", cpu_pct=5.0)
    per_cmd = ProcessAccountant(db_host).per_command()
    assert next(r for r in per_cmd if r.key == "sas").nproc == 2
    per_args = ProcessAccountant(db_host).per_command_args()
    assert any(r.key == "sas -big" for r in per_args)


def test_pivot_per_user_command(db_host):
    db_host.ptable.spawn("bob", "vi", cpu_pct=1.0)
    rows = ProcessAccountant(db_host).per_user_command()
    assert any(r.key == "bob:vi" for r in rows)


def test_per_cpu_distributes_runnables(db_host):
    for _ in range(8):
        db_host.ptable.spawn("u", "spin", cpu_pct=10.0)
    rows = ProcessAccountant(db_host).per_cpu()
    assert len(rows) == db_host.effective_cpus()
    assert sum(r.nproc for r in rows) == len(db_host.ptable)


def test_heaviest_user(db_host):
    db_host.ptable.spawn("greedy", "miner", cpu_pct=95.0)
    user, cpu = ProcessAccountant(db_host).heaviest_user()
    assert user == "greedy" and cpu == 95.0
