"""The committed corpus under ``tests/corpus/`` stays in sync with the
builders and replays green against every oracle."""

import os

import pytest

from repro.chaos.executor import run_episode
from repro.chaos.scenario import Scenario, build_corpus

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


def _corpus_files():
    return sorted(fn for fn in os.listdir(CORPUS_DIR)
                  if fn.endswith(".json"))


def test_corpus_directory_is_populated():
    assert len(_corpus_files()) >= 10


def test_corpus_files_match_builders_byte_identically():
    """``repro-exp chaos corpus`` regenerates these files; a builder
    edit without a corpus refresh fails here."""
    built = build_corpus(0)
    on_disk = {fn[:-len(".json")] for fn in _corpus_files()}
    assert on_disk == set(built)
    for name, sc in built.items():
        with open(os.path.join(CORPUS_DIR, f"{name}.json")) as fh:
            assert fh.read() == sc.to_json(), (
                f"tests/corpus/{name}.json is stale -- regenerate with "
                f"`repro-exp chaos corpus --dir tests/corpus`")


def test_corpus_files_parse_and_validate():
    for fn in _corpus_files():
        with open(os.path.join(CORPUS_DIR, fn)) as fh:
            sc = Scenario.from_json(fh.read())
        sc.normalized().validate()


@pytest.mark.slow
def test_corpus_replays_green_against_every_oracle():
    for fn in _corpus_files():
        with open(os.path.join(CORPUS_DIR, fn)) as fh:
            sc = Scenario.from_json(fh.read())
        ep = run_episode(sc)
        assert ep.ok, f"{sc.scenario_id}: {ep.violations}"
        assert ep.applied, f"{sc.scenario_id}: nothing applied"
        assert ep.coverage


@pytest.mark.slow
def test_planted_bug_fires_only_on_adversarial_timing():
    corpus = build_corpus(0)
    bad = run_episode(corpus["wake-adversarial"], planted_bug=True)
    assert bad.violated == ["scan-ledger-parity"]
    good = run_episode(corpus["cascade"], planted_bug=True)
    assert good.ok
