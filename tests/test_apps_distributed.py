"""Unit tests for distributed services."""

import pytest

from repro.apps.distributed import DistributedService


@pytest.fixture
def service(dc, database, webserver, frontend):
    svc = DistributedService(dc, "analytics")
    svc.add_component("db", database, [])
    svc.add_component("web", webserver, ["db"])
    svc.add_component("gui", frontend, ["web", "db"])
    return svc


def test_startup_order_is_topological(service):
    order = service.startup_order()
    assert order.index("db") < order.index("web") < order.index("gui")


def test_cycle_detected(dc, database, webserver):
    svc = DistributedService(dc, "loop")
    svc.add_component("a", database, ["b"])
    svc.add_component("b", webserver, ["a"])
    with pytest.raises(ValueError):
        svc.startup_order()


def test_unknown_dependency(dc, database):
    svc = DistributedService(dc, "bad")
    svc.add_component("a", database, ["ghost"])
    with pytest.raises(KeyError):
        svc.startup_order()


def test_duplicate_component_rejected(dc, database):
    svc = DistributedService(dc, "dup")
    svc.add_component("a", database, [])
    with pytest.raises(ValueError):
        svc.add_component("a", database, [])


def test_healthy_end_to_end(service):
    ok, ms, err = service.end_to_end_probe()
    assert ok and err == "" and ms > 0
    assert service.healthy()
    assert service.probes_run == 2


def test_one_dead_component_kills_the_service(service, webserver):
    webserver.crash("x")
    ok, _, err = service.end_to_end_probe()
    assert not ok
    assert "web" in err
    assert service.unhealthy_components() == ["web"]


def test_hung_component_detected(service, database):
    database.hang()
    ok, _, err = service.end_to_end_probe()
    assert not ok and "db" in err


def test_network_leg_failure_detected(service, dc):
    # db and gui live on different hosts: kill both shared LANs
    dc.lan("public0").fail()
    dc.lan("agentnet").fail()
    ok, _, err = service.end_to_end_probe()
    assert not ok and "link" in err
    assert service.probe_failures >= 1


def test_probe_accumulates_response_time(service, database):
    _, ms_healthy, _ = service.end_to_end_probe()
    database.host.extra_runnable = database.host.effective_cpus() * 12
    _, ms_loaded, _ = service.end_to_end_probe()
    assert ms_loaded > ms_healthy
