"""Unit tests for the six agent categories' specific behaviour."""

import pytest

from repro.apps.base import AppState
from repro.core.hardware_agent import HardwareAgent
from repro.core.os_agent import OsNetworkAgent
from repro.core.performance_agent import PerformanceAgent
from repro.core.resource_agent import ResourceAgent
from repro.core.service_agent import ServiceAgent
from repro.core.status_agent import StatusAgent
from repro.net.nameservice import NameService


# -------------------------------------------------------------- service --

def test_service_agent_heals_hang(database, sim, notifications):
    agent = ServiceAgent(database.host, database.name,
                         notifications=notifications)
    database.hang()
    agent.run()
    assert database.state in (AppState.STOPPED, AppState.STARTING,
                              AppState.RUNNING)
    sim.run(until=sim.now + database.startup_duration() + 60)
    assert database.is_healthy()


def test_service_agent_skips_starting_app(database, sim, notifications):
    agent = ServiceAgent(database.host, database.name,
                         notifications=notifications)
    database.crash("x")
    database.start()
    agent.run()
    assert agent.stats.faults_found == 0


def test_service_agent_restores_corrupt_data(database, sim, notifications):
    agent = ServiceAgent(database.host, database.name,
                         notifications=notifications)
    database.host.crond.remove(agent.name)
    database.data_ok = False
    database.crash("block corruption detected in datafile 3")
    agent.run()
    sim.run(until=sim.now + 1200.0)
    agent.run()
    sim.run(until=sim.now + 1200.0)
    assert database.is_healthy()
    assert database.data_ok


def test_service_agent_proc_count_constraint(database, sim, notifications):
    from repro.ontology.slkt import build_slkt
    slkt = build_slkt(database.host)
    agent = ServiceAgent(database.host, database.name, slkt=slkt,
                         notifications=notifications)
    victim = database.host.ptable.by_command("oracle_server")[0]
    database.host.ptable.kill(victim.pid)
    findings = agent.monitor()
    assert any(f.kind == "proc-missing" for f in findings)
    agent.run()
    sim.run(until=sim.now + database.startup_duration() + 120)
    # the restart repopulated the full daemon complement
    assert len(database.host.ptable.by_command("oracle_server")) == 4


def test_service_agent_flags_slow_service(database, notifications):
    agent = ServiceAgent(database.host, database.name,
                         notifications=notifications)
    database.host.extra_runnable = database.host.effective_cpus() * 40
    findings = agent.monitor()
    assert any(f.kind in ("service-slow", "service-down")
               for f in findings)


# ------------------------------------------------------------------- os --

def test_os_agent_kills_runaway(database, sim, notifications):
    agent = OsNetworkAgent(database.host, notifications=notifications)
    database.host.ptable.spawn("user1", "runaway.sh", cpu_pct=96.0)
    agent.run()
    assert not database.host.ptable.alive("runaway.sh")
    assert agent.stats.heals_succeeded == 1


def test_os_agent_kills_leak(database, sim, notifications):
    agent = OsNetworkAgent(database.host, notifications=notifications)
    free = database.host.memory_free_mb()
    database.host.ptable.spawn("app", "leaky_daemon", mem_mb=free * 0.99)
    agent.run()
    assert not database.host.ptable.alive("leaky_daemon")


def test_os_agent_reports_network_trouble_without_healing(
        dc, database, sim, notifications):
    agent = OsNetworkAgent(database.host, notifications=notifications,
                           admin_targets=["adm01"])
    dc.lan("public0").fail()
    dc.lan("agentnet").fail()
    agent.run()
    assert agent.stats.escalations >= 1
    assert dc.lan("public0").up is False      # nothing auto-repaired


def test_os_agent_detects_nic_failure(dc, database, notifications):
    agent = OsNetworkAgent(database.host, notifications=notifications)
    next(iter(database.host.nics.values())).fail()
    findings = agent.monitor()
    assert any(f.kind == "nic-failed" for f in findings)


def test_os_agent_watches_nameservice(sim, database, notifications):
    ns = NameService(sim)
    agent = OsNetworkAgent(database.host, nameservice=ns,
                           notifications=notifications)
    assert agent.monitor() == []
    ns.fail()
    assert any(f.kind == "dns-down" for f in agent.monitor())
    ns.repair()
    ns.slow()
    assert any(f.kind == "dns-slow" for f in agent.monitor())


# ------------------------------------------------------------- resource --

def test_resource_agent_cleans_full_logs(database, sim, notifications):
    agent = ResourceAgent(database.host, notifications=notifications)
    database.host.fs.fill("/logs", 0.95)
    agent.run()
    assert database.host.fs.mounts["/logs"].pct_used < 90.0
    assert agent.stats.heals_succeeded == 1


def test_resource_agent_escalates_data_growth(database, notifications):
    agent = ResourceAgent(database.host, notifications=notifications)
    database.host.fs.fill("/data", 0.95)
    agent.run()
    # real growth is a capacity decision: notify, do not delete
    assert agent.stats.escalations == 1
    assert database.host.fs.mounts["/data"].pct_used > 90.0


def test_resource_agent_escalates_dead_disk(database, notifications):
    from repro.cluster.hardware import ComponentKind
    agent = ResourceAgent(database.host, notifications=notifications)
    database.host.inventory.of_kind(ComponentKind.DISK)[0].fail(0.0)
    agent.run()
    assert any("cannot fix" in n.subject for n in notifications.sent)


def test_resource_agent_notes_slow_disks(database, notifications):
    agent = ResourceAgent(database.host, notifications=notifications)
    database.host.add_io_demand(database.host.online_disks() * 0.97)
    findings = agent.monitor()
    assert any(f.kind == "disk-slow" for f in findings)


# ------------------------------------------------------------- hardware --

def test_hardware_agent_names_the_fru(database, notifications):
    agent = HardwareAgent(database.host, notifications=notifications)
    assert agent.monitor() == []
    database.host.inventory.find("memory_bank1").fail(0.0)
    findings = agent.monitor()
    assert any(f.subject.endswith("memory_bank1") for f in findings)
    agent.run()
    # escalated with the component named
    assert any("memory_bank1" in n.subject or "memory_bank1" in n.body
               for n in notifications.sent)


def test_hardware_agent_warns_on_degraded(database, notifications):
    agent = HardwareAgent(database.host, notifications=notifications)
    comp = database.host.inventory.find("cpu_board0")
    for _ in range(3):
        comp.degrade(0.0)
    findings = agent.monitor()
    assert any(f.kind == "hw-degraded" for f in findings)


# --------------------------------------------------------------- status --

def test_status_agent_builds_and_stores_dlsp(database, sim):
    received = []
    agent = StatusAgent(database.host, deliver=received.append)
    agent.run()
    assert len(received) == 1
    assert received[0].hostname == "db01"
    # the profile also landed on the local filesystem
    from repro.core.status_agent import DLSP_DIR
    assert database.host.fs.files_in_dir(DLSP_DIR)


def test_status_agent_prunes_old_profiles(database, sim):
    agent = StatusAgent(database.host, deliver=lambda d: None)
    database.host.crond.remove(agent.name)
    agent.run()
    first = database.host.fs.files_in_dir(
        "/logs/intelliagents/dlsp")
    sim.run(until=sim.now + 4000.0)
    agent.run()
    remaining = database.host.fs.files_in_dir(
        "/logs/intelliagents/dlsp")
    assert first[0] not in remaining


def test_status_agent_ships_over_channel(dc, database, channel, sim):
    received = []
    agent = StatusAgent(database.host, deliver=received.append,
                        channel=channel, admin_targets=["adm01"])
    agent.run()
    assert received and channel.stats()["delivered"] >= 1
    # network dead: profile not delivered
    dc.lan("public0").fail()
    dc.lan("agentnet").fail()
    agent.run()
    assert len(received) == 1


# ---------------------------------------------------------- performance --

def test_performance_agent_samples_all_groups(database, sim, notifications):
    agent = PerformanceAgent(database.host, notifications=notifications)
    agent.run()
    assert agent.samplers.samples_taken == 5
    assert agent.timeline("os", "cpu_idle") is not None


def test_performance_agent_reports_breach(database, sim, notifications):
    agent = PerformanceAgent(database.host, notifications=notifications)
    database.host.ptable.spawn("greedy", "miner", cpu_pct=97.0)
    agent.run()
    assert agent.breaches_seen >= 1
    assert agent.reports_sent >= 1
    report = agent.report_log.lines()[-1]
    assert "suspect=" in report and "greedy" in report
    # limited troubleshooting: it did NOT kill anything
    assert database.host.ptable.alive("miner")


def test_performance_agent_quiet_on_healthy_host(database, sim,
                                                 notifications):
    agent = PerformanceAgent(database.host, notifications=notifications)
    agent.run()
    assert agent.breaches_seen == 0
    assert notifications.count() == 0
