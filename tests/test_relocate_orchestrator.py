"""Live orchestrator tests: a test-scale site with spares, driven
through crash -> escalate -> relocate end to end."""

import pytest

from repro.experiments.site import SiteConfig, build_site
from repro.relocate import service_alias
from repro.trace import install_tracer
from repro.traffic.frontdoor import FrontDoor


@pytest.fixture
def site():
    return build_site(SiteConfig.test_scale(
        seed=11, spare_servers=1, with_workload=False, with_feeds=False))


def _sms(site):
    return [n for n in site.notifications.sent if n.medium == "sms"]


def test_site_wires_relocation_tier(site):
    assert site.spares is not None and site.relocator is not None
    assert site.admin.relocator is site.relocator
    assert site.spares.available() == ["sp000"]
    # the spare's idle slots stay cold and unmonitored
    for app in site.dc.host("sp000").apps.values():
        assert app.state.value == "stopped" and not app.auto_start


def test_crashed_host_relocates_instead_of_paging(site):
    tracer = install_tracer(site.sim)
    site.run(1200.0)                      # past the watchdog warm-up
    victim = site.dc.host("fe000")
    door = FrontDoor("frontend", site.frontends)
    site.reroute.register_door(door)
    old_fe = victim.apps["finapp_fe000"]

    victim.crash("power supply")
    site.run(3 * site.admin.watch_period)

    rel = site.relocator
    assert rel.succeeded == 2 and rel.failed == 0
    by_subject = {r.subject: r for r in rel.records}
    fin = by_subject["fe000/finapp_fe000"]
    web = by_subject["fe000/httpd_fe000"]
    assert fin.success and web.success
    # sorted order: finapp claims the spare (cold), httpd finds the
    # spare taken and warm-takes-over onto the surviving peer
    assert fin.cold and fin.target_host == "sp000"
    assert not web.cold and web.target_host == "fe001"
    assert fin.duration is not None and fin.duration <= rel.budget
    assert site.spares.claimed_for("sp000") == "fe000/finapp_fe000"

    # escalation stopped at the relocation tier: nobody was paged
    assert _sms(site) == []
    log = site.pool.read(site.admin.primary, "/admin/actions.log")
    assert any("RELOCATING fe000" in line for line in log)

    # every phase left a span on the record
    for name in ("relocate.plan", "relocate.drain", "relocate.start",
                 "relocate.verify"):
        subjects = {s.attrs.get("subject") for s in tracer.spans_named(name)}
        assert {"fe000/finapp_fe000", "fe000/httpd_fe000"} <= subjects
    done = [i for i in tracer.instants if i["name"] == "relocate.done"]
    assert len(done) == 2

    # the front door followed the service: old instance out, new one
    # in and not flagged down
    assert old_fe not in door.apps
    new_fe = site.dc.host("sp000").apps["finapp_sp000"]
    assert new_fe in door.apps and new_fe.is_running()
    assert "sp000" not in door.down_servers()
    # ... and so did the name service
    ip, _ = site.nameservice.lookup(service_alias("finapp_fe000"))
    assert ip in {n.ip for n in site.dc.host("sp000").nics.values()}


def test_no_placement_rolls_back_and_pages(site):
    site.run(1200.0)
    # kill the spare and every frontend peer in one blast: nothing
    # satisfies the constraints, so the relocation tier must fall
    # through to the pager
    for name in ("sp000", "fe001", "fe000"):
        site.dc.host(name).crash("blast")
    site.run(3 * site.admin.watch_period)

    rel = site.relocator
    assert rel.succeeded == 0 and rel.failed >= 2
    assert all(not r.success and "no feasible placement" in r.reason
               for r in rel.records)
    assert site.spares.claims == {}
    pages = _sms(site)
    assert pages and any("fe000" in n.subject for n in pages)
    log = site.pool.read(site.admin.primary, "/admin/actions.log")
    assert any("ESCALATED" in line for line in log)


def test_relocation_budget_blows_to_rollback(site):
    site.run(1200.0)
    rel = site.relocator
    rel.budget = 120.0                    # far below a cold start
    victim = site.dc.host("fe000")
    # poison the spare's only frontend slot *and* the peer's: every
    # start/verify stalls until the budget burns
    site.dc.host("sp000").apps["finapp_sp000"].config_ok = False
    site.dc.host("fe001").apps["finapp_fe001"].config_ok = False

    victim.crash("power supply")
    site.run(3 * site.admin.watch_period)

    fin = next(r for r in rel.records
               if r.subject == "fe000/finapp_fe000")
    assert not fin.success
    assert fin.duration is not None and fin.duration >= rel.budget - 60.0
    # the claimed spare went back to the pool on rollback
    assert site.spares.claimed_for("sp000") is None
    assert any("fe000" in n.subject for n in _sms(site))


def test_inflight_relocation_is_not_restarted(site):
    site.run(1200.0)
    app = site.dc.host("fe000").apps["finapp_fe000"]
    assert site.relocator.relocate(app, "test") is not None
    assert site.relocator.relocate(app, "test") is None
    assert len(site.relocator.records) == 1
