"""Unit tests for the agent channel's private->public failover."""

import pytest

from repro.net.routing import AgentChannel


@pytest.fixture
def ch(dc):
    return AgentChannel(dc, "agentnet", ["public0"])


def test_prefers_private(ch):
    d = ch.send("db01", "adm01")
    assert d.ok and d.lan_kind == "private" and not d.rerouted


def test_reroutes_over_public_on_private_failure(dc, ch):
    dc.lan("agentnet").fail()
    d = ch.send("db01", "adm01")
    assert d.ok and d.lan_kind == "public" and d.rerouted
    stats = ch.stats()
    assert stats["rerouted"] == 1
    assert stats["bytes_public"] > 0


def test_reroutes_on_private_nic_failure(dc, ch):
    dc.lan("agentnet").nic_of(dc.host("db01")).fail()
    d = ch.send("db01", "adm01")
    assert d.ok and d.rerouted


def test_fails_when_everything_down(dc, ch):
    dc.lan("agentnet").fail()
    dc.lan("public0").fail()
    d = ch.send("db01", "adm01")
    assert not d.ok and d.error == "unreachable"
    assert ch.stats()["failed"] == 1


def test_host_down_delivery_fails(dc, ch):
    dc.host("adm01").crash("x")
    assert ch.send("db01", "adm01").error == "host-down"


def test_unknown_host(ch):
    assert ch.send("db01", "ghost").error == "unknown-host"


def test_broadcast(dc, ch):
    results = ch.broadcast("db01", ["adm01", "adm02"])
    assert all(d.ok for d in results)
    assert ch.stats()["delivered"] == 2


def test_delivery_rate(dc, ch):
    ch.send("db01", "adm01")
    dc.lan("agentnet").fail()
    dc.lan("public0").fail()
    ch.send("db01", "adm01")
    assert ch.stats()["delivery_rate"] == 0.5


def test_bytes_accounting_by_lan(dc, ch):
    ch.send("db01", "adm01", 1000)
    dc.lan("agentnet").fail()
    ch.send("db01", "adm01", 2000)
    stats = ch.stats()
    assert stats["bytes_private"] == 1000
    assert stats["bytes_public"] == 2000
