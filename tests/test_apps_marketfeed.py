"""Unit tests for the market data feed."""

import pytest

from repro.apps.marketfeed import MarketFeed


@pytest.fixture
def feed(dc, database):
    f = MarketFeed(dc, "reuters", "adm02", [database], interval=60.0)
    f.start()
    return f


def test_ticks_flow_into_database(sim, feed, database):
    t0 = database.transactions
    sim.run(until=sim.now + 600.0)
    assert feed.ticks_delivered >= 9
    assert feed.ticks_dropped == 0
    assert database.transactions > t0
    assert feed.delivery_rate() == 1.0


def test_ticks_drop_when_db_down(sim, feed, database):
    sim.run(until=sim.now + 300.0)
    database.crash("x")
    sim.run(until=sim.now + 300.0)
    assert feed.ticks_dropped >= 4
    assert feed.delivery_rate() < 1.0


def test_stall_detection(sim, feed, database):
    sim.run(until=sim.now + 120.0)
    assert feed.stalled_for(sim.now) < 120.0
    database.crash("x")
    sim.run(until=sim.now + 600.0)
    assert feed.stalled_for(sim.now) >= 500.0


def test_network_outage_drops_ticks(sim, feed, dc):
    sim.run(until=sim.now + 120.0)
    dc.lan("public0").fail()
    dc.lan("agentnet").fail()
    dropped0 = feed.ticks_dropped
    sim.run(until=sim.now + 300.0)
    assert feed.ticks_dropped > dropped0


def test_stop_halts_pump(sim, feed):
    sim.run(until=sim.now + 120.0)
    sent = feed.ticks_sent
    feed.stop()
    sim.run(until=sim.now + 600.0)
    assert feed.ticks_sent == sent
    # double stop is safe
    feed.stop()


def test_start_idempotent(sim, feed):
    feed.start()
    sim.run(until=sim.now + 120.0)
    # one pump only: ticks at 60s cadence, 2 per 120s per target
    assert feed.ticks_sent <= 3
