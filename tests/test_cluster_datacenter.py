"""Unit tests for the datacentre registry."""

import pytest

from repro.net.network import Lan


def test_lookup_and_groups(dc):
    assert dc.host("db01").name == "db01"
    assert [h.name for h in dc.group("admin")] == ["adm01", "adm02"]
    assert len(dc.all_hosts()) == 4
    with pytest.raises(KeyError):
        dc.host("nope")


def test_duplicate_host_rejected(dc):
    with pytest.raises(ValueError):
        dc.add_host("db01", "sun-e450")


def test_duplicate_lan_rejected(dc, sim):
    with pytest.raises(ValueError):
        dc.add_lan(Lan(sim, "public0"))


def test_up_hosts_tracks_state(dc):
    assert len(dc.up_hosts()) == 4
    dc.host("db01").crash("x")
    assert len(dc.up_hosts()) == 3


def test_shared_lans(dc, sim):
    lans = dc.shared_lans("db01", "adm01")
    assert {l.name for l in lans} == {"public0", "agentnet"}
    # a host on no common LAN
    lonely = dc.add_host("lonely", "linux-x86")
    assert dc.shared_lans("db01", "lonely") == []


def test_probe_happy_path(dc):
    ok, rtt = dc.probe("db01", "adm01")
    assert ok and rtt > 0


def test_probe_fails_when_host_down(dc):
    dc.host("adm01").crash("x")
    assert dc.probe("db01", "adm01") == (False, 0.0)


def test_probe_fails_when_all_shared_lans_down(dc):
    dc.lan("public0").fail()
    dc.lan("agentnet").fail()
    assert not dc.probe("db01", "adm01")[0]
    dc.lan("agentnet").repair()
    assert dc.probe("db01", "adm01")[0]


def test_probe_unknown_host(dc):
    assert dc.probe("db01", "ghost") == (False, 0.0)


def test_probe_fails_when_nic_dead(dc):
    nic = dc.lan("public0").nic_of(dc.host("db01"))
    nic.fail()
    # agentnet still shared and healthy
    assert dc.probe("db01", "adm01")[0]
    dc.lan("agentnet").nic_of(dc.host("db01")).fail()
    assert not dc.probe("db01", "adm01")[0]
