"""Unit tests for the chaos scenario DSL."""

import pytest

from repro.chaos.scenario import (BUILDERS, MAX_EVENTS, MAX_HORIZON,
                                  MIN_HORIZON, OPS, TARGET_POOLS,
                                  ChaosEvent, Scenario, build_corpus,
                                  make_target, parse_target,
                                  random_scenario)
from repro.sim import RandomStreams


def test_parse_target():
    assert parse_target("db[3]") == ("db", 3)
    assert parse_target("dns") == ("dns", 0)
    assert parse_target("tphost[0]") == ("tphost", 0)
    with pytest.raises(ValueError):
        parse_target("db[x]")


def test_make_target_round_trips():
    for pool in TARGET_POOLS:
        sel = make_target(pool, 2)
        got_pool, _idx = parse_target(sel)
        assert got_pool == pool


def test_event_validate_rejects_unknown_op():
    with pytest.raises(ValueError, match="unknown op"):
        ChaosEvent(10.0, "frobnicate", "db[0]").validate()


def test_event_validate_rejects_mismatched_pool():
    # db-crash needs a database; tphost[] is a host pool
    with pytest.raises(ValueError, match="needs a database target"):
        ChaosEvent(10.0, "db-crash", "tphost[0]").validate()


def test_event_validate_rejects_negative_time():
    with pytest.raises(ValueError, match="time"):
        ChaosEvent(-1.0, "db-crash", "db[0]").validate()


def test_normalized_sorts_clamps_and_caps():
    events = [ChaosEvent(5000.0, "app-crash", "fe[0]"),
              ChaosEvent(100.0, "db-crash", "db[0]"),
              ChaosEvent(1e9, "cron-death", "dbhost[0]")]
    sc = Scenario(name="x", events=events, horizon=1e12).normalized()
    assert sc.horizon == MAX_HORIZON
    times = [e.time for e in sc.events]
    assert times == sorted(times)
    assert all(t < sc.horizon for t in times)
    sc.validate()


def test_normalized_caps_event_count():
    events = [ChaosEvent(float(i), "app-crash", "fe[0]")
              for i in range(MAX_EVENTS + 20)]
    sc = Scenario(name="x", events=events, horizon=7200.0).normalized()
    assert len(sc.events) == MAX_EVENTS


def test_validate_rejects_tiny_horizon():
    sc = Scenario(name="x", horizon=MIN_HORIZON / 2)
    with pytest.raises(ValueError, match="horizon"):
        sc.validate()


def test_validate_rejects_unsorted_events():
    sc = Scenario(name="x", events=[
        ChaosEvent(500.0, "app-crash", "fe[0]"),
        ChaosEvent(100.0, "db-crash", "db[0]")], horizon=3600.0)
    with pytest.raises(ValueError, match="sorted"):
        sc.validate()


def test_json_round_trip_exact():
    sc = build_corpus(7)["resource-squeeze"]     # has params
    back = Scenario.from_json(sc.to_json())
    assert back.to_dict() == sc.to_dict()
    assert back.scenario_id == sc.scenario_id


def test_scenario_id_tracks_content():
    a = build_corpus(0)["cascade"]
    b = build_corpus(1)["cascade"]               # different site seed
    assert a.scenario_id != b.scenario_id
    assert a.scenario_id.startswith("cascade#")


def test_every_builder_is_valid_and_named():
    corpus = build_corpus(0)
    assert len(corpus) >= 10
    for name, sc in corpus.items():
        assert sc.name == name
        sc.validate()
        for ev in sc.events:
            assert ev.op in OPS


def test_random_scenario_is_valid_and_stream_deterministic():
    a = random_scenario(RandomStreams(5).get("g"), "r", seed=5)
    b = random_scenario(RandomStreams(5).get("g"), "r", seed=5)
    a.validate()
    assert a.to_json() == b.to_json()
