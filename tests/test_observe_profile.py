"""Unit tests for the kernel self-profiler."""

from repro.observe import KernelProfiler, format_profile, install_profiler
from repro.sim import Simulator
from repro.sim.kernel import Periodic


class Beeper:
    def __init__(self, sim, period):
        self.beeps = 0
        Periodic(sim, period, self.beep, ()).start(period)

    def beep(self):
        self.beeps += 1


def tick():
    pass


def test_kernel_dispatches_directly_without_profiler(sim):
    assert sim.profiler is None
    Beeper(sim, 10.0)
    sim.run(until=100.0)
    # nothing recorded anywhere; the off path is the default


def test_profiler_attributes_by_callback_owner(sim):
    prof = install_profiler(sim)
    assert sim.profiler is prof
    beeper = Beeper(sim, 10.0)
    for i in range(5):
        sim.schedule(i * 7.0, tick)
    sim.run(until=100.0)

    assert prof.total_events == sim.events_processed
    assert beeper.beeps == 10
    # Periodic wraps the callback in its own bound method, so the
    # owner is the Periodic helper; the bare function buckets by module
    assert prof.events["Periodic"] == 10
    assert prof.events["test_observe_profile"] == 5
    assert prof.total_wall > 0.0


def test_report_and_format(sim):
    prof = install_profiler(sim)
    Beeper(sim, 10.0)
    sim.run(until=100.0)
    rows = prof.report()
    assert rows and rows == sorted(rows, key=lambda r: -r[1])
    text = format_profile(prof)
    assert "KERNEL PROFILE" in text and "Periodic" in text
    snap = prof.snapshot()
    assert snap["Periodic"]["events"] == 10


def test_format_profile_empty():
    assert "(no events recorded)" in format_profile(KernelProfiler())


def test_reset_clears_attribution(sim):
    prof = install_profiler(sim)
    Beeper(sim, 10.0)
    sim.run(until=50.0)
    assert prof.total_events > 0
    prof.reset()
    assert prof.total_events == 0 and prof.report() == []


def test_profiler_exceptions_still_timed():
    prof = KernelProfiler()

    def boom():
        raise RuntimeError("x")

    try:
        prof.record(boom, ())
    except RuntimeError:
        pass
    assert prof.events["test_observe_profile"] == 1


def test_profiler_attached_mid_run_is_picked_up_next_run():
    sim = Simulator()
    Beeper(sim, 10.0)
    sim.run(until=50.0)
    prof = install_profiler(sim)
    sim.run(until=100.0)
    assert prof.total_events == 5
