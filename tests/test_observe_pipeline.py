"""Unit tests for the telemetry hub: ring series, rollup ticks,
condition push and windowed burn inputs."""

import pytest

from repro.controlplane.ledger import ConditionLedger
from repro.metrics.timeseries import TimeSeries
from repro.observe import DEFAULT_COUNTERS, TelemetryHub
from repro.trace.metrics import MetricsRegistry


class FakeSli:
    def __init__(self):
        self.attempted = 0.0
        self.served = 0.0


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def hub(sim, registry):
    return TelemetryHub(sim, interval=60.0, maxlen=8, registry=registry)


def test_interval_must_be_positive(sim):
    with pytest.raises(ValueError):
        TelemetryHub(sim, interval=0.0)


def test_series_are_ring_bounded(hub):
    s = hub.series("x")
    assert isinstance(s, TimeSeries) and s.maxlen == 8
    for i in range(40):
        s.append(float(i), float(i))
    assert len(s) <= 16          # amortised trim: never 2x the cap
    assert s.dropped >= 24
    assert s.last() == 39.0      # the newest samples survive


def test_rollup_tick_snapshots_watched_counters(sim, hub, registry):
    registry.counter("agent.runs").inc(10)
    hub.watch_counter("agent.runs")
    hub.start()
    sim.run(until=60.0)
    registry.counter("agent.runs").inc(30)
    sim.run(until=120.0)
    assert hub.ticks == 2
    cum = hub.series("metric/agent.runs")
    rate = hub.series("metric/agent.runs/rate")
    assert cum.last() == 40.0
    assert rate.last() == pytest.approx(30.0 / 60.0)


def test_default_counters_are_watched(sim, hub):
    for name in DEFAULT_COUNTERS:
        assert name in hub.watched


def test_sli_rollup_builds_cumulative_attempted_and_bad(sim, hub):
    sli = FakeSli()
    hub.attach_slis({"web": sli})
    hub.start()
    sli.attempted, sli.served = 100.0, 90.0
    sim.run(until=60.0)
    assert hub.series("svc/web/attempted").last() == 100.0
    assert hub.series("svc/web/bad").last() == 10.0
    assert hub.service_names() == ["web"]


def test_condition_push_is_o1_per_event(sim, hub):
    ledger = ConditionLedger()
    hub.attach_ledger(ledger)
    hub.attach_ledger(ledger)           # idempotent
    sim.run(until=10.0)
    ledger.append("host", "db01", status="down", time=sim.now)
    ledger.append("flag", "db01", agent="svc_ora", status="fault",
                  time=sim.now)
    assert hub.hosts_down == {"db01"}
    assert hub.conditions_by_kind == {"host": 1, "flag": 1}
    assert hub.events_in == 2
    assert hub.series("host/db01/up").last() == 0.0
    assert hub.series("host/db01/faults").last() == 1.0
    ledger.append("host", "db01", status="up", time=sim.now)
    assert hub.hosts_down == set()
    assert hub.series("host/db01/up").last() == 1.0
    assert len(hub.condition_log) == 3


def test_window_delta_on_cumulative_series(sim, hub):
    s = hub.series("svc/web/attempted")
    for t, v in ((0.0, 0.0), (60.0, 100.0), (120.0, 250.0)):
        s.append(t, v)
    assert hub.window_delta("svc/web/attempted", 60.0, now=120.0) \
        == pytest.approx(150.0)
    assert hub.window_delta("svc/web/attempted", 1e9, now=120.0) \
        == pytest.approx(250.0)
    assert hub.window_delta("missing", 60.0) == 0.0


def test_record_and_snapshot(sim, hub):
    sim.run(until=5.0)
    hub.record("adhoc", 42.0)
    snap = hub.snapshot()
    assert snap["adhoc"] == {"len": 1, "last": 42.0, "dropped": 0}
    assert "adhoc" in hub.names()


def test_stop_cancels_the_rollup(sim, hub):
    hub.start()
    sim.run(until=60.0)
    assert hub.ticks == 1
    hub.stop()
    sim.run(until=600.0)
    assert hub.ticks == 1
