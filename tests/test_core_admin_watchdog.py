"""Watchdog and escalation behaviour of the administration servers.

Covers the paper's "monitor the creation of these flags every X+5
minutes" loop end to end: stale detection at the exact period
boundary, the SMS page + pool log line when agents go quiet, the
one-escalation-per-incident latch (including re-arming after a
recovery and after a flap too fast for the watchdog to observe), and
the observability of shared-pool write failures.
"""

import pytest

from repro.cluster.filesystem import FsOfflineError
from repro.core.admin import AdministrationServers
from repro.core.flags import FlagStore
from repro.core.suite import AgentSuite
from repro.trace import install_tracer


@pytest.fixture(params=["scan", "ledger", "paired"])
def wired(request, dc, sim, channel, notifications, pool, database,
          frontend):
    """Suites on db01/fe01 under an admin pair (conftest topology),
    exercised under every control-plane mode -- the watchdog behaviour
    must be identical whether hosts are found by full rescan or by
    ledger deltas."""
    admin = AdministrationServers(dc, dc.host("adm01"), dc.host("adm02"),
                                  pool, channel=channel,
                                  notifications=notifications,
                                  control_plane=request.param)
    suites = {}
    for hostname in ("db01", "fe01"):
        suite = AgentSuite(dc.host(hostname), channel=channel,
                           admin_targets=["adm01", "adm02"],
                           notifications=notifications,
                           deliver_dlsp=admin.receive_dlsp)
        suites[hostname] = suite
        admin.register_suite(suite)
    yield admin, suites
    # paired mode cross-checks every sweep and every DGSPL build
    assert admin.sweep_mismatches == 0
    assert admin.dgspl_mismatches == 0


def _sms_for(notifications, host_name):
    return [n for n in notifications.sent
            if n.medium == "sms" and host_name in n.subject]


# -- stale detection ---------------------------------------------------------

def test_stale_detection_at_period_boundary(wired, sim, dc):
    """An agent is stale strictly *after* watch_period since its last
    flag -- at exactly the boundary it is still considered alive."""
    admin, suites = wired
    sim.run(until=sim.now + 1200.0)
    host = dc.host("db01")
    suite = suites["db01"]
    latest = {a.name: FlagStore(host.fs, a.name).latest_time()
              for a in suite.agents}
    assert all(t > 0 for t in latest.values())

    at_boundary = min(latest.values()) + admin.watch_period
    assert admin._stale_agents(host, suite, at_boundary) == sorted(
        name for name, t in latest.items()
        if at_boundary - t > admin.watch_period)
    # the earliest flag is exactly at the boundary: not stale yet
    assert min(latest, key=latest.get) not in admin._stale_agents(
        host, suite, at_boundary)
    # one tick past the boundary it is
    assert min(latest, key=latest.get) in admin._stale_agents(
        host, suite, at_boundary + 1.0)


def test_quiet_agents_escalate_with_sms_and_pool_log(wired, sim, dc,
                                                     notifications):
    """All of a host's agents silenced (cron alive, jobs gone): the
    watchdog cannot repair crond, so it pages and logs to the pool."""
    admin, suites = wired
    sim.run(until=sim.now + 1200.0)
    host = dc.host("db01")
    for agent in suites["db01"].agents:
        host.crond.remove(agent.name)
    sim.run(until=sim.now + 3 * admin.watch_period)
    assert "db01" in admin.hosts_escalated
    pages = _sms_for(notifications, "db01")
    assert len(pages) == 1
    assert "agents not flagging" in pages[0].subject
    log = admin.pool.read(admin.primary, "/admin/actions.log")
    assert any("ESCALATED db01" in line for line in log)


# -- the escalation latch ----------------------------------------------------

def test_escalation_is_one_page_per_incident(wired, sim, dc, notifications):
    admin, _ = wired
    sim.run(until=sim.now + 1200.0)
    dc.host("db01").crash("dead")
    sim.run(until=sim.now + 5 * admin.watch_period)
    # many sweeps saw the host down; exactly one page went out
    assert len(_sms_for(notifications, "db01")) == 1


def test_reescalates_after_observed_recovery(wired, sim, dc, notifications):
    """Down -> page -> recover (flags green again) -> down again is a
    second incident and pages a second time."""
    admin, _ = wired
    sim.run(until=sim.now + 1200.0)
    host = dc.host("db01")
    host.crash("dead")
    sim.run(until=sim.now + 2 * admin.watch_period)
    assert len(_sms_for(notifications, "db01")) == 1
    host.boot()
    # long enough for the boot, fresh flags and a green sweep
    sim.run(until=sim.now + host.boot_duration + 3 * admin.watch_period)
    assert "db01" not in admin.hosts_escalated
    host.crash("dead again")
    sim.run(until=sim.now + 2 * admin.watch_period)
    assert len(_sms_for(notifications, "db01")) == 2


def test_fast_flap_reescalates_via_up_signal(wired, sim, dc, notifications):
    """Crash -> boot -> crash again *before any sweep sees the host
    green*: the boot (up_signal) re-arms the latch, so the relapse is
    still paged as a new incident."""
    admin, _ = wired
    sim.run(until=sim.now + 1200.0)
    host = dc.host("db01")
    host.crash("dead")
    sim.run(until=sim.now + 2 * admin.watch_period)
    assert len(_sms_for(notifications, "db01")) == 1
    host.boot()
    # just past the boot: the host is up but no watchdog sweep has
    # observed fresh flags (those need a full agent period)
    sim.run(until=sim.now + host.boot_duration + 5.0)
    assert host.is_up
    assert "db01" in admin.hosts_escalated        # latch never cleared
    host.crash("flapped")
    sim.run(until=sim.now + 2 * admin.watch_period)
    assert len(_sms_for(notifications, "db01")) == 2


# -- pool-write observability ------------------------------------------------

def test_pool_write_failure_counted_and_logged(wired, sim, dc, monkeypatch):
    admin, _ = wired
    tracer = install_tracer(sim)

    def boom(*args, **kwargs):
        raise FsOfflineError("nfs: server not responding")

    monkeypatch.setattr(admin.pool, "append", boom)
    admin._log_pool("probe line")
    assert admin.pool_write_failures == 1
    recs = admin.primary.syslog.grep(tag="admin-servers",
                                     contains="pool write failed")
    assert recs and "actions.log" in recs[-1].message
    assert tracer.metrics.counter("admin.pool_write_failures").value == 1


def test_dlsp_pool_write_failure_keeps_memory_copy(wired, sim, monkeypatch):
    admin, _ = wired
    sim.run(until=sim.now + 1000.0)
    dlsp = admin.dlsps["db01"]

    def boom(*args, **kwargs):
        raise FsOfflineError("nfs: server not responding")

    monkeypatch.setattr(admin.pool, "write", boom)
    admin.receive_dlsp(dlsp)
    assert admin.pool_write_failures == 1
    assert admin.dlsps["db01"] is dlsp          # in-memory copy survives
