"""Unit tests for the SystemEdge-style operator console."""

import pytest

from repro.ops.console import OperatorConsole


@pytest.fixture
def console(sim, notifications):
    return OperatorConsole(notifications, sim)


def test_critical_notification_raises_alarm(console, notifications):
    notifications.email("ops", "db01/ora down", severity="critical",
                        sender="svc_ora")
    alarms = console.active()
    assert len(alarms) == 1
    assert alarms[0].severity == "critical"
    assert alarms[0].sender == "svc_ora"


def test_info_mail_is_not_an_alarm(console, notifications):
    notifications.email("ops", "daily batch summary", severity="info")
    assert console.active() == []
    assert console.total_notifications == 1


def test_duplicates_fold_with_count(console, notifications, sim):
    notifications.email("ops", "db01 trouble", severity="warning")
    sim.run(until=100.0)
    notifications.email("ops", "db01 trouble", severity="warning")
    alarms = console.active()
    assert len(alarms) == 1
    assert alarms[0].count == 2
    assert alarms[0].last_seen == 100.0
    assert alarms[0].first_seen == 0.0


def test_severity_escalates_never_downgrades(console, notifications):
    notifications.email("ops", "x", severity="warning")
    notifications.email("ops", "x", severity="critical")
    assert console.active()[0].severity == "critical"
    notifications.email("ops", "x", severity="warning")
    assert console.active()[0].severity == "critical"


def test_ordering_severity_then_age(console, notifications, sim):
    notifications.email("ops", "old warning", severity="warning")
    sim.run(until=50.0)
    notifications.email("ops", "late critical", severity="critical")
    subjects = [a.subject for a in console.active()]
    assert subjects == ["late critical", "old warning"]


def test_ack_workflow(console, notifications):
    notifications.email("ops", "x", severity="critical")
    assert console.ack("x", "carol")
    assert console.active()[0].acked_by == "carol"
    assert console.active(unacked_only=True) == []
    assert not console.ack("ghost", "carol")


def test_clear_moves_to_history(console, notifications):
    notifications.email("ops", "x", severity="critical")
    assert console.clear("x")
    assert console.active() == []
    assert len(console.cleared) == 1
    assert not console.clear("x")


def test_clear_matching(console, notifications):
    notifications.email("ops", "db01/ora down", severity="critical")
    notifications.email("ops", "db01/web down", severity="critical")
    notifications.email("ops", "fe01/gui down", severity="critical")
    assert console.clear_matching("db01") == 2
    assert len(console.active()) == 1


def test_board_rendering(console, notifications, sim):
    assert "(all quiet)" in console.board()
    notifications.email("ops", "db01/ora down", severity="critical")
    notifications.email("ops", "db01/ora down", severity="critical")
    console.ack("db01/ora down", "dave")
    board = console.board()
    assert "CRITICAL" in board
    assert "x2" in board
    assert "ack:dave" in board


def test_console_on_live_site(test_site):
    """Console rides the real channel: injected fault -> alarm."""
    site = test_site
    console = OperatorConsole(site.notifications, site.sim)
    from repro.cluster.hardware import ComponentKind
    from repro.faults.injector import FaultInjector
    inj = FaultInjector(site.dc, site.streams.get("x"))
    inj.component_failure(site.databases[0].host, ComponentKind.DISK)
    site.run(900.0)
    assert any("cannot fix" in a.subject for a in console.active())

def test_board_shows_live_counters_when_traced(console, notifications, sim):
    from repro.trace import install_tracer

    board = console.board()
    assert "site counters" not in board       # untraced sim: no line
    tracer = install_tracer(sim)
    tracer.metrics.counter("faults.injected").inc(3)
    tracer.metrics.counter("agent.heals_succeeded").inc(2)
    board = console.board()
    assert "faults.injected=3" in board
    assert "agent.heals_succeeded=2" in board


# -- condition-ledger feed ----------------------------------------------------

def test_console_mirrors_the_condition_stream(console):
    from repro.controlplane import ConditionLedger
    led = ConditionLedger()
    console.attach_ledger(led)
    led.append("flag", "db01", agent="osnet", status="ok")
    led.append("flag", "db01", agent="osnet", status="fault")
    led.append("host", "fe01", status="down")
    assert console.condition_counts == {"flag": 2, "host": 1}
    assert console.last_condition_version == 3
    board = console.board(now=0.0)
    assert "control plane: v3" in board
    assert "flag=2" in board and "host=1" in board


def test_board_without_ledger_has_no_control_plane_line(console):
    assert "control plane" not in console.board(now=0.0)
