"""Unit tests for the trigger bus and the agent demand-wake path."""

import pytest

from repro.core.suite import AgentSuite
from repro.wake import TriggerBus


class _Probe:
    """A fake agent recording demand wakes."""

    def __init__(self, name, accept=True):
        self.name = name
        self.accept = accept
        self.wakes = []

    def demand_wake(self, trigger=None):
        if not self.accept:
            return False
        self.wakes.append(trigger)
        return True


def test_syslog_severity_threshold(sim, db_host):
    bus = TriggerBus(db_host)
    bus.attach_syslog(min_severity="err")
    probe = _Probe("p")
    bus.subscribe(probe, lambda t: t.kind == "syslog")
    db_host.syslog.info(sim.now, "oracle", "routine checkpoint")
    assert probe.wakes == []
    db_host.syslog.error(sim.now, "oracle", "ORA-600")
    assert len(probe.wakes) == 1
    trig = probe.wakes[0]
    assert trig.subject == "oracle" and trig.severity == "err"
    with pytest.raises(ValueError):
        bus.attach_syslog(min_severity="loud")


def test_process_exit_wakes_only_for_app_daemons(sim, db_host, database):
    bus = TriggerBus(db_host)
    bus.watch_process_exits()
    probe = _Probe("p")
    bus.subscribe(probe, lambda t: t.kind == "proc_exit")
    # a shell-owned scratch process exiting is not a symptom
    scratch = db_host.ptable.spawn("analyst", "sort", now=sim.now)
    db_host.ptable.kill(scratch.pid)
    assert probe.wakes == []
    victim = database.procs[0]
    db_host.ptable.kill(victim.pid)
    assert len(probe.wakes) == 1
    assert probe.wakes[0].subject == database.name


def test_app_state_flip_wakes_subscribers(sim, db_host, database):
    bus = TriggerBus(db_host)
    bus.watch_app(database)
    probe = _Probe("p")
    bus.subscribe(probe, lambda t: t.kind == "state")
    database.hang()                 # silent fault: no syslog line
    assert [t.detail for t in probe.wakes] == ["hung"]


def test_cooldown_debounces_trigger_storms(sim, db_host):
    bus = TriggerBus(db_host, cooldown=60.0)
    probe = _Probe("p")
    bus.subscribe(probe, lambda t: True)
    for _ in range(5):
        bus.publish("syslog", "oracle", detail="spam")
    assert len(probe.wakes) == 1
    assert bus.suppressed == 4
    sim.run(until=sim.now + 61.0)
    bus.publish("syslog", "oracle", detail="later")
    assert len(probe.wakes) == 2


def test_down_host_publishes_nothing(sim, db_host):
    bus = TriggerBus(db_host)
    probe = _Probe("p")
    bus.subscribe(probe, lambda t: True)
    db_host.crash("x")
    assert bus.publish("syslog", "kernel") == 0
    assert probe.wakes == []


def test_refused_wake_does_not_start_cooldown(sim, db_host):
    bus = TriggerBus(db_host)
    probe = _Probe("p", accept=False)
    bus.subscribe(probe, lambda t: True)
    bus.publish("state", "oracle")
    probe.accept = True
    bus.publish("state", "oracle")
    assert len(probe.wakes) == 1


def test_adaptive_suite_crash_to_heal_without_waiting_for_grid(
        sim, db_host, database, notifications):
    """End to end: a backed-off service agent is demand-woken by the
    crash trigger and heals immediately instead of at the next wake."""
    suite = AgentSuite(db_host, notifications=notifications,
                       wake_policy="adaptive")
    agent = suite.service_agents[database.name]
    sim.run(until=sim.now + 5000.0)     # healthy: fully backed off
    assert agent.wake.current_period > agent.period
    t0 = sim.now
    database.crash("x")
    sim.run(until=sim.now)              # drain the zero-delay wake
    assert agent.wake.current_period == agent.period    # snapped back
    assert any(f.status == "fault" and f.time >= t0
               for f in agent.flags.flags())
    sim.run(until=sim.now + database.startup_duration() + 10.0)
    assert database.is_healthy()


def test_fixed_suite_has_no_bus_and_keeps_grid(sim, db_host,
                                               notifications):
    suite = AgentSuite(db_host, notifications=notifications)
    assert suite.triggers is None
    sim.run(until=sim.now + 2000.0)
    for agent in suite.agents:
        assert agent.wake.current_period == agent.period
