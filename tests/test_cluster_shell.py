"""Unit tests for the shell command layer."""

import pytest

from repro.cluster.shell import CommandError, CommandResult


def test_unknown_command_127(db_host):
    res = db_host.shell.run("frobnicate --now")
    assert res.exit_code == 127


def test_empty_command_ok(db_host):
    assert db_host.shell.run("").ok


def test_parse_error(db_host):
    res = db_host.shell.run('echo "unclosed')
    assert res.exit_code == 2


def test_host_down_raises(db_host):
    db_host.crash("test")
    with pytest.raises(CommandError):
        db_host.shell.run("uptime")


def test_ps_lists_processes(db_host):
    db_host.ptable.spawn("oracle", "ora_pmon", now=0.0)
    res = db_host.shell.run("ps -e")
    assert res.ok
    assert any("ora_pmon" in line for line in res.stdout)


def test_ps_filter_by_user(db_host):
    db_host.ptable.spawn("alice", "vi")
    res = db_host.shell.run("ps -u alice")
    assert any("vi" in l for l in res.stdout)
    assert not any("crond" in l for l in res.stdout)


def test_pgrep_exit_codes(db_host):
    assert db_host.shell.run("pgrep crond").ok
    assert db_host.shell.run("pgrep nothing").exit_code == 1
    assert db_host.shell.run("pgrep").exit_code == 2


def test_pkill(db_host):
    db_host.ptable.spawn("u", "victim")
    assert db_host.shell.run("pkill victim").ok
    assert db_host.shell.run("pgrep victim").exit_code == 1


def test_vmstat_has_header_and_numbers(db_host):
    res = db_host.shell.run("vmstat")
    assert res.ok and len(res.stdout) == 2
    assert "sr" in res.stdout[0]


def test_iostat_rows_per_disk(db_host):
    res = db_host.shell.run("iostat -x")
    assert res.ok
    assert len(res.stdout) == 1 + db_host.spec.disks


def test_df_shows_mounts(db_host):
    res = db_host.shell.run("df -k")
    assert res.ok
    assert any("/logs" in l for l in res.stdout)


def test_prtdiag_exit_reflects_health(db_host):
    assert db_host.shell.run("prtdiag").ok
    db_host.inventory.find("disk0").fail(now=0.0)
    assert db_host.shell.run("prtdiag").exit_code == 1


def test_ping_reachable_and_not(dc):
    host = dc.host("db01")
    assert host.shell.run("ping adm01").ok
    assert host.shell.run("ping no-such-host").exit_code == 1
    dc.host("adm01").crash("x")
    assert host.shell.run("ping adm01").exit_code == 1


def test_uname(db_host):
    res = db_host.shell.run("uname -a")
    assert "solaris" in res.text()


def test_register_custom_command(db_host):
    db_host.shell.register("hello", lambda args: CommandResult(0, ["hi"]))
    assert db_host.shell.run("hello").stdout == ["hi"]
    db_host.shell.unregister("hello")
    assert db_host.shell.run("hello").exit_code == 127


def test_command_exception_becomes_exit_1(db_host):
    def boom(args):
        raise RuntimeError("kaput")
    db_host.shell.register("boom", boom)
    res = db_host.shell.run("boom")
    assert res.exit_code == 1
    assert "kaput" in res.stderr[0]


def test_netstat_lists_nics(dc):
    res = dc.host("db01").shell.run("netstat -i")
    assert res.ok
    assert len(res.stdout) >= 3   # header + 2 NICs


def test_sar_cpu_breakdown(db_host):
    res = db_host.shell.run("sar -u 30")
    assert res.ok
    assert "%usr" in res.stdout[0]
    fields = res.stdout[1].split()
    assert len(fields) == 4
    assert abs(sum(float(f) for f in fields) - 100.0) < 2.0


def test_nfsstat(db_host):
    db_host.nfs_calls = 7
    db_host.nfs_retrans = 1
    res = db_host.shell.run("nfsstat")
    assert res.ok
    assert "7" in res.stdout[1] and "1" in res.stdout[1]


def test_who_lists_interactive_users(db_host):
    db_host.ptable.spawn("analyst1", "sas")
    db_host.ptable.spawn("root", "cron")
    res = db_host.shell.run("who")
    assert res.stdout == ["analyst1"]


def test_history_records_commands(db_host):
    db_host.shell.run("uptime")
    db_host.shell.run("df -k")
    assert db_host.shell.history[-2:] == ["uptime", "df -k"]
