"""Property: ``restore_state`` after ``snapshot_state`` is the
identity, for every standalone Snapshottable component.

Each test drives a component through a random operation sequence
(hitting the trim/dedup/lazy-deletion paths, not just happy appends),
snapshots it, restores into a *fresh* instance, and demands (a) the
re-snapshot is byte-identical under the canonical codec and (b) the
restored object answers queries exactly like the original.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controlplane.deadline import DeadlineWheel
from repro.controlplane.ledger import KINDS, ConditionLedger
from repro.faults.models import Category
from repro.metrics.timeseries import TimeSeries
from repro.ops.downtime import DowntimeLedger
from repro.ops.notifications import NotificationChannel
from repro.persist import canonical_json

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e12, max_value=1e12)
times = st.floats(min_value=0.0, max_value=1e9,
                  allow_nan=False, allow_infinity=False)


class _FakeSim:
    def __init__(self):
        self.now = 0.0


def roundtrip(obj, fresh):
    """snapshot -> restore into ``fresh`` -> byte-compare snapshots."""
    snap = canonical_json(obj.snapshot_state())
    fresh.restore_state(obj.snapshot_state())
    assert canonical_json(fresh.snapshot_state()) == snap
    return fresh


@settings(max_examples=50, deadline=None)
@given(samples=st.lists(st.tuples(times, finite), max_size=40),
       maxlen=st.one_of(st.none(), st.integers(1, 8)))
def test_timeseries_roundtrip(samples, maxlen):
    ts = TimeSeries("x", maxlen=maxlen)
    for t, v in sorted(samples, key=lambda s: s[0]):
        ts.append(t, v)
    ts2 = roundtrip(ts, TimeSeries("x"))
    assert len(ts2) == len(ts)
    assert ts2.dropped == ts.dropped
    for t in (0.0, 1.0, 5e8, 2e9):
        assert ts2.value_at(t) == ts.value_at(t)


_key = st.tuples(st.sampled_from(["db01", "tp01", "fe01"]),
                 st.sampled_from(["os", "svc", "hw"]))


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.one_of(
    st.tuples(st.just("set"), _key, times),
    st.tuples(st.just("drop"), _key, times),
    st.tuples(st.just("due"), _key, times)), max_size=40))
def test_deadline_wheel_roundtrip(ops):
    wheel = DeadlineWheel()
    for op, key, t in ops:
        if op == "set":
            wheel.set_deadline(key, t)
        elif op == "drop":
            wheel.drop(key)
        else:
            wheel.due(t)
    wheel2 = roundtrip(wheel, DeadlineWheel())
    assert len(wheel2) == len(wheel)
    for _op, key, _t in ops:
        assert wheel2.deadline_of(key) == wheel.deadline_of(key)
    # the rebuilt heap drains in the same order the original would
    assert sorted(wheel2.due(1e12)) == sorted(wheel.due(1e12))


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.one_of(
    st.tuples(st.just("append"), st.sampled_from(KINDS),
              st.sampled_from(["db01", "tp01"]), times),
    st.tuples(st.just("poll"), st.sampled_from(["a", "b"]),
              st.just(""), st.just(0.0))), max_size=60),
       maxlen=st.integers(2, 16))
def test_condition_ledger_roundtrip(ops, maxlen):
    def build():
        led = ConditionLedger(maxlen=maxlen)
        return led, {"a": led.subscribe("a"), "b": led.subscribe("b")}

    ledger, cursors = build()
    for op, x, host, t in ops:
        if op == "append":
            ledger.append(x, host, time=t)
        else:
            cursors[x].poll()
    fresh, fresh_cursors = build()
    roundtrip(ledger, fresh)
    assert fresh.backlog() == ledger.backlog()
    for name in ("a", "b"):
        got, overrun = fresh_cursors[name].poll()
        want, want_overrun = cursors[name].poll()
        assert [c.version for c in got] == [c.version for c in want]
        assert overrun == want_overrun


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(
    st.sampled_from(["open", "close", "detect"]),
    st.sampled_from(["db01/oracle", "fe01/web", "tp01/app"]),
    times), max_size=40))
def test_downtime_ledger_roundtrip(ops):
    ledger = DowntimeLedger()
    now = 0.0
    for op, target, dt in ops:
        now += dt % 3600.0
        if op == "open":
            ledger.open_incident(Category.MID_CRASH, target, now)
        elif op == "close":
            ledger.close_incident(target, now, auto_repaired=True)
        else:
            ledger.mark_detected(target, now)
    ledger2 = roundtrip(ledger, DowntimeLedger())
    assert (ledger2.hours_by_category(as_of=now + 1.0)
            == ledger.hours_by_category(as_of=now + 1.0))
    # open-incident identity survives: closing after restore works
    for target in ("db01/oracle", "fe01/web", "tp01/app"):
        a = ledger.close_incident(target, now + 10.0)
        b = ledger2.close_incident(target, now + 10.0)
        assert (a is None) == (b is None)


@settings(max_examples=50, deadline=None)
@given(sends=st.lists(st.tuples(
    st.sampled_from(["ops", "dba"]),
    st.sampled_from(["db01 down", "fe02 hung", "disk full"]),
    st.floats(min_value=0.0, max_value=900.0,
              allow_nan=False, allow_infinity=False)), max_size=30))
def test_notification_channel_roundtrip(sends):
    def build():
        return NotificationChannel(_FakeSim(), dedup_window=300.0,
                                   rate_limit=5, rate_window=3600.0)

    chan = build()
    for recipient, subject, dt in sends:
        chan.sim.now += dt
        chan.email(recipient, subject)
    chan2 = roundtrip(chan, build())
    chan2.sim.now = chan.sim.now
    assert chan2.count() == chan.count()
    assert chan2.suppressed_total == chan.suppressed_total
    # dedup folding keeps working against the *restored* records
    a = chan.email("ops", "db01 down")
    b = chan2.email("ops", "db01 down")
    assert a.suppressed == b.suppressed
    assert chan2.suppressed_total == chan.suppressed_total
