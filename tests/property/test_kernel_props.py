"""Property-based tests for the DES kernel."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator

delays = st.floats(min_value=0.0, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


@given(st.lists(delays, min_size=1, max_size=60))
@settings(max_examples=200, deadline=None)
def test_events_fire_in_nondecreasing_time_order(ds):
    sim = Simulator()
    fired = []
    for d in ds:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(ds)
    assert sim.now == max(ds)


@given(st.lists(delays, min_size=1, max_size=40),
       st.lists(delays, min_size=1, max_size=5))
@settings(max_examples=100, deadline=None)
def test_run_until_tiles_time(ds, cuts):
    """Running to a sequence of increasing horizons fires exactly the
    events a single run would have fired."""
    horizon = max(max(ds), max(cuts))
    sim_a = Simulator()
    fired_a = []
    for d in ds:
        sim_a.schedule(d, fired_a.append, d)
    sim_a.run(until=horizon)

    sim_b = Simulator()
    fired_b = []
    for d in ds:
        sim_b.schedule(d, fired_b.append, d)
    for cut in sorted(cuts):
        sim_b.run(until=cut)
        assert sim_b.now == cut
    sim_b.run(until=horizon)
    assert fired_a == fired_b


@given(st.lists(delays, min_size=2, max_size=40),
       st.data())
@settings(max_examples=100, deadline=None)
def test_cancellation_removes_exactly_the_cancelled(ds, data):
    sim = Simulator()
    fired = []
    events = [sim.schedule(d, fired.append, i)
              for i, d in enumerate(ds)]
    doomed = data.draw(st.sets(
        st.integers(min_value=0, max_value=len(ds) - 1), max_size=len(ds)))
    for i in doomed:
        events[i].cancel()
    sim.run()
    assert set(fired) == set(range(len(ds))) - doomed


@given(st.lists(delays, min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_generator_sleep_sums(ds):
    """A process sleeping d1, d2, ... wakes at the prefix sums."""
    sim = Simulator()
    wakes = []

    def proc():
        for d in ds:
            yield d
            wakes.append(sim.now)

    sim.spawn(proc())
    sim.run()
    prefix = []
    total = 0.0
    for d in ds:
        total += d
        prefix.append(total)
    assert wakes == prefix


@given(st.integers(min_value=1, max_value=30),
       st.floats(min_value=0.1, max_value=1e4, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_periodic_fire_count(n, period):
    sim = Simulator()
    ticks = []
    sim.every(period, lambda: ticks.append(sim.now))
    sim.run(until=n * period + period / 2)
    # fires at 0, p, 2p, ..., np
    assert len(ticks) == n + 1
