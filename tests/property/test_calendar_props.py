"""Property-based tests for cron-grid and calendar arithmetic."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import calendar as cal

times = st.floats(min_value=0.0, max_value=cal.YEAR,
                  allow_nan=False, allow_infinity=False)
periods = st.floats(min_value=1.0, max_value=cal.DAY, allow_nan=False)
offsets = st.floats(min_value=0.0, max_value=cal.HOUR, allow_nan=False)


@given(times, periods, offsets)
@settings(max_examples=300, deadline=None)
def test_next_grid_is_a_future_grid_point(t, period, offset):
    g = cal.next_grid(t, period, offset)
    assert g > t
    # it lies on the grid (within float tolerance)
    k = (g - offset) / period
    assert abs(k - round(k)) < 1e-6
    # and is within one period of t
    assert g - t <= period * (1 + 1e-9)


@given(times, periods, offsets)
@settings(max_examples=300, deadline=None)
def test_prev_grid_le_t_lt_next(t, period, offset):
    p = cal.prev_grid(t, period, offset)
    n = cal.next_grid(t, period, offset)
    assert p <= t < n
    assert abs((n - p) - period) < 1e-6 or p == n - period


@given(times, periods)
@settings(max_examples=200, deadline=None)
def test_nonstrict_grid_point_is_fixed_point(t, period):
    g = cal.next_grid(t, period)
    # a grid point maps to itself when strict=False
    assert cal.next_grid(g, period, strict=False) == g


@given(times)
@settings(max_examples=300, deadline=None)
def test_period_classification_is_a_partition(t):
    flags = [bool(cal.is_business_hours(t)), bool(cal.is_overnight(t)),
             bool(cal.is_weekend(t))]
    assert sum(flags) == 1
    assert cal.period_of(t) in ("day", "overnight", "weekend")


@given(st.floats(min_value=0.0, max_value=cal.YEAR - cal.DAY,
                 allow_nan=False),
       st.floats(min_value=1.0, max_value=cal.DAY, allow_nan=False),
       periods)
@settings(max_examples=200, deadline=None)
def test_grid_points_all_in_range_and_spaced(t0, span, period):
    t1 = t0 + span
    pts = cal.grid_points(t0, t1, period)
    assert all(t0 < p <= t1 + 1e-6 for p in pts)
    if len(pts) > 1:
        import numpy as np
        assert np.allclose(np.diff(pts), period)


@given(times)
@settings(max_examples=200, deadline=None)
def test_week_arithmetic_consistency(t):
    dow = cal.day_of_week(t)
    assert 0 <= dow <= 6
    assert bool(cal.is_weekend(t)) == (dow >= 5)
    assert 0.0 <= cal.time_of_day(t) < cal.DAY
