"""Property-based tests for the chaos DSL and the shrinker.

Round-trip: any well-formed scenario survives JSON serialisation
exactly (same canonical dict, same content id).  Shrinker: against an
arbitrary structural predicate, the reduced scenario still violates,
never grows, and the reduction is a pure function of its input.
No episodes are executed here -- these pin the data layer and the
reduction algorithm, not the simulator.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.scenario import (MAX_HORIZON, MIN_HORIZON, OPS,
                                  POOLS_FOR_KIND, ChaosEvent, Scenario,
                                  make_target)
from repro.chaos.shrink import shrink

_OP_NAMES = tuple(sorted(OPS))


@st.composite
def events(draw, horizon: float = MAX_HORIZON):
    op = draw(st.sampled_from(_OP_NAMES))
    pools = POOLS_FOR_KIND[OPS[op]]
    pool = draw(st.sampled_from(pools))
    index = draw(st.integers(min_value=0, max_value=7))
    time = draw(st.floats(min_value=0.0, max_value=horizon - 1.0,
                          allow_nan=False, allow_infinity=False))
    return ChaosEvent(time, op, make_target(pool, index))


@st.composite
def scenarios(draw):
    horizon = draw(st.floats(min_value=MIN_HORIZON,
                             max_value=MAX_HORIZON,
                             allow_nan=False, allow_infinity=False))
    evs = draw(st.lists(events(horizon=horizon), max_size=12))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return Scenario(name="prop", events=evs, horizon=horizon,
                    seed=seed).normalized()


@given(scenarios())
@settings(max_examples=200, deadline=None)
def test_json_round_trip_is_exact(sc):
    back = Scenario.from_json(sc.to_json())
    assert back.to_dict() == sc.to_dict()
    assert back.scenario_id == sc.scenario_id
    # and the round-tripped copy serialises identically (fixpoint)
    assert back.to_json() == sc.to_json()


@given(scenarios())
@settings(max_examples=200, deadline=None)
def test_normalized_is_idempotent_and_valid(sc):
    again = sc.normalized()
    assert again.to_json() == sc.to_json()
    sc.validate()


@given(scenarios(), st.sampled_from(_OP_NAMES))
@settings(max_examples=100, deadline=None)
def test_shrinker_preserves_violation_and_never_grows(sc, culprit_op):
    def violates(s):
        return any(e.op == culprit_op for e in s.events)
    if not violates(sc):
        return
    res = shrink(sc, violates)
    assert violates(res.shrunk)
    assert len(res.shrunk.events) <= len(sc.events)
    assert res.shrunk.horizon <= sc.horizon
    res.shrunk.validate()
    # minimality for this predicate class: one event suffices
    assert len(res.shrunk.events) == 1


@given(scenarios(), st.integers(min_value=2, max_value=4))
@settings(max_examples=60, deadline=None)
def test_shrinker_deterministic_for_count_predicates(sc, k):
    def violates(s):
        return len(s.events) >= k
    if not violates(sc):
        return
    a = shrink(sc, violates)
    b = shrink(sc, violates)
    assert a.shrunk.to_json() == b.shrunk.to_json()
    assert len(a.shrunk.events) == k
