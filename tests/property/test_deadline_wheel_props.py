"""Property-based tests for the control plane's deadline wheel.

The wheel is a lazy-deletion heap with a sticky due-set; the model it
must track is trivial: a dict of key -> deadline, where a key is due
iff its *current* deadline is <= now.  Under any interleaving of
set_deadline / drop / time advances (time monotonic, as for the
watchdog), the wheel must neither lose a due deadline nor resurrect a
cancelled or rescheduled one.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controlplane import DeadlineWheel

KEYS = tuple("abcdefgh")

ops = st.lists(
    st.one_of(
        st.tuples(st.just("set"), st.sampled_from(KEYS),
                  st.floats(min_value=0.0, max_value=1000.0,
                            allow_nan=False)),
        st.tuples(st.just("drop"), st.sampled_from(KEYS),
                  st.just(0.0)),
        st.tuples(st.just("advance"), st.just(""),
                  st.floats(min_value=0.0, max_value=120.0,
                            allow_nan=False)),
    ),
    max_size=120)


@given(ops)
@settings(max_examples=300, deadline=None)
def test_wheel_matches_dict_model(sequence):
    wheel = DeadlineWheel()
    model = {}
    now = 0.0
    for op, key, value in sequence:
        if op == "set":
            wheel.set_deadline(key, value)
            model[key] = value
        elif op == "drop":
            wheel.drop(key)
            model.pop(key, None)
        else:
            now += value
        expected = {k for k, d in model.items() if d <= now}
        actual = set(wheel.due(now))
        # never lose a due deadline...
        assert expected <= actual, expected - actual
        # ...never resurrect a cancelled or rescheduled one
        assert actual <= expected, actual - expected
        assert len(wheel) == len(model)
        for k, d in model.items():
            assert wheel.deadline_of(k) == d


@given(st.lists(st.tuples(st.sampled_from(KEYS),
                          st.floats(min_value=0.0, max_value=100.0,
                                    allow_nan=False)),
                min_size=1, max_size=60))
@settings(max_examples=150, deadline=None)
def test_reschedule_rescues_due_keys(updates):
    """A key seen due and then re-armed in the future must leave the
    due-set until its new deadline passes."""
    wheel = DeadlineWheel()
    for key, deadline in updates:
        wheel.set_deadline(key, deadline)
    assert set(wheel.due(200.0)) == {k for k, _ in updates}
    for key, _ in updates:
        wheel.set_deadline(key, 500.0)
    assert wheel.due(200.0) == set()
    assert set(wheel.due(500.0)) == {k for k, _ in updates}
