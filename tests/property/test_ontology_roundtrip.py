"""Property-based round-trip tests for the flat-ASCII ontology codec."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ontology.base import OntologyDoc, decode_list, encode_list

# keys: shell-friendly identifiers
keys = st.from_regex(r"[a-z][a-z0-9_]{0,15}", fullmatch=True).filter(
    lambda k: k != "record")
# values: printable single-line ASCII without leading '#' ambiguity
values = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=40)
record_types = st.from_regex(r"[a-z][a-z0-9_-]{0,10}", fullmatch=True)


@st.composite
def documents(draw):
    doc = OntologyDoc(draw(st.sampled_from(["ISSL", "SLKT", "DLSP",
                                            "DGSPL"])),
                      draw(st.floats(min_value=0, max_value=1e9,
                                     allow_nan=False)))
    for _ in range(draw(st.integers(0, 6))):
        fields = draw(st.dictionaries(keys, values, max_size=6))
        doc.add(draw(record_types), **fields)
    return doc


@given(documents())
@settings(max_examples=200, deadline=None)
def test_parse_render_roundtrip(doc):
    again = OntologyDoc.parse(doc.render())
    assert again.kind == doc.kind
    assert again.generated_at == doc.generated_at
    assert again.records == doc.records


@given(documents())
@settings(max_examples=100, deadline=None)
def test_render_is_stable(doc):
    """render(parse(render(x))) == render(x)."""
    once = doc.render()
    twice = OntologyDoc.parse(once).render()
    assert once == twice


@given(st.lists(st.from_regex(r"[a-zA-Z0-9_./:-]{1,20}",
                              fullmatch=True), max_size=10))
@settings(max_examples=200, deadline=None)
def test_list_codec_roundtrip(items):
    assert decode_list(encode_list(items)) == items


def test_list_codec_rejects_unrepresentable():
    import pytest
    from repro.ontology.base import OntologyError
    for bad in ([""], ["a,b"], ["a\nb"]):
        with pytest.raises(OntologyError):
            encode_list(bad)


@given(documents())
@settings(max_examples=50, deadline=None)
def test_rendered_lines_are_single_line_ascii(doc):
    for line in doc.render():
        assert "\n" not in line and "\r" not in line
