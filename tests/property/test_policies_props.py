"""Property-based tests for placement ranking and flag parsing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flags import FLAG_STATUSES, FlagStore


# ----------------------------------------------------------- flag names --

times = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)


@given(st.sampled_from(FLAG_STATUSES), times)
@settings(max_examples=200, deadline=None)
def test_flag_filename_roundtrip(status, t):
    from repro.core.flags import Flag
    flag = Flag("agent", status, round(t, 1))
    parsed = FlagStore._parse_name(f"/logs/x/{flag.filename}")
    assert parsed is not None
    assert parsed[0] == status
    assert abs(parsed[1] - round(t, 1)) < 1e-6


@given(st.text(max_size=30))
@settings(max_examples=200, deadline=None)
def test_flag_parser_never_crashes_on_garbage(name):
    # arbitrary filenames either parse or return None, never raise
    result = FlagStore._parse_name(f"/logs/x/{name}")
    assert result is None or result[0] in FLAG_STATUSES


# ------------------------------------------------------ candidate ranking --

class _FakeHostSpec:
    def __init__(self, power, max_load):
        self.power = power
        self.max_load = max_load


class _FakeHost:
    def __init__(self, name, power):
        self.name = name
        self.spec = _FakeHostSpec(power, 4.0)


class _FakeDb:
    def __init__(self, name, power, healthy, jobs, slots, overload):
        self.host = _FakeHost(name, power)
        self._healthy = healthy
        self._jobs = jobs
        self.max_job_slots = slots
        self._overload = overload

    def is_healthy(self):
        return self._healthy

    def job_count(self):
        return self._jobs

    def overload_factor(self):
        return self._overload


db_strategy = st.builds(
    _FakeDb,
    name=st.from_regex(r"h[0-9]{1,3}", fullmatch=True),
    power=st.floats(min_value=1, max_value=1e5, allow_nan=False),
    healthy=st.booleans(),
    jobs=st.integers(min_value=0, max_value=10),
    slots=st.integers(min_value=1, max_value=10),
    overload=st.floats(min_value=0, max_value=5, allow_nan=False),
)


@given(st.lists(db_strategy, max_size=15),
       st.floats(min_value=0, max_value=1e5, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_rank_candidates_invariants(dbs, min_power):
    from repro.batch.policies import rank_candidates
    ranked = rank_candidates(dbs, min_power=min_power)
    # every result is healthy, strong enough and has a slot
    for db in ranked:
        assert db.is_healthy()
        assert db.host.spec.power >= min_power
        assert db.job_count() < db.max_job_slots
    # ordering: headroom (1 - overload) non-increasing
    headrooms = [1.0 - db.overload_factor() for db in ranked]
    assert all(a >= b - 1e-9 for a, b in zip(headrooms, headrooms[1:]))
    # no duplicates, subset of input
    assert len(set(id(d) for d in ranked)) == len(ranked)
    assert all(d in dbs for d in ranked)


@given(st.lists(db_strategy, min_size=1, max_size=15))
@settings(max_examples=100, deadline=None)
def test_rank_excludes_are_absolute(dbs):
    from repro.batch.policies import rank_candidates
    excluded = {dbs[0].host.name}
    ranked = rank_candidates(dbs, exclude_hosts=excluded)
    assert all(db.host.name not in excluded for db in ranked)
