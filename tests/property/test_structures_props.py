"""Property-based tests for circular logs, time series and the
downtime ledger."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.filesystem import FileSystem
from repro.faults.models import Category
from repro.metrics.circular_log import CircularLog
from repro.metrics.timeseries import TimeSeries
from repro.ops.downtime import DowntimeLedger

lines = st.text(alphabet=st.characters(min_codepoint=32,
                                       max_codepoint=126), max_size=30)


@given(st.lists(lines, max_size=120),
       st.integers(min_value=1, max_value=20))
@settings(max_examples=150, deadline=None)
def test_circular_log_keeps_exactly_the_tail(entries, maxlen):
    log = CircularLog(FileSystem(), "/logs/x", maxlen=maxlen)
    for e in entries:
        log.append(e)
    assert log.lines() == entries[-maxlen:]
    assert len(log) <= maxlen


@given(st.lists(lines, min_size=1, max_size=200),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=80, deadline=None)
def test_circular_log_disk_usage_bounded(entries, maxlen):
    fs = FileSystem()
    log = CircularLog(fs, "/logs/x", maxlen=maxlen)
    for e in entries:
        log.append(e)
    worst_line = max((len(e) for e in entries), default=0) + 1
    assert fs.mounts["/logs"].used_bytes <= maxlen * worst_line


@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)),
    min_size=1, max_size=60))
@settings(max_examples=150, deadline=None)
def test_timeseries_stats_match_numpy(pairs):
    import numpy as np
    pairs.sort(key=lambda p: p[0])
    ts = TimeSeries("x")
    for t, v in pairs:
        ts.append(t, v)
    vals = np.array([v for _, v in pairs])
    assert ts.mean() == np.mean(vals)
    assert ts.max() == np.max(vals)
    assert ts.min() == np.min(vals)
    assert len(ts) == len(pairs)


@given(st.lists(st.tuples(
    st.sampled_from(list(Category)),
    st.floats(min_value=0, max_value=1e7, allow_nan=False),
    st.floats(min_value=0, max_value=1e5, allow_nan=False)),
    max_size=50))
@settings(max_examples=150, deadline=None)
def test_ledger_total_is_sum_of_categories(incidents):
    ledger = DowntimeLedger()
    for i, (cat, start, dur) in enumerate(incidents):
        ledger.record(cat, f"t{i}", start, dur)
    by_cat = ledger.hours_by_category()
    assert abs(ledger.total_hours() - sum(by_cat.values())) < 1e-6
    expected = sum(d for _, _, d in incidents) / 3600.0
    assert abs(ledger.total_hours() - expected) < 1e-6


@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=40),
       st.floats(min_value=1.0, max_value=1e4, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_timeseries_resample_conserves_mass(ts_vals, period):
    """Sum over buckets of (bucket mean * bucket count) equals the
    plain sum of values."""
    import numpy as np
    ts = TimeSeries("x")
    for i, v in enumerate(ts_vals):
        ts.append(float(i), v)
    starts, means = ts.resample(period)
    t = ts.times
    buckets = np.floor(t / period).astype(np.int64)
    _, counts = np.unique(buckets, return_counts=True)
    assert abs(float((means * counts).sum()) - sum(ts_vals)) < 1e-6 * max(
        1.0, abs(sum(ts_vals)))
