"""Unit coverage for :mod:`repro.persist`: the codec, the quiescence
gate, the checkpoint files, and the restore-time mismatch checks.

The end-to-end byte-identity guarantee lives in
``tests/integration/test_persist_contract.py``; these tests pin the
sharp edges each piece promises on its own.
"""

import json
import os

import pytest

from repro.experiments.runner import FidelityHarness
from repro.experiments.site import SiteConfig, build_site
from repro.persist import (FORMAT_VERSION, CheckpointManager,
                           QuiescenceError, canonical_json, snapshot_site,
                           state_hash)


def _site(**kw):
    defaults = dict(seed=0, with_workload=False, with_feeds=False)
    defaults.update(kw)
    return build_site(SiteConfig.test_scale(**defaults))


# -- codec ---------------------------------------------------------------------


def test_canonical_json_is_key_order_independent():
    a = canonical_json({"b": 1, "a": [1, 2], "c": {"y": 0, "x": 1}})
    b = canonical_json({"c": {"x": 1, "y": 0}, "a": [1, 2], "b": 1})
    assert a == b
    assert state_hash({"b": 1, "a": 2}) == state_hash({"a": 2, "b": 1})


def test_canonical_json_trips_on_non_finite_floats():
    with pytest.raises(ValueError):
        canonical_json({"bad": float("nan")})
    with pytest.raises(ValueError):
        canonical_json({"bad": float("inf")})


# -- snapshot gate -------------------------------------------------------------


def test_snapshot_declares_format_version():
    site = _site()
    site.run(3600.0)
    snap = snapshot_site(site)
    assert snap["format"] == FORMAT_VERSION
    assert canonical_json(snap)        # whole snapshot is JSON-clean


def test_snapshot_refuses_workload_configs():
    site = _site(with_workload=True)
    with pytest.raises(QuiescenceError):
        snapshot_site(site)


def test_snapshot_state_hash_covers_everything_else():
    site = _site()
    site.run(1800.0)
    snap = snapshot_site(site)
    recorded = snap.pop("state_hash")
    assert state_hash(snap) == recorded


# -- restore mismatch checks ---------------------------------------------------


def test_restore_rejects_other_format_versions():
    from repro.persist import restore_site
    site = _site()
    site.run(600.0)
    snap = snapshot_site(site)
    snap["format"] = FORMAT_VERSION + 1
    with pytest.raises(ValueError):
        restore_site(snap)


def test_restore_rejects_missing_extras():
    from repro.persist import restore_site
    harness = FidelityHarness(_site())
    harness.run_hours(0.25)
    snap = harness.snapshot()          # carries downtime + injector
    fresh = _site()
    with pytest.raises(KeyError):
        restore_site(snap, site=fresh)  # no extras offered


def test_restore_rejects_config_mismatch():
    from repro.persist import restore_site
    site = _site(seed=1)
    site.run(600.0)
    snap = snapshot_site(site)
    other = _site(seed=2)
    with pytest.raises(ValueError):
        restore_site(snap, site=other)


# -- checkpoint files ----------------------------------------------------------


def _manager(tmp_path, **kw):
    harness = FidelityHarness(_site())
    defaults = dict(every_hours=1.0, extras=harness._extras())
    defaults.update(kw)
    return harness, CheckpointManager(harness.site, str(tmp_path),
                                      **defaults)


def test_epoch_honours_cadence_and_force(tmp_path):
    harness, mgr = _manager(tmp_path, every_hours=2.0)
    harness.run_hours(1.0)
    assert not mgr.due()
    assert mgr.epoch() is None         # not due, no file
    path = mgr.epoch(force=True)
    assert path is not None and os.path.exists(path)
    harness.run_hours(2.0)
    assert mgr.due()
    assert mgr.epoch() is not None
    assert mgr.stats()["written"] == 2


def test_checkpoint_write_is_atomic_and_newline_terminated(tmp_path):
    harness, mgr = _manager(tmp_path)
    harness.run_hours(0.5)
    path = mgr.epoch(force=True)
    assert not os.path.exists(path + ".tmp")
    with open(path, "rb") as fh:
        raw = fh.read()
    assert raw.endswith(b"\n")
    snap = json.loads(raw)
    assert snap["state_hash"] == mgr.last_hash


def test_retention_keeps_newest_n(tmp_path):
    harness, mgr = _manager(tmp_path, retain=2)
    for _ in range(4):
        harness.run_hours(1.0)
        assert mgr.epoch(force=True) is not None
    kept = mgr.checkpoints()
    assert len(kept) == 2
    assert mgr.latest(str(tmp_path)) == kept[-1]
    # the newest survives and names the latest sim hour
    assert kept[-1] == mgr.last_path


def test_latest_ignores_other_labels_and_empty_dirs(tmp_path):
    assert CheckpointManager.latest(str(tmp_path / "absent")) is None
    harness, mgr = _manager(tmp_path, label="alpha")
    harness.run_hours(0.5)
    path = mgr.epoch(force=True)
    assert CheckpointManager.latest(str(tmp_path), "alpha") == path
    assert CheckpointManager.latest(str(tmp_path), "beta") is None
    assert CheckpointManager.load(path)["format"] == FORMAT_VERSION


def test_constructor_validates_knobs(tmp_path):
    harness = FidelityHarness(_site())
    with pytest.raises(ValueError):
        CheckpointManager(harness.site, str(tmp_path), every_hours=0.0)
    with pytest.raises(ValueError):
        CheckpointManager(harness.site, str(tmp_path), retain=0)
