"""Unit tests for the server catalogue."""

import pytest

from repro.cluster.specs import SPEC_CATALOGUE, spec


def test_catalogue_covers_the_papers_fleet():
    # §4: Sun E4500/E10K databases, Ultra 10 / E450 / E220R / HP K & T
    # TP servers, IBM SP2 front-ends, linux boxes
    for model in ("sun-e10k", "sun-e4500", "sun-e450", "sun-e220r",
                  "sun-ultra10", "hp-kclass", "hp-tclass", "ibm-sp2",
                  "linux-x86"):
        assert model in SPEC_CATALOGUE


def test_lookup_by_name():
    s = spec("sun-e10k")
    assert s.vendor == "Sun"
    assert s.os == "solaris"
    assert s.cpus >= 8


def test_unknown_model_raises():
    with pytest.raises(KeyError):
        spec("vax-11/780")


def test_power_orders_models_sensibly():
    assert spec("sun-e10k").power > spec("sun-e4500").power
    assert spec("sun-e4500").power > spec("sun-ultra10").power


def test_scaled_variant():
    big = spec("sun-e10k").scaled(cpus=32, ram_mb=32768)
    assert big.cpus == 32
    assert big.model == "sun-e10k"
    assert big.power > spec("sun-e10k").power


def test_specs_are_frozen():
    with pytest.raises(Exception):
        spec("sun-e450").cpus = 64
