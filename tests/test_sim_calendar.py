"""Unit tests for calendar arithmetic."""

import numpy as np
import pytest

from repro.sim import calendar as cal


def test_epoch_is_monday_midnight():
    assert cal.day_of_week(0.0) == 0
    assert cal.time_of_day(0.0) == 0.0
    assert not cal.is_weekend(0.0)


def test_weekend_classification():
    saturday = 5 * cal.DAY + 3 * cal.HOUR
    sunday = 6 * cal.DAY + 23 * cal.HOUR
    friday = 4 * cal.DAY + 12 * cal.HOUR
    assert cal.is_weekend(saturday)
    assert cal.is_weekend(sunday)
    assert not cal.is_weekend(friday)


def test_business_hours():
    tuesday_10am = cal.DAY + 10 * cal.HOUR
    tuesday_7am = cal.DAY + 7 * cal.HOUR
    tuesday_7pm = cal.DAY + 19 * cal.HOUR
    assert cal.is_business_hours(tuesday_10am)
    assert not cal.is_business_hours(tuesday_7am)
    assert not cal.is_business_hours(tuesday_7pm)
    saturday_10am = 5 * cal.DAY + 10 * cal.HOUR
    assert not cal.is_business_hours(saturday_10am)


def test_overnight_excludes_weekend():
    tuesday_2am = cal.DAY + 2 * cal.HOUR
    saturday_2am = 5 * cal.DAY + 2 * cal.HOUR
    assert cal.is_overnight(tuesday_2am)
    assert not cal.is_overnight(saturday_2am)


def test_period_of_partitions():
    for t in np.linspace(0, 2 * cal.WEEK, 500):
        assert cal.period_of(float(t)) in ("day", "overnight", "weekend")


def test_next_grid_strict():
    assert cal.next_grid(0.0, 300.0) == 300.0
    assert cal.next_grid(1.0, 300.0) == 300.0
    assert cal.next_grid(300.0, 300.0) == 600.0        # strict
    assert cal.next_grid(300.0, 300.0, strict=False) == 300.0
    assert cal.next_grid(299.999, 300.0) == 300.0


def test_next_grid_with_offset():
    assert cal.next_grid(0.0, 300.0, offset=50.0) == 50.0
    assert cal.next_grid(50.0, 300.0, offset=50.0) == 350.0


def test_prev_grid():
    assert cal.prev_grid(299.0, 300.0) == 0.0
    assert cal.prev_grid(300.0, 300.0) == 300.0
    assert cal.prev_grid(301.0, 300.0) == 300.0


def test_bad_period_rejected():
    with pytest.raises(ValueError):
        cal.next_grid(0.0, 0.0)
    with pytest.raises(ValueError):
        cal.prev_grid(0.0, -5.0)


def test_grid_points_range():
    pts = cal.grid_points(0.0, 1500.0, 300.0)
    assert pts.tolist() == [300.0, 600.0, 900.0, 1200.0, 1500.0]
    assert cal.grid_points(100.0, 200.0, 300.0).size == 0


def test_vectorised_classification_matches_scalar():
    ts = np.linspace(0, cal.WEEK, 97)
    vec = cal.is_weekend(ts)
    for t, v in zip(ts, vec):
        assert bool(v) == bool(cal.is_weekend(float(t)))


def test_format_time():
    s = cal.format_time(cal.WEEK + cal.DAY + 14 * cal.HOUR + 5 * cal.MINUTE)
    assert s == "w01 Tue 14:05:00"
