"""Unit tests for the parallel helpers and the CLI."""

import pytest

from repro.parallel import ReplicationError, default_workers, replicate


def _square(seed: int) -> int:
    return seed * seed


def _boom(seed: int) -> int:
    if seed == 3:
        raise ValueError(f"bad draw at {seed}")
    return seed


def test_replicate_serial_small_batch():
    assert replicate(_square, [1, 2, 3], min_parallel=10) == [1, 4, 9]


def test_replicate_parallel_preserves_order():
    seeds = list(range(12))
    out = replicate(_square, seeds, min_parallel=2)
    assert out == [s * s for s in seeds]


def test_replicate_single_worker_is_serial():
    assert replicate(_square, list(range(6)), processes=1) == [
        s * s for s in range(6)]


def test_serial_failure_reports_offending_seed():
    with pytest.raises(ReplicationError) as err:
        replicate(_boom, [1, 2, 3, 4], processes=1)
    assert err.value.seed == 3
    assert isinstance(err.value.cause, ValueError)


def test_pool_failure_reports_same_seed_as_serial():
    """The two execution paths must blame the identical seed."""
    with pytest.raises(ReplicationError) as pool_err:
        replicate(_boom, list(range(8)), min_parallel=2)
    with pytest.raises(ReplicationError) as serial_err:
        replicate(_boom, list(range(8)), processes=1)
    assert pool_err.value.seed == serial_err.value.seed == 3
    assert "seed 3" in str(pool_err.value)


def test_default_workers_positive():
    assert default_workers() >= 1


def test_cli_mttr_prints_table(capsys):
    from repro.cli import main
    assert main(["mttr", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "MTTR reproduction" in out
    assert "mid-crash" in out


def test_cli_ablation_centralised(capsys):
    from repro.cli import main
    assert main(["ablation-centralised"]) == 0
    out = capsys.readouterr().out
    assert "A-local" in out


def test_cli_fig3_and_fig4(capsys):
    from repro.cli import main
    assert main(["fig3"]) == 0
    assert main(["fig4"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out and "Figure 4" in out
    assert "BMC" in out


def test_cli_fig2_single_replication(capsys):
    from repro.cli import main
    assert main(["fig2", "--replications", "1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out and "TOTAL" in out


def test_cli_rejects_unknown_experiment():
    from repro.cli import main
    with pytest.raises(SystemExit):
        main(["frobnicate"])


# -- structured per-seed outcomes (chaos batch contract) ------------------------

from repro.parallel import SeedOutcome, replicate_outcomes


def test_outcomes_never_raise_and_preserve_order():
    out = replicate_outcomes(_boom, [1, 2, 3, 4], min_parallel=10)
    assert [o.seed for o in out] == [1, 2, 3, 4]
    assert [o.ok for o in out] == [True, True, False, True]
    assert out[0].value == 1
    assert "bad draw at 3" in out[2].error


def test_outcomes_parallel_matches_serial():
    serial = replicate_outcomes(_boom, list(range(8)), min_parallel=100)
    pooled = replicate_outcomes(_boom, list(range(8)), min_parallel=2)
    assert [(o.seed, o.ok, o.value) for o in serial] == \
           [(o.seed, o.ok, o.value) for o in pooled]


def test_outcome_unwrap():
    ok, bad = replicate_outcomes(_boom, [1, 3], min_parallel=10)
    assert ok.unwrap() == 1
    with pytest.raises(ReplicationError, match="seed 3"):
        bad.unwrap()
    assert isinstance(ok, SeedOutcome)


def test_cli_chaos_corpus_round_trips(tmp_path, capsys):
    from repro.chaos.scenario import Scenario, build_corpus
    from repro.cli import main
    assert main(["chaos", "corpus", "--dir", str(tmp_path)]) == 0
    files = sorted(p.name for p in tmp_path.glob("*.json"))
    assert len(files) >= 10
    built = build_corpus(0)
    sc = Scenario.from_json((tmp_path / files[0]).read_text())
    assert sc.to_dict() == built[sc.name].to_dict()


def test_cli_chaos_requires_subcommand():
    from repro.cli import main
    with pytest.raises(SystemExit):
        main(["chaos"])
