"""Unit tests for the per-agent adaptive wake controller."""

import pytest

from repro.wake import WakePolicy


def test_fixed_mode_never_moves():
    p = WakePolicy(300.0, mode="fixed")
    assert not p.note_clean()
    p.note_findings()
    p.note_trigger()
    assert p.current_period == 300.0
    assert p.backoffs == 0


def test_adaptive_backs_off_multiplicatively_to_cap():
    p = WakePolicy(300.0, mode="adaptive", max_period=1800.0)
    seen = []
    for _ in range(6):
        p.note_clean()
        seen.append(p.current_period)
    assert seen == [600.0, 1200.0, 1800.0, 1800.0, 1800.0, 1800.0]
    assert p.backoffs == 3      # the capped no-ops do not count


def test_findings_and_triggers_snap_back_to_base():
    p = WakePolicy(300.0, mode="adaptive")
    for _ in range(4):
        p.note_clean()
    assert p.current_period > 300.0
    p.note_findings()
    assert p.current_period == 300.0
    for _ in range(2):
        p.note_clean()
    p.note_trigger()
    assert p.current_period == 300.0
    assert p.resets == 2
    assert p.triggers == 1


def test_note_clean_reports_whether_period_changed():
    p = WakePolicy(300.0, mode="adaptive", max_period=600.0)
    assert p.note_clean()           # 300 -> 600
    assert not p.note_clean()       # already capped


def test_validation():
    with pytest.raises(ValueError):
        WakePolicy(300.0, mode="lunar")
    with pytest.raises(ValueError):
        WakePolicy(0.0)
    with pytest.raises(ValueError):
        WakePolicy(300.0, max_period=200.0)
    with pytest.raises(ValueError):
        WakePolicy(300.0, backoff=1.0)
