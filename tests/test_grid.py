"""Unit tests for the grid resource broker (§5 future work)."""

import pytest

from repro.grid import GridResourceBroker, parse_advertisement
from repro.ontology.dlsp import build_dlsp
from repro.ontology.dgspl import build_dgspl


@pytest.fixture
def broker(sim, database, webserver):
    b = GridResourceBroker(sim, default_lease=600.0)
    dgspl = build_dgspl([build_dlsp(database.host),
                         build_dlsp(webserver.host)])
    b.refresh_from_dgspl(dgspl)
    return b


def test_parse_advertisement_roundtrip(database):
    dgspl = build_dgspl([build_dlsp(database.host)])
    line = dgspl.grid_advertisement()[0]
    r = parse_advertisement(line)
    assert r.server == "db01"
    assert r.app_type == "database"
    assert r.cpus == database.host.effective_cpus()
    assert r.uri.startswith("service://london/db01/")


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_advertisement("http://not-a-service")
    with pytest.raises(ValueError):
        parse_advertisement("service://too/few type=x")


def test_discovery_filters(broker):
    assert len(broker.discover()) == 2
    dbs = broker.discover(app_type="database")
    assert len(dbs) == 1 and dbs[0].app_type == "database"
    assert broker.discover(os="aix", app_type="database") == []
    assert broker.discover(min_cpus=1000) == []
    assert len(broker.discover(os="solaris", app_type="database")) == 1


def test_discovery_orders_least_loaded_first(sim, broker, database,
                                             webserver):
    database.host.extra_runnable = database.host.effective_cpus() * 5
    dgspl = build_dgspl([build_dlsp(database.host),
                         build_dlsp(webserver.host)])
    broker.refresh_from_dgspl(dgspl)
    found = broker.discover()
    assert found[0].server == "fe01"


def test_claim_lifecycle(broker, sim):
    uri = broker.discover(app_type="database")[0].uri
    claim = broker.claim(uri, "grid-job-1")
    assert claim is not None and claim.live(sim.now)
    # double-claim refused
    assert broker.claim(uri, "grid-job-2") is None
    # claimed resources hidden from discovery by default
    assert broker.discover(app_type="database") == []
    assert len(broker.discover(app_type="database",
                               include_claimed=True)) == 1
    # wrong holder cannot release
    assert not broker.release(uri, "grid-job-2")
    assert broker.release(uri, "grid-job-1")
    assert broker.claim(uri, "grid-job-2") is not None


def test_claim_expiry_and_renew(broker, sim):
    uri = broker.discover(app_type="database")[0].uri
    broker.claim(uri, "g1", lease=100.0)
    sim.run(until=sim.now + 50.0)
    assert broker.renew(uri, "g1", lease=100.0)
    sim.run(until=sim.now + 99.0)
    assert uri not in [r.uri for r in broker.discover(
        app_type="database")]      # still claimed
    sim.run(until=sim.now + 2.0)
    # expired: discoverable and claimable again
    assert broker.claim(uri, "g2") is not None


def test_refresh_drops_dead_services(broker, database, webserver):
    database.crash("x")
    dgspl = build_dgspl([build_dlsp(database.host),
                         build_dlsp(webserver.host)])
    broker.refresh_from_dgspl(dgspl)
    assert broker.discover(app_type="database") == []
    assert len(broker.discover()) == 1


def test_claims_survive_refresh_until_expiry(broker, database, webserver,
                                             sim):
    uri = broker.discover(app_type="database")[0].uri
    broker.claim(uri, "g1")
    database.crash("x")
    broker.refresh_from_dgspl(build_dgspl([build_dlsp(database.host),
                                           build_dlsp(webserver.host)]))
    # resource gone from inventory, claim still tracked
    assert uri in broker.claims


def test_claim_unknown_uri_refused(broker):
    assert broker.claim("service://nowhere/x/y", "g") is None
    assert broker.stats()["refused"] == 1


def test_stats(broker):
    broker.discover()
    s = broker.stats()
    assert s["resources"] == 2
    assert s["refreshes"] == 1
    assert s["queries"] >= 1


def test_end_to_end_with_admin_servers(test_site):
    """The broker rides the real DGSPL the admin pair generates."""
    site = test_site
    site.run(1200.0)
    broker = GridResourceBroker(site.sim)
    broker.refresh_from_dgspl(site.admin.current_dgspl())
    found = broker.discover(app_type="database", os="solaris")
    assert len(found) >= 1
    claim = broker.claim(found[0].uri, "external-grid-job")
    assert claim is not None
