"""Unit tests for the simulated filesystem."""

import pytest

from repro.cluster.filesystem import (FileSystem, FsError, FsFullError,
                                      FsOfflineError)


@pytest.fixture
def fs():
    return FileSystem()


def test_write_read_roundtrip(fs):
    fs.write("/logs/a.txt", ["one", "two"], now=5.0)
    assert fs.read("/logs/a.txt") == ["one", "two"]
    assert fs.stat("/logs/a.txt").mtime == 5.0


def test_write_accepts_string(fs):
    fs.write("/logs/a", "x\ny")
    assert fs.read("/logs/a") == ["x", "y"]


def test_append_creates_and_grows(fs):
    fs.append("/logs/log", "l1", now=1.0)
    fs.append("/logs/log", "l2", now=2.0)
    assert fs.read("/logs/log") == ["l1", "l2"]


def test_missing_file_raises(fs):
    with pytest.raises(FsError):
        fs.read("/logs/nothing")


def test_relative_path_rejected(fs):
    with pytest.raises(FsError):
        fs.write("relative/path", ["x"])


def test_capacity_accounting_and_disk_full(fs):
    small = FileSystem(mounts={"/": 10**6, "/tiny": 100})
    small.write("/tiny/f", ["x" * 50])
    with pytest.raises(FsFullError):
        small.write("/tiny/g", ["y" * 80])
    # overwriting with smaller content frees space
    small.write("/tiny/f", ["x"])
    small.write("/tiny/g", ["y" * 80])


def test_mount_of_longest_prefix(fs):
    assert fs.mount_of("/logs/x/y").point == "/logs"
    assert fs.mount_of("/whatever").point == "/"


def test_offline_mount_errors(fs):
    fs.write("/logs/f", ["x"])
    fs.mounts["/logs"].online = False
    with pytest.raises(FsOfflineError):
        fs.read("/logs/f")
    with pytest.raises(FsOfflineError):
        fs.write("/logs/g", ["y"])


def test_readonly_mount(fs):
    fs.mounts["/logs"].readonly = True
    with pytest.raises(FsError):
        fs.write("/logs/f", ["x"])


def test_remove_frees_space(fs):
    used0 = fs.mounts["/logs"].used_bytes
    fs.write("/logs/f", ["hello world"])
    assert fs.mounts["/logs"].used_bytes > used0
    assert fs.remove("/logs/f")
    assert fs.mounts["/logs"].used_bytes == used0
    assert not fs.remove("/logs/f")


def test_remove_tree(fs):
    fs.write("/logs/a/1", ["x"])
    fs.write("/logs/a/2", ["y"])
    fs.write("/logs/b", ["z"])
    assert fs.remove_tree("/logs/a") == 2
    assert fs.exists("/logs/b")
    assert not fs.exists("/logs/a/1")


def test_listdir_and_mkdir(fs):
    fs.mkdir("/logs/flags")
    assert fs.listdir("/logs/flags") == []
    fs.write("/logs/flags/ok.1", [])
    fs.write("/logs/flags/sub/deep", [])
    assert fs.listdir("/logs/flags") == ["ok.1", "sub"]
    with pytest.raises(FsError):
        fs.listdir("/no/such/dir")


def test_glob_and_dir_index(fs):
    fs.write("/logs/d/a", [])
    fs.write("/logs/d/b", [])
    fs.write("/logs/d/sub/c", [])
    assert fs.glob_files("/logs/d") == ["/logs/d/a", "/logs/d/b",
                                        "/logs/d/sub/c"]
    assert fs.files_in_dir("/logs/d") == ["/logs/d/a", "/logs/d/b"]
    fs.remove("/logs/d/a")
    assert fs.files_in_dir("/logs/d") == ["/logs/d/b"]


def test_dir_index_survives_remove_tree(fs):
    fs.write("/logs/d/a", [])
    fs.remove_tree("/logs/d")
    assert fs.files_in_dir("/logs/d") == []
    fs.write("/logs/d/fresh", [])
    assert fs.files_in_dir("/logs/d") == ["/logs/d/fresh"]


def test_fill_sets_usage(fs):
    fs.fill("/logs", 0.97)
    assert 96.0 < fs.mounts["/logs"].pct_used < 98.0


def test_df_sorted(fs):
    points = [m.point for m in fs.df()]
    assert points == sorted(points)
