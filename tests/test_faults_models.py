"""Unit tests for the fault taxonomy."""

import numpy as np

from repro.faults.models import (CATEGORY_PROFILES, Category, Dist,
                                 FaultEvent, PAPER_FIG2_HOURS)


def test_every_category_has_a_profile_and_paper_value():
    for cat in Category:
        assert cat in CATEGORY_PROFILES
        assert cat in PAPER_FIG2_HOURS


def test_paper_totals():
    before = sum(v[0] for v in PAPER_FIG2_HOURS.values())
    after = sum(v[1] for v in PAPER_FIG2_HOURS.values())
    assert before == 550.0
    # NOTE: the paper states "downtime went down to 31 hours in total"
    # but its own per-category after-values (8+6+2+9+1+3+2+8) sum to 39.
    # We keep the per-category numbers as ground truth; EXPERIMENTS.md
    # records the discrepancy.
    assert after == 39.0


def test_agent_limits_encoded():
    """§4: agents cannot fix firewall/network or hardware faults."""
    assert not CATEGORY_PROFILES[Category.FIREWALL_NETWORK].auto_fixable
    assert not CATEGORY_PROFILES[Category.HARDWARE].auto_fixable
    assert CATEGORY_PROFILES[Category.MID_CRASH].auto_fixable
    # pinpointing does not help where the paper says it cannot
    assert CATEGORY_PROFILES[Category.FIREWALL_NETWORK].pinpoint_factor == 1.0


def test_human_errors_partially_prevented():
    prof = CATEGORY_PROFILES[Category.HUMAN]
    assert 0.0 < prof.prevention_prob < 1.0


def test_dist_mean_is_calibrated():
    rng = np.random.default_rng(0)
    d = Dist(mean=3600.0, sigma=0.6)
    samples = d.sample(rng, 20000)
    assert abs(np.mean(samples) - 3600.0) / 3600.0 < 0.05
    assert (samples > 0).all()


def test_fault_event_accounting():
    ev = FaultEvent(Category.MID_CRASH, "db-crash", time=100.0,
                    target="db01/ora")
    assert ev.downtime == float("inf")
    ev.detected_at = 160.0
    ev.repaired_at = 400.0
    assert ev.detection_latency == 60.0
    assert ev.downtime == 300.0
    prevented = FaultEvent(Category.HUMAN, "x", 0.0, prevented=True)
    assert prevented.downtime == 0.0


def test_overnight_categories_are_the_batch_ones():
    from repro.faults.models import TimePattern
    assert (CATEGORY_PROFILES[Category.MID_CRASH].time_pattern
            is TimePattern.OVERNIGHT)
    assert (CATEGORY_PROFILES[Category.HUMAN].time_pattern
            is TimePattern.BUSINESS)
