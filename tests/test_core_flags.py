"""Unit tests for the flag protocol."""

import pytest

from repro.core.flags import FLAG_DIR, FlagStore


@pytest.fixture
def store(db_host):
    return FlagStore(db_host.fs, "svc_ora01")


def test_raise_and_read(store):
    store.raise_flag("ok", 100.0)
    store.raise_flag("fault", 400.0, "oracle down")
    flags = store.flags()
    assert [f.status for f in flags] == ["ok", "fault"]
    assert flags[1].detail == "oracle down"
    assert store.latest().time == 400.0
    assert store.latest_time() == 400.0


def test_flags_live_in_the_dedicated_directory(store, db_host):
    store.raise_flag("ok", 100.0)
    files = db_host.fs.files_in_dir(f"{FLAG_DIR}/svc_ora01")
    assert files == [f"{FLAG_DIR}/svc_ora01/ok.100.0"]


def test_unknown_status_rejected(store):
    with pytest.raises(ValueError):
        store.raise_flag("confused", 0.0)


def test_latest_time_when_empty(store):
    assert store.latest_time() == float("-inf")
    assert store.latest() is None


def test_clear_before(store):
    for t in (10.0, 20.0, 30.0):
        store.raise_flag("ok", t)
    assert store.clear_before(25.0) == 2
    assert [f.time for f in store.flags()] == [30.0]


def test_clear_all(store):
    store.raise_flag("ok", 1.0)
    store.raise_flag("fixed", 2.0)
    assert store.clear_all() == 2
    assert store.flags() == []


def test_foreign_files_ignored(store, db_host):
    db_host.fs.write(f"{FLAG_DIR}/svc_ora01/README", ["not a flag"])
    store.raise_flag("ok", 5.0)
    assert len(store.flags()) == 1


def test_agents_on_lists_flag_directories(db_host):
    FlagStore(db_host.fs, "hardware").raise_flag("ok", 1.0)
    FlagStore(db_host.fs, "osnet").raise_flag("ok", 1.0)
    assert set(FlagStore.agents_on(db_host.fs)) >= {"hardware", "osnet"}


def test_flag_statuses_cover_the_protocol():
    from repro.core.flags import FLAG_STATUSES
    assert set(FLAG_STATUSES) == {"ok", "fault", "fixed", "failed",
                                  "skipped"}


# -- filename collisions (same status, same 0.1 s bucket) --------------------

def test_same_bucket_flags_do_not_overwrite(store):
    """Two flags of the same status in the same 0.1 s filename bucket
    used to silently overwrite; now the second gets a sequence suffix
    and both survive."""
    store.raise_flag("fault", 100.0, "first")
    store.raise_flag("fault", 100.0, "second")
    store.raise_flag("fault", 100.04, "third")   # same .1f bucket again
    flags = store.flags()
    assert [f.detail for f in flags] == ["first", "second", "third"]
    assert [f.seq for f in flags] == [0, 1, 2]
    # the freshest of the bucket wins latest()
    assert store.latest().detail == "third"


def test_collision_filenames_round_trip(store, db_host):
    store.raise_flag("ok", 7.0)
    store.raise_flag("ok", 7.0)
    files = sorted(db_host.fs.files_in_dir(f"{FLAG_DIR}/svc_ora01"))
    assert files == [f"{FLAG_DIR}/svc_ora01/ok.7.0",
                     f"{FLAG_DIR}/svc_ora01/ok.7.0.1"]
    assert store.latest_time() == 7.0
    assert store.clear_before(8.0) == 2


def test_distinct_buckets_still_collision_free(store):
    store.raise_flag("ok", 1.0)
    store.raise_flag("ok", 1.2)
    assert [f.seq for f in store.flags()] == [0, 0]


# -- condition-ledger binding ------------------------------------------------

def test_bound_store_publishes_conditions(store):
    from repro.controlplane import ConditionLedger
    ledger = ConditionLedger()
    store.bind(ledger, "db01")
    store.raise_flag("ok", 50.0)
    store.raise_flag("fault", 60.0, "disk")
    conds = ledger.read_since(0)
    assert [(c.kind, c.host, c.agent, c.status, c.time) for c in conds] == [
        ("flag", "db01", "svc_ora01", "ok", 50.0),
        ("flag", "db01", "svc_ora01", "fault", 60.0)]
    assert conds[1].detail == "disk"


def test_transport_gating_drops_but_keeps_local_flag(store, db_host):
    """A partitioned host still writes its flag locally; the condition
    simply never arrives -- exactly the 'absence of flags' the deadline
    wheel then notices."""
    from repro.controlplane import ConditionLedger
    ledger = ConditionLedger()
    reachable = {"ok": False}
    store.bind(ledger, "db01", lambda host: reachable["ok"])
    store.raise_flag("ok", 10.0)
    assert ledger.read_since(0) == []
    assert store.latest_time() == 10.0          # local write happened
    reachable["ok"] = True
    store.raise_flag("ok", 20.0)
    assert [c.time for c in ledger.read_since(0)] == [20.0]
