"""Unit tests for the flag protocol."""

import pytest

from repro.core.flags import FLAG_DIR, FlagStore


@pytest.fixture
def store(db_host):
    return FlagStore(db_host.fs, "svc_ora01")


def test_raise_and_read(store):
    store.raise_flag("ok", 100.0)
    store.raise_flag("fault", 400.0, "oracle down")
    flags = store.flags()
    assert [f.status for f in flags] == ["ok", "fault"]
    assert flags[1].detail == "oracle down"
    assert store.latest().time == 400.0
    assert store.latest_time() == 400.0


def test_flags_live_in_the_dedicated_directory(store, db_host):
    store.raise_flag("ok", 100.0)
    files = db_host.fs.files_in_dir(f"{FLAG_DIR}/svc_ora01")
    assert files == [f"{FLAG_DIR}/svc_ora01/ok.100.0"]


def test_unknown_status_rejected(store):
    with pytest.raises(ValueError):
        store.raise_flag("confused", 0.0)


def test_latest_time_when_empty(store):
    assert store.latest_time() == float("-inf")
    assert store.latest() is None


def test_clear_before(store):
    for t in (10.0, 20.0, 30.0):
        store.raise_flag("ok", t)
    assert store.clear_before(25.0) == 2
    assert [f.time for f in store.flags()] == [30.0]


def test_clear_all(store):
    store.raise_flag("ok", 1.0)
    store.raise_flag("fixed", 2.0)
    assert store.clear_all() == 2
    assert store.flags() == []


def test_foreign_files_ignored(store, db_host):
    db_host.fs.write(f"{FLAG_DIR}/svc_ora01/README", ["not a flag"])
    store.raise_flag("ok", 5.0)
    assert len(store.flags()) == 1


def test_agents_on_lists_flag_directories(db_host):
    FlagStore(db_host.fs, "hardware").raise_flag("ok", 1.0)
    FlagStore(db_host.fs, "osnet").raise_flag("ok", 1.0)
    assert set(FlagStore.agents_on(db_host.fs)) >= {"hardware", "osnet"}


def test_flag_statuses_cover_the_protocol():
    from repro.core.flags import FLAG_STATUSES
    assert set(FLAG_STATUSES) == {"ok", "fault", "fixed", "failed",
                                  "skipped"}
