"""Unit tests for the alerting tier: burn-rate math, the EWMA
detector, the alert state machine and the console pane."""

import pytest

from repro.observe import (AlertManager, BurnRateRule, EwmaAnomalyDetector,
                           TelemetryHub)
from repro.ops.console import OperatorConsole
from repro.trace import install_tracer
from repro.traffic.slo import burn_rate


# -- burn-rate math -----------------------------------------------------------


def test_burn_rate_math():
    # 0.1% budget at 99.9%: 10 bad of 1000 attempted burns 10 budgets
    assert burn_rate(1000.0, 10.0, 0.999) == pytest.approx(10.0)
    assert burn_rate(0.0, 0.0, 0.999) == 0.0
    assert burn_rate(1000.0, 0.0, 0.999) == 0.0
    assert burn_rate(100.0, 1.0, 1.0) == float("inf")
    assert burn_rate(100.0, 0.0, 1.0) == 0.0


# -- the anomaly detector -----------------------------------------------------


def test_ewma_detector_triggers_on_spike_after_warmup():
    det = EwmaAnomalyDetector(alpha=0.3, z=4.0, warmup=5, min_std=0.1)
    for _ in range(10):
        assert det.observe(10.0) is False
    assert det.observe(100.0) is True
    assert det.last_score > 4.0


def test_ewma_anomalies_do_not_poison_the_baseline():
    det = EwmaAnomalyDetector(warmup=5, min_std=0.1)
    for _ in range(10):
        det.observe(10.0)
    mean_before = det.mean
    det.observe(1000.0)
    assert det.mean == mean_before


def test_ewma_warmup_never_triggers():
    det = EwmaAnomalyDetector(warmup=50, min_std=1e-6)
    assert all(not det.observe(v) for v in (0.0, 1e6, -1e6, 42.0))


def test_ewma_alpha_validated():
    with pytest.raises(ValueError):
        EwmaAnomalyDetector(alpha=0.0)


# -- burn-rate alerts on a live hub -------------------------------------------


class FakeSli:
    def __init__(self):
        self.attempted = 0.0
        self.served = 0.0


@pytest.fixture
def stack(sim, notifications):
    """Hub + manager + one traffic class fed by a 60 s drip whose
    badness is switchable."""
    hub = TelemetryHub(sim, interval=60.0, registry=None)
    sli = FakeSli()
    hub.attach_slis({"web": sli})
    mgr = AlertManager(sim, hub, channel=notifications,
                       rules=(BurnRateRule("fast", 600.0, 120.0, 10.0,
                                           "critical"),))
    state = {"bad": 0.0}

    def drip():
        sli.attempted += 100.0
        sli.served += 100.0 * (1.0 - state["bad"])
        sim.schedule(60.0, drip)

    sim.schedule(60.0, drip)
    hub.start()
    return hub, mgr, state


def test_burn_alert_fires_pages_and_resolves(sim, notifications, stack):
    hub, mgr, state = stack
    ledger_events = []
    from repro.controlplane.ledger import ConditionLedger
    ledger = ConditionLedger()
    ledger.on_append(ledger_events.append)
    mgr.attach_ledger(ledger)

    sim.run(until=1200.0)               # clean baseline: no alerts
    assert mgr.pages_sent == 0

    state["bad"] = 0.5                  # 50% failures >> 0.1% budget
    sim.run(until=1500.0)
    firing = mgr.firing()
    assert len(firing) == 1 and firing[0].severity == "critical"
    assert mgr.pages_sent == 1
    assert notifications.sent[-1].subject.startswith("ALERT slo-burn web")
    assert [c.status for c in ledger_events] == ["firing"]

    state["bad"] = 0.0                  # recover; both windows drain
    sim.run(until=4000.0)
    assert mgr.firing() == []
    assert mgr.history[0].state == "resolved"
    assert [c.status for c in ledger_events] == ["firing", "resolved"]


def test_alert_attributed_to_newest_fault(sim, notifications, stack):
    hub, mgr, state = stack
    tracer = install_tracer(sim)
    sim.run(until=600.0)
    tracer.instant("fault.inject", fault_id="F0042", kind="db-crash",
                   target="db01/ora")
    state["bad"] = 0.5
    sim.run(until=1500.0)
    assert mgr.firing()[0].fault_id == "F0042"
    assert "F0042" in notifications.sent[-1].subject
    assert mgr.first_fired_at(fault_id="F0042") is not None
    assert mgr.alerts_for("F0042") == [mgr.firing()[0]]


# -- the state machine straight on ---------------------------------------------


def _mgr(sim, **kw):
    hub = TelemetryHub(sim, interval=60.0)
    return AlertManager(sim, hub, **kw)


def test_hold_swallows_flaps(sim):
    mgr = _mgr(sim, hold=120.0)
    kw = dict(subject="s", severity="warning", value=1.0, threshold=1.0)
    mgr._transition("k", True, 0.0, **kw)
    assert mgr._active["k"].state == "pending" and mgr.pages_sent == 0
    mgr._transition("k", False, 60.0, **kw)
    assert mgr._active == {} and mgr.history == []
    assert mgr.flaps_suppressed == 1


def test_fire_after_hold_then_resolve_after_quiet(sim):
    mgr = _mgr(sim, hold=120.0, resolve_hold=300.0)
    kw = dict(subject="s", severity="warning", value=1.0, threshold=1.0)
    mgr._transition("k", True, 0.0, **kw)
    mgr._transition("k", True, 120.0, **kw)
    alert = mgr._active["k"]
    assert alert.state == "firing" and alert.pages == 1
    mgr._transition("k", False, 200.0, **kw)    # not quiet long enough
    assert alert.state == "firing"
    mgr._transition("k", False, 420.0, **kw)
    assert alert.state == "resolved" and mgr._active == {}
    assert mgr.history == [alert]


def test_escalation_repages_at_critical(sim):
    mgr = _mgr(sim, escalate_after=1800.0)
    kw = dict(subject="s", severity="warning", value=1.0, threshold=1.0)
    mgr._transition("k", True, 0.0, **kw)
    alert = mgr._active["k"]
    assert alert.severity == "warning" and alert.pages == 1
    mgr._escalate(1000.0)
    assert not alert.escalated
    mgr._escalate(1800.0)
    assert alert.escalated and alert.severity == "critical"
    assert alert.pages == 2 and alert.notes


# -- the console pane ---------------------------------------------------------


def test_console_shows_firing_alerts_pane(sim, notifications, stack):
    hub, mgr, state = stack
    console = OperatorConsole(notifications, sim)
    console.attach_alerts(mgr)
    state["bad"] = 0.5
    sim.run(until=1500.0)
    board = console.board()
    assert "-- alerts: 1 firing, 1 page(s) sent" in board
    assert "slo-burn web fast" in board


def test_console_without_alert_manager_has_no_pane(sim, notifications):
    console = OperatorConsole(notifications, sim)
    assert "-- alerts:" not in console.board()
