"""The relocation experiment (repro.experiments.relocation) and its
CLI entry."""

from repro.cli import main
from repro.experiments import relocation
from repro.sim.calendar import DAY, YEAR

HORIZON = 45 * DAY


def test_summary_shape():
    res = relocation.run_once(3, horizon=HORIZON, population=100_000)
    s = res.summary()
    assert set(s) == {"population", "horizon_s", "step_s", "replications",
                      "before", "escalate", "relocate", "relocations"}
    assert s["before"]["label"] == "before"
    assert s["escalate"]["label"] == "escalate-only"
    assert s["relocate"]["label"] == "relocate"
    # identical demand curve across all three arms
    assert (s["before"]["attempted_requests"]
            == s["escalate"]["attempted_requests"]
            == s["relocate"]["attempted_requests"])
    assert set(s["relocations"]) == {
        "candidates", "succeeded", "failed", "superseded",
        "hours_saved", "hours_lost_to_rollbacks"}


def test_relocation_improves_user_qos_over_a_year():
    res = relocation.run_once(0, horizon=YEAR, population=100_000)
    assert res.relocations["candidates"] > 0
    assert res.availability_gain > 0
    assert res.user_minutes_saved > 0
    assert (res.relocate.availability > res.escalate.availability
            > res.before.availability)
    assert (res.relocate.user_minutes_lost < res.escalate.user_minutes_lost
            < res.before.user_minutes_lost)


def test_replicated_mean_keeps_shape():
    merged = relocation.run_replicated([0, 1], horizon=HORIZON,
                                       population=100_000)
    assert merged["replications"] == 2
    assert merged["relocate"]["availability"] <= 1.0
    assert "candidates" in merged["relocations"]


def test_format_result_renders():
    merged = relocation.run_replicated([0], horizon=HORIZON,
                                       population=100_000)
    text = relocation.format_result(merged)
    for needle in ("Service relocation", "before", "escalate-only",
                   "relocate", "relocation tier", "relocation on vs off",
                   "availability"):
        assert needle in text


def test_cli_runs_relocation(capsys, tmp_path):
    trace_file = tmp_path / "relocation.json"
    assert main(["relocation", "--replications", "1",
                 "--population", "100000",
                 "--trace", str(trace_file), "--timeline"]) == 0
    out = capsys.readouterr().out
    assert "relocation on vs off" in out
    assert "relocate.plan" in out           # the timeline shows phases
    assert trace_file.exists()
