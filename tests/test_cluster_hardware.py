"""Unit tests for the hardware inventory."""

from repro.cluster.hardware import (ComponentKind, ComponentState,
                                    HardwareInventory)
from repro.cluster.specs import spec


def _inv(model="sun-e4500"):
    return HardwareInventory(spec(model))


def test_inventory_built_from_spec():
    inv = _inv()
    assert len(inv.of_kind(ComponentKind.DISK)) == spec("sun-e4500").disks
    assert len(inv.of_kind(ComponentKind.CPU_BOARD)) == 2   # 8 cpus / 4
    assert inv.healthy()
    assert not inv.fatal()


def test_fail_and_replace():
    inv = _inv()
    disk = inv.of_kind(ComponentKind.DISK)[0]
    disk.fail(now=100.0)
    assert not inv.healthy()
    assert inv.failed() == [disk]
    disk.replace()
    assert inv.healthy()
    assert disk.error_count == 0


def test_degrade_after_repeated_errors():
    inv = _inv()
    board = inv.of_kind(ComponentKind.CPU_BOARD)[0]
    for _ in range(3):
        board.degrade(now=1.0)
    assert board.state is ComponentState.DEGRADED
    assert inv.degraded() == [board]
    assert inv.healthy()        # degraded is not failed


def test_effective_capacity_shrinks_with_failures():
    inv = _inv()
    full_cpus = inv.effective_cpus()
    inv.of_kind(ComponentKind.CPU_BOARD)[0].fail(now=0.0)
    assert inv.effective_cpus() < full_cpus
    full_ram = inv.effective_ram_mb()
    inv.of_kind(ComponentKind.MEMORY_BANK)[0].fail(now=0.0)
    assert inv.effective_ram_mb() < full_ram


def test_fatal_conditions():
    inv = _inv()
    inv.find("system_board0").fail(now=0.0)
    assert inv.fatal()

    inv2 = _inv()
    for board in inv2.of_kind(ComponentKind.CPU_BOARD):
        board.fail(now=0.0)
    assert inv2.fatal()

    inv3 = _inv()
    inv3.of_kind(ComponentKind.DISK)[0].fail(now=0.0)
    assert not inv3.fatal()


def test_status_report_names_states():
    inv = _inv()
    inv.find("disk1").fail(now=0.0)
    report = inv.status_report()
    assert report["disk1"] == "failed"
    assert report["disk0"] == "ok"


def test_find_unknown_component():
    import pytest
    with pytest.raises(KeyError):
        _inv().find("flux_capacitor0")
