"""Unit tests for the intelliagent base behaviour (via ServiceAgent)."""

import pytest

from repro.core.flags import FlagStore
from repro.core.service_agent import ServiceAgent


@pytest.fixture
def agent(database, notifications):
    return ServiceAgent(database.host, database.name,
                        notifications=notifications)


def test_agent_not_memory_resident(agent, database, sim):
    """The process exists only for the span of a run."""
    assert not database.host.ptable.alive(agent.command)
    agent.run()
    # healthy service, instantaneous run: process already gone
    assert not database.host.ptable.alive(agent.command)
    assert agent.stats.runs == 1


def test_ok_flag_on_clean_run(agent, sim):
    agent.run()
    latest = agent.flags.latest()
    assert latest.status == "ok"


def test_cron_registration(agent, database, sim):
    assert agent.name in database.host.crond.jobs
    sim.run(until=agent.period * 2 + 1)
    assert agent.stats.runs == 2


def test_fault_flag_and_heal_on_crash(agent, database, sim):
    database.crash("x")
    agent.run()
    statuses = [f.status for f in agent.flags.flags()]
    assert "fault" in statuses and "fixed" in statuses
    assert agent.stats.heals_succeeded == 1
    sim.run(until=sim.now + database.startup_duration() + 5)
    assert database.is_healthy()


def test_lockout_during_long_repair(agent, database, sim):
    database.host.crond.remove(agent.name)    # manual drive only
    database.crash("x")
    agent.run()                   # starts the repair; agent stays busy
    assert database.host.ptable.alive(agent.command)
    agent.run()                   # same-type lockout
    assert agent.stats.skipped == 1
    assert any(f.status == "skipped" for f in agent.flags.flags())
    # once the repair window passes the process exits and runs resume
    sim.run(until=sim.now + 600.0)
    assert not database.host.ptable.alive(agent.command)
    agent.run()
    assert agent.stats.skipped == 1


def test_self_maintenance_prunes_flags(agent, sim, database):
    from repro.core.agent import FLAG_RETENTION
    agent.flags.raise_flag("ok", 0.0)
    sim.run(until=FLAG_RETENTION + 400.0)
    agent.run()
    times = [f.time for f in agent.flags.flags()]
    assert 0.0 not in times


def test_escalation_when_no_rule_matches(database, notifications, sim):
    agent = ServiceAgent(database.host, database.name,
                         notifications=notifications)
    database.host.crond.remove(agent.name)
    # an uninstalled application has no automated remedy
    del database.host.apps[database.name]
    for _ in range(3):
        agent.run()
    assert agent.stats.escalations >= 1
    assert any("cannot fix" in n.subject for n in notifications.sent)
    # only one notification per incident (no email storm)
    assert len([n for n in notifications.sent
                if "cannot fix" in n.subject]) == 1


def test_recovery_resets_escalation_state(database, notifications, sim):
    agent = ServiceAgent(database.host, database.name,
                         notifications=notifications)
    database.host.crond.remove(agent.name)
    del database.host.apps[database.name]
    agent.run()
    assert agent._escalated
    # a human reinstalls the application
    database.host.apps[database.name] = database
    agent.run()
    assert not agent._escalated
    assert not agent._attempts


def test_self_healing_beats_my_sabotage(database, notifications, sim):
    """Config corruption plus a misleading crash message: the first
    wake restarts (wrong remedy), the startup abort then *writes the
    evidence* the next diagnosis needs, and the second wake restores
    the configuration -- the paper's static log-parsing diagnosis."""
    agent = ServiceAgent(database.host, database.name,
                         notifications=notifications)
    database.host.crond.remove(agent.name)
    database.config_ok = False
    database.crash("mystery fault xyz")
    for _ in range(3):
        agent.run()
        sim.run(until=sim.now + 900.0)
    assert database.is_healthy()
    assert database.config_ok
    assert agent.stats.escalations == 0


def test_parts_can_be_deactivated(database, notifications, sim):
    agent = ServiceAgent(database.host, database.name,
                         notifications=notifications)
    agent.parts.deactivate("healing")
    database.crash("x")
    agent.run()
    assert agent.stats.heals_attempted == 0
    assert agent.stats.escalations == 1     # diagnose-only escalates
    with pytest.raises(ValueError):
        agent.parts.deactivate("teleportation")


def test_monitoring_deactivated_means_blind(database, sim, notifications):
    agent = ServiceAgent(database.host, database.name,
                         notifications=notifications)
    agent.parts.deactivate("monitoring")
    database.crash("x")
    agent.run()
    assert agent.stats.faults_found == 0


def test_activity_log_written(agent, database, sim):
    database.crash("x")
    agent.run()
    lines = agent.activity.lines()
    assert any("diagnosis" in l for l in lines)
    assert any("action restart_app" in l for l in lines)


def test_agent_skips_when_host_down(agent, database, sim):
    database.host.crash("x")
    agent.run()
    assert agent.stats.runs == 0


def test_amortized_cpu_is_tiny(agent):
    # the Fig. 3 property: well under a tenth of a percent
    assert agent.amortized_cpu_pct() < 0.05


def test_flag_write_failure_does_not_kill_agent(agent, database, sim):
    database.host.fs.fill("/logs", 1.0)
    agent.run()                   # must not raise
    assert agent.stats.runs == 1
