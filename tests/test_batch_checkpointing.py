"""Unit tests for job checkpointing (related-work technique [18]).

A checkpointing job banks completed work at every interval; a
resubmission resumes from the last checkpoint instead of restarting
from scratch, which caps the work lost to a mid-job database crash.
"""

import pytest

from repro.apps.database import Database
from repro.batch.jobs import BatchJob, JobState
from repro.batch.lsf import LsfCluster, LsfMaster


@pytest.fixture
def lsf(dc, sim, rs):
    master = LsfMaster(dc.host("adm01"))
    master.start()
    dbs = [Database(dc.host("db01"), "a", max_job_slots=4),
           Database(dc.host("fe01"), "b", max_job_slots=4)]
    for db in dbs:
        db.start()
    sim.run(until=sim.now + 200.0)
    cluster = LsfCluster(dc, master, rng=rs.get("lsf"),
                         base_crash_prob=0.0)
    for db in dbs:
        cluster.register_server(db)
    return cluster


def test_checkpoints_bank_work_on_failure(sim, lsf):
    job = BatchJob("ckpt", "u", duration=3600.0,
                   checkpoint_interval=600.0, requested_server="db01")
    lsf.submit(job)
    sim.run(until=sim.now + 1550.0)       # 2 full checkpoints + change
    job.database.crash("mid-job")
    assert job.state is JobState.FAILED
    assert job.checkpointed_work == 1200.0
    assert job.remaining_work == 2400.0


def test_resumed_job_finishes_early(sim, lsf):
    job = BatchJob("ckpt", "u", duration=3600.0,
                   checkpoint_interval=600.0, requested_server="db01")
    lsf.submit(job)
    sim.run(until=sim.now + 1900.0)
    job.database.crash("x")
    assert job.checkpointed_work == 1800.0
    job.requested_server = "fe01"
    t_resume = sim.now
    lsf.resubmit(job)
    sim.run(until=sim.now + 1850.0)
    assert job.state is JobState.DONE
    # only the remaining half ran after the resume
    assert job.finished_at - t_resume == pytest.approx(1800.0)


def test_non_checkpointing_job_restarts_from_scratch(sim, lsf):
    job = BatchJob("plain", "u", duration=3600.0,
                   requested_server="db01")
    lsf.submit(job)
    sim.run(until=sim.now + 1900.0)
    job.database.crash("x")
    assert job.checkpointed_work == 0.0
    assert job.remaining_work == 3600.0


def test_checkpoints_accumulate_across_failures(sim, lsf):
    job = BatchJob("ckpt", "u", duration=3600.0,
                   checkpoint_interval=300.0, requested_server="db01")
    lsf.submit(job)
    sim.run(until=sim.now + 700.0)
    job.database.crash("first")
    assert job.checkpointed_work == 600.0
    job.requested_server = "fe01"
    lsf.resubmit(job)
    sim.run(until=sim.now + 700.0)
    job.database.crash("second")
    assert job.checkpointed_work == 1200.0


def test_time_left_accounts_for_checkpoints(sim, lsf):
    job = BatchJob("ckpt", "u", duration=3600.0,
                   checkpoint_interval=600.0, requested_server="db01")
    lsf.submit(job)
    sim.run(until=sim.now + 650.0)
    job.database.crash("x")
    job.requested_server = "fe01"
    lsf.resubmit(job)
    assert job.time_left(sim.now) == pytest.approx(3000.0)


def test_banked_work_capped_at_duration(sim, lsf):
    job = BatchJob("ckpt", "u", duration=1000.0,
                   checkpoint_interval=100.0, requested_server="db01")
    lsf.submit(job)
    sim.run(until=sim.now + 999.0)
    job.database.crash("photo finish")
    assert job.checkpointed_work <= 1000.0
    assert job.remaining_work >= 0.0
