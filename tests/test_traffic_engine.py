"""Unit tests for the fluid and discrete traffic engines."""

import pytest

from repro.sim import RandomStreams
from repro.sim.calendar import HOUR
from repro.traffic import (DiscreteTrafficEngine, FluidTrafficEngine,
                           FrontDoor, financial_curve)

POP = 100_000


@pytest.fixture
def curve():
    return financial_curve(population=POP)


@pytest.fixture
def small_curve():
    # small enough for the discrete engine's per-request events
    return financial_curve(population=20_000)


def doors_for(webserver):
    return {"web": FrontDoor("webserver", [webserver])}


def run_engine(engine_cls, sim, curve, webserver, seed=42, **kw):
    eng = engine_cls(sim, curve, doors_for(webserver),
                     RandomStreams(seed), step=60.0, **kw)
    eng.start()
    sim.run(until=sim.now + HOUR)
    eng.stop()
    return eng


def test_rejects_door_for_unknown_class(sim, curve, webserver):
    with pytest.raises(ValueError):
        FluidTrafficEngine(sim, curve, {"bogus": FrontDoor(
            "webserver", [webserver])}, RandomStreams(1))


def test_fluid_healthy_site_full_availability(sim, curve, webserver):
    eng = run_engine(FluidTrafficEngine, sim, curve, webserver)
    assert eng.ticks >= 60
    assert eng.attempted > 0
    assert eng.availability == 1.0
    assert webserver.requests_served == eng.served


def test_fluid_attempted_tracks_demand_curve(sim, curve, webserver):
    """Poisson totals over an hour land near the curve's expectation."""
    t0 = sim.now
    eng = run_engine(FluidTrafficEngine, sim, curve, webserver)
    cls = curve.by_name["web"]
    expected = curve.expected_requests(cls, t0, t0 + HOUR)
    assert eng.attempted == pytest.approx(expected, rel=0.15)


def test_fluid_crash_fails_requests_then_shed_recovers(sim, curve, webserver):
    door = FrontDoor("webserver", [webserver])
    eng = FluidTrafficEngine(sim, curve, {"web": door}, RandomStreams(3),
                             step=60.0)
    eng.start()
    sim.run(until=sim.now + 10 * 60.0)
    webserver.crash("x")
    sim.run(until=sim.now + 10 * 60.0)
    sli = eng.slis["web"]
    assert sli.failed > 0
    assert eng.availability < 1.0
    door.flag_down(webserver.host.name)
    failed_at_shed = sli.failed
    sim.run(until=sim.now + 10 * 60.0)
    # everything since the flag was shed, not failed at the server
    assert sli.failed > failed_at_shed           # shed counts as failed...
    assert sli.shed == sli.failed - failed_at_shed   # ...but via shedding
    eng.stop()


def test_discrete_healthy_site(sim, small_curve, webserver):
    eng = run_engine(DiscreteTrafficEngine, sim, small_curve, webserver)
    assert eng.attempted > 0
    assert eng.availability == 1.0


def test_discrete_guards_against_large_batches(sim, webserver):
    big = financial_curve(population=50_000_000)
    eng = DiscreteTrafficEngine(sim, big, doors_for(webserver),
                                RandomStreams(1), step=300.0,
                                max_requests_per_tick=1000)
    eng.start()
    with pytest.raises(RuntimeError, match="discrete engine"):
        sim.run(until=sim.now + HOUR)


def test_fluid_and_discrete_agree_on_expectation(sim, small_curve,
                                                 webserver):
    """Same curve, same healthy server: both modes serve everything and
    each window's total straddles that window's Poisson mean."""
    cls = small_curve.by_name["web"]
    results = []
    for engine_cls in (FluidTrafficEngine, DiscreteTrafficEngine):
        t0 = sim.now
        eng = run_engine(engine_cls, sim, small_curve, webserver, seed=7)
        expected = small_curve.expected_requests(cls, t0, t0 + HOUR)
        results.append((eng, expected))
    (fluid, fexp), (discrete, dexp) = results
    assert fluid.availability == discrete.availability == 1.0
    assert fluid.attempted == pytest.approx(fexp, rel=0.2)
    assert discrete.attempted == pytest.approx(dexp, rel=0.2)


def test_engine_deterministic_with_seed(curve):
    from repro.sim import Simulator

    def total(seed):
        sim = Simulator()
        from repro.apps.webserver import WebServer
        from repro.cluster.datacenter import Datacenter
        from repro.net.network import Lan
        dc = Datacenter(sim, RandomStreams(9), "dc")
        dc.add_lan(Lan(sim, "public0", kind="public", subnet="192.168.1"))
        dc.add_host("fe01", "ibm-sp2", group="frontend")
        dc.connect("fe01", "public0")
        ws = WebServer(dc.host("fe01"), "httpd01")
        ws.start()
        sim.run(until=sim.now + 60.0)
        eng = FluidTrafficEngine(sim, curve, {"web": FrontDoor(
            "webserver", [ws])}, RandomStreams(seed), step=60.0)
        eng.start()
        sim.run(until=sim.now + HOUR)
        return eng.attempted

    assert total(5) == total(5)
    assert total(5) != total(6)


def test_tick_counter_and_stop(sim, curve, webserver):
    eng = FluidTrafficEngine(sim, curve, doors_for(webserver),
                             RandomStreams(1), step=300.0)
    eng.start()
    eng.start()                       # idempotent
    sim.run(until=sim.now + HOUR)
    ticks = eng.ticks
    assert ticks == pytest.approx(12, abs=1)
    eng.stop()
    sim.run(until=sim.now + HOUR)
    assert eng.ticks == ticks         # no ticks after stop


def test_metrics_counters_when_traced(curve, webserver):
    """With a tracer installed the engine bumps traffic.* counters."""
    sim = webserver.host.sim
    from repro.trace import install_tracer
    install_tracer(sim)
    eng = FluidTrafficEngine(sim, curve, doors_for(webserver),
                             RandomStreams(2), step=60.0)
    eng.start()
    sim.run(until=sim.now + 10 * 60.0)
    m = sim.tracer.metrics
    assert m.counter("traffic.attempted").value == eng.attempted
    assert m.counter("traffic.served").value == eng.served
