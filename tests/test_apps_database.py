"""Unit tests for the database model."""

import pytest

from repro.apps.database import Database
from repro.batch.jobs import BatchJob, JobState


def test_db_ports_by_type(dc, sim):
    ora = Database(dc.host("db01"), "ora", db_type="oracle")
    syb = Database(dc.host("fe01"), "syb", db_type="sybase")
    assert ora.port == 1521
    assert syb.port == 4100
    with pytest.raises(ValueError):
        Database(dc.host("adm01"), "bad", db_type="postgres")


def test_probe_counts_transactions(database):
    t0 = database.transactions
    ok, ms, _ = database.probe()
    assert ok and ms > 0
    assert database.transactions == t0 + 1


def test_user_sessions(database):
    assert database.connect_user("alice")
    assert database.connect_user("bob")
    assert database.user_count() == 2
    database.disconnect_user("alice")
    assert database.user_count() == 1
    database.crash("x")
    assert database.user_count() == 0


def test_connect_refused_when_down(database):
    database.crash("x")
    assert not database.connect_user("carol")


def test_job_attach_detach_loads_host(database):
    host = database.host
    job = BatchJob("j", "u", duration=100.0, cpu_slots=3, io_demand=0.5)
    assert database.attach_job(job)
    assert host.extra_runnable == 3
    assert host.io_demand >= 0.5
    assert database.job_count() == 1
    database.detach_job(job)
    assert host.extra_runnable == 0
    assert database.job_count() == 0


def test_attach_refused_when_not_running(database):
    database.crash("x")
    job = BatchJob("j", "u", duration=10.0)
    assert not database.attach_job(job)


def test_crash_fails_active_jobs(database, sim):
    jobs = [BatchJob(f"j{i}", "u", duration=1e6) for i in range(3)]
    for j in jobs:
        database.attach_job(j)
        j.mark_running(database, sim.now, None)
    database.crash("mid-job")
    for j in jobs:
        assert j.state is JobState.FAILED
        assert "db-died" in j.fail_reason
        assert database.host.name in j.failed_on
    assert database.jobs_crashed_total == 3
    assert database.host.extra_runnable == 0


def test_overload_and_hazard(database):
    base = database.crash_hazard_multiplier()
    assert base == 1.0
    ceiling = database.host.spec.max_load * database.host.effective_cpus()
    database.host.extra_runnable = int(ceiling * 1.5)
    assert database.overload_factor() > 1.0
    assert database.crash_hazard_multiplier() > 10.0 * base


def test_backup_lifecycle(database, sim):
    duration = database.start_backup()
    assert duration is not None
    assert database.backup_running
    assert database.start_backup() is None     # one at a time
    sim.run(until=sim.now + duration + 1)
    assert not database.backup_running


def test_checkpoint_only_when_running(database):
    database.checkpoint()
    assert database.checkpoints == 1
    database.crash("x")
    database.checkpoint()
    assert database.checkpoints == 1


def test_db_metrics_snapshot(database):
    m = database.db_metrics()
    # §3.6's ten database measurements are all present
    for key in ("connect_ms", "query_ms", "init_s", "shutdown_s",
                "backup_s", "proc_cpu_pct", "proc_mem_mb", "users",
                "startup_mem_mb", "checkpoints", "mem_per_txn_kb"):
        assert key in m
    assert m["connect_ms"] > 0
