"""Unit tests for baselines and thresholds."""

import pytest

from repro.core.thresholds import Baselines


def test_check_detects_high_and_low():
    b = Baselines()
    b.set_band("run_queue", None, 10.0)
    b.set_band("free_mb", 100.0, None)
    breaches = b.check({"run_queue": 15.0, "free_mb": 50.0,
                        "unknown_metric": 1e9})
    kinds = {(x.metric, x.direction) for x in breaches}
    assert kinds == {("run_queue", "high"), ("free_mb", "low")}
    breach = [x for x in breaches if x.metric == "run_queue"][0]
    assert breach.limit == 10.0 and breach.value == 15.0


def test_in_band_is_clean():
    b = Baselines()
    b.set_band("x", 0.0, 10.0)
    assert b.check({"x": 5.0}) == []
    assert b.check({"x": 10.0}) == []      # inclusive


def test_adjust_on_evidence_widens_high_side():
    b = Baselines()
    b.set_band("x", None, 10.0)
    b.adjust("x", observed=14.0)
    assert b.band("x").hi == pytest.approx(14.0 * 1.2)
    assert b.band("x").adjustments == 1
    assert b.check({"x": 14.0}) == []


def test_adjust_on_evidence_widens_low_side():
    b = Baselines()
    b.set_band("x", 100.0, None)
    b.adjust("x", observed=60.0)
    assert b.band("x").lo == pytest.approx(60.0 * 0.8)


def test_adjust_ignores_in_band_and_unknown():
    b = Baselines()
    b.set_band("x", None, 10.0)
    b.adjust("x", observed=5.0)
    assert b.band("x").hi == 10.0
    b.adjust("nonexistent", observed=1.0)       # no crash


def test_for_host_seeds_from_spec(database):
    b = Baselines.for_host(database.host)
    spec = database.host.spec
    assert b.band("run_queue").hi == spec.max_load * spec.cpus
    assert b.band("free_mb").lo == pytest.approx(spec.ram_mb * 0.05)
    assert b.band("fs_logs_pct").hi == 90.0
    # developer-provided timeouts seed the app response band (§3.2)
    band = b.band(f"{database.name}_response_ms")
    assert band.hi == database.connect_timeout_ms * 0.5


def test_healthy_host_is_in_band(database):
    b = Baselines.for_host(database.host)
    m = database.host.os_metrics()
    m["load_avg"] = database.host.load_average()
    assert b.check(m) == []
