"""Unit tests for the constraint-based placement planner."""

import pytest

from repro.apps.frontend import FrontendApp
from repro.ontology.dgspl import Dgspl, GlobalServiceEntry
from repro.ontology.slkt import app_template_of
from repro.relocate import PlacementPlanner, SparePool


@pytest.fixture
def spares(dc, database):
    pool = SparePool(dc)
    host = dc.add_host("sp01", "sun-e10k", group="spare")
    FrontendApp(host, "finapp_sp01", backend=database, auto_start=False)
    pool.register(host)
    return pool


@pytest.fixture
def planner(dc, spares):
    return PlacementPlanner(dc, spares)


@pytest.fixture
def template(frontend):
    """The failed service: finapp01 on fe01, depending on db01/ora01."""
    return app_template_of(frontend)


def _peer_entry(app):
    host = app.host
    return GlobalServiceEntry(
        server=host.name, server_type=host.spec.model, os="solaris",
        ram_mb=host.spec.ram_mb, cpus=host.spec.cpus, app_name=app.name,
        app_type=app.app_type, app_version=app.version,
        current_load=host.load_average(), users=0,
        location="rack1", site="dc1")


def test_cold_start_on_spare(planner, template):
    plan = planner.plan(template, "fe01")
    assert plan is not None and plan.cold
    assert plan.target_host == "sp01"
    assert plan.target_app == "finapp_sp01"
    assert plan.shortlist == ["sp01"]
    assert plan.source_host == "fe01"
    assert "cold-start" in plan.describe()
    assert planner.plans_made == 1


def test_never_places_onto_the_source(planner, spares, dc, frontend,
                                      template):
    """Even if the source host advertises a matching slot, anti-affinity
    with the failure excludes it."""
    spares.register(dc.host("fe01"))    # fe01 now *also* looks like a spare
    plan = planner.plan(template, "fe01")
    assert plan.target_host == "sp01"
    assert "anti-affinity" in plan.rejections["fe01"]


def test_anti_affinity_with_incident_hosts(planner, template):
    assert planner.plan(template, "fe01", failed_hosts=["sp01"]) is None
    assert planner.plans_failed == 1


def test_down_spare_rejected(planner, dc, template):
    dc.host("sp01").crash("power")
    assert planner.plan(template, "fe01") is None


def test_offline_filesystem_rejected(planner, dc, spares, database,
                                     template):
    """With a second spare carrying a broken /apps mount the plan still
    lands on the good one and the rejection reason is recorded."""
    host = dc.add_host("sp02", "sun-e10k", group="spare")
    FrontendApp(host, "finapp_sp02", backend=database, auto_start=False)
    spares.register(host)
    host.fs.mounts["/apps"].online = False
    plan = planner.plan(template, "fe01")
    assert plan.target_host == "sp01"
    assert "filesystem /apps" in plan.rejections["sp02"]


def test_unhealthy_dependency_rejected(planner, database, template):
    database.crash("ora down")
    assert planner.plan(template, "fe01") is None


def test_no_cpu_headroom_rejected(planner, dc, template):
    host = dc.host("sp01")
    host.load_average = lambda: 0.9 * host.spec.max_load
    assert planner.plan(template, "fe01") is None


def test_no_memory_headroom_rejected(planner, dc, template):
    dc.host("sp01").memory_free_mb = lambda: 1.0
    assert planner.plan(template, "fe01") is None


def test_version_mismatch_finds_no_slot(planner, dc, database):
    odd = FrontendApp(dc.host("fe01"), "finapp_v2", backend=database,
                      version="2.0")
    assert planner.plan(app_template_of(odd), "fe01") is None


def test_warm_takeover_from_dgspl(dc, spares, database, frontend, template):
    peer = dc.add_host("fe02", "ibm-sp2", group="frontend")
    peer_app = FrontendApp(peer, "finapp_fe02", backend=database)
    peer_app.start()
    dc.sim.run(until=dc.sim.now + 120.0)
    dgspl = Dgspl(generated_at=dc.sim.now)
    dgspl.add(_peer_entry(peer_app))
    planner = PlacementPlanner(dc, spares, lambda: dgspl)

    plan = planner.plan(template, "fe01")
    # the idle spare wins (no load), the healthy peer is the runner-up
    assert plan.target_host == "sp01" and plan.cold
    assert plan.shortlist == ["sp01", "fe02"]

    dc.host("sp01").crash("power")
    plan = planner.plan(template, "fe01")
    assert plan.target_host == "fe02" and not plan.cold
    assert plan.target_app == "finapp_fe02"


def test_stale_dgspl_is_ignored(dc, spares, database, template):
    peer = dc.add_host("fe02", "ibm-sp2", group="frontend")
    peer_app = FrontendApp(peer, "finapp_fe02", backend=database)
    peer_app.start()
    stale = Dgspl(generated_at=dc.sim.now - 3600.0)
    stale.add(_peer_entry(peer_app))
    planner = PlacementPlanner(dc, SparePool(dc), lambda: stale,
                               dgspl_staleness=1800.0)
    assert planner.plan(template, "fe01") is None


def test_plan_is_deterministic(planner, template):
    a = planner.plan(template, "fe01")
    b = planner.plan(template, "fe01")
    assert (a.target_host, a.target_app, a.cold, a.shortlist) == \
           (b.target_host, b.target_app, b.cold, b.shortlist)
