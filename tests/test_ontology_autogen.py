"""Unit tests for automatic ontology generation (§5 future work)."""

import pytest

from repro.ontology.autogen import (SlktDriftDetector, generate_issl,
                                    ProposedUpdate)
from repro.ontology.slkt import build_slkt


def test_generate_issl_from_datacenter(dc, database, webserver):
    lists = generate_issl(dc)
    assert len(lists) == 1
    issl = lists[0]
    assert set(issl.names()) == {"db01", "fe01", "adm01", "adm02"}
    assert "ora01" in issl.get("db01").services
    assert issl.get("db01").ip != "0.0.0.0"


def test_generate_issl_prefers_lan(dc, database):
    issl = generate_issl(dc, prefer_lan="agentnet")[0]
    assert issl.get("db01").ip.startswith("10.0.0.")
    issl_pub = generate_issl(dc, prefer_lan="public0")[0]
    assert issl_pub.get("db01").ip.startswith("192.168.1.")


def test_generate_issl_splits_past_200_entries(sim, rs):
    from repro.cluster.datacenter import Datacenter
    big = Datacenter(sim, rs, "big")
    for i in range(230):
        big.add_host(f"h{i:03d}", "linux-x86")
    lists = generate_issl(big)
    assert len(lists) == 2
    assert len(lists[0]) == 200
    assert len(lists[1]) == 30


def test_drift_detector_quiet_on_stable_host(database):
    det = SlktDriftDetector(build_slkt(database.host))
    for _ in range(5):
        assert det.observe(database.host) == []


def test_drift_needs_persistence(database):
    det = SlktDriftDetector(build_slkt(database.host), confirmations=3)
    database.version = "9.0.1"      # an upgrade happened
    assert det.observe(database.host) == []
    assert det.observe(database.host) == []
    ready = det.observe(database.host)
    assert len(ready) == 1
    assert ready[0].kind == "version"
    assert ready[0].new == "9.0.1"


def test_transient_drift_never_proposed(database):
    det = SlktDriftDetector(build_slkt(database.host), confirmations=3)
    database.version = "9.0.1"
    det.observe(database.host)
    det.observe(database.host)
    database.version = "8.1.7"      # rolled back
    assert det.observe(database.host) == []
    # streak was reset: an upgrade later starts from scratch
    database.version = "9.0.1"
    assert det.observe(database.host) == []


def test_new_and_gone_apps_detected(database, dc, sim):
    det = SlktDriftDetector(build_slkt(database.host), confirmations=1)
    from repro.apps.webserver import WebServer
    ws = WebServer(dc.host("db01"), "new_httpd")
    ws.start()
    sim.run(until=sim.now + 60.0)
    ready = det.observe(database.host)
    assert any(u.kind == "new-app" and u.app == "new_httpd"
               for u in ready)
    # remove the database: gone-app
    del dc.host("db01").apps[database.name]
    ready = det.observe(database.host)
    assert any(u.kind == "gone-app" and u.app == database.name
               for u in ready)


def test_apply_updates_template(database):
    slkt = build_slkt(database.host)
    det = SlktDriftDetector(slkt, confirmations=1)
    database.version = "9.0.1"
    ready = det.observe(database.host)
    det.apply(database.host, ready)
    assert slkt.apps[database.name].version == "9.0.1"
    assert det.updates_applied == 1
    # no further drift
    assert det.observe(database.host) == []


def test_apply_gone_app_removes_template(database):
    slkt = build_slkt(database.host)
    det = SlktDriftDetector(slkt, confirmations=1)
    del database.host.apps[database.name]
    ready = det.observe(database.host)
    det.apply(database.host, ready)
    assert database.name not in slkt.apps


def test_proposed_update_describe():
    u = ProposedUpdate("ora", "version", "8.1.7", "9.0.1")
    assert "ora" in u.describe() and "9.0.1" in u.describe()
