"""Unit tests for the host model."""

import pytest

from repro.apps.database import Database
from repro.cluster.host import HostState, OS_BASE_MB


def test_host_starts_up_with_base_daemons(db_host):
    assert db_host.is_up
    for daemon in ("init", "inetd", "syslogd", "crond"):
        assert db_host.ptable.alive(daemon)


def test_crash_clears_processes_and_fires_signal(sim, db_host):
    reasons = []

    def watcher():
        reason = yield db_host.down_signal
        reasons.append(reason)

    sim.spawn(watcher())
    sim.run(until=1.0)
    db_host.crash("panic: bad trap")
    sim.run(until=2.0)
    assert db_host.state is HostState.DOWN
    assert len(db_host.ptable) == 0
    assert reasons == ["panic: bad trap"]
    assert db_host.crash_count == 1


def test_boot_takes_boot_duration(sim, db_host):
    db_host.crash("x")
    t0 = sim.now
    db_host.boot()
    sim.run(until=t0 + db_host.boot_duration - 1)
    assert db_host.state is HostState.BOOTING
    sim.run(until=t0 + db_host.boot_duration + 1)
    assert db_host.is_up
    assert db_host.booted_at >= t0


def test_boot_refused_on_fatal_hardware(sim, db_host):
    db_host.inventory.find("system_board0").fail(now=0.0)
    db_host.crash("hw")
    db_host.boot()
    sim.run(until=sim.now + 1000.0)
    assert db_host.state is HostState.DOWN


def test_apps_autostart_on_boot(sim, dc):
    host = dc.host("db01")
    db = Database(host, "ora01")
    db.start()
    sim.run(until=sim.now + 200.0)
    assert db.is_healthy()
    host.crash("x")
    assert not db.is_running()
    host.boot()
    sim.run(until=sim.now + host.boot_duration + db.startup_duration() + 10)
    assert db.is_healthy()


def test_crash_takes_apps_down_with_it(sim, dc):
    host = dc.host("db01")
    db = Database(host, "ora01")
    db.start()
    sim.run(until=sim.now + 200.0)
    host.crash("x")
    assert db.state.value == "stopped"
    assert db.procs == []


def test_memory_accounting(db_host):
    free0 = db_host.memory_free_mb()
    db_host.ptable.spawn("u", "fat", mem_mb=1000.0)
    assert db_host.memory_free_mb() == pytest.approx(free0 - 1000.0)
    assert db_host.memory_used_mb() >= OS_BASE_MB + 1000.0


def test_memory_pressure_and_paging(db_host):
    m0 = db_host.os_metrics()
    assert m0["scan_rate"] == 0
    db_host.ptable.spawn("u", "hog",
                         mem_mb=db_host.effective_ram_mb() * 0.99)
    m1 = db_host.os_metrics()
    assert m1["scan_rate"] > 0
    assert m1["page_out"] > 0
    assert m1["free_mb"] < m0["free_mb"]


def test_cpu_utilization_capped(db_host):
    for _ in range(50):
        db_host.ptable.spawn("u", "spin", cpu_pct=100.0)
    assert db_host.cpu_utilization() == 100.0


def test_run_queue_counts_extra_runnable(db_host):
    assert db_host.run_queue() == 0
    db_host.extra_runnable = db_host.effective_cpus() + 5
    assert db_host.run_queue() > 0


def test_io_demand_and_disk_metrics(db_host):
    db_host.add_io_demand(db_host.online_disks() * 0.9)
    rows = db_host.disk_metrics()
    assert all(r["busy_pct"] > 80.0 for r in rows if not r["failed"])
    # saturation blows up service times
    assert rows[0]["asvc_t"] > 8.0
    db_host.add_io_demand(-100.0)
    assert db_host.io_demand == 0.0


def test_failed_disk_shifts_load(db_host):
    db_host.add_io_demand(2.0)
    before = db_host.disk_metrics()[0]["busy_pct"]
    from repro.cluster.hardware import ComponentKind
    for d in db_host.inventory.of_kind(ComponentKind.DISK)[:4]:
        d.fail(now=0.0)
    after = [r for r in db_host.disk_metrics() if not r["failed"]]
    assert all(r["busy_pct"] >= before for r in after)


def test_effective_resources_track_hardware(db_host):
    cpus0 = db_host.effective_cpus()
    from repro.cluster.hardware import ComponentKind
    db_host.inventory.of_kind(ComponentKind.CPU_BOARD)[0].fail(now=0.0)
    assert db_host.effective_cpus() < cpus0


def test_reboot_roundtrip(sim, db_host):
    db_host.reboot()
    assert not db_host.is_up
    sim.run(until=sim.now + db_host.boot_duration + 5)
    assert db_host.is_up


def test_install_app_twice_rejected(dc):
    host = dc.host("db01")
    Database(host, "ora01")
    with pytest.raises(ValueError):
        Database(host, "ora01")
