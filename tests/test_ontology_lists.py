"""Unit tests for ISSL, DLSP and DGSPL ontologies."""

import pytest

from repro.ontology.base import OntologyDoc, OntologyError
from repro.ontology.dgspl import Dgspl, build_dgspl
from repro.ontology.dlsp import Dlsp, build_dlsp
from repro.ontology.issl import MAX_ENTRIES, Issl


# ------------------------------------------------------------------ ISSL --

def test_issl_add_lookup_remove():
    issl = Issl()
    issl.add("db01", "192.168.1.10", services=["oracle"])
    assert issl.get("db01").ip == "192.168.1.10"
    assert issl.names() == ["db01"]
    assert issl.with_service("oracle")[0].name == "db01"
    assert issl.remove("db01")
    assert not issl.remove("db01")


def test_issl_200_entry_limit():
    issl = Issl()
    for i in range(MAX_ENTRIES):
        issl.add(f"h{i:03d}", f"10.0.{i // 250}.{i % 250}")
    with pytest.raises(OntologyError):
        issl.add("one-too-many", "10.9.9.9")
    # updating an existing entry is fine at the cap
    issl.add("h000", "10.0.0.99")
    assert issl.get("h000").ip == "10.0.0.99"


def test_issl_roundtrip(db_host):
    issl = Issl()
    issl.add("db01", "1.2.3.4", kind="server", services=["ora", "web"])
    issl.add("tape0", "1.2.3.9", kind="resource")
    issl.write_to(db_host.fs, "/apps/issl", now=1.0)
    back = Issl.read_from(db_host.fs, "/apps/issl")
    assert back.entries() == issl.entries()


def test_issl_from_wrong_doc():
    with pytest.raises(OntologyError):
        Issl.from_doc(OntologyDoc("DLSP"))


# ------------------------------------------------------------------ DLSP --

def test_build_dlsp_snapshots_host(database):
    dlsp = build_dlsp(database.host)
    assert dlsp.hostname == "db01"
    assert dlsp.up
    svc = dlsp.service(database.name)
    assert svc is not None and svc.healthy
    assert svc.response_ms > 0
    assert dlsp.cpus == database.host.effective_cpus()


def test_dlsp_marks_dead_service(database):
    database.crash("x")
    dlsp = build_dlsp(database.host)
    svc = dlsp.service(database.name)
    assert not svc.healthy
    assert dlsp.healthy_services() == []


def test_dlsp_roundtrip(database):
    dlsp = build_dlsp(database.host)
    back = Dlsp.from_doc(OntologyDoc.parse(dlsp.to_doc().render()))
    assert back == dlsp


# ----------------------------------------------------------------- DGSPL --

def test_build_dgspl_filters_unhealthy(database, webserver):
    dlsps = [build_dlsp(database.host), build_dlsp(webserver.host)]
    g = build_dgspl(dlsps, now=5.0)
    assert len(g) == 2
    database.crash("x")
    g2 = build_dgspl([build_dlsp(database.host),
                      build_dlsp(webserver.host)], now=6.0)
    assert len(g2) == 1
    assert g2.entries[0].app_type == "webserver"


def test_dgspl_excludes_down_hosts(database):
    dlsp = build_dlsp(database.host)
    database.host.crash("x")
    dead = build_dlsp(database.host)
    g = build_dgspl([dead], now=0.0)
    assert len(g) == 0
    g2 = build_dgspl([dlsp], now=0.0)
    assert len(g2) == 1


def test_shortlist_best_first(database, dc, sim):
    from repro.apps.database import Database
    big_host = dc.add_host("big", "sun-e10k")
    big = Database(big_host, "bigdb")
    big.start()
    sim.run(until=sim.now + 200)
    # load the big one
    big_host.extra_runnable = big_host.effective_cpus() * 6
    g = build_dgspl([build_dlsp(database.host), build_dlsp(big_host)])
    ranked = g.shortlist("database")
    assert ranked[0].server == "db01"          # least loaded first
    assert g.shortlist("database", exclude_servers=["db01"])[0].server == "big"
    strong = g.shortlist("database", min_power=g.power_of("big"))
    assert [e.server for e in strong] == ["big"]
    capped = g.shortlist("database", max_load=1.0)
    assert [e.server for e in capped] == ["db01"]


def test_power_of_unknown_server(database):
    g = build_dgspl([build_dlsp(database.host)])
    assert g.power_of("ghost") == 0.0
    assert g.power_of("db01") > 0


def test_dgspl_roundtrip_and_grid_ads(database):
    g = build_dgspl([build_dlsp(database.host)], now=7.0)
    back = Dgspl.from_doc(OntologyDoc.parse(g.to_doc().render()))
    assert back.entries == g.entries
    ads = g.grid_advertisement()
    assert len(ads) == 1
    assert ads[0].startswith("service://london/db01/")
