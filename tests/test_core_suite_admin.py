"""Unit tests for the agent suite, administration servers and job
manager."""

import pytest

from repro.apps.database import Database
from repro.core.admin import AdministrationServers
from repro.core.suite import AgentSuite
from repro.net.nfs import SharedPool


@pytest.fixture
def wired(dc, sim, channel, notifications, pool, database, frontend):
    """Suites on db01/fe01 under an admin pair."""
    admin = AdministrationServers(dc, dc.host("adm01"), dc.host("adm02"),
                                  pool, channel=channel,
                                  notifications=notifications)
    suites = {}
    for hostname in ("db01", "fe01"):
        suite = AgentSuite(dc.host(hostname), channel=channel,
                           admin_targets=["adm01", "adm02"],
                           notifications=notifications,
                           deliver_dlsp=admin.receive_dlsp)
        suites[hostname] = suite
        admin.register_suite(suite)
    return admin, suites


def test_suite_has_full_complement(database, frontend, channel,
                                   notifications):
    suite = AgentSuite(database.host, channel=channel,
                       notifications=notifications)
    categories = {a.category for a in suite.agents}
    assert categories == {"hardware", "os-network", "resource",
                          "performance", "status", "service"}
    assert database.name in suite.service_agents


def test_suite_staggers_cron_offsets(database, channel, notifications):
    suite = AgentSuite(database.host, channel=channel,
                       notifications=notifications)
    offsets = [database.host.crond.jobs[a.name].offset
               for a in suite.agents]
    assert len(set(offsets)) == len(offsets)


def test_suite_overhead_numbers(database, frontend, channel, notifications):
    suite = AgentSuite(database.host, channel=channel,
                       notifications=notifications)
    # Fig. 3: ~0.04-0.06 %; Fig. 4: ~0.2 MB per agent
    assert 0.02 < suite.cpu_pct() < 0.1
    assert suite.memory_mb() == pytest.approx(0.2 * len(suite.agents))


def test_suite_totals_aggregate(database, channel, notifications, sim):
    suite = AgentSuite(database.host, channel=channel,
                       notifications=notifications)
    suite.run_all_now()
    totals = suite.totals()
    assert totals["runs"] == len(suite.agents)
    assert totals["cpu_seconds"] > 0
    assert suite.agent("status").stats.runs == 1
    with pytest.raises(KeyError):
        suite.agent("nonexistent")


def test_dlsp_flow_and_dgspl_generation(wired, sim, dc):
    admin, suites = wired
    sim.run(until=sim.now + 1000.0)
    assert set(admin.dlsps) == {"db01", "fe01"}
    assert admin.dgspl is not None
    assert admin.dgspl_generations >= 1
    dbs = admin.dgspl.services_of_type("database")
    assert [e.server for e in dbs] == ["db01"]
    # persisted to the shared pool, per type
    assert admin.pool.read(admin.primary, "/dgspl/database")


def test_watchdog_restarts_dead_cron(wired, sim, dc, notifications):
    admin, suites = wired
    sim.run(until=sim.now + 1200.0)     # past warm-up
    host = dc.host("db01")
    host.crond.kill()
    host.ptable.kill_command("crond")
    sim.run(until=sim.now + 3 * admin.watch_period)
    assert host.crond.running
    assert admin.cron_repairs >= 1


def test_watchdog_escalates_down_host(wired, sim, dc, notifications):
    admin, suites = wired
    sim.run(until=sim.now + 1200.0)
    dc.host("db01").crash("dead")
    sim.run(until=sim.now + 2 * admin.watch_period)
    assert "db01" in admin.hosts_escalated
    assert any("db01" in n.subject for n in notifications.sent)


def test_ha_failover_and_failback(wired, sim, dc):
    admin, suites = wired
    assert admin.active() is admin.primary
    admin.primary.crash("x")
    assert admin.active() is admin.standby
    sim.run(until=sim.now + 2000.0)
    # the standby kept generating DGSPLs
    gens = admin.dgspl_generations
    sim.run(until=sim.now + 1000.0)
    assert admin.dgspl_generations > gens
    assert admin.failovers >= 1
    admin.primary.boot()
    sim.run(until=sim.now + admin.primary.boot_duration + 10)
    assert admin.active() is admin.primary


def test_both_heads_down_nothing_acts(wired, sim, dc):
    admin, suites = wired
    admin.primary.crash("x")
    admin.standby.crash("x")
    assert admin.active() is None
    gens = admin.dgspl_generations
    sim.run(until=sim.now + 2000.0)
    assert admin.dgspl_generations == gens


def test_dgspl_skips_stale_dlsps(wired, sim, dc):
    admin, suites = wired
    sim.run(until=sim.now + 1000.0)
    assert len(admin.dgspl.on_server("db01")) >= 1
    # silence db01's status agent only (the watchdog would repair a
    # fully dead crond); its DLSP goes stale and falls out of the list
    dc.host("db01").crond.remove("status")
    sim.run(until=sim.now + 3000.0)
    assert admin.dgspl.on_server("db01") == []


def test_current_dgspl_max_age(wired, sim):
    admin, _ = wired
    sim.run(until=sim.now + 1000.0)
    assert admin.current_dgspl(max_age=1e9) is not None
    assert admin.current_dgspl(max_age=0.0) is None
