"""Fuzzer campaign tests: coverage accounting, determinism, the clean
baseline, and the headline planted-bug demo (discover + shrink)."""

import pytest

from repro.chaos.coverage import CoverageMap
from repro.chaos.executor import run_episode
from repro.chaos.fuzzer import ScenarioFuzzer
from repro.chaos.scenario import Scenario, build_corpus
from repro.chaos.shrink import shrink_episode


# -- coverage map unit behaviour ------------------------------------------------


def test_coverage_map_add_and_novelty():
    cm = CoverageMap()
    assert cm.add({"a", "b"}) == 2
    assert cm.add({"b", "c"}) == 1
    assert cm.novelty({"a", "c", "d"}) == 1
    assert len(cm) == 3
    assert cm.counts["b"] == 2


def test_coverage_map_growth_is_monotonic():
    cm = CoverageMap()
    cm.add({"a"})
    cm.add({"a"})
    cm.add({"b"})
    sizes = [size for _ep, size in cm.growth]
    assert sizes == sorted(sizes) == [1, 1, 2]


def test_coverage_map_json_round_trip():
    cm = CoverageMap()
    cm.add({"x", "y"})
    cm.add({"y"})
    back = CoverageMap.from_json(cm.to_json())
    assert back.counts == cm.counts
    assert back.growth == cm.growth
    assert back.episodes == cm.episodes


def test_rarest_orders_by_count():
    cm = CoverageMap()
    cm.add({"common", "rare"})
    cm.add({"common"})
    assert cm.rarest(1) == [("rare", 1)]


# -- campaigns (each episode ~0.2 s; budgets kept small) ------------------------


def _small_corpus():
    corpus = build_corpus(0)
    return [corpus["cron-silence"], corpus["cascade"]]


def test_clean_campaign_no_violations_monotonic_coverage():
    fz = ScenarioFuzzer(seed=0, corpus=_small_corpus(), episodes=10,
                        batch=5)
    res = fz.run()
    assert res.episodes == 10
    assert res.violations == []
    assert res.errors == []
    sizes = [size for _ep, size in res.coverage.growth]
    assert sizes == sorted(sizes)
    assert len(res.coverage) > 10


def test_campaign_deterministic_under_fixed_seed():
    def campaign():
        fz = ScenarioFuzzer(seed=11, corpus=_small_corpus(),
                            episodes=10, batch=5)
        return fz.run()
    a, b = campaign(), campaign()
    assert a.coverage.to_json() == b.coverage.to_json()
    assert a.admitted == b.admitted
    assert ([v["scenario_id"] for v in a.violations]
            == [v["scenario_id"] for v in b.violations])


def test_empty_corpus_self_seeds():
    fz = ScenarioFuzzer(seed=2, corpus=[], episodes=4, batch=4)
    assert len(fz.corpus) == 4
    res = fz.run()
    assert res.episodes == 4


# -- the planted-bug demo -------------------------------------------------------


@pytest.mark.slow
def test_fuzzer_finds_planted_bug_and_shrinker_reduces_it():
    """The acceptance demo: with the test-only planted regression armed
    (deadline-wheel mis-arms deep-backoff deadlines), a fuzzer seeded
    WITHOUT the wake-adversarial scenario must compose the adversarial
    timing itself, and the shrinker must reduce the find to <= 5
    events that still trip the same oracle."""
    corpus = [sc for name, sc in build_corpus(0).items()
              if name != "wake-adversarial"]
    fz = ScenarioFuzzer(seed=0, corpus=corpus, episodes=200, batch=10,
                        planted_bug=True, max_violations=1)
    res = fz.run()
    assert res.violations, "fuzzer failed to find the planted bug"
    found = res.violations[0]
    assert "scan-ledger-parity" in found["violated"]

    sc = Scenario.from_json(found["scenario_json"])
    sr = shrink_episode(sc, found["violated"], planted_bug=True)
    assert len(sr.shrunk.events) <= 5
    # the minimal reproducer still trips the same oracle...
    ep = run_episode(sr.shrunk, planted_bug=True)
    assert "scan-ledger-parity" in ep.violated
    # ...and is bug-specific: with the bug off it runs clean
    assert run_episode(sr.shrunk, planted_bug=False).ok


def test_planted_bug_inert_on_quiet_timing():
    """Early agent silence (no backoff yet) must NOT trip the planted
    bug -- that asymmetry is what makes the demo a search problem."""
    sc = build_corpus(0)["cron-silence"]
    assert run_episode(sc, planted_bug=True).ok
