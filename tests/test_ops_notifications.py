"""Unit tests for the notification channel."""

import pytest


def test_email_and_sms(notifications, sim):
    n1 = notifications.email("ops", "db down", severity="critical")
    n2 = notifications.sms("oncall", "wake up")
    assert n1.medium == "email" and n2.medium == "sms"
    assert notifications.count() == 2


def test_unknown_medium_rejected(notifications):
    with pytest.raises(ValueError):
        notifications.send("carrier-pigeon", "x", "y")


def test_subscribers_called_live(notifications):
    seen = []
    notifications.subscribe(seen.append)
    notifications.email("a", "s1")
    assert len(seen) == 1 and seen[0].subject == "s1"


def test_since_and_by_severity(notifications, sim):
    notifications.email("a", "early", severity="info")
    sim.run(until=100.0)
    notifications.email("a", "late", severity="critical")
    assert [n.subject for n in notifications.since(50.0)] == ["late"]
    assert [n.subject for n in notifications.by_severity("critical")] == ["late"]


def test_timestamps_from_sim_clock(notifications, sim):
    sim.run(until=42.0)
    n = notifications.email("a", "s")
    assert n.time == 42.0
