"""Unit tests for the notification channel."""

import pytest


def test_email_and_sms(notifications, sim):
    n1 = notifications.email("ops", "db down", severity="critical")
    n2 = notifications.sms("oncall", "wake up")
    assert n1.medium == "email" and n2.medium == "sms"
    assert notifications.count() == 2


def test_unknown_medium_rejected(notifications):
    with pytest.raises(ValueError):
        notifications.send("carrier-pigeon", "x", "y")


def test_subscribers_called_live(notifications):
    seen = []
    notifications.subscribe(seen.append)
    notifications.email("a", "s1")
    assert len(seen) == 1 and seen[0].subject == "s1"


def test_since_and_by_severity(notifications, sim):
    notifications.email("a", "early", severity="info")
    sim.run(until=100.0)
    notifications.email("a", "late", severity="critical")
    assert [n.subject for n in notifications.since(50.0)] == ["late"]
    assert [n.subject for n in notifications.by_severity("critical")] == ["late"]


def test_timestamps_from_sim_clock(notifications, sim):
    sim.run(until=42.0)
    n = notifications.email("a", "s")
    assert n.time == 42.0


# -- storm control: dedup window ----------------------------------------------


def test_dedup_off_by_default(notifications, sim):
    for _ in range(3):
        notifications.sms("oncall", "db down")
    assert notifications.count() == 3
    assert notifications.suppressed_total == 0


def test_dedup_window_folds_repeats(sim):
    from repro.ops.notifications import NotificationChannel
    ch = NotificationChannel(sim, dedup_window=600.0)
    first = ch.sms("oncall", "db down")
    again = ch.sms("oncall", "db down")
    assert again is first and first.suppressed == 1
    assert ch.count() == 1
    assert ch.suppressed_total == 1
    assert ch.suppressed_by_recipient["oncall"] == 1
    # different subject, recipient or medium: its own page
    ch.sms("oncall", "fs full")
    ch.sms("backup", "db down")
    ch.email("oncall", "db down")
    assert ch.count() == 4 and ch.suppressed_total == 1


def test_dedup_window_expires(sim):
    from repro.ops.notifications import NotificationChannel
    ch = NotificationChannel(sim, dedup_window=600.0)
    first = ch.sms("oncall", "db down")
    sim.run(until=600.0)
    second = ch.sms("oncall", "db down")
    assert second is not first
    assert ch.count() == 2 and ch.suppressed_total == 0


# -- storm control: per-recipient rate limit ----------------------------------


def test_rate_limit_suppresses_per_recipient(sim):
    from repro.ops.notifications import NotificationChannel
    ch = NotificationChannel(sim, rate_limit=2, rate_window=3600.0)
    ch.sms("oncall", "a")
    ch.sms("oncall", "b")
    third = ch.sms("oncall", "c")
    assert ch.count() == 2
    assert third.suppressed == 1            # folded into the last page
    assert ch.suppressed_by_recipient["oncall"] == 1
    # another recipient has their own budget
    assert ch.sms("backup", "a").suppressed == 0
    assert ch.count() == 3


def test_rate_limit_window_slides(sim):
    from repro.ops.notifications import NotificationChannel
    ch = NotificationChannel(sim, rate_limit=1, rate_window=100.0)
    ch.sms("oncall", "a")
    ch.sms("oncall", "b")                   # suppressed
    sim.run(until=100.0)
    ch.sms("oncall", "c")                   # budget refilled
    assert [n.subject for n in ch.sent] == ["a", "c"]
    assert ch.suppressed_total == 1


def test_rate_limited_first_page_is_marked_unsent(sim):
    from repro.ops.notifications import NotificationChannel
    ch = NotificationChannel(sim, rate_limit=0)
    note = ch.sms("oncall", "a")
    assert note.suppressed == 1 and ch.count() == 0


def test_suppressed_pages_do_not_reach_subscribers(sim):
    from repro.ops.notifications import NotificationChannel
    ch = NotificationChannel(sim, dedup_window=600.0)
    seen = []
    ch.subscribe(seen.append)
    ch.sms("oncall", "db down")
    ch.sms("oncall", "db down")
    assert len(seen) == 1
