"""Unit tests for the site builder's wiring."""

import pytest

from repro.experiments.site import SiteConfig, build_site


@pytest.fixture(scope="module")
def site():
    return build_site(SiteConfig.test_scale(seed=71))


def test_fleet_composition(site):
    cfg = site.config
    assert len(site.dc.group("db")) == cfg.db_servers
    assert len(site.dc.group("tp")) == cfg.tp_servers
    assert len(site.dc.group("frontend")) == cfg.fe_servers
    assert len(site.dc.group("admin")) == 2
    assert len(site.dc.group("external")) == 1


def test_database_mix_oracle_and_sybase(site):
    types = {db.db_type for db in site.databases}
    assert types == {"oracle", "sybase"}


def test_every_host_on_both_public_lans_and_agentnet(site):
    for host in site.dc.all_hosts():
        lans = {nic.lan.name for nic in host.nics.values()}
        assert lans == {"public0", "public1", "agentnet"}, host.name


def test_everything_running_after_build(site):
    for db in site.databases:
        assert db.is_healthy()
    for fe in site.frontends:
        assert fe.is_healthy()
    assert site.lsf.up
    for svc in site.services:
        assert svc.healthy()


def test_all_databases_registered_with_lsf(site):
    assert set(site.lsf.servers) == set(site.databases)


def test_nameservice_knows_every_host(site):
    for name in site.dc.hosts:
        ip, _ = site.nameservice.lookup(name)
        assert ip is not None, name


def test_admin_pair_serves_the_pool(site):
    assert {h.name for h in site.pool.servers} == {"adm01", "adm02"}


def test_services_registered_for_end_to_end_probes(site):
    assert site.admin is not None
    assert len(site.admin.services) == len(site.services) >= 1


def test_frontends_depend_on_databases(site):
    for fe in site.frontends:
        assert fe.backend in site.databases


def test_paper_scale_config_defaults():
    cfg = SiteConfig()
    assert (cfg.db_servers, cfg.tp_servers, cfg.fe_servers) == (100, 55, 60)
    assert cfg.agent_period == 300.0


def test_suites_cover_all_internal_hosts(site):
    unmanaged = set(site.dc.groups["external"])
    managed = set(site.dc.hosts) - unmanaged
    assert set(site.suites) == managed
