"""Unit tests for the fault injector."""

import pytest

from repro.apps.base import AppState
from repro.cluster.hardware import ComponentKind
from repro.faults.injector import FaultInjector
from repro.faults.models import Category


@pytest.fixture
def inj(dc, rs):
    return FaultInjector(dc, rs.get("inj"))


def test_db_crash(inj, database):
    ev = inj.db_crash(database)
    assert database.state is AppState.CRASHED
    assert ev.category is Category.MID_CRASH
    assert ev.target == "db01/ora01"
    assert inj.injected == [ev]


def test_app_hang_is_latent(inj, database):
    inj.app_hang(database, Category.MID_CRASH)
    assert database.state is AppState.HUNG
    assert database.processes_present()


def test_config_corruption_blocks_restart(inj, database, sim):
    inj.config_corruption(database)
    assert not database.config_ok
    database.restart()
    sim.run(until=sim.now + database.startup_duration() + 1)
    assert database.state is AppState.CRASHED


def test_data_corruption_blocks_restart(inj, database, sim):
    inj.data_corruption(database)
    assert not database.data_ok
    database.restart()
    sim.run(until=sim.now + database.startup_duration() + 1)
    assert database.state is AppState.CRASHED


def test_wrong_process_killed_degrades(inj, database, sim):
    n0 = len(database.procs)
    inj.wrong_process_killed(database)
    assert len(database.procs) == n0 - 1
    assert database.state is AppState.DEGRADED


def test_runaway_and_leak(inj, db_host):
    inj.runaway_process(db_host)
    assert any(p.cpu_pct > 90 for p in db_host.ptable)
    inj.memory_leak(db_host)
    assert db_host.memory_pressure() > 0


def test_disk_fill(inj, db_host):
    inj.disk_fill(db_host, "/logs", 0.99)
    assert db_host.fs.mounts["/logs"].pct_used > 95


def test_network_faults(inj, dc):
    ev = inj.lan_failure(dc.lan("public0"))
    assert not dc.lan("public0").up
    assert ev.category is Category.FIREWALL_NETWORK
    inj.nic_failure(dc.host("db01"))
    assert any(not n.ok for n in dc.host("db01").nics.values())


def test_component_failure_can_kill_host(inj, dc, rs):
    host = dc.host("db01")
    ev = inj.component_failure(host, ComponentKind.SYSTEM_BOARD)
    assert ev.category is Category.HARDWARE
    assert not host.is_up          # system board is fatal


def test_disk_component_failure_not_fatal(inj, dc):
    host = dc.host("db01")
    inj.component_failure(host, ComponentKind.DISK)
    assert host.is_up


def test_cron_death(inj, db_host):
    inj.cron_death(db_host)
    assert not db_host.crond.running
    assert not db_host.ptable.alive("crond")


def test_random_fault_respects_category(inj, database, webserver, dc, sim):
    ev = inj.random_fault(Category.MID_CRASH)
    assert ev is not None and ev.category is Category.MID_CRASH
    ev2 = inj.random_fault(Category.PERFORMANCE)
    assert ev2.category is Category.PERFORMANCE


def test_random_fault_returns_none_without_targets(dc, rs):
    inj = FaultInjector(dc, rs.get("empty"))
    # no databases exist in the bare fixture
    assert inj.random_fault(Category.MID_CRASH) is None
    assert inj.random_fault(Category.LSF) is None


# -- overlap rejection + the structured catalog (chaos contracts) ---------------

from repro.faults.injector import (FAULT_CATALOG, OverlappingFaultError,
                                   spec_for)


def test_double_crash_rejected_not_last_writer_wins(inj, database):
    inj.db_crash(database)
    with pytest.raises(OverlappingFaultError, match="out of service"):
        inj.db_crash(database)
    assert inj.rejected_overlaps == 1
    assert len(inj.injected) == 1


def test_overlap_error_is_a_value_error(inj, database):
    inj.app_crash(database)
    # stochastic campaigns catch ValueError for fizzles; the new
    # overlap rejection must stay inside that contract
    with pytest.raises(ValueError):
        inj.app_hang(database)


def test_fault_on_downed_host_rejected(inj, database, db_host):
    db_host.crash("test")
    with pytest.raises(OverlappingFaultError, match="host is down"):
        inj.db_crash(database)
    with pytest.raises(OverlappingFaultError, match="host is down"):
        inj.cron_death(db_host)


def test_config_corruption_twice_rejected(inj, database, sim):
    inj.config_corruption(database)
    database.config_ok = True       # what the healing step does
    database.start()
    sim.run(until=sim.now + 200.0)
    ev = inj.config_corruption(database)    # fine after repair
    assert ev.kind == "config-corruption"
    with pytest.raises(OverlappingFaultError):
        inj.config_corruption(database)


def test_disk_fill_twice_rejected(inj, db_host):
    inj.disk_fill(db_host)
    with pytest.raises(OverlappingFaultError, match="already filled"):
        inj.disk_fill(db_host)


def test_cron_death_twice_rejected(inj, db_host):
    inj.cron_death(db_host)
    with pytest.raises(OverlappingFaultError, match="crond already dead"):
        inj.cron_death(db_host)


def test_lan_failure_twice_rejected(inj, dc):
    lan = dc.lans["public0"]
    inj.lan_failure(lan)
    with pytest.raises(OverlappingFaultError, match="already down"):
        inj.lan_failure(lan)


def test_catalog_methods_exist_and_dispatch(inj, database):
    for spec in FAULT_CATALOG:
        assert callable(getattr(inj, spec.method)), spec.kind
        assert spec_for(spec.kind) is spec
    ev = inj.inject("db-crash", database)
    assert ev.kind == "db-crash"
    assert ev.category is Category.MID_CRASH


def test_inject_unknown_kind_raises(inj, database):
    with pytest.raises(ValueError, match="unknown fault kind"):
        inj.inject("kernel-panic", database)
