"""Unit tests for time series handling."""

import numpy as np
import pytest

from repro.metrics.timeseries import TimeSeries, merge_by_timestamp


def _ts(name, pairs):
    ts = TimeSeries(name)
    for t, v in pairs:
        ts.append(t, v)
    return ts


def test_append_and_stats():
    ts = _ts("x", [(0, 1.0), (10, 3.0), (20, 5.0)])
    assert len(ts) == 3
    assert ts.mean() == 3.0
    assert ts.max() == 5.0
    assert ts.min() == 1.0
    assert ts.percentile(50) == 3.0


def test_timestamps_must_be_monotone():
    ts = _ts("x", [(0, 1.0), (10, 2.0)])
    with pytest.raises(ValueError):
        ts.append(5.0, 3.0)


def test_empty_series_stats():
    ts = TimeSeries("empty")
    assert ts.mean() == 0.0 and ts.max() == 0.0


def test_window():
    ts = _ts("x", [(0, 1.0), (10, 2.0), (20, 3.0), (30, 4.0)])
    w = ts.window(10, 30)
    assert w.values.tolist() == [2.0, 3.0]


def test_resample_means_per_bucket():
    ts = _ts("x", [(0, 1.0), (5, 3.0), (10, 10.0), (25, 20.0)])
    starts, means = ts.resample(10.0)
    assert starts.tolist() == [0.0, 10.0, 20.0]
    assert means.tolist() == [2.0, 10.0, 20.0]


def test_breaches():
    ts = _ts("x", [(0, 1.0), (10, 9.0), (20, 2.0), (30, 11.0)])
    assert ts.breaches(8.0).tolist() == [10.0, 30.0]
    assert ts.breaches(2.0, above=False).tolist() == [0.0]


def test_merge_exact_timestamps():
    a = _ts("a", [(0, 1.0), (10, 2.0), (20, 3.0)])
    b = _ts("b", [(0, 10.0), (10, 20.0), (20, 30.0)])
    merged = merge_by_timestamp([a, b])
    assert merged["t"].tolist() == [0.0, 10.0, 20.0]
    assert merged["b"].tolist() == [10.0, 20.0, 30.0]


def test_merge_with_tolerance():
    a = _ts("a", [(0, 1.0), (10, 2.0)])
    b = _ts("b", [(0.4, 10.0), (30, 99.0)])
    merged = merge_by_timestamp([a, b], tolerance=0.5)
    assert merged["t"].tolist() == [0.0]
    assert merged["b"].tolist() == [10.0]


def test_merge_drops_unmatched():
    a = _ts("a", [(0, 1.0), (10, 2.0)])
    b = _ts("b", [(10, 20.0)])
    merged = merge_by_timestamp([a, b], tolerance=0.0)
    assert merged["t"].tolist() == [10.0]


def test_merge_empty_partner():
    a = _ts("a", [(0, 1.0)])
    b = TimeSeries("b")
    merged = merge_by_timestamp([a, b])
    assert merged["t"].size == 0


def test_merge_three_series():
    a = _ts("a", [(0, 1.0), (10, 2.0), (20, 3.0)])
    b = _ts("b", [(0, 4.0), (20, 5.0)])
    c = _ts("c", [(0, 6.0), (10, 7.0), (20, 8.0)])
    merged = merge_by_timestamp([a, b, c])
    assert merged["t"].tolist() == [0.0, 20.0]
    assert merged["c"].tolist() == [6.0, 8.0]


def test_times_values_arrays_are_cached():
    ts = _ts("x", [(0, 1.0), (10, 2.0)])
    a = ts.times
    assert ts.times is a                  # no per-read list->array copy
    assert ts.values is ts.values


def test_append_invalidates_cache():
    ts = _ts("x", [(0, 1.0)])
    before = ts.times
    ts.append(5.0, 2.0)
    after = ts.times
    assert after is not before
    assert after.tolist() == [0.0, 5.0]
    assert ts.values.tolist() == [1.0, 2.0]


def test_window_of_cached_series_is_consistent():
    ts = _ts("x", [(0, 1.0), (10, 2.0), (20, 3.0)])
    _ = ts.times                          # prime the cache
    w = ts.window(0, 15)
    assert w.times.tolist() == [0.0, 10.0]
    w.append(30.0, 4.0)
    assert w.times.tolist() == [0.0, 10.0, 30.0]


# -- ring-buffer semantics ----------------------------------------------------


def test_ring_cap_keeps_newest_and_counts_dropped():
    ts = TimeSeries("x", maxlen=4)
    for i in range(20):
        ts.append(float(i), float(i) * 2.0)
    # amortised trim: between maxlen and 2*maxlen samples retained
    assert 4 <= len(ts) < 8
    assert ts.dropped == 20 - len(ts)
    assert ts.last() == 38.0
    assert ts.times.tolist() == sorted(ts.times.tolist())


def test_ring_cap_validated():
    with pytest.raises(ValueError):
        TimeSeries("x", maxlen=0)


def test_last_and_last_time_on_empty():
    ts = TimeSeries("x")
    assert ts.last() == 0.0
    assert ts.last_time() == float("-inf")


def test_value_at_steps_and_clamps():
    ts = _ts("x", [(10, 1.0), (20, 2.0), (30, 3.0)])
    assert ts.value_at(25.0) == 2.0      # newest sample <= t
    assert ts.value_at(20.0) == 2.0
    assert ts.value_at(5.0) == 1.0       # before history: oldest
    assert ts.value_at(99.0) == 3.0
    assert TimeSeries("y").value_at(0.0) == 0.0


# -- empty-series edges (the alerting tier probes fresh series) ---------------


def test_empty_series_percentile_window_resample():
    ts = TimeSeries("x")
    assert ts.percentile(50) == 0.0
    assert len(ts.window(0.0, 100.0)) == 0
    starts, means = ts.resample(60.0)
    assert starts.size == 0 and means.size == 0
    assert ts.breaches(1.0).size == 0


# -- merge ordering and tie-breaking ------------------------------------------


def test_merge_output_keeps_base_timestamp_order():
    a = _ts("a", [(0, 1.0), (5, 2.0), (10, 3.0), (15, 4.0)])
    b = _ts("b", [(0, 9.0), (5, 8.0), (10, 7.0), (15, 6.0)])
    merged = merge_by_timestamp([a, b])
    assert merged["t"].tolist() == sorted(merged["t"].tolist())
    assert merged["a"].tolist() == [1.0, 2.0, 3.0, 4.0]
    assert merged["b"].tolist() == [9.0, 8.0, 7.0, 6.0]


def test_merge_equidistant_neighbour_prefers_the_earlier():
    # base t=10 sits exactly between partner samples at 8 and 12
    a = _ts("a", [(10, 1.0)])
    b = _ts("b", [(8, 100.0), (12, 200.0)])
    merged = merge_by_timestamp([a, b], tolerance=2.0)
    assert merged["t"].tolist() == [10.0]
    assert merged["b"].tolist() == [100.0]
