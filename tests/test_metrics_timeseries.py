"""Unit tests for time series handling."""

import numpy as np
import pytest

from repro.metrics.timeseries import TimeSeries, merge_by_timestamp


def _ts(name, pairs):
    ts = TimeSeries(name)
    for t, v in pairs:
        ts.append(t, v)
    return ts


def test_append_and_stats():
    ts = _ts("x", [(0, 1.0), (10, 3.0), (20, 5.0)])
    assert len(ts) == 3
    assert ts.mean() == 3.0
    assert ts.max() == 5.0
    assert ts.min() == 1.0
    assert ts.percentile(50) == 3.0


def test_timestamps_must_be_monotone():
    ts = _ts("x", [(0, 1.0), (10, 2.0)])
    with pytest.raises(ValueError):
        ts.append(5.0, 3.0)


def test_empty_series_stats():
    ts = TimeSeries("empty")
    assert ts.mean() == 0.0 and ts.max() == 0.0


def test_window():
    ts = _ts("x", [(0, 1.0), (10, 2.0), (20, 3.0), (30, 4.0)])
    w = ts.window(10, 30)
    assert w.values.tolist() == [2.0, 3.0]


def test_resample_means_per_bucket():
    ts = _ts("x", [(0, 1.0), (5, 3.0), (10, 10.0), (25, 20.0)])
    starts, means = ts.resample(10.0)
    assert starts.tolist() == [0.0, 10.0, 20.0]
    assert means.tolist() == [2.0, 10.0, 20.0]


def test_breaches():
    ts = _ts("x", [(0, 1.0), (10, 9.0), (20, 2.0), (30, 11.0)])
    assert ts.breaches(8.0).tolist() == [10.0, 30.0]
    assert ts.breaches(2.0, above=False).tolist() == [0.0]


def test_merge_exact_timestamps():
    a = _ts("a", [(0, 1.0), (10, 2.0), (20, 3.0)])
    b = _ts("b", [(0, 10.0), (10, 20.0), (20, 30.0)])
    merged = merge_by_timestamp([a, b])
    assert merged["t"].tolist() == [0.0, 10.0, 20.0]
    assert merged["b"].tolist() == [10.0, 20.0, 30.0]


def test_merge_with_tolerance():
    a = _ts("a", [(0, 1.0), (10, 2.0)])
    b = _ts("b", [(0.4, 10.0), (30, 99.0)])
    merged = merge_by_timestamp([a, b], tolerance=0.5)
    assert merged["t"].tolist() == [0.0]
    assert merged["b"].tolist() == [10.0]


def test_merge_drops_unmatched():
    a = _ts("a", [(0, 1.0), (10, 2.0)])
    b = _ts("b", [(10, 20.0)])
    merged = merge_by_timestamp([a, b], tolerance=0.0)
    assert merged["t"].tolist() == [10.0]


def test_merge_empty_partner():
    a = _ts("a", [(0, 1.0)])
    b = TimeSeries("b")
    merged = merge_by_timestamp([a, b])
    assert merged["t"].size == 0


def test_merge_three_series():
    a = _ts("a", [(0, 1.0), (10, 2.0), (20, 3.0)])
    b = _ts("b", [(0, 4.0), (20, 5.0)])
    c = _ts("c", [(0, 6.0), (10, 7.0), (20, 8.0)])
    merged = merge_by_timestamp([a, b, c])
    assert merged["t"].tolist() == [0.0, 20.0]
    assert merged["c"].tolist() == [6.0, 8.0]


def test_times_values_arrays_are_cached():
    ts = _ts("x", [(0, 1.0), (10, 2.0)])
    a = ts.times
    assert ts.times is a                  # no per-read list->array copy
    assert ts.values is ts.values


def test_append_invalidates_cache():
    ts = _ts("x", [(0, 1.0)])
    before = ts.times
    ts.append(5.0, 2.0)
    after = ts.times
    assert after is not before
    assert after.tolist() == [0.0, 5.0]
    assert ts.values.tolist() == [1.0, 2.0]


def test_window_of_cached_series_is_consistent():
    ts = _ts("x", [(0, 1.0), (10, 2.0), (20, 3.0)])
    _ = ts.times                          # prime the cache
    w = ts.window(0, 15)
    assert w.times.tolist() == [0.0, 10.0]
    w.append(30.0, 4.0)
    assert w.times.tolist() == [0.0, 10.0, 30.0]
