"""Unit tests for the condition ledger and the deadline wheel."""

import pytest

from repro.controlplane import (Condition, ConditionLedger, DeadlineWheel,
                                watch_host)


# -- the ledger ---------------------------------------------------------------

def test_versions_are_monotonic_and_typed():
    led = ConditionLedger()
    a = led.append("flag", "db01", agent="osnet", status="ok", time=10.0)
    b = led.append("host", "fe01", status="down", detail="panic")
    assert (a.version, b.version) == (1, 2)
    assert led.version == 2
    assert a.key() == ("db01", "osnet")
    with pytest.raises(ValueError):
        led.append("gossip", "db01")


def test_cursor_sees_only_newer_entries():
    led = ConditionLedger()
    led.append("flag", "db01", agent="osnet", status="ok")
    cur = led.subscribe("late-joiner")
    fresh, overrun = cur.poll()
    assert fresh == [] and not overrun          # starts at current version
    led.append("flag", "db01", agent="osnet", status="fault")
    led.append("dlsp", "fe01")
    fresh, overrun = cur.poll()
    assert [(c.kind, c.version) for c in fresh] == [("flag", 2), ("dlsp", 3)]
    assert not overrun
    assert cur.poll() == ([], False)            # nothing new twice in a row


def test_dirty_hosts_since():
    led = ConditionLedger()
    cur = led.subscribe("keeper")               # keeps entries retained
    led.append("flag", "db01", agent="osnet")
    led.append("dlsp", "fe01")
    led.append("dlsp", "db02")
    assert led.dirty_hosts_since(0) == {"db01", "fe01", "db02"}
    assert led.dirty_hosts_since(0, kind="dlsp") == {"fe01", "db02"}
    assert led.dirty_hosts_since(2) == {"db02"}
    assert cur.poll()[0]                        # fixture really consumed


def test_eager_trim_to_slowest_cursor():
    led = ConditionLedger()
    fast = led.subscribe("fast")
    slow = led.subscribe("slow")
    for i in range(10):
        led.append("flag", f"h{i}")
    fast.poll()
    assert led.backlog() == 10                  # slow has not consumed
    slow.poll()
    fast.poll()                                 # any poll after both: trim
    assert led.backlog() == 0
    assert led.floor == led.version


def test_overrun_after_force_trim():
    led = ConditionLedger(maxlen=8)
    lagger = led.subscribe("lagger")
    for i in range(9):                          # blows the 8-entry cap
        led.append("flag", f"h{i}")
    fresh, overrun = lagger.poll()
    assert overrun
    assert lagger.overruns == 1
    # what IS retained still arrives
    assert [c.host for c in fresh] == [f"h{i}" for i in range(4, 9)]
    # recovered: next poll is clean
    led.append("flag", "h9")
    fresh, overrun = lagger.poll()
    assert not overrun and [c.host for c in fresh] == ["h9"]


def test_push_listeners_fire_synchronously_and_safely():
    led = ConditionLedger()
    seen = []
    led.on_append(seen.append)
    led.on_append(lambda c: 1 / 0)              # broken listener
    cond = led.append("route", "db01", agent="ora", status="drain")
    assert seen == [cond]
    assert led.push_errors == 1                 # producer survived


def test_watch_host_publishes_transitions(db_host):
    led = ConditionLedger()
    watch_host(led, db_host)
    db_host.crash("kernel panic")
    db_host.boot()
    db_host.sim.run(until=db_host.sim.now + db_host.boot_duration + 1.0)
    conds = led.read_since(0)
    assert [(c.kind, c.status) for c in conds] == [("host", "down"),
                                                  ("host", "up")]
    assert conds[0].detail == "kernel panic"


# -- the deadline wheel -------------------------------------------------------

def test_wheel_basic_due():
    wheel = DeadlineWheel()
    wheel.set_deadline("a", 100.0)
    wheel.set_deadline("b", 200.0)
    assert wheel.due(50.0) == set()
    assert wheel.due(100.0) == {"a"}            # at the deadline is due
    assert wheel.due(250.0) == {"a", "b"}


def test_rearm_rescues_a_due_key():
    wheel = DeadlineWheel()
    wheel.set_deadline("a", 100.0)
    assert wheel.due(150.0) == {"a"}
    wheel.set_deadline("a", 400.0)              # the agent flagged again
    assert wheel.due(150.0) == set()
    assert wheel.due(400.0) == {"a"}


def test_stale_heap_entries_are_lazily_dropped():
    wheel = DeadlineWheel()
    for t in (10.0, 20.0, 30.0):
        wheel.set_deadline("a", t)              # three pushes, one key
    assert wheel.due(15.0) == set()             # 10.0 entry is stale
    assert wheel.due(30.0) == {"a"}
    assert len(wheel) == 1


def test_drop_forgets_a_key():
    wheel = DeadlineWheel()
    wheel.set_deadline("a", 10.0)
    wheel.due(20.0)
    wheel.drop("a")
    assert wheel.due(30.0) == set()
    assert wheel.deadline_of("a") == float("inf")


def test_due_set_is_sticky_until_rearmed():
    """A stale agent stays stale across sweeps until it flags again --
    exactly the full-scan semantics."""
    wheel = DeadlineWheel()
    wheel.set_deadline(("db01", "osnet"), 100.0)
    assert wheel.due(150.0) == {("db01", "osnet")}
    assert wheel.due(9_999.0) == {("db01", "osnet")}
    wheel.set_deadline(("db01", "osnet"), 10_500.0)
    assert wheel.due(10_000.0) == set()
