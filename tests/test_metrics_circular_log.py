"""Unit tests for circular logs."""

import pytest

from repro.cluster.filesystem import FileSystem
from repro.metrics.circular_log import CircularLog


@pytest.fixture
def fs():
    return FileSystem()


def test_append_and_read(fs):
    log = CircularLog(fs, "/logs/x", maxlen=10)
    log.append("a", now=1.0)
    log.append("b", now=2.0)
    assert log.lines() == ["a", "b"]
    assert log.last(1) == ["b"]
    assert len(log) == 2


def test_circular_eviction(fs):
    log = CircularLog(fs, "/logs/x", maxlen=3)
    for i in range(7):
        log.append(f"l{i}")
    assert log.lines() == ["l4", "l5", "l6"]
    assert len(log) == 3


def test_eviction_keeps_disk_accounting_consistent(fs):
    log = CircularLog(fs, "/logs/x", maxlen=5)
    for i in range(100):
        log.append(f"line-{i:04d}")
    mount = fs.mounts["/logs"]
    # the file is bounded, so usage must be small
    assert mount.used_bytes < 200


def test_bad_maxlen():
    with pytest.raises(ValueError):
        CircularLog(FileSystem(), "/logs/x", maxlen=0)


def test_clear(fs):
    log = CircularLog(fs, "/logs/x", maxlen=5)
    log.append("a")
    log.clear()
    assert log.lines() == []


def test_existing_file_adopted(fs):
    fs.write("/logs/x", ["old1", "old2"])
    log = CircularLog(fs, "/logs/x", maxlen=5)
    log.append("new")
    assert log.lines() == ["old1", "old2", "new"]
