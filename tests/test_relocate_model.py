"""Campaign-level relocation model (repro.relocate.model)."""

import pytest

from repro.faults.campaign import Campaign
from repro.faults.models import Category, Dist
from repro.relocate.model import (RELOCATABLE, RelocationPolicy,
                                  apply_relocation)
from repro.sim import RandomStreams
from repro.sim.calendar import YEAR
from repro.trace import Tracer


def _escalate_arm(seed: int, horizon: float = YEAR):
    rs = RandomStreams(seed)
    campaign = Campaign(rs.get("relocation.campaign"), horizon=horizon)
    _, escalate = campaign.run_pair(
        agent_period=300.0,
        before_rng=rs.get("relocation.ops.before"),
        after_rng=rs.get("relocation.ops.after"))
    return escalate, rs.get("relocation.failover")


def test_relocatable_excludes_resubmission_and_shared_infra():
    assert Category.LSF not in RELOCATABLE
    assert Category.FIREWALL_NETWORK not in RELOCATABLE
    assert Category.COMPLETELY_DOWN in RELOCATABLE


@pytest.mark.parametrize("seed", range(5))
def test_relocation_strictly_reduces_downtime(seed):
    escalate, rng = _escalate_arm(seed)
    relocated, stats = apply_relocation(escalate, rng)
    assert stats.candidates > 0
    assert relocated.total_hours() < escalate.total_hours()
    assert stats.succeeded >= 1
    assert stats.hours_saved > 0
    assert len(relocated.records) == len(escalate.records)
    assert relocated.pipeline.label == "relocate"


def test_non_candidates_are_untouched():
    escalate, rng = _escalate_arm(3)
    relocated, _ = apply_relocation(escalate, rng)
    for before, after in zip(escalate.records, relocated.records):
        assert after.time == before.time
        assert after.category is before.category
        if (before.prevented or before.auto
                or before.category not in RELOCATABLE):
            assert after == before


def test_successful_relocation_ends_escalation():
    escalate, rng = _escalate_arm(0)
    relocated, stats = apply_relocation(escalate, rng)
    improved = [(b, a) for b, a in zip(escalate.records, relocated.records)
                if a.repair < b.repair]
    assert len(improved) == stats.succeeded
    for before, after in improved:
        assert after.auto and not after.escalated
        assert after.repair <= RelocationPolicy().budget


def test_forced_failures_cost_at_most_the_budget():
    policy = RelocationPolicy(success_prob={})      # nothing ever lands
    escalate, rng = _escalate_arm(1)
    relocated, stats = apply_relocation(escalate, rng, policy=policy)
    assert stats.succeeded == 0
    assert stats.failed == stats.candidates > 0
    assert stats.hours_lost_to_rollbacks > 0
    # relocation with its honest cost: strictly worse when it never works
    assert relocated.total_hours() > escalate.total_hours()
    for before, after in zip(escalate.records, relocated.records):
        assert 0.0 <= after.repair - before.repair <= policy.budget


def test_slow_relocation_is_superseded_by_the_human():
    # success guaranteed but each attempt takes ~46 days: the sampled
    # human always finishes first and every record stays untouched
    policy = RelocationPolicy(
        plan=Dist(1e6, 0.0), drain=Dist(1e6, 0.0),
        start=Dist(1e6, 0.0), verify=Dist(1e6, 0.0), budget=1e9,
        success_prob={c: 1.0 for c in Category})
    escalate, rng = _escalate_arm(2)
    relocated, stats = apply_relocation(escalate, rng, policy=policy)
    assert stats.superseded == stats.candidates > 0
    assert stats.succeeded == stats.failed == 0
    assert relocated.total_hours() == escalate.total_hours()


def test_same_rng_is_byte_identical():
    escalate1, rng1 = _escalate_arm(4)
    escalate2, rng2 = _escalate_arm(4)
    a, sa = apply_relocation(escalate1, rng1)
    b, sb = apply_relocation(escalate2, rng2)
    assert [r.repair for r in a.records] == [r.repair for r in b.records]
    assert sa.summary() == sb.summary()


def test_spans_recorded_per_modelled_relocation():
    tracer = Tracer()
    escalate, rng = _escalate_arm(0)
    _, stats = apply_relocation(escalate, rng, tracer=tracer)
    plans = tracer.spans_named("relocate.plan")
    assert len(plans) == stats.succeeded + stats.failed
    fids = [s.attrs["fault_id"] for s in plans]
    assert all(fids) and len(set(fids)) == len(fids)
    # each failover records all four phases under one fault id
    for fid in fids:
        phases = [s.name for s in tracer.spans
                  if s.attrs.get("fault_id") == fid]
        assert phases == ["relocate.plan", "relocate.drain",
                          "relocate.start", "relocate.verify"]
    assert (tracer.metrics.counter("relocate.succeeded").value
            == stats.succeeded)
