"""Unit tests for trace exporters: Chrome JSON, incident
reconstruction, the ASCII timeline and span statistics."""

import json

import pytest

from repro.experiments.report import metrics_summary
from repro.sim import Simulator
from repro.trace import (Tracer, format_timeline, incident_traces,
                         install_tracer, span_durations, to_chrome,
                         write_chrome_trace)


@pytest.fixture
def traced_incident(sim):
    """A hand-built fault lifecycle: inject -> detect -> diagnose ->
    heal -> restore, all correlated under F0001."""
    tracer = install_tracer(sim)

    def play():
        tracer.correlate("db01/ora", "F0001")
        tracer.instant("fault.inject", fault_id="F0001", kind="db-crash",
                       target="db01/ora")
        yield 300.0
        tracer.record_span("fault.detect", sim.now, sim.now,
                           fault_id="F0001", agent="svc_ora", host="db01")
        with tracer.span("agent.diagnose", fault_id="F0001", host="db01",
                         cause="process-gone"):
            yield 2.0
        with tracer.span("heal.restart_app", fault_id="F0001",
                         host="db01") as sp:
            yield 60.0
            sp.set_attr("outcome", "ok")
            sp.set_attr("busy_for", 60.0)
        tracer.instant("service.restored", fault_id="F0001",
                       target="db01/ora")

    sim.spawn(play())
    sim.run()
    return tracer


# -- chrome export ------------------------------------------------------------


def test_chrome_json_round_trip(traced_incident, tmp_path):
    path = tmp_path / "trace.json"
    write_chrome_trace(traced_incident, str(path))
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert events == sorted(events, key=lambda e: e["ts"])
    names = {e["name"] for e in events}
    assert {"fault.inject", "fault.detect", "agent.diagnose",
            "heal.restart_app", "service.restored"} <= names
    heal = next(e for e in events if e["name"] == "heal.restart_app")
    assert heal["ph"] == "X"
    assert heal["ts"] == pytest.approx(302.0 * 1e6)
    assert heal["dur"] == pytest.approx(60.0 * 1e6)
    assert heal["tid"] == "db01"
    inject = next(e for e in events if e["name"] == "fault.inject")
    assert inject["ph"] == "i"
    assert inject["args"]["fault_id"] == "F0001"


def test_chrome_export_skips_open_spans(sim):
    tracer = install_tracer(sim)
    tracer.span("never.finished")
    tracer.span("done").finish()
    names = [e["name"] for e in to_chrome(tracer)["traceEvents"]]
    assert names == ["done"]


# -- incident reconstruction --------------------------------------------------


def test_incident_trace_phases(traced_incident):
    inc = incident_traces(traced_incident)["F0001"]
    assert inc.kind == "db-crash" and inc.target == "db01/ora"
    assert inc.injected_at == 0.0
    assert inc.detected_at == 300.0
    assert inc.diagnosed_at == 300.0
    assert inc.repaired_at == 362.0
    assert inc.restored_at == 362.0
    assert inc.repair_outcome == "restart_app"
    assert inc.detection_latency == 300.0
    assert inc.downtime == 362.0


def test_redetection_keeps_first_occurrence(sim):
    tracer = install_tracer(sim)
    tracer.instant("fault.inject", fault_id="F0001", kind="hang", target="x")
    tracer.record_span("fault.detect", 10.0, 10.0, fault_id="F0001")
    tracer.record_span("fault.detect", 20.0, 20.0, fault_id="F0001")
    inc = incident_traces(tracer)["F0001"]
    assert inc.detected_at == 10.0


def test_timeline_renders_phases(traced_incident):
    text = format_timeline(traced_incident)
    assert "F0001 db-crash -> db01/ora" in text
    assert "fault injected" in text
    assert "detected by svc_ora (+300 s)" in text
    assert "diagnosed: process-gone" in text
    assert "heal.restart_app ok (busy 60 s)" in text
    assert "service restored (downtime 362 s)" in text


def test_timeline_marks_unresolved(sim):
    tracer = install_tracer(sim)
    tracer.instant("fault.inject", fault_id="F0009", kind="nic-fail",
                   target="fe01:eth0")
    assert "unresolved in trace window" in format_timeline(tracer)


def test_timeline_with_no_incidents(sim):
    assert "no correlated incidents" in format_timeline(install_tracer(sim))


# -- span statistics ----------------------------------------------------------


def test_span_durations_filtering():
    tracer = Tracer()
    tracer.record_span("manual.repair", 0.0, 10.0, category="human")
    tracer.record_span("manual.repair", 0.0, 20.0, category="human",
                       escalated=True)
    tracer.record_span("manual.repair", 0.0, 40.0, category="lsf")
    assert span_durations(tracer, "manual.repair").tolist() == \
        [10.0, 20.0, 40.0]
    assert span_durations(tracer, "manual.repair",
                          category="human").tolist() == [10.0, 20.0]
    assert span_durations(tracer, "manual.repair",
                          escalated=True).tolist() == [20.0]
    assert span_durations(tracer, "nope").tolist() == []


# -- metrics rendering --------------------------------------------------------


def test_metrics_summary_renders_all_kinds():
    tracer = Tracer()
    tracer.metrics.counter("agent.runs").inc(7)
    tracer.metrics.gauge("queue.depth").set(3.0)
    tracer.metrics.histogram("repair_s", buckets=(60.0,)).observe(30.0)
    text = metrics_summary(tracer.metrics.snapshot(), title="T")
    assert text.startswith("T")
    assert "agent.runs" in text and "7.00" in text
    assert "queue.depth" in text
    assert "repair_s" in text


def test_metrics_summary_empty():
    assert "(no metrics recorded)" in metrics_summary({})


# -- degenerate traces (exporters must never choke) ---------------------------


def test_chrome_round_trip_on_empty_tracer(sim, tmp_path):
    tracer = install_tracer(sim)
    path = tmp_path / "empty.json"
    write_chrome_trace(tracer, str(path))
    doc = json.loads(path.read_text())
    assert doc["traceEvents"] == []
    assert doc["displayTimeUnit"] == "ms"


def test_chrome_round_trip_on_single_span(sim, tmp_path):
    tracer = install_tracer(sim)
    tracer.record_span("solo", 1.0, 2.5, host="db01")
    path = tmp_path / "one.json"
    write_chrome_trace(tracer, str(path))
    events = json.loads(path.read_text())["traceEvents"]
    assert len(events) == 1
    (ev,) = events
    assert ev["name"] == "solo" and ev["ph"] == "X"
    assert ev["ts"] == pytest.approx(1.0 * 1e6)
    assert ev["dur"] == pytest.approx(1.5 * 1e6)


def test_timeline_on_single_uncorrelated_span(sim):
    tracer = install_tracer(sim)
    tracer.record_span("solo", 1.0, 2.5, host="db01")
    # a span with no fault id is not an incident; the renderer says so
    assert "no correlated incidents" in format_timeline(tracer)


def test_timeline_on_minimal_single_span_incident(sim):
    tracer = install_tracer(sim)
    tracer.instant("fault.inject", fault_id="F0001", kind="hang",
                   target="db01/ora")
    tracer.record_span("fault.detect", 5.0, 5.0, fault_id="F0001",
                       agent="svc_ora")
    text = format_timeline(tracer)
    assert "F0001 hang -> db01/ora" in text
    assert "detected by svc_ora" in text
    assert "unresolved in trace window" in text
