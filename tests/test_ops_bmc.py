"""Unit tests for the BMC-style baseline monitor."""

import pytest

from repro.ops.bmc import BaselineMonitor


@pytest.fixture
def bmc(database, notifications):
    return BaselineMonitor(database.host, notifications=notifications)


def test_monitor_is_memory_resident(bmc, database):
    # a real process sits in the table the whole time
    assert database.host.ptable.alive("PatrolAgent")
    assert bmc.proc.mem_mb > 10.0


def test_cost_scales_with_entities(bmc, database):
    cpu0 = bmc.cpu_pct()
    mem0 = bmc.memory_mb()
    for i in range(200):
        database.host.ptable.spawn("u", f"extra{i}")
    assert bmc.cpu_pct() > cpu0
    assert bmc.memory_mb() > mem0


def test_memory_sawtooth_grows_until_flush(sim, bmc):
    m0 = bmc.memory_mb()
    sim.run(until=sim.now + 4 * 3600.0)
    m4 = bmc.memory_mb()
    assert m4 > m0
    # past the flush boundary it drops back
    sim.run(until=sim.now + 5 * 3600.0)   # 9h > 8h flush period
    assert bmc.memory_mb() < m4


def test_detects_crash_and_notifies(sim, bmc, database, notifications):
    database.crash("x")
    sim.run(until=sim.now + 2 * BaselineMonitor.POLL_INTERVAL)
    assert bmc.alerts_raised == 1
    assert any("down" in n.subject for n in notifications.sent)
    # detect-only: the app is still dead
    assert not database.is_running()


def test_alerts_once_per_outage(sim, bmc, database):
    database.crash("x")
    sim.run(until=sim.now + 10 * BaselineMonitor.POLL_INTERVAL)
    assert bmc.alerts_raised == 1
    database.restart()
    sim.run(until=sim.now + database.startup_duration() + 60)
    database.crash("again")
    sim.run(until=sim.now + 2 * BaselineMonitor.POLL_INTERVAL)
    assert bmc.alerts_raised == 2


def test_misses_latent_hang(sim, bmc, database):
    """The BMC process-count rules cannot see a hung app -- the gap the
    paper's probes close."""
    database.hang()
    sim.run(until=sim.now + 5 * BaselineMonitor.POLL_INTERVAL)
    assert bmc.alerts_raised == 0


def test_stop_removes_process(bmc, database):
    bmc.stop()
    assert not database.host.ptable.alive("PatrolAgent")


def test_cpu_in_papers_band(bmc):
    # a loaded-but-sane server should land in the 0.1-1.5% band
    assert 0.05 < bmc.cpu_pct() < 1.5
