"""Unit tests for TCP-style connections."""

from repro.apps.base import AppState
from repro.net.tcp import tcp_connect, find_listener


def test_connect_to_running_database(dc, database, sim):
    res = tcp_connect(dc, "adm01", "db01", database.port)
    assert res.ok
    assert res.app is database
    assert res.latency_ms > 0
    assert res.lan_name == "public0"       # prefers public for app traffic


def test_prefer_private_for_agent_traffic(dc, database):
    res = tcp_connect(dc, "adm01", "db01", database.port,
                      prefer_kind="private")
    assert res.ok and res.lan_name == "agentnet"


def test_refused_when_nothing_listens(dc):
    res = tcp_connect(dc, "adm01", "db01", 9999)
    assert not res.ok and res.error == "refused"


def test_unknown_host(dc):
    assert tcp_connect(dc, "adm01", "ghost", 80).error == "unknown-host"


def test_host_down(dc, database):
    dc.host("db01").crash("x")
    res = tcp_connect(dc, "adm01", "db01", database.port)
    assert res.error == "host-down"


def test_unreachable_when_lans_dead(dc, database):
    dc.lan("public0").fail()
    dc.lan("agentnet").fail()
    res = tcp_connect(dc, "adm01", "db01", database.port)
    assert res.error == "unreachable"


def test_fallback_to_other_lan(dc, database):
    dc.lan("public0").fail()
    res = tcp_connect(dc, "adm01", "db01", database.port)
    assert res.ok and res.lan_name == "agentnet"


def test_timeout_when_app_hung(dc, database):
    database.hang()
    res = tcp_connect(dc, "adm01", "db01", database.port)
    assert not res.ok and res.timed_out


def test_refused_when_app_crashed(dc, database):
    database.crash("x")
    res = tcp_connect(dc, "adm01", "db01", database.port)
    assert res.error == "refused"


def test_source_down(dc, database):
    dc.host("adm01").crash("x")
    res = tcp_connect(dc, "adm01", "db01", database.port)
    assert res.error == "source-down"


def test_find_listener(dc, database):
    assert find_listener(dc.host("db01"), database.port) is database
    assert find_listener(dc.host("db01"), 4242) is None
