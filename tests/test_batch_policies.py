"""Unit tests for placement policies."""

import pytest

from repro.apps.database import Database
from repro.batch.jobs import BatchJob
from repro.batch.policies import (DgsplPolicy, ManualPolicy, RandomPolicy,
                                  rank_candidates)


@pytest.fixture
def fleet(dc, sim):
    """Three databases of different power: e10k > e4500 > ultra10."""
    big = dc.add_host("big", "sun-e10k")
    small = dc.add_host("small", "sun-ultra10")
    dbs = [Database(dc.host("db01"), "mid_db", max_job_slots=4),
           Database(big, "big_db", max_job_slots=4),
           Database(small, "small_db", max_job_slots=2)]
    for db in dbs:
        db.start()
    sim.run(until=sim.now + 200.0)
    return dbs


def _job(user="u1", target=None, failed_on=()):
    job = BatchJob("j", user, duration=100.0, requested_server=target)
    job.failed_on = list(failed_on)
    return job


def test_rank_orders_by_headroom_then_power(fleet):
    mid, big, small = fleet
    ranked = rank_candidates(fleet)
    assert ranked[0] is big        # same headroom, most power first
    # load the big one: it sinks
    big.host.extra_runnable = big.host.effective_cpus() * 5
    ranked = rank_candidates(fleet)
    assert ranked[0] is not big


def test_rank_filters_dead_full_excluded_weak(fleet):
    mid, big, small = fleet
    small.crash("x")
    assert small not in rank_candidates(fleet)
    assert big not in rank_candidates(fleet, exclude_hosts=["big"])
    strong = rank_candidates(fleet, min_power=big.host.spec.power)
    assert strong == [big]
    # fill mid's slots
    for i in range(4):
        mid.attach_job(_job())
    assert mid not in rank_candidates(fleet)


def test_random_policy_picks_running_only(fleet, rs):
    pol = RandomPolicy(rs.get("p"))
    mid, big, small = fleet
    mid.crash("x")
    big.crash("x")
    assert pol.choose(_job(), fleet) is small
    small.crash("x")
    assert pol.choose(_job(), fleet) is None


def test_manual_policy_honours_pinned_server(fleet, rs):
    pol = ManualPolicy(rs.get("m"))
    mid, big, small = fleet
    assert pol.choose(_job(target="small"), fleet) is small
    small.crash("x")
    assert pol.choose(_job(target="small"), fleet) is None


def test_manual_policy_habits_are_stable_and_load_blind(fleet, rs):
    pol = ManualPolicy(rs.get("m"), favourites_per_user=1)
    first = pol.choose(_job(user="alice"), fleet)
    # same user, same favourite, regardless of load
    first.host.extra_runnable = first.host.effective_cpus() * 20
    again = pol.choose(_job(user="alice"), fleet)
    assert again is first


def test_dgspl_policy_takes_best_first(fleet):
    pol = DgsplPolicy()
    assert pol.choose(_job(), fleet).host.name == "big"


def test_dgspl_policy_power_rule_on_resubmit(fleet):
    mid, big, small = fleet
    pol = DgsplPolicy()
    # job failed on the mid server: needs equal-or-higher power, so the
    # small box is not eligible even though it idles
    job = _job(failed_on=["db01"])
    choice = pol.choose(job, fleet)
    assert choice is big


def test_dgspl_policy_relaxes_when_nothing_qualifies(fleet):
    mid, big, small = fleet
    big.crash("x")
    mid.crash("x")
    job = _job(failed_on=["big"])
    # only the small server lives: the power rule must relax
    assert pol_choice_name(pol := DgsplPolicy(), job, fleet) == "small"


def pol_choice_name(pol, job, fleet):
    choice = pol.choose(job, fleet)
    return choice.host.name if choice else None


def test_dgspl_policy_avoids_failed_on(fleet):
    mid, big, small = fleet
    job = _job(failed_on=["big"])
    choice = DgsplPolicy().choose(job, fleet)
    assert choice is not big


def test_dgspl_returns_none_when_everything_dead(fleet):
    for db in fleet:
        db.crash("x")
    assert DgsplPolicy().choose(_job(), fleet) is None
