"""Unit tests for the healing action library."""

import pytest

from repro.apps.base import AppState
from repro.core.healing import ACTIONS, apply_action


def test_restart_app_brings_service_back(database, sim):
    database.crash("x")
    res = apply_action("restart_app", database.host, database.name)
    assert res.success
    assert res.busy_for > database.startup_duration()
    sim.run(until=sim.now + database.startup_duration() + 5)
    assert database.is_healthy()


def test_restart_unknown_app_fails():
    from repro.cluster.datacenter import Datacenter
    from repro.sim import RandomStreams, Simulator
    sim = Simulator()
    dc = Datacenter(sim, RandomStreams(0))
    host = dc.add_host("h", "linux-x86")
    res = apply_action("restart_app", host, "ghost")
    assert not res.success


def test_restore_config(database, sim):
    database.config_ok = False
    database.crash("operator changed startup parameters")
    res = apply_action("restore_config", database.host, database.name)
    assert res.success
    assert database.config_ok
    sim.run(until=sim.now + database.startup_duration() + 5)
    assert database.is_healthy()


def test_restore_data_takes_the_slow_path(database, sim):
    database.data_ok = False
    database.crash("block corruption")
    res = apply_action("restore_data", database.host, database.name)
    assert res.success and database.data_ok
    # not yet: the restore itself takes time
    sim.run(until=sim.now + 100.0)
    assert not database.is_healthy()
    sim.run(until=sim.now + res.busy_for + 60.0)
    assert database.is_healthy()


def test_kill_runaway(db_host):
    db_host.ptable.spawn("user1", "runaway.sh", cpu_pct=97.0)
    db_host.ptable.spawn("oracle", "ora_ok", cpu_pct=20.0)
    res = apply_action("kill_runaway", db_host, "db01")
    assert res.success
    assert not db_host.ptable.alive("runaway.sh")
    assert db_host.ptable.alive("ora_ok")
    # nothing left to kill: reported as failure
    assert not apply_action("kill_runaway", db_host, "db01").success


def test_kill_leaky(db_host):
    ram = db_host.effective_ram_mb()
    db_host.ptable.spawn("app", "leaky", mem_mb=ram * 0.5)
    res = apply_action("kill_leaky", db_host, "db01")
    assert res.success
    assert not db_host.ptable.alive("leaky")


def test_clean_logs_frees_space(db_host):
    db_host.fs.fill("/logs", 0.97)
    res = apply_action("clean_logs", db_host, "/logs")
    assert res.success
    assert db_host.fs.mounts["/logs"].pct_used < 90.0


def test_clean_logs_trims_circular_files(db_host):
    for i in range(300):
        db_host.fs.append("/logs/perf/db01/os", f"line{i}")
    apply_action("clean_logs", db_host, "/logs")
    assert len(db_host.fs.read("/logs/perf/db01/os")) == 100


def test_restart_cron(db_host):
    db_host.crond.kill()
    db_host.ptable.kill_command("crond")
    res = apply_action("restart_cron", db_host, "crond")
    assert res.success
    assert db_host.crond.running
    assert db_host.ptable.alive("crond")


def test_reboot_host(db_host, sim):
    res = apply_action("reboot_host", db_host, "db01")
    assert res.success
    assert not db_host.is_up
    sim.run(until=sim.now + db_host.boot_duration + 5)
    assert db_host.is_up


def test_field_engineer_is_not_a_repair(db_host):
    res = apply_action("request_field_engineer", db_host, "disk0")
    assert not res.success


def test_unknown_action(db_host):
    res = apply_action("percussive_maintenance", db_host, "x")
    assert not res.success and "unknown" in res.detail


def test_action_registry_complete():
    for name in ("restart_app", "start_app", "restore_config",
                 "restore_data", "kill_runaway", "kill_leaky",
                 "clean_logs", "restart_cron", "reboot_host",
                 "request_field_engineer"):
        assert name in ACTIONS
