"""Unit tests for SLI/SLO accounting and the request-weighted join."""

import pytest

from repro.sim.calendar import DAY, HOUR, YEAR
from repro.trace.metrics import Histogram
from repro.traffic.slo import (IncidentWindow, Sli, Slo, SloStatus,
                               join_demand)
from repro.traffic.workload import financial_curve


# -- Sli ----------------------------------------------------------------------


def test_sli_availability_math():
    sli = Sli("web")
    assert sli.availability == 1.0        # idle service has failed no one
    sli.record_batch(90, 10, 12.0)
    assert sli.attempted == 100
    assert sli.availability == pytest.approx(0.9)
    sli.record_shed(100)
    assert sli.attempted == 200
    assert sli.failed == 110
    assert sli.availability == pytest.approx(0.45)
    snap = sli.snapshot()
    assert snap["shed"] == 100 and snap["served"] == 90


def test_sli_latency_quantiles_weighted():
    sli = Sli("web")
    sli.record_batch(1000, 0, 8.0)        # bucket <=10ms
    sli.record_batch(10, 0, 700.0)        # bucket <=1000ms
    assert sli.latency_quantile(0.5) <= 10.0
    assert sli.latency_quantile(0.999) > 100.0


def test_histogram_observe_n_and_count_at_or_below():
    h = Histogram("h", (1.0, 2.0, 4.0))
    h.observe_n(1.5, 10)
    h.observe_n(3.0, 5)
    h.observe_n(100.0, 2)                 # overflow bucket
    assert h.count == 17
    assert h.count_at_or_below(2.0) == 10
    assert h.count_at_or_below(4.0) == 15
    assert h.count_at_or_below(0.5) == 0
    assert h.quantile(1.0) == 4.0         # overflow clamps to top bound


def test_histogram_quantile_interpolates():
    h = Histogram("h", (10.0, 20.0))
    assert h.quantile(0.5) == 0.0         # empty
    h.observe_n(5.0, 100)                 # all in the first bucket
    q = h.quantile(0.5)
    assert 0.0 < q <= 10.0


# -- Slo ----------------------------------------------------------------------


def test_slo_error_budget_and_burn():
    slo = Slo("web-avail", objective=0.999)
    sli = Sli("web")
    sli.record_batch(99_950, 50, 10.0)    # 50 bad of 100k: half the budget
    st = SloStatus.evaluate(sli, slo)
    assert st.budget == pytest.approx(100.0)
    assert st.burn_rate == pytest.approx(0.5)
    assert st.met
    sli.record_shed(100)                  # blow through the budget
    st = SloStatus.evaluate(sli, slo)
    assert st.burn_rate > 1.0
    assert not st.met


def test_slo_latency_counts_slow_as_bad():
    slo = Slo("web-fast", objective=0.99, latency_ms=100.0)
    sli = Sli("web")
    sli.record_batch(900, 0, 10.0)        # fast
    sli.record_batch(100, 0, 700.0)       # served but slow
    st = SloStatus.evaluate(sli, slo)
    assert st.bad == 100
    assert not st.met


# -- join_demand --------------------------------------------------------------


@pytest.fixture(scope="module")
def curve():
    return financial_curve(population=1_000_000)


def test_join_no_windows_is_perfect(curve):
    out = join_demand(curve, [], horizon=7 * DAY)
    assert out.availability == 1.0
    assert out.total_failed == 0.0
    assert out.user_minutes_lost == 0.0
    assert out.total_attempted > 0


def test_join_peak_incident_costs_more_than_overnight(curve):
    def one(start):
        w = IncidentWindow(start=start, duration=HOUR,
                           impact={"web": 1.0, "frontend": 1.0, "db": 1.0})
        return join_demand(curve, [w], horizon=7 * DAY)

    peak = one(DAY + 11 * HOUR)       # Tuesday 11:00
    night = one(DAY + 3 * HOUR)       # Tuesday 03:00
    assert peak.total_failed > 5 * night.total_failed
    assert peak.user_minutes_lost > 5 * night.user_minutes_lost
    assert peak.user_minutes["day"] > 0 and peak.user_minutes["overnight"] == 0
    assert night.user_minutes["overnight"] > 0 and night.user_minutes["day"] == 0


def test_join_impact_scoped_to_class(curve):
    w = IncidentWindow(start=DAY + 11 * HOUR, duration=HOUR,
                       impact={"db": 0.5})
    out = join_demand(curve, [w], horizon=2 * DAY)
    assert out.failed["db"] > 0
    assert out.failed["web"] == 0.0
    assert out.availability_of("web") == 1.0
    assert out.availability_of("db") < 1.0


def test_join_overlapping_incidents_saturate(curve):
    """Two full outages over the same window cannot fail more than
    100% of the demand."""
    w = IncidentWindow(start=DAY + 11 * HOUR, duration=HOUR,
                       impact={"web": 1.0})
    single = join_demand(curve, [w], horizon=2 * DAY)
    double = join_demand(curve, [w, w], horizon=2 * DAY)
    assert double.failed["web"] == pytest.approx(single.failed["web"])


def test_join_scale_and_clipping(curve):
    base = IncidentWindow(start=DAY + 11 * HOUR, duration=HOUR,
                          impact={"web": 0.4})
    half = IncidentWindow(start=DAY + 11 * HOUR, duration=HOUR,
                          impact={"web": 0.4}, scale=0.5)
    a = join_demand(curve, [base], horizon=2 * DAY)
    b = join_demand(curve, [half], horizon=2 * DAY)
    assert b.failed["web"] == pytest.approx(a.failed["web"] / 2)
    # windows past the horizon contribute nothing
    late = IncidentWindow(start=3 * DAY, duration=HOUR, impact={"web": 1.0})
    c = join_demand(curve, [late], horizon=2 * DAY)
    assert c.total_failed == 0.0


def test_join_year_scale_is_fast(curve):
    """A year-long join must stay O(intervals): it runs in well under a
    second even at 1M users (smoke guard for the vectorised path)."""
    import time
    w = IncidentWindow(start=DAY + 11 * HOUR, duration=HOUR,
                       impact={"web": 1.0})
    t0 = time.perf_counter()
    out = join_demand(curve, [w] * 50, horizon=YEAR)
    assert time.perf_counter() - t0 < 5.0
    assert out.total_attempted > 1e9
