#!/usr/bin/env python
"""The §4 batch-rescue story, narrated step by step.

An analyst pins an overnight data-mining job to their habitual (weak)
database server.  The server crashes mid-job.  The administration
servers catch the failure, consult the DGSPL, and resubmit the job to
an equal-or-stronger server; the service agent restarts the crashed
database in parallel.

Run:  python examples/batch_rescue.py
"""

from repro.batch.jobs import BatchJob
from repro.experiments.site import SiteConfig, build_site
from repro.sim.calendar import format_time


def say(site, msg: str) -> None:
    print(f"[{format_time(site.sim.now)}] {msg}")


def main() -> None:
    site = build_site(SiteConfig.test_scale(seed=7, with_feeds=False,
                                            with_workload=False))
    say(site, f"site up: {len(site.databases)} database servers "
              f"{[d.host.name for d in site.databases]}")

    site.run(1800.0)        # let the DGSPL warm up
    dgspl = site.admin.current_dgspl()
    say(site, f"DGSPL generation #{site.admin.dgspl_generations}: "
              f"{len(dgspl.services_of_type('database'))} database "
              "services advertised")

    weak = min(site.databases, key=lambda d: d.host.spec.power)
    say(site, "analyst submits 'datamine-overnight' pinned to their "
              f"habitual server {weak.host.name} "
              f"({weak.host.spec.model})")
    job = BatchJob("datamine-overnight", "analyst07",
                   duration=4 * 3600.0, cpu_slots=2,
                   requested_server=weak.host.name)
    site.lsf.submit(job)
    say(site, f"job {job.job_id} dispatched to "
              f"{job.database.host.name}; "
              f"{job.time_left(site.sim.now) / 3600:.1f} h of work")

    site.run(3600.0)
    say(site, f"one hour in; {job.time_left(site.sim.now) / 3600:.1f} h "
              "left ... and the database dies:")
    weak.crash("overload: batch job storm")

    say(site, f"  job state: {job.state.value}; failed on "
              f"{job.failed_on}")
    say(site, f"  job manager resubmitted={site.jobmgr.resubmitted}, "
              f"new target: {job.requested_server}")
    powers = {d.host.name: d.host.spec.power for d in site.databases}
    say(site, f"  power rule: {job.requested_server} "
              f"({powers[job.requested_server]:.0f}) >= "
              f"{weak.host.name} ({powers[weak.host.name]:.0f})")

    site.run(1200.0)
    say(site, f"meanwhile the service agent restarted {weak.name}: "
              f"healthy={weak.is_healthy()}")

    site.run(4 * 3600.0)
    say(site, f"job {job.job_id} finished: {job.state.value} "
              f"(resubmits: {job.resubmits})")

    print("\nnotifications sent along the way:")
    for n in site.notifications.sent:
        print(f"  [{n.medium}] {n.sender} -> {n.recipient}: {n.subject}")


if __name__ == "__main__":
    main()
