#!/usr/bin/env python
"""The operators' view: a SystemEdge-style console plus performance
timelines.

Runs a morning at the site with a few faults, showing what a human
operator would actually look at: the alarm board (deduplicated,
severity-ordered, ack-able) and ASCII timelines of the performance
series the agents collected.

Run:  python examples/operator_console.py
"""

from repro.cluster.hardware import ComponentKind
from repro.experiments.runner import FidelityHarness
from repro.experiments.site import SiteConfig, build_site
from repro.metrics.timeline import render_dashboard
from repro.ops.console import OperatorConsole
from repro.sim.calendar import HOUR


def main() -> None:
    site = build_site(SiteConfig.test_scale(seed=19, with_feeds=False,
                                            with_workload=False))
    console = OperatorConsole(site.notifications, site.sim)
    harness = FidelityHarness(site)

    # a quiet first hour, then trouble
    site.run(1 * HOUR)
    harness.injector.component_failure(site.databases[0].host,
                                       ComponentKind.DISK)
    harness.injector.runaway_process(site.databases[1].host)
    site.run(1 * HOUR)
    site.dc.lan("public0").fail()
    site.dc.lan("public1").fail()
    site.run(2 * HOUR)

    print(console.board())
    print()

    # the operator acknowledges the network problem and clears the
    # alarms for things the agents already fixed
    for alarm in console.active():
        if "end-to-end" in alarm.subject:
            console.ack(alarm.subject, "operator-on-duty")
    healed = console.clear_matching("db001")    # the runaway: long gone
    print(f"(operator acked the network outage, cleared {healed} "
          "already-healed alarm(s))\n")
    print(console.board())

    # the §3.5 timelines, from the performance agent's own series
    host = site.databases[1].host
    perf = site.suite_for(host.name).perf
    print(f"\nperformance timelines for {host.name} "
          "(4 h, one sample per agent wake):")
    series = {
        "cpu_idle_%": perf.timeline("os", "cpu_idle"),
        "run_queue": perf.timeline("os", "run_queue"),
        "free_mem_MB": perf.timeline("os", "free_mb"),
        "worst_asvc_ms": perf.timeline("disks", "worst_asvc_t"),
    }
    print(render_dashboard({k: v for k, v in series.items()
                            if v is not None}, width=56))


if __name__ == "__main__":
    main()
