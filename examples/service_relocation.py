#!/usr/bin/env python
"""A frontend server dies; its services are relocated, nobody is paged.

The escalation tiers in action: local healing cannot fix a dead host,
so the administration servers hand the incident to the relocation
orchestrator -- plan (constraint search over spares + DGSPL peers),
drain, cold-start on the spare or warm takeover by a peer, verify,
cutover.  Only if *that* fails does the on-call human get an SMS.

Run:  python examples/service_relocation.py
"""

from repro.experiments.site import SiteConfig, build_site
from repro.sim.calendar import format_time
from repro.trace import format_timeline, install_tracer


def main() -> None:
    site = build_site(SiteConfig.test_scale(seed=11, spare_servers=1,
                                            with_workload=False,
                                            with_feeds=False))
    tracer = install_tracer(site.sim)
    print(f"site up: {len(site.dc.hosts)} hosts, spare pool = "
          f"{site.spares.available()}")
    site.run(1200.0)        # let the watchdog pass its warm-up grace

    victim = site.dc.host("fe000")
    apps = [a.name for a in victim.apps.values() if a.is_running()]
    print(f"\n[{format_time(site.sim.now)}] !!! {victim.name} loses power "
          f"(running: {', '.join(apps)})\n")
    # stamp the incident the way the fault injector does, so every
    # relocate.* span lands in one correlated trace tree
    fid = tracer.new_fault_id()
    tracer.correlate(victim.name, fid)
    tracer.instant("fault.inject", fault_id=fid, kind="host-crash",
                   target=victim.name)
    victim.crash("power supply failure")
    site.run(3 * site.admin.watch_period)

    print("relocation ledger:")
    for rec in site.relocator.records:
        where = "cold-start on spare" if rec.cold else "warm takeover by"
        state = "OK" if rec.success else f"ROLLED BACK ({rec.reason})"
        print(f"  {rec.subject:<22} -> {where} {rec.target_host:<6} "
              f"in {rec.duration:.0f} s   {state}")

    pages = [n for n in site.notifications.sent if n.medium == "sms"]
    print(f"\nhumans paged: {len(pages)}   "
          f"(the relocation tier absorbed the incident)")
    print(f"spare claims: {site.spares.claims}")

    print("\n" + format_timeline(tracer))


if __name__ == "__main__":
    main()
