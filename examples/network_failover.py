#!/usr/bin/env python
"""The private agent network fails; agent traffic reroutes.

§3.3: all agent communication rides a dedicated private LAN so it never
loads the public LANs; if the private network fails, agents reroute
over the public side automatically.  This drill fails the private LAN
mid-run, shows the reroute, proves healing still works, then repairs
the LAN and shows traffic returning home.

Run:  python examples/network_failover.py
"""

from repro.experiments.site import SiteConfig, build_site
from repro.sim.calendar import format_time


def show(site, label: str) -> None:
    s = site.channel.stats()
    print(f"[{format_time(site.sim.now)}] {label}")
    print(f"    delivered={s['delivered']} rerouted={s['rerouted']} "
          f"failed={s['failed']}")
    print(f"    bytes: private={s['bytes_private']:,} "
          f"public={s['bytes_public']:,}")


def main() -> None:
    site = build_site(SiteConfig.test_scale(seed=5, with_feeds=False,
                                            with_workload=False))
    site.run(2 * 3600.0)
    show(site, "two quiet hours: everything on the private LAN")

    print("\n!!! private agent LAN fails\n")
    site.dc.lan("agentnet").fail()
    site.run(2 * 3600.0)
    show(site, "two hours with the private LAN down: rerouted")

    db = site.databases[0]
    db.crash("crash during the network outage")
    site.run(1200.0)
    print(f"\n    healing still works over the reroute: "
          f"{db.name} healthy={db.is_healthy()}\n")

    print("--- private LAN repaired\n")
    site.dc.lan("agentnet").repair()
    before_private = site.channel.stats()["bytes_private"]
    site.run(2 * 3600.0)
    show(site, "two hours after repair: traffic back on the private LAN")
    after_private = site.channel.stats()["bytes_private"]
    print(f"    private-LAN bytes resumed: +{after_private - before_private:,}")


if __name__ == "__main__":
    main()
