#!/usr/bin/env python
"""A bad night at the datacentre: a storm of simultaneous faults.

Injects one fault of every flavour the agents can meet -- database
crash, latent hang, configuration corruption, runaway process, memory
leak, full filesystem, LSF master crash, dead crond, failed disk --
then lets the system run and prints the incident ledger: what healed
itself, how fast, and what was escalated to humans (network and
hardware, per the paper's own limits).

Run:  python examples/fault_storm.py [--trace storm.json] [--timeline]

``--trace`` writes a Chrome ``trace_event`` JSON of the whole night
(open in chrome://tracing or Perfetto): one lane per host, every fault
correlated by id from injection through detection, diagnosis and
repair.  ``--timeline`` prints the same incidents as a flat-ASCII
timeline.
"""

import argparse

from repro.cluster.hardware import ComponentKind
from repro.experiments.runner import FidelityHarness
from repro.experiments.site import SiteConfig, build_site
from repro.sim.calendar import format_time
from repro.trace import format_timeline, install_tracer, write_chrome_trace


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace_event JSON here")
    parser.add_argument("--timeline", action="store_true",
                        help="print the per-fault incident timeline")
    args = parser.parse_args(argv)

    site = build_site(SiteConfig.test_scale(seed=31, with_feeds=False,
                                            with_workload=False))
    tracer = install_tracer(site.sim)
    harness = FidelityHarness(site)
    site.run(1500.0)

    inj = harness.injector
    print(f"[{format_time(site.sim.now)}] injecting the storm:")
    faults = [
        inj.db_crash(site.databases[0]),
        inj.app_hang(site.frontends[0]),
        inj.config_corruption(site.databases[1]),
        inj.runaway_process(site.databases[2].host),
        inj.memory_leak(site.frontends[1].host),
        inj.disk_fill(site.databases[3].host, "/logs", 0.98),
        inj.lsf_crash(site.lsf_master),
        inj.cron_death(site.databases[2].host),
        inj.component_failure(site.frontends[0].host,
                              ComponentKind.DISK),
    ]
    for ev in faults:
        print(f"    {ev.category.value:<16s} {ev.kind:<18s} -> {ev.target}")

    print("\nletting the agents work for two simulated hours ...")
    site.run(2 * 3600.0)
    harness.scan_flags_for_detection()

    print(f"\n[{format_time(site.sim.now)}] incident ledger:")
    for inc in harness.ledger.incidents:
        state = ("OPEN" if inc.open
                 else f"closed after {inc.duration / 60:.1f} min")
        det = ("" if inc.detection_latency is None
               else f", detected in {inc.detection_latency / 60:.1f} min")
        print(f"    {inc.category.value:<16s} {inc.target:<28s} "
              f"{state}{det}")

    print("\nsystem state:")
    print(f"    databases healthy: "
          f"{[d.is_healthy() for d in site.databases]}")
    print(f"    frontends healthy: "
          f"{[f.is_healthy() for f in site.frontends]}")
    print(f"    LSF up: {site.lsf.up}; "
          f"crond repaired: {site.admin.cron_repairs}")
    print(f"    escalations to humans: "
          f"{len([n for n in site.notifications.sent if n.severity == 'critical'])} "
          "critical notifications")
    for n in site.notifications.sent:
        if n.severity == "critical":
            print(f"      - {n.sender}: {n.subject}")

    if args.timeline:
        print()
        print(format_timeline(tracer))
    if args.trace:
        write_chrome_trace(tracer, args.trace)
        print(f"\nchrome trace written to {args.trace} "
              f"(open in chrome://tracing)")


if __name__ == "__main__":
    main()
