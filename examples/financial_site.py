#!/usr/bin/env python
"""The headline experiment: a year at the financial customer site.

Reproduces Figure 2 -- downtime hours by error category for one year of
manual operations (BMC Patrol + on-call administrators) versus one year
with the intelliagent stack, over the *same* sampled fault arrivals.

Run:  python examples/financial_site.py [--replications N]
"""

import argparse

from repro.experiments import fig2
from repro.experiments.report import table


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--replications", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("simulating the pilot site: 100 database / 55 TP / 60 "
          "front-end servers, one year per arm ...")
    seeds = list(range(args.seed, args.seed + args.replications))
    result = fig2.run_replicated(seeds)

    print()
    print(fig2.format_result(result))

    print()
    print(table(
        ["period", "manual detection (h)", "agent detection (h)"],
        [(p, round(result.detection_before[p], 2),
          round(result.detection_after[p], 3))
         for p in ("day", "overnight", "weekend")],
        title="Detection latency by period (paper: 1 h / 10 h / 25 h "
              "manual; <=5 min with agents)"))

    print()
    print("notes:")
    print("  - the before/after comparison is paired: both pipelines "
          "score the same fault draw")
    print("  - the paper's own after-category values sum to 39 h "
          "although its text says 31 h; we compare against the "
          "categories")


if __name__ == "__main__":
    main()
