#!/usr/bin/env python
"""User traffic: what a crash feels like from the outside.

Drives a diurnal flow of user demand (web GETs, analyst queries,
database transactions) through the QoS-aware front door against a
small live site, crashes a web server at the late-morning peak, and
shows what users saw: availability dips while traffic keeps hitting
the dead server under round-robin, then recovers the moment the front
door sheds it.  Ends with the year-scale view -- the same 1 h outage
priced at peak vs overnight -- and points at `repro-exp userqos` for
the full before/after campaign.

Run:  python examples/user_traffic.py
"""

from repro.experiments.site import SiteConfig, build_site
from repro.sim.calendar import DAY, HOUR, format_time
from repro.traffic import (FluidTrafficEngine, doors_for_site,
                           financial_curve)


def main() -> None:
    print("building the site (test scale, no agents) ...")
    site = build_site(SiteConfig.test_scale(
        seed=5, agents=False, with_workload=False, with_feeds=False))

    curve = financial_curve(population=250_000)
    doors = doors_for_site(site, use_dgspl=False)   # plain round-robin
    engine = FluidTrafficEngine(site.sim, curve, doors, site.streams,
                                step=300.0)
    engine.start()

    # run to Tuesday 10:00, near the morning peak
    site.run(DAY + 10 * HOUR - site.sim.now)
    web = engine.slis["web"]
    print(f"[{format_time(site.sim.now)}] peak traffic; web availability "
          f"so far: {web.availability:.4%} "
          f"({web.attempted:,.0f} requests attempted)")

    victim = site.webservers[0]
    victim.crash("segfault under load")
    print(f"[{format_time(site.sim.now)}] !!! {victim.name} crashed "
          f"at the peak -- round-robin keeps sending it users")
    site.run(HOUR)
    print(f"[{format_time(site.sim.now)}] one hour later: web "
          f"availability {web.availability:.4%}, "
          f"failed {web.failed:,.0f} requests")

    # the front door learns (an agent flag would drive this) and sheds
    doors["web"].flag_down(victim.host.name)
    failed_before_shed = web.failed
    site.run(HOUR)
    print(f"[{format_time(site.sim.now)}] after shedding the dead "
          f"server: {web.failed - failed_before_shed:,.0f} further "
          f"failures (live servers absorb the load)")

    victim.restart()
    site.run(600.0)
    doors["web"].flag_up(victim.host.name)

    print(f"\nlatency p50 {web.latency_quantile(0.5):.0f} ms, "
          f"p99 {web.latency_quantile(0.99):.0f} ms over "
          f"{web.served:,.0f} served requests")

    # the year-scale punchline: when you crash matters
    peak = curve.incident_user_minutes(DAY + 11 * HOUR, HOUR)
    night = curve.incident_user_minutes(DAY + 3 * HOUR, HOUR)
    print(f"\nthe same 1 h outage costs {peak:,.0f} user-minutes at "
          f"11:00 but {night:,.0f} at 03:00 ({peak / night:.1f}x) -- "
          f"downtime hours alone cannot see this.")
    print("run `repro-exp userqos` for the full year, before vs after "
          "the intelliagents on the same faults.")


if __name__ == "__main__":
    main()
