#!/usr/bin/env python
"""Quickstart: watch an intelliagent heal a crashed database.

Builds a small simulated datacentre (four database servers, two
transaction-processing hosts, two front-ends, an HA admin pair, LSF),
deploys the intelliagent stack, kills a database, and narrates the
recovery using the flags the agent wrote.

Run:  python examples/quickstart.py
"""

from repro.core.flags import FlagStore
from repro.experiments.site import SiteConfig, build_site
from repro.sim.calendar import format_time


def main() -> None:
    print("building the site (test scale) ...")
    site = build_site(SiteConfig.test_scale(seed=42, with_feeds=False,
                                            with_workload=False))
    db = site.databases[0]
    host = db.host
    print(f"  {len(site.dc.hosts)} hosts; watching {db.name} "
          f"on {host.name} ({host.spec.model})")

    # give the agents a couple of cron cycles of quiet operation
    site.run(700.0)
    print(f"[{format_time(site.sim.now)}] all quiet; "
          f"{db.name} healthy: {db.is_healthy()}")

    t_crash = site.sim.now
    db.crash("ORA-00600: internal error")
    print(f"[{format_time(site.sim.now)}] !!! {db.name} crashed")

    # one agent period is all detection needs; the restart takes a
    # couple of minutes more
    site.run(1200.0)
    print(f"[{format_time(site.sim.now)}] {db.name} healthy again: "
          f"{db.is_healthy()} (restart #{db.restart_count})")

    print("\nwhat the service agent's flag directory recorded:")
    store = FlagStore(host.fs, f"svc_{db.name}")
    for flag in store.flags():
        if flag.time >= t_crash - 400:
            detail = f"  ({flag.detail})" if flag.detail else ""
            print(f"  t={flag.time:9.1f}  {flag.status:<8s}{detail}")

    downtime = next(
        (f.time for f in store.flags() if f.status == "fixed"),
        site.sim.now) - t_crash
    print(f"\nfault-to-repair-action time: {downtime / 60:.1f} minutes "
          f"(agent wake period: {site.config.agent_period / 60:.0f} min)")
    print("the paper's pre-agent baseline for the same fault: "
          "hours (operator detection) + a manual restart.")


if __name__ == "__main__":
    main()
