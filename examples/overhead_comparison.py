#!/usr/bin/env python
"""Figures 3 and 4: what monitoring itself costs.

Boots one busy database server, installs both a BMC-Patrol-style
memory-resident monitor and the intelliagent suite, drives a
fluctuating peak load, and samples both monitors' CPU and memory every
half hour for four hours -- exactly the paper's measurement.

Run:  python examples/overhead_comparison.py
"""

from repro.experiments import overhead


def main() -> None:
    print("sampling a peak-loaded database server for 4 simulated "
          "hours ...\n")
    result = overhead.run()
    print(overhead.format_cpu(result))
    print()
    print(overhead.format_memory(result))
    print()
    print("why the gap (the paper's §3.3/§5 argument):")
    print("  - the BMC-style agent is memory resident: per-entity "
          "state plus a history cache that grows between flushes")
    print("  - intelliagents are cron-run shell processes: they wake, "
          "sweep, write flat ASCII, and exit -- nothing stays resident")


if __name__ == "__main__":
    main()
