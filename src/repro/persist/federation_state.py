"""Whole-federation snapshot/restore.

A federation checkpoint is the per-site :func:`snapshot_site` documents
(each under the same byte-identity contract as a standalone site) plus
the layers that only exist *between* sites: the WAN links, the courier
and federated name-service counters, the merged DGSPL view, the geo
front door, the geo traffic tier's SLIs, the cross-site relocation
records, the federation RNG and the lockstep clock.  Restore rebuilds
the federation fresh from the embedded :class:`FederationConfig`
(:func:`build_federation` is deterministic), then overwrites every
layer -- a restored federation produces byte-identical summaries to
the one that never stopped.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.persist.core import FORMAT_VERSION, state_hash
from repro.persist.site_state import restore_site, snapshot_site

__all__ = ["snapshot_federation", "restore_federation"]


def snapshot_federation(fed, *, extras_by_site: Optional[
        Mapping[str, Mapping[str, object]]] = None) -> dict:
    """One dict for the whole federation.

    ``extras_by_site`` forwards harness-owned components to each site's
    :func:`snapshot_site` (same names must be passed on restore).
    """
    extras_by_site = dict(extras_by_site or {})
    state: dict = {
        "format": FORMAT_VERSION,
        "fedconfig": fed.config.to_dict(),
        "sites": {name: snapshot_site(fed.sites[name],
                                      extras=extras_by_site.get(name))
                  for name in sorted(fed.sites)},
        "wan": fed.wan.snapshot_state(),
        "courier": fed.courier.snapshot_state(),
        "fed_nameservice": fed.nameservice.snapshot_state(),
        "fed_dgspl": fed.fed_dgspl.snapshot_state(),
        "fed_rng": fed.streams.getstate(),
        "geo": fed.geo.snapshot_state() if fed.geo is not None else None,
        "traffic": (fed.traffic.snapshot_state()
                    if fed.traffic is not None else None),
        "crosssite": (fed.crosssite.snapshot_state()
                      if fed.crosssite is not None else None),
        "clock": {
            "now": fed.now,
            "next_digest": fed._next_digest,
            "lost_sites": sorted(fed.lost_sites),
            "traffic_on": fed.traffic_on,
            "site_loss_events": fed.site_loss_events,
            "site_recovery_events": fed.site_recovery_events,
        },
    }
    state["state_hash"] = state_hash(
        {k: v for k, v in state.items() if k != "state_hash"})
    return state


def restore_federation(snapshot: dict, *, extras_by_site: Optional[
        Mapping[str, Mapping[str, object]]] = None):
    """Rebuild the snapshotted federation and return it."""
    from repro.federation.build import build_federation
    from repro.federation.config import FederationConfig

    if snapshot.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format {snapshot.get('format')!r} != "
            f"supported {FORMAT_VERSION}")
    extras_by_site = dict(extras_by_site or {})

    config = FederationConfig.from_dict(snapshot["fedconfig"])
    fed = build_federation(config)
    if set(fed.sites) != set(snapshot["sites"]):
        raise KeyError(
            f"site set mismatch: snapshot={sorted(snapshot['sites'])} "
            f"build={sorted(fed.sites)}")

    for name in sorted(fed.sites):
        restore_site(snapshot["sites"][name], site=fed.sites[name],
                     extras=extras_by_site.get(name))

    fed.wan.restore_state(snapshot["wan"])
    fed.courier.restore_state(snapshot["courier"])
    fed.nameservice.restore_state(snapshot["fed_nameservice"])
    fed.fed_dgspl.restore_state(snapshot["fed_dgspl"])
    fed.streams.setstate(snapshot["fed_rng"])
    if snapshot["geo"] is not None:
        fed.geo.restore_state(snapshot["geo"])
    if snapshot["traffic"] is not None:
        def resolve_app_for(site_name: str):
            site = fed.sites[site_name]
            return lambda host, app: site.dc.hosts[host].apps[app]
        fed.traffic.restore_state(snapshot["traffic"], resolve_app_for)
    if snapshot["crosssite"] is not None:
        fed.crosssite.restore_state(snapshot["crosssite"])

    clock = snapshot["clock"]
    fed.now = float(clock["now"])
    fed._next_digest = float(clock["next_digest"])
    fed.lost_sites = set(clock["lost_sites"])
    fed.traffic_on = bool(clock["traffic_on"])
    fed.site_loss_events = int(clock["site_loss_events"])
    fed.site_recovery_events = int(clock["site_recovery_events"])
    return fed
