"""Epoch-boundary checkpointing.

The manager sits between run segments: the driver advances the
simulation in epochs (``sim.run(until=next_barrier)``) and calls
:meth:`CheckpointManager.epoch` at each barrier, where the kernel is
between events and the world can be quiescent.  When a barrier lands
on a non-quiescent moment (a relocation mid-flight, a backup running),
the snapshot defers to the next epoch instead of failing the run.

Writes are atomic (tmp file + ``os.replace``) so a run killed mid-write
never leaves a truncated checkpoint, and retention keeps the newest N
so a year-long segmented campaign holds bounded disk.  Wall-clock cost
is accounted per checkpoint -- the overhead benchmark reads it back.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Mapping, Optional

from repro.persist.core import QuiescenceError
from repro.persist.site_state import snapshot_site

__all__ = ["CheckpointManager", "rss_mb"]


def rss_mb() -> float:
    """Resident set size of this process, in MiB (0.0 when the
    platform offers no ``resource`` module)."""
    try:
        import resource
    except ImportError:        # pragma: no cover - non-posix
        return 0.0
    ru = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # linux reports KiB, macOS bytes
    return ru / 1024.0 if ru < 1 << 32 else ru / (1024.0 * 1024.0)


class CheckpointManager:
    """Periodic quiescent snapshots of one site (plus harness extras)."""

    def __init__(self, site, directory: str, *,
                 every_hours: float = 24.0, retain: int = 3,
                 extras: Optional[Mapping[str, object]] = None,
                 label: str = "ckpt"):
        if every_hours <= 0:
            raise ValueError(
                f"every_hours must be positive, got {every_hours!r}")
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain!r}")
        self.site = site
        self.directory = directory
        self.every_hours = float(every_hours)
        self.retain = int(retain)
        self.extras = dict(extras or {})
        self.label = label
        self.written = 0
        self.deferred = 0
        self.last_path: Optional[str] = None
        self.last_hash: Optional[str] = None
        self.wall_seconds = 0.0
        self._last_at = site.sim.now
        os.makedirs(directory, exist_ok=True)

    # -- the barrier hook -----------------------------------------------------

    def due(self) -> bool:
        return (self.site.sim.now - self._last_at
                >= self.every_hours * 3600.0)

    def epoch(self, *, force: bool = False) -> Optional[str]:
        """Checkpoint if an epoch has elapsed (or ``force``).

        Returns the written path, or None (not due, or deferred on a
        non-quiescent barrier -- ``deferred`` counts those).
        """
        if not force and not self.due():
            return None
        t0 = time.perf_counter()
        try:
            snap = snapshot_site(self.site, extras=self.extras)
        except QuiescenceError:
            self.deferred += 1
            return None
        path = self._write(snap)
        self.wall_seconds += time.perf_counter() - t0
        self._last_at = self.site.sim.now
        self._prune()
        return path

    # -- files ----------------------------------------------------------------

    def _name(self) -> str:
        hours = self.site.sim.now / 3600.0
        return f"{self.label}-{hours:012.3f}h.json"

    def _write(self, snap: dict) -> str:
        path = os.path.join(self.directory, self._name())
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(snap, fh, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.written += 1
        self.last_path = path
        self.last_hash = snap["state_hash"]
        return path

    def checkpoints(self) -> List[str]:
        """Existing checkpoint paths for this label, oldest first."""
        try:
            names = sorted(n for n in os.listdir(self.directory)
                           if n.startswith(self.label + "-")
                           and n.endswith(".json"))
        except FileNotFoundError:
            return []
        return [os.path.join(self.directory, n) for n in names]

    def _prune(self) -> None:
        paths = self.checkpoints()
        for path in paths[:max(0, len(paths) - self.retain)]:
            os.remove(path)

    @staticmethod
    def load(path: str) -> dict:
        with open(path) as fh:
            return json.load(fh)

    @staticmethod
    def latest(directory: str, label: str = "ckpt") -> Optional[str]:
        try:
            names = sorted(n for n in os.listdir(directory)
                           if n.startswith(label + "-")
                           and n.endswith(".json"))
        except FileNotFoundError:
            return None
        return os.path.join(directory, names[-1]) if names else None

    def stats(self) -> Dict[str, float]:
        return {
            "written": self.written,
            "deferred": self.deferred,
            "wall_seconds": round(self.wall_seconds, 6),
            "rss_mb": round(rss_mb(), 1),
        }
