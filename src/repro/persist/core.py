"""The uniform persistence protocol.

A *snapshot* is a plain, strictly-JSON-serialisable dict: no live
objects, no tuples-as-keys, no ``inf``/``nan`` (components encode
sentinels as ``None`` before they reach this layer).  Identity between
two world states is therefore decidable by comparing canonical JSON --
the byte string :func:`canonical_json` produces -- and cheap to assert
via :func:`state_hash`.

Pending kernel events are never pickled.  A component that owns one
serialises its heap token ``[time, priority, seq]`` and re-arms it on
restore through :meth:`Simulator.schedule_exact`; ``claimed_seqs()``
declares ownership so the site walker can prove the whole heap is
accounted for.
"""

from __future__ import annotations

import hashlib
import json
from typing import List, Protocol, runtime_checkable

__all__ = ["FORMAT_VERSION", "Snapshottable", "QuiescenceError",
           "canonical_json", "state_hash"]

#: bump when any component's snapshot layout changes incompatibly
FORMAT_VERSION = 1


@runtime_checkable
class Snapshottable(Protocol):
    """What every stateful layer implements."""

    def snapshot_state(self) -> dict:
        """Logical state as a strictly-JSON-serialisable dict."""
        ...

    def restore_state(self, state: dict) -> None:
        """Overwrite this (freshly built) component from ``state``."""
        ...


class QuiescenceError(RuntimeError):
    """The world is not at a checkpointable barrier.

    Raised when a snapshot is attempted while some component holds
    in-flight work its snapshot cannot represent (open tracer spans,
    live relocations, unclaimed heap events).  The checkpoint manager
    treats this as "defer to the next epoch", not as failure.
    """


def canonical_json(state: dict) -> str:
    """The canonical byte-comparable rendering of a snapshot.

    ``allow_nan=False`` is the contract tripwire: a component that
    leaks ``inf``/``nan`` into its state dict fails here, at snapshot
    time, instead of producing a checkpoint another json parser cannot
    read back.
    """
    return json.dumps(state, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def state_hash(state: dict) -> str:
    """sha256 of the canonical JSON -- the checkpoint's content hash."""
    return hashlib.sha256(canonical_json(state).encode("utf-8")).hexdigest()


def claimed_of(component) -> List[int]:
    """A component's claimed pending-event seqs ([] when it has none)."""
    fn = getattr(component, "claimed_seqs", None)
    return list(fn()) if fn is not None else []
