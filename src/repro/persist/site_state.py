"""Whole-site snapshot/restore.

:func:`snapshot_site` walks every stateful layer of a built
:class:`~repro.experiments.site.Site` and returns one strictly-JSON
dict; :func:`restore_site` rebuilds the same site fresh (via
:func:`~repro.experiments.site.build_site`, which is deterministic),
wipes its schedule, and overwrites every layer from the snapshot,
re-arming each pending event at its exact saved heap token.  The two
are inverses: a restored world produces byte-identical summaries,
decision logs and coverage signatures to the world that never stopped.

Two safety rails make that claim checkable rather than hopeful:

- **claimed-event coverage** -- every live heap event must be claimed
  by exactly one component's ``claimed_seqs()``.  An unclaimed event
  means some layer scheduled work the snapshot cannot carry across;
  the snapshot is refused (:class:`QuiescenceError`) instead of
  silently dropping the event.
- **quiescence predicates** -- in-flight relocations, open tracer
  spans, live batch jobs and in-progress DB backups have no
  serialisable representation; snapshots are only legal at barriers
  where none exist.  The checkpoint manager defers to the next epoch
  when one trips.

Checkpointable configurations run with the overnight workload and the
market feeds off: both drive generator processes whose continuations
live in Python frames, which this layer deliberately refuses to pickle.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, List, Mapping, Optional

from repro.persist.core import (FORMAT_VERSION, QuiescenceError, claimed_of,
                                state_hash)

__all__ = ["snapshot_site", "restore_site"]


# -- quiescence --------------------------------------------------------------

def _check_quiescent(site, extras: Mapping[str, object]) -> None:
    """All the reasons a snapshot must be refused, with names."""
    cfg = site.config
    if cfg.with_workload or cfg.with_feeds:
        raise QuiescenceError(
            "checkpointable configurations need with_workload=False and "
            "with_feeds=False (their generator processes cannot be "
            "serialised)")
    tracer = site.sim.tracer
    if getattr(tracer, "_stack", None):
        raise QuiescenceError(
            f"{len(tracer._stack)} tracer span(s) still open")
    if site.relocator is not None and site.relocator.active:
        raise QuiescenceError(
            f"relocations in flight: {sorted(site.relocator.active)}")
    if site.lsf.pending or site.lsf.running:
        raise QuiescenceError(
            f"batch jobs on the books (pending={len(site.lsf.pending)} "
            f"running={len(site.lsf.running)})")
    for db in site.databases:
        if getattr(db, "active_jobs", None):
            raise QuiescenceError(
                f"{db.host.name}/{db.name} has attached batch jobs")


def _coverage_check(site, claimed: Dict[int, str]) -> None:
    """Every live heap event must be claimed by exactly one owner."""
    unclaimed = []
    for ev in site.sim.live_events():
        if ev.seq not in claimed:
            fn = getattr(ev.fn, "__qualname__", repr(ev.fn))
            unclaimed.append(f"seq={ev.seq} t={ev.time:.3f} fn={fn}")
    if unclaimed:
        raise QuiescenceError(
            "unclaimed pending events (no component owns their "
            "re-arm): " + "; ".join(unclaimed[:8])
            + (f" ... +{len(unclaimed) - 8} more"
               if len(unclaimed) > 8 else ""))


def _claim(claimed: Dict[int, str], owner: str, seqs: List[int]) -> None:
    for seq in seqs:
        prev = claimed.get(seq)
        if prev is not None:
            raise QuiescenceError(
                f"event seq {seq} claimed twice: by {prev} and {owner}")
        claimed[seq] = owner


# -- the component walk -------------------------------------------------------

def _tracer_of(site):
    from repro.trace.tracer import NULL_TRACER
    tracer = site.sim.tracer
    return None if tracer is NULL_TRACER else tracer


def snapshot_site(site, *, extras: Optional[Mapping[str, object]] = None
                  ) -> dict:
    """One dict for the whole world.

    ``extras`` adds harness-owned components (fault injector, downtime
    ledger, traffic engine, ...) by name; each must be Snapshottable
    and participates in claimed-event coverage when it owns events.
    The same names must be passed to :func:`restore_site`.
    """
    extras = dict(extras or {})
    _check_quiescent(site, extras)

    claimed: Dict[int, str] = {}
    state: dict = {
        "format": FORMAT_VERSION,
        "config": asdict(site.config),
        "kernel": site.sim.snapshot_state(),
        "rng": site.streams.getstate(),
    }

    tracer = _tracer_of(site)
    state["tracer"] = tracer.snapshot_state() if tracer is not None else None

    state["lans"] = {name: lan.snapshot_state()
                     for name, lan in sorted(site.dc.lans.items())}
    hosts: Dict[str, dict] = {}
    apps: Dict[str, Dict[str, dict]] = {}
    for name, host in sorted(site.dc.hosts.items()):
        hosts[name] = host.snapshot_state()
        _claim(claimed, f"host:{name}", host.claimed_seqs())
        apps[name] = {}
        for app_name, app in sorted(host.apps.items()):
            apps[name][app_name] = app.snapshot_state()
            _claim(claimed, f"app:{name}/{app_name}", app.claimed_seqs())
    state["hosts"] = hosts
    state["apps"] = apps

    state["nameservice"] = site.nameservice.snapshot_state()
    state["channel"] = site.channel.snapshot_state()
    state["pool"] = site.pool.snapshot_state()
    state["notifications"] = site.notifications.snapshot_state()

    state["lsf"] = site.lsf.snapshot_state()
    _claim(claimed, "lsf", site.lsf.claimed_seqs())

    state["services"] = {svc.name: svc.snapshot_state()
                         for svc in site.services}

    state["suites"] = {}
    for name, suite in sorted(site.suites.items()):
        state["suites"][name] = suite.snapshot_state()
        _claim(claimed, f"suite:{name}", suite.claimed_seqs())

    state["ledger"] = (site.ledger.snapshot_state()
                       if site.ledger is not None else None)
    state["admin"] = (site.admin.snapshot_state()
                      if site.admin is not None else None)
    state["jobmgr"] = (site.jobmgr.snapshot_state()
                       if site.jobmgr is not None else None)

    state["spares"] = (site.spares.snapshot_state()
                       if site.spares is not None else None)
    state["relocator"] = (site.relocator.snapshot_state()
                          if site.relocator is not None else None)
    state["reroute"] = (site.reroute.snapshot_state()
                        if site.reroute is not None else None)

    state["telemetry"] = (site.telemetry.snapshot_state()
                          if site.telemetry is not None else None)
    if site.telemetry is not None:
        _claim(claimed, "telemetry", site.telemetry.claimed_seqs())
    state["alerts"] = (site.alerts.snapshot_state()
                       if site.alerts is not None else None)

    state["extras"] = {}
    for name, comp in sorted(extras.items()):
        state["extras"][name] = comp.snapshot_state()
        _claim(claimed, f"extra:{name}", claimed_of(comp))

    _coverage_check(site, claimed)
    state["state_hash"] = state_hash(
        {k: v for k, v in state.items() if k != "state_hash"})
    return state


def restore_site(snapshot: dict, *, site=None,
                 extras: Optional[Mapping[str, object]] = None):
    """Rebuild the snapshotted world and return the restored Site.

    Without ``site``, a fresh one is built from the snapshot's config
    (the caller then wires its own harness around the result *before*
    restoring extras -- pass the pre-built site and the extras mapping
    in that case).  The fresh world's schedule is wiped and every
    pending event re-armed at its exact saved token, so the first event
    the resumed run pops is the one the snapshotted run would have
    popped next.
    """
    if snapshot.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format {snapshot.get('format')!r} != "
            f"supported {FORMAT_VERSION}")
    extras = dict(extras or {})
    missing = set(snapshot.get("extras", {})) - set(extras)
    if missing:
        raise KeyError(
            f"snapshot carries extras {sorted(missing)} with no restore "
            f"target supplied")

    if site is None:
        from repro.experiments.site import SiteConfig, build_site
        site = build_site(SiteConfig(**snapshot["config"]))
    else:
        if asdict(site.config) != snapshot["config"]:
            raise ValueError(
                "supplied site was built from a different config than "
                "the snapshot's")

    sim = site.sim
    sim.restore_state(snapshot["kernel"])
    sim.clear_events()
    site.streams.setstate(snapshot["rng"])

    if snapshot["tracer"] is not None:
        tracer = _tracer_of(site)
        if tracer is None:
            from repro.trace import install_tracer
            tracer = install_tracer(sim)
        tracer.restore_state(snapshot["tracer"])

    for name, lan_state in snapshot["lans"].items():
        site.dc.lans[name].restore_state(lan_state)
    saved_hosts = set(snapshot["hosts"])
    built_hosts = set(site.dc.hosts)
    if saved_hosts != built_hosts:
        raise KeyError(
            f"host set mismatch: snapshot-only={sorted(saved_hosts - built_hosts)} "
            f"build-only={sorted(built_hosts - saved_hosts)}")
    for name in sorted(saved_hosts):
        site.dc.hosts[name].restore_state(snapshot["hosts"][name])
    for name, app_states in snapshot["apps"].items():
        host = site.dc.hosts[name]
        if set(app_states) != set(host.apps):
            raise KeyError(
                f"{name}: app set mismatch (snapshot "
                f"{sorted(app_states)} vs built {sorted(host.apps)})")
        for app_name, app_state in app_states.items():
            host.apps[app_name].restore_state(app_state)

    site.nameservice.restore_state(snapshot["nameservice"])
    site.channel.restore_state(snapshot["channel"])
    site.pool.restore_state(snapshot["pool"])
    site.notifications.restore_state(snapshot["notifications"])
    site.lsf.restore_state(snapshot["lsf"])

    by_name = {svc.name: svc for svc in site.services}
    for name, svc_state in snapshot["services"].items():
        by_name[name].restore_state(svc_state)

    if set(snapshot["suites"]) != set(site.suites):
        raise KeyError("suite set mismatch between snapshot and build")
    for name, suite_state in snapshot["suites"].items():
        site.suites[name].restore_state(suite_state)

    if snapshot["ledger"] is not None:
        site.ledger.restore_state(snapshot["ledger"])
    if snapshot["admin"] is not None:
        site.admin.restore_state(snapshot["admin"])
    if snapshot["jobmgr"] is not None:
        site.jobmgr.restore_state(snapshot["jobmgr"])
    if snapshot["spares"] is not None:
        site.spares.restore_state(snapshot["spares"])
    if snapshot["relocator"] is not None:
        site.relocator.restore_state(snapshot["relocator"])
    if snapshot["reroute"] is not None:
        site.reroute.restore_state(snapshot["reroute"])
    if snapshot["telemetry"] is not None:
        site.telemetry.restore_state(snapshot["telemetry"])
    if snapshot["alerts"] is not None:
        site.alerts.restore_state(snapshot["alerts"])

    for name, comp_state in snapshot.get("extras", {}).items():
        extras[name].restore_state(comp_state)

    # the re-armed heap must be exactly the claimed set the snapshot
    # covered -- anything else means a restore path scheduled fresh work
    live = sorted(ev.seq for ev in sim.live_events())
    claimed: Dict[int, str] = {}
    for name, host in site.dc.hosts.items():
        _claim(claimed, f"host:{name}", host.claimed_seqs())
        for app_name, app in host.apps.items():
            _claim(claimed, f"app:{name}/{app_name}", app.claimed_seqs())
    _claim(claimed, "lsf", site.lsf.claimed_seqs())
    for name, suite in site.suites.items():
        _claim(claimed, f"suite:{name}", suite.claimed_seqs())
    if site.telemetry is not None:
        _claim(claimed, "telemetry", site.telemetry.claimed_seqs())
    for name, comp in extras.items():
        _claim(claimed, f"extra:{name}", claimed_of(comp))
    if live != sorted(claimed):
        raise QuiescenceError(
            f"restored heap does not match claims: live={live[:12]} "
            f"claimed={sorted(claimed)[:12]}")
    return site
