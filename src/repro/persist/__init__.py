"""Epoch checkpoint/restore across the world state.

Every stateful layer of the reproduction exposes the
:class:`~repro.persist.core.Snapshottable` pair --
``snapshot_state() -> dict`` / ``restore_state(state)`` -- plus, for
components that own pending kernel events, ``claimed_seqs()``.  This
package assembles those per-component protocols into whole-world
checkpoints:

- :mod:`repro.persist.core` -- the protocol, the canonical-JSON state
  hash, and :class:`~repro.persist.core.QuiescenceError`.
- :mod:`repro.persist.site_state` -- :func:`snapshot_site` /
  :func:`restore_site`: walk a built :class:`~repro.experiments.site.Site`
  section by section, verifying that *every* live heap event is claimed
  by exactly one component before a checkpoint is allowed, and re-arm
  pending events at their exact ``(time, priority, seq)`` tokens on
  restore so a resumed run is byte-identical to the monolithic one.
- :mod:`repro.persist.checkpoint` -- :class:`CheckpointManager`: epoch
  barriers between run segments, atomic writes, retention, and the
  deferred-barrier policy for non-quiescent moments.
"""

from repro.persist.core import (FORMAT_VERSION, QuiescenceError,
                                Snapshottable, canonical_json, state_hash)
from repro.persist.site_state import restore_site, snapshot_site
from repro.persist.federation_state import (restore_federation,
                                            snapshot_federation)
from repro.persist.checkpoint import CheckpointManager

__all__ = [
    "FORMAT_VERSION", "QuiescenceError", "Snapshottable",
    "canonical_json", "state_hash",
    "snapshot_site", "restore_site",
    "snapshot_federation", "restore_federation",
    "CheckpointManager",
]
