"""Per-key deadline tracking (the staleness wheel).

The paper's watchdog signal is the *absence* of flags: an agent whose
freshest flag is older than the watch period is stale.  The full-scan
watchdog re-derives that by reading every flag directory every sweep;
the wheel derives it from the same ledger deltas -- each flag condition
advances its agent's deadline, and a sweep asks only "which keys are
at or past their deadline *now*?", which is O(newly due), not O(site).

A key that comes due stays in the due set until a later deadline moves
it back to the future (flags resumed), mirroring how a stale agent
stays stale in the full scan until it actually flags again.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Set, Tuple

__all__ = ["DeadlineWheel"]


class DeadlineWheel:
    """A lazy-deletion heap of (deadline, key) with a sticky due-set."""

    def __init__(self):
        self._deadline: Dict[Hashable, float] = {}
        self._heap: List[Tuple[float, int, Hashable]] = []
        self._due: Set[Hashable] = set()
        self._push_seq = 0

    def __len__(self) -> int:
        return len(self._deadline)

    def set_deadline(self, key: Hashable, deadline: float) -> None:
        """(Re)arm ``key``; a fresher deadline rescues a due key."""
        self._deadline[key] = deadline
        self._due.discard(key)
        self._push_seq += 1
        heapq.heappush(self._heap, (deadline, self._push_seq, key))

    def deadline_of(self, key: Hashable) -> float:
        return self._deadline.get(key, float("inf"))

    def drop(self, key: Hashable) -> None:
        self._deadline.pop(key, None)
        self._due.discard(key)

    def due(self, now: float) -> Set[Hashable]:
        """Keys whose current deadline is <= ``now``.  Pops newly due
        entries off the heap (skipping stale rescheduled ones) and
        returns the sticky due-set; callers must not mutate it."""
        heap = self._heap
        while heap and heap[0][0] <= now:
            deadline, _seq, key = heapq.heappop(heap)
            if self._deadline.get(key) == deadline:
                self._due.add(key)
            # else: rescheduled since this entry was pushed -- lazy drop
        return self._due

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Deadlines and the sticky due-set; keys are serialised as
        lists (the control plane keys on ``(host, agent)`` tuples).
        The heap itself is derived state: lazy deletion means only the
        entry matching ``_deadline[key]`` is ever believed, so a heap
        rebuilt from the live deadlines is behaviour-identical."""
        return {
            "deadlines": [[list(k), d]
                          for k, d in sorted(self._deadline.items())],
            "due": [list(k) for k in sorted(self._due)],
        }

    def restore_state(self, state: dict) -> None:
        self._deadline = {tuple(k): float(d)
                          for k, d in state["deadlines"]}
        self._due = {tuple(k) for k in state["due"]}
        self._heap = []
        self._push_seq = 0
        for key, deadline in sorted(self._deadline.items(),
                                    key=lambda kv: (kv[1], kv[0])):
            self._push_seq += 1
            self._heap.append((deadline, self._push_seq, key))
        heapq.heapify(self._heap)

    def __repr__(self) -> str:   # pragma: no cover - debug aid
        return (f"<DeadlineWheel keys={len(self._deadline)} "
                f"due={len(self._due)}>")
