"""The incremental control plane.

One shared, versioned **condition ledger** per site replaces the four
re-implemented full-rescan loops (admin flag sweep, DGSPL rebuild,
reroute refresh, front-door shed checks) with change-event consumption:
producers append typed :class:`Condition` deltas, consumers read only
entries newer than their last-seen version.  Staleness -- the paper's
"absence of flags" signal -- is detected by a :class:`DeadlineWheel`
fed from the same ledger, so the semantics of the polling design are
preserved while the per-cycle cost drops from O(site) to O(changes).
"""

from repro.controlplane.deadline import DeadlineWheel
from repro.controlplane.ledger import (Condition, ConditionLedger,
                                       LedgerCursor, watch_host)

__all__ = ["Condition", "ConditionLedger", "LedgerCursor",
           "DeadlineWheel", "watch_host"]
