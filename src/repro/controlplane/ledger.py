"""The versioned condition ledger.

An evolving model of the deployment, updated by change events rather
than repeated whole-world probes: every flag raise, DLSP arrival, host
state transition and route change appends one typed
:class:`Condition` carrying a monotonic version.  Consumers either

- hold a :class:`LedgerCursor` and *pull* everything newer than their
  last-seen version (the administration servers' sweep), or
- register a *push* listener invoked synchronously at append time
  (front doors and the reroute directory, which must react within one
  delivery, not at the next refresh).

The ledger keeps a bounded backlog: entries every cursor has consumed
are trimmed eagerly, and if a consumer stops polling the backlog is
force-trimmed at ``maxlen`` -- the lagging cursor then reports an
**overrun** on its next poll so its owner knows to resynchronise from
the ground truth (one full rescan) instead of silently missing deltas.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import Callable, Dict, List, Optional, Set, Tuple

__all__ = ["Condition", "ConditionLedger", "LedgerCursor", "watch_host"]

#: condition kinds appended by the current producers
KINDS = ("flag", "dlsp", "host", "route", "wake", "alert")


@dataclass(frozen=True)
class Condition:
    """One typed delta in the site's evolving model."""

    version: int
    kind: str           # "flag" | "dlsp" | "host" | "route" | "wake"
    host: str
    agent: str = ""     # flag: agent name; route: app name
    status: str = ""    # flag status / "up"/"down" / "drain"/"cutover"
    time: float = 0.0   # producer's sim-time stamp
    detail: str = ""

    def key(self) -> Tuple[str, str]:
        return (self.host, self.agent)


class LedgerCursor:
    """One consumer's read position."""

    def __init__(self, ledger: "ConditionLedger", name: str):
        self.ledger = ledger
        self.name = name
        self.last_seen = ledger.version
        self.polls = 0
        self.consumed = 0
        self.overruns = 0

    def poll(self) -> Tuple[List[Condition], bool]:
        """Everything newer than ``last_seen``, plus an overrun flag.

        An overrun means the ledger was force-trimmed past this cursor:
        some deltas are gone and the consumer must resynchronise from
        ground truth before trusting its model again.
        """
        self.polls += 1
        overrun = self.last_seen < self.ledger.floor
        if overrun:
            self.overruns += 1
        fresh = self.ledger.read_since(self.last_seen)
        self.last_seen = self.ledger.version
        self.consumed += len(fresh)
        self.ledger._trim()
        return fresh, overrun

    def __repr__(self) -> str:   # pragma: no cover - debug aid
        return (f"<LedgerCursor {self.name} last_seen={self.last_seen} "
                f"consumed={self.consumed}>")


class ConditionLedger:
    """Per-site append-only log of conditions with monotonic versions."""

    def __init__(self, maxlen: int = 1 << 18):
        self.maxlen = int(maxlen)
        self._entries: deque = deque()
        #: version of the newest appended condition (0 = none yet)
        self.version = 0
        #: versions <= floor have been trimmed away
        self.floor = 0
        self._cursors: List[LedgerCursor] = []
        self._push: List[Callable[[Condition], None]] = []
        #: hosts with at least one condition, by kind, since the given
        #: version -- the dirty-set view consumers use to scope work
        self.appended = 0
        self.trimmed = 0
        self.push_errors = 0

    # -- producing -----------------------------------------------------------

    def append(self, kind: str, host: str, *, agent: str = "",
               status: str = "", time: float = 0.0,
               detail: str = "") -> Condition:
        if kind not in KINDS:
            raise ValueError(f"unknown condition kind {kind!r}")
        self.version += 1
        cond = Condition(self.version, kind, host, agent, status, time,
                         detail)
        self._entries.append(cond)
        self.appended += 1
        if len(self._entries) > self.maxlen:
            self._force_trim()
        for fn in self._push:
            try:
                fn(cond)
            except Exception:
                # a broken listener must not break the producer (a flag
                # raise ought never fail because a console display died)
                self.push_errors += 1
        return cond

    # -- consuming -----------------------------------------------------------

    def subscribe(self, name: str) -> LedgerCursor:
        """A pull consumer starting at the current version."""
        cursor = LedgerCursor(self, name)
        self._cursors.append(cursor)
        return cursor

    def on_append(self, fn: Callable[[Condition], None]) -> None:
        """A push listener called synchronously on every append."""
        self._push.append(fn)

    def read_since(self, version: int) -> List[Condition]:
        """All retained conditions with version > ``version`` --
        O(changes), never O(history): the deque only holds what some
        cursor has not consumed yet."""
        if version >= self.version:
            return []
        start = max(0, version - self.floor)
        if start == 0:
            return list(self._entries)
        return list(islice(self._entries, start, None))

    def dirty_hosts_since(self, version: int,
                          kind: Optional[str] = None) -> Set[str]:
        """The dirty-set view: hosts touched since ``version``."""
        return {c.host for c in self.read_since(version)
                if kind is None or c.kind == kind}

    def backlog(self) -> int:
        return len(self._entries)

    # -- trimming ------------------------------------------------------------

    def _min_cursor(self) -> int:
        if not self._cursors:
            return self.version
        return min(c.last_seen for c in self._cursors)

    def _trim(self) -> None:
        """Drop entries every cursor has consumed."""
        target = self._min_cursor()
        while self._entries and self._entries[0].version <= target:
            self._entries.popleft()
            self.trimmed += 1
        self.floor = (self._entries[0].version - 1 if self._entries
                      else self.version)

    def _force_trim(self) -> None:
        """Backlog cap blown: drop the oldest half regardless of
        cursors.  Lagging cursors will observe the overrun."""
        drop = len(self._entries) // 2
        for _ in range(drop):
            self._entries.popleft()
            self.trimmed += 1
        self.floor = (self._entries[0].version - 1 if self._entries
                      else self.version)

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Entries, version watermarks and every cursor's position.
        Push listeners are structural (re-wired at rebuild)."""
        names = [c.name for c in self._cursors]
        if len(set(names)) != len(names):
            raise ValueError(
                f"cannot snapshot ledger with duplicate cursor names: "
                f"{sorted(names)}")
        return {
            "maxlen": self.maxlen,
            "version": self.version,
            "floor": self.floor,
            "appended": self.appended,
            "trimmed": self.trimmed,
            "push_errors": self.push_errors,
            "entries": [[c.version, c.kind, c.host, c.agent, c.status,
                         c.time, c.detail] for c in self._entries],
            "cursors": {c.name: [c.last_seen, c.polls, c.consumed,
                                 c.overruns] for c in self._cursors},
        }

    def restore_state(self, state: dict) -> None:
        self.maxlen = int(state["maxlen"])
        self.version = int(state["version"])
        self.floor = int(state["floor"])
        self.appended = int(state["appended"])
        self.trimmed = int(state["trimmed"])
        self.push_errors = int(state["push_errors"])
        self._entries = deque(
            Condition(int(v), kind, host, agent, status, float(t), detail)
            for v, kind, host, agent, status, t, detail in state["entries"])
        saved = state["cursors"]
        names = {c.name for c in self._cursors}
        if set(saved) != names:
            raise KeyError(
                f"ledger snapshot cursors {sorted(saved)} != rebuilt "
                f"cursors {sorted(names)}")
        for c in self._cursors:
            last_seen, polls, consumed, overruns = saved[c.name]
            c.last_seen = int(last_seen)
            c.polls = int(polls)
            c.consumed = int(consumed)
            c.overruns = int(overruns)

    def __repr__(self) -> str:   # pragma: no cover - debug aid
        return (f"<ConditionLedger v{self.version} "
                f"backlog={len(self._entries)} "
                f"cursors={len(self._cursors)}>")


def watch_host(ledger: ConditionLedger, host) -> None:
    """Publish a host's up/down transitions as conditions.  (The
    administration servers do this for every registered suite; this
    helper covers ledger consumers running without an admin pair.)"""
    host.down_signal.subscribe(
        lambda reason, h=host: ledger.append(
            "host", h.name, status="down", time=h.sim.now,
            detail=str(reason or "")))
    host.up_signal.subscribe(
        lambda _v, h=host: ledger.append(
            "host", h.name, status="up", time=h.sim.now))
