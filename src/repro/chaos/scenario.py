"""The chaos scenario DSL.

A :class:`Scenario` is a small, declarative program against a live
site: a list of timed :class:`ChaosEvent`\\ s, each naming an
operation (a fault kind from the injector's structured
:data:`~repro.faults.injector.FAULT_CATALOG`, or one of the repair /
host-power ops below) and an *abstract* target selector that is
resolved against whatever site the episode builds.  Scenarios are
therefore site-independent, deterministic, and JSON round-trippable --
the committed corpus under ``tests/corpus/`` is nothing but these
files.

Target selectors
    ``db[i]`` ``fe[i]`` ``web[i]``          application pools
    ``dbhost[i]`` ``tphost[i]`` ``fehost[i]`` ``sphost[i]``
    ``admhost[i]``                          host pools (by group)
    ``lan[i]``                              public LAN segments
    ``dns`` ``lsf``                         singletons
    ``wan[i]``                              a federated site's leased
                                            lines (multi-site only)

Indices wrap modulo the pool size, so a scenario written against a
large site still resolves on a test-scale one.  Multi-site scenarios
(``sites > 1``) may scope any selector to one datacentre with a
``site:`` prefix -- ``nyc:dbhost[0]`` -- which single-site episodes
simply ignore.

Compositions the builders cover: correlated cascades, gray
failures/flapping, partitions with fault overlays, adversarial timing
against the adaptive wake policy's backoff windows, retry/notification
storms, host loss with relocation, and admin-head failover.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.faults.injector import FAULT_CATALOG

__all__ = ["ChaosEvent", "Scenario", "OPS", "TARGET_POOLS", "BUILDERS",
           "build_corpus", "random_scenario", "parse_target",
           "split_site", "make_target"]

#: wake-policy constants the adversarial-timing builders aim at
WAKE_BASE = 300.0
WAKE_MAX = 1800.0
WAKE_GRACE = 300.0

#: hard caps keeping fuzzed scenarios executable
MAX_EVENTS = 64
MIN_HORIZON = 1800.0
MAX_HORIZON = 12 * 3600.0

#: repair / power operations that are not injector faults
REPAIR_OPS: Dict[str, str] = {
    "lan-repair": "lan",
    "nic-repair": "host",
    "dns-repair": "nameservice",
    "host-crash": "host",
    "host-boot": "host",
    "wan-repair": "wan",
}

#: op name -> required target kind ("database"/"app"/"host"/"lan"/...)
OPS: Dict[str, str] = {s.kind: s.target for s in FAULT_CATALOG}
OPS.update(REPAIR_OPS)

#: selector pool -> the target kinds it satisfies
TARGET_POOLS: Dict[str, Tuple[str, ...]] = {
    "db": ("database", "app"),
    "fe": ("app",),
    "web": ("app",),
    "dbhost": ("host",),
    "tphost": ("host",),
    "fehost": ("host",),
    "sphost": ("host",),
    "admhost": ("host",),
    "lan": ("lan",),
    "dns": ("nameservice",),
    "lsf": ("scheduler",),
    "wan": ("wan",),
}

#: pools eligible per target kind (for generation/retargeting)
POOLS_FOR_KIND: Dict[str, Tuple[str, ...]] = {
    "database": ("db",),
    "app": ("db", "fe", "web"),
    "host": ("dbhost", "tphost", "fehost", "admhost"),
    "lan": ("lan",),
    "nameservice": ("dns",),
    "scheduler": ("lsf",),
    "wan": ("wan",),
}


def split_site(selector: str) -> Tuple[Optional[str], str]:
    """``"nyc:db[0]"`` -> ``("nyc", "db[0]")``; an unscoped selector
    returns ``(None, selector)``.  Site scoping only means something to
    multi-site scenarios; single-site episodes ignore the prefix."""
    sel = selector.strip()
    if ":" in sel:
        site, _, rest = sel.partition(":")
        return site, rest
    return None, sel


def parse_target(selector: str) -> Tuple[str, int]:
    """``"db[3]"`` -> ``("db", 3)``; bare ``"dns"`` -> ``("dns", 0)``.
    Any site scope is stripped first (see :func:`split_site`)."""
    _site, sel = split_site(selector)
    if sel.endswith("]") and "[" in sel:
        pool, _, idx = sel[:-1].partition("[")
        if not idx.isdigit():
            raise ValueError(f"bad target selector {selector!r}")
        return pool, int(idx)
    return sel, 0


def make_target(pool: str, index: int) -> str:
    return pool if pool in ("dns", "lsf") else f"{pool}[{index}]"


@dataclass(frozen=True)
class ChaosEvent:
    """One timed operation against one abstract target."""

    time: float
    op: str
    target: str
    #: immutable (key, value) pairs -- e.g. (("fraction", 0.99),)
    params: Tuple[Tuple[str, object], ...] = ()

    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def validate(self) -> None:
        if self.time < 0.0:
            raise ValueError(f"event time must be >= 0: {self.time!r}")
        kind = OPS.get(self.op)
        if kind is None:
            raise ValueError(f"unknown op {self.op!r}")
        pool, idx = parse_target(self.target)
        kinds = TARGET_POOLS.get(pool)
        if kinds is None:
            raise ValueError(f"unknown target pool {pool!r} "
                             f"in {self.target!r}")
        if kind not in kinds:
            raise ValueError(
                f"op {self.op!r} needs a {kind} target, but "
                f"{self.target!r} is a {'/'.join(kinds)} selector")
        if idx < 0:
            raise ValueError(f"negative target index in {self.target!r}")

    def to_dict(self) -> dict:
        d: dict = {"time": self.time, "op": self.op,
                   "target": self.target}
        if self.params:
            d["params"] = {k: v for k, v in self.params}
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "ChaosEvent":
        params = tuple(sorted((str(k), v)
                              for k, v in dict(d.get("params", {})).items()))
        return cls(time=float(d["time"]), op=str(d["op"]),
                   target=str(d["target"]), params=params)


@dataclass
class Scenario:
    """A named, seeded, bounded chaos program."""

    name: str
    events: List[ChaosEvent] = field(default_factory=list)
    horizon: float = 4 * 3600.0
    #: site seed (build layout + every named random stream)
    seed: int = 0
    notes: str = ""
    #: how many federated sites the episode builds; 1 = the classic
    #: single-site world (and the field is omitted from the JSON, so
    #: the committed single-site corpus stays byte-identical)
    sites: int = 1

    # -- hygiene -------------------------------------------------------------

    def normalized(self) -> "Scenario":
        """Sorted events, clamped horizon, capped length -- the
        canonical form every mutation passes through."""
        horizon = min(MAX_HORIZON, max(MIN_HORIZON, float(self.horizon)))
        events = sorted(self.events,
                        key=lambda e: (e.time, e.op, e.target))[:MAX_EVENTS]
        events = [replace(e, time=min(max(0.0, e.time), horizon - 1.0))
                  for e in events]
        return Scenario(name=self.name, events=events, horizon=horizon,
                        seed=int(self.seed), notes=self.notes,
                        sites=int(self.sites))

    def validate(self) -> None:
        """Raise ValueError on any malformed field."""
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.sites < 1:
            raise ValueError(f"sites must be >= 1: {self.sites!r}")
        if not (MIN_HORIZON <= self.horizon <= MAX_HORIZON):
            raise ValueError(f"horizon {self.horizon!r} outside "
                             f"[{MIN_HORIZON}, {MAX_HORIZON}]")
        if len(self.events) > MAX_EVENTS:
            raise ValueError(f"too many events ({len(self.events)} > "
                             f"{MAX_EVENTS})")
        last = 0.0
        for ev in self.events:
            ev.validate()
            if ev.time >= self.horizon:
                raise ValueError(f"event at {ev.time} beyond horizon "
                                 f"{self.horizon}")
            if ev.time < last:
                raise ValueError("events not time-sorted; call "
                                 "normalized() first")
            last = ev.time

    # -- identity ------------------------------------------------------------

    @property
    def scenario_id(self) -> str:
        """Stable content id: name plus a crc of the canonical JSON."""
        return f"{self.name}#{zlib.crc32(self.to_json().encode()):08x}"

    # -- JSON round-trip -----------------------------------------------------

    def to_dict(self) -> dict:
        d = {
            "name": self.name,
            "seed": self.seed,
            "horizon": self.horizon,
            "notes": self.notes,
            "events": [e.to_dict() for e in self.events],
        }
        if self.sites != 1:
            d["sites"] = self.sites
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "Scenario":
        return cls(name=str(d["name"]),
                   events=[ChaosEvent.from_dict(e)
                           for e in d.get("events", ())],
                   horizon=float(d.get("horizon", 4 * 3600.0)),
                   seed=int(d.get("seed", 0)),
                   notes=str(d.get("notes", "")),
                   sites=int(d.get("sites", 1)))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))


# -- builders: the committed corpus ---------------------------------------------


def _sc(name: str, events: Iterable[ChaosEvent], *, horizon: float,
        seed: int = 0, notes: str = "", sites: int = 1) -> Scenario:
    s = Scenario(name=name, events=list(events), horizon=horizon,
                 seed=seed, notes=notes, sites=sites).normalized()
    s.validate()
    return s


def cascade(seed: int = 0) -> Scenario:
    """Correlated failure chain: the backend database dies, then the
    services depending on it topple one by one."""
    return _sc("cascade", [
        ChaosEvent(1200.0, "db-crash", "db[0]"),
        ChaosEvent(1380.0, "app-crash", "fe[0]"),
        ChaosEvent(1500.0, "app-crash", "web[0]"),
        ChaosEvent(1680.0, "app-hang", "fe[1]"),
    ], horizon=3 * 3600.0, seed=seed,
        notes="dependency cascade off one backend crash")


def flap(seed: int = 0) -> Scenario:
    """Gray failure: one host's NIC flaps -- fail/repair cycles faster
    than the watchdog period, never cleanly down."""
    events = []
    t = 1500.0
    for _ in range(4):
        events.append(ChaosEvent(t, "nic-fail", "tphost[0]"))
        events.append(ChaosEvent(t + 240.0, "nic-repair", "tphost[0]"))
        t += 700.0
    return _sc("flap", events, horizon=3 * 3600.0, seed=seed,
               notes="NIC flapping under the watchdog period")


def partition_fault(seed: int = 0) -> Scenario:
    """Network partition with a fault overlay: one public LAN drops,
    services break *during* the partition, then the LAN heals."""
    return _sc("partition-fault", [
        ChaosEvent(1800.0, "lan-fail", "lan[0]"),
        ChaosEvent(2100.0, "app-crash", "fe[0]"),
        ChaosEvent(2400.0, "db-crash", "db[1]"),
        ChaosEvent(4200.0, "lan-repair", "lan[0]"),
    ], horizon=4 * 3600.0, seed=seed,
        notes="faults injected while a LAN segment is dark")


def wake_adversarial(seed: int = 0) -> Scenario:
    """Adversarial timing against the adaptive wake policy: a long
    quiet stretch lets every agent back off to its maximum period,
    then agents are silenced exactly when the staleness gap is widest."""
    deep = WAKE_BASE  # 300 -> 600 -> 1200 -> 1800 takes ~2100 s clean
    quiet_until = 2 * (deep + 2 * deep + 4 * deep)  # comfortably past it
    return _sc("wake-adversarial", [
        ChaosEvent(quiet_until, "cron-death", "dbhost[0]"),
        ChaosEvent(quiet_until + 900.0, "cron-death", "tphost[1]"),
    ], horizon=4 * 3600.0, seed=seed,
        notes="agent silence landed after deep wake backoff")


def retry_storm(seed: int = 0) -> Scenario:
    """Many user-facing services fail within minutes -- the
    notification-storm and escalation-ordering pressure test."""
    events = []
    for i in range(4):
        events.append(ChaosEvent(1800.0 + 60.0 * i, "app-crash",
                                 f"fe[{i}]"))
        events.append(ChaosEvent(1830.0 + 60.0 * i, "app-crash",
                                 f"web[{i}]"))
    return _sc("retry-storm", events, horizon=3 * 3600.0, seed=seed,
               notes="burst failure of every user-facing tier")


def host_loss(seed: int = 0) -> Scenario:
    """Whole-host loss and late return: exercises relocation onto the
    spare pool and the escalate/clear latch."""
    return _sc("host-loss", [
        ChaosEvent(1500.0, "host-crash", "dbhost[0]"),
        ChaosEvent(9000.0, "host-boot", "dbhost[0]"),
    ], horizon=4 * 3600.0, seed=seed,
        notes="host dies, relocation fires, host returns much later")


def cron_silence(seed: int = 0) -> Scenario:
    """Early agent silence on two hosts -- the plain watchdog
    demand-wake / cron-repair path, no backoff involved."""
    return _sc("cron-silence", [
        ChaosEvent(900.0, "cron-death", "fehost[0]"),
        ChaosEvent(1100.0, "cron-death", "dbhost[1]"),
    ], horizon=2 * 3600.0, seed=seed,
        notes="crond dies before agents ever back off")


def config_drift(seed: int = 0) -> Scenario:
    """Human error week: a config edit kills one service and an
    operator pkills the wrong worker on another."""
    return _sc("config-drift", [
        ChaosEvent(2000.0, "config-corruption", "fe[1]"),
        ChaosEvent(2600.0, "wrong-kill", "web[1]"),
    ], horizon=3 * 3600.0, seed=seed,
        notes="the HUMAN category, as a scenario")


def resource_squeeze(seed: int = 0) -> Scenario:
    """Performance faults stacked on one host: leak + runaway + full
    log disk, all sub-fatal, all for the performance agents."""
    return _sc("resource-squeeze", [
        ChaosEvent(1500.0, "memory-leak", "tphost[0]"),
        ChaosEvent(1800.0, "runaway-process", "tphost[0]"),
        ChaosEvent(2100.0, "disk-fill", "tphost[0]",
                   (("fraction", 0.99), ("mount", "/logs"))),
    ], horizon=3 * 3600.0, seed=seed,
        notes="compound degradation without an outage")


def dns_outage(seed: int = 0) -> Scenario:
    """The name service goes dark with a service fault inside the
    window, then recovers."""
    return _sc("dns-outage", [
        ChaosEvent(1800.0, "dns-fail", "dns"),
        ChaosEvent(2400.0, "app-crash", "web[0]"),
        ChaosEvent(4500.0, "dns-repair", "dns"),
    ], horizon=3 * 3600.0, seed=seed,
        notes="resolution outage overlapping a service fault")


def hw_attrition(seed: int = 0) -> Scenario:
    """Staggered component failures across three hosts -- some fatal,
    some latent, none auto-fixable per the paper."""
    return _sc("hw-attrition", [
        ChaosEvent(1500.0, "hw-fail", "dbhost[2]"),
        ChaosEvent(3600.0, "hw-fail", "tphost[1]"),
        ChaosEvent(5700.0, "hw-fail", "fehost[1]"),
    ], horizon=4 * 3600.0, seed=seed,
        notes="hardware wear-out pattern")


def lsf_mid_batch(seed: int = 0) -> Scenario:
    """The batch scheduler master crashes, then a database dies while
    the scheduler is still being healed."""
    return _sc("lsf-mid-batch", [
        ChaosEvent(1800.0, "lsf-crash", "lsf"),
        ChaosEvent(2000.0, "db-crash", "db[2]"),
    ], horizon=3 * 3600.0, seed=seed,
        notes="scheduler loss with a concurrent backend fault")


def admin_failover(seed: int = 0) -> Scenario:
    """The primary administration head dies mid-watch and returns
    later: HA failover, then failback, with a fault in between."""
    return _sc("admin-failover", [
        ChaosEvent(1800.0, "host-crash", "admhost[0]"),
        ChaosEvent(2700.0, "app-crash", "fe[0]"),
        ChaosEvent(7200.0, "host-boot", "admhost[0]"),
    ], horizon=4 * 3600.0, seed=seed,
        notes="coordinator failover under load")


def site_loss(seed: int = 0) -> Scenario:
    """Federated site loss with split-brain: New York's leased lines
    drop first (the surviving sites stop hearing from it), then every
    user-facing host there dies -- geo-steering and the cross-site
    relocation tier must carry its region until the line returns."""
    events = [ChaosEvent(1800.0, "wan-partition", "wan[2]")]
    for i in range(4):
        events.append(ChaosEvent(2100.0 + 60.0 * i, "host-crash",
                                 f"nyc:dbhost[{i}]"))
    for i in range(2):
        events.append(ChaosEvent(2400.0 + 60.0 * i, "host-crash",
                                 f"nyc:fehost[{i}]"))
    events.append(ChaosEvent(7200.0, "wan-repair", "wan[2]"))
    return _sc("site-loss", events, horizon=3 * 3600.0, seed=seed,
               sites=3,
               notes="split-brain then total site loss of nyc")


#: name -> builder; the committed corpus is exactly these, per seed
BUILDERS: Dict[str, Callable[[int], Scenario]] = {
    "cascade": cascade,
    "flap": flap,
    "partition-fault": partition_fault,
    "wake-adversarial": wake_adversarial,
    "retry-storm": retry_storm,
    "host-loss": host_loss,
    "cron-silence": cron_silence,
    "config-drift": config_drift,
    "resource-squeeze": resource_squeeze,
    "dns-outage": dns_outage,
    "hw-attrition": hw_attrition,
    "lsf-mid-batch": lsf_mid_batch,
    "admin-failover": admin_failover,
    "site-loss": site_loss,
}


def build_corpus(seed: int = 0) -> Dict[str, Scenario]:
    """Every named builder scenario at the given seed."""
    return {name: fn(seed) for name, fn in BUILDERS.items()}


# -- generation (fuzzer seeding) ------------------------------------------------

#: ops a generated event may use (host-boot only makes sense after a
#: crash, so generation pairs it; repairs likewise).  WAN faults need
#: a federation, so single-site generation never draws them.
_GEN_FAULTS = tuple(s.kind for s in FAULT_CATALOG if s.target != "wan")


def random_event(rng, horizon: float) -> ChaosEvent:
    """One random catalog event with a pool-appropriate target."""
    op = _GEN_FAULTS[int(rng.integers(len(_GEN_FAULTS)))]
    pools = POOLS_FOR_KIND[OPS[op]]
    pool = pools[int(rng.integers(len(pools)))]
    index = int(rng.integers(4))
    # bias times toward wake-backoff boundaries: multiples of the base
    # period with jitter, which is where the adaptive policy is softest
    k = int(rng.integers(1, int(horizon / WAKE_BASE)))
    t = min(horizon - 1.0, k * WAKE_BASE + float(rng.uniform(-60.0, 60.0)))
    return ChaosEvent(max(0.0, t), op, make_target(pool, index))


def random_scenario(rng, name: str, *, seed: int = 0,
                    horizon: float = 3 * 3600.0,
                    max_events: int = 6) -> Scenario:
    """A small random scenario (fuzzer corpus seeding)."""
    n = int(rng.integers(1, max_events + 1))
    events = [random_event(rng, horizon) for _ in range(n)]
    return Scenario(name=name, events=events, horizon=horizon,
                    seed=seed).normalized()
