"""Delta-debugging shrinker: violating scenario -> minimal reproducer.

Classic ddmin over the event list (drop ever-smaller chunks while the
violation persists), followed by two normalisation passes that make
reproducers pleasant to commit: event times snap down to the coarsest
grid that still violates (multiples of the 300 s wake base), and the
horizon shrinks toward the last event plus a settle window.

The shrinker is **deterministic**: it uses no randomness, walks
chunks in a fixed order, and caches every tested candidate by its
canonical JSON -- re-shrinking the same scenario yields byte-identical
output, which the property tests assert.

``still_violates`` is any predicate ``Scenario -> bool``; the episode
wrapper :func:`shrink_episode` closes one over
:func:`~repro.chaos.executor.run_episode` that preserves *the same*
violated-oracle set, so a shrunk scenario never silently trades one
bug for another.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Sequence, Tuple

from repro.chaos.scenario import MIN_HORIZON, Scenario

__all__ = ["ShrinkResult", "shrink", "shrink_episode"]

#: times snap to this grid when it preserves the violation
TIME_GRID = 300.0
#: slack kept after the last event when shrinking the horizon
SETTLE = 3600.0


@dataclass
class ShrinkResult:
    """What the shrinker did and how much work it took."""

    original: Scenario
    shrunk: Scenario
    #: candidate scenarios actually executed (cache misses)
    tested: int
    #: ddmin rounds until a fixpoint
    rounds: int

    @property
    def events_removed(self) -> int:
        return len(self.original.events) - len(self.shrunk.events)


class _Prober:
    """Memoising wrapper around the caller's predicate."""

    def __init__(self, predicate: Callable[[Scenario], bool]):
        self.predicate = predicate
        self.cache: Dict[str, bool] = {}
        self.tested = 0

    def violates(self, scenario: Scenario) -> bool:
        key = scenario.to_json()
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        self.tested += 1
        out = bool(self.predicate(scenario))
        self.cache[key] = out
        return out


def _with_events(base: Scenario, events: Sequence) -> Scenario:
    return Scenario(name=base.name, events=list(events),
                    horizon=base.horizon, seed=base.seed,
                    notes=base.notes, sites=base.sites).normalized()


def _ddmin_events(base: Scenario, prober: _Prober) -> Tuple[Scenario, int]:
    """Minimise the event list (ddmin with complement testing)."""
    current = base
    rounds = 0
    n = 2
    while len(current.events) >= 2:
        rounds += 1
        chunk = max(1, len(current.events) // n)
        reduced = None
        for start in range(0, len(current.events), chunk):
            rest = (current.events[:start]
                    + current.events[start + chunk:])
            if not rest:
                continue
            candidate = _with_events(current, rest)
            if prober.violates(candidate):
                reduced = candidate
                break
        if reduced is not None:
            current = reduced
            n = max(2, n - 1)
        elif chunk == 1:
            break
        else:
            n = min(len(current.events), n * 2)
    # a single remaining event: try the empty tail anyway (some bugs
    # need no events at all -- worth knowing)
    if len(current.events) == 1:
        candidate = _with_events(current, [])
        if prober.violates(candidate):
            current = candidate
    return current, rounds


def _coarsen_times(base: Scenario, prober: _Prober) -> Scenario:
    """Snap each event's time down to the grid when it still fails."""
    current = base
    for i in range(len(current.events)):
        ev = current.events[i]
        snapped = (ev.time // TIME_GRID) * TIME_GRID
        if snapped == ev.time:
            continue
        events = list(current.events)
        events[i] = replace(ev, time=snapped)
        candidate = _with_events(current, events)
        if prober.violates(candidate):
            current = candidate
    return current


def _shrink_horizon(base: Scenario, prober: _Prober) -> Scenario:
    """Pull the horizon toward last-event + settle, halving the gap."""
    current = base
    floor = MIN_HORIZON
    if current.events:
        floor = max(floor, current.events[-1].time + SETTLE)
    while current.horizon - floor > 1.0:
        target = max(floor, (current.horizon + floor) / 2.0
                     if current.horizon - floor > 2 * SETTLE else floor)
        candidate = Scenario(name=current.name, events=current.events,
                             horizon=target, seed=current.seed,
                             notes=current.notes,
                             sites=current.sites).normalized()
        if prober.violates(candidate):
            current = candidate
        else:
            break
    return current


def shrink(scenario: Scenario,
           still_violates: Callable[[Scenario], bool]) -> ShrinkResult:
    """Reduce ``scenario`` to a minimal program that still violates.

    Raises ``ValueError`` if the input does not violate to begin with
    (shrinking a passing scenario is always caller error).
    """
    scenario = scenario.normalized()
    prober = _Prober(still_violates)
    if not prober.violates(scenario):
        raise ValueError(f"scenario {scenario.name!r} does not violate; "
                         f"nothing to shrink")
    current, rounds = _ddmin_events(scenario, prober)
    current = _coarsen_times(current, prober)
    current = _shrink_horizon(current, prober)
    shrunk = Scenario(name=f"{scenario.name}-min", events=current.events,
                      horizon=current.horizon, seed=current.seed,
                      sites=current.sites,
                      notes=(f"shrunk from {scenario.scenario_id} "
                             f"({len(scenario.events)} -> "
                             f"{len(current.events)} events)")).normalized()
    return ShrinkResult(original=scenario, shrunk=shrunk,
                        tested=prober.tested, rounds=rounds)


def shrink_episode(scenario: Scenario, violated: Sequence[str], *,
                   planted_bug: bool = False) -> ShrinkResult:
    """Shrink against the real executor, preserving the violated set.

    ``violated`` is the oracle-name set the original episode tripped;
    a candidate counts as violating only if it trips *all* of them --
    the reproducer demonstrates the same defect, not merely some
    defect.
    """
    from repro.chaos.executor import run_episode

    target = frozenset(violated)
    if not target:
        raise ValueError("no violated oracles given")

    def predicate(candidate: Scenario) -> bool:
        ep = run_episode(candidate, planted_bug=planted_bug,
                         oracle_names=sorted(target))
        return target <= set(ep.violated)

    return shrink(scenario, predicate)
