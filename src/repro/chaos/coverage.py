"""Decision-path coverage for chaos episodes.

A *coverage signature* is the set of behavioural path markers one
episode exercised, harvested from ledgers the substrate already keeps
(nothing is instrumented for the fuzzer's sake):

- ``decision:<action>`` -- the admin pair's sweep decisions
  (demand_wake / cron_repair / escalate / clear);
- ``cond:<kind>[:<status>]`` -- condition kinds streamed through the
  site ledger (flag, dlsp, host up/down, wake interval/demand, route
  drain/cutover, alert);
- ``relocate:<phase>`` / ``relocate:ok|rollback[:cold]`` -- how far
  each relocation got and how it ended;
- ``resolved:<tier>`` -- which escalation tier closed each incident
  (agent-heal, relocation, human, unresolved);
- ``fault:<kind>`` / ``fizzle:<kind>`` -- what the scenario actually
  managed to break (a fault against an already-broken target fizzles);
- ``wake:*`` / ``notify:*`` / ``admin:*`` -- demand wakes, backoff
  depth, pages by severity, storm suppression, HA failovers.

The fuzzer mutates *toward* signatures containing un-hit markers; the
:class:`CoverageMap` is the accumulated union with hit counts, and its
size is monotonic by construction.
"""

from __future__ import annotations

import json
from typing import Dict, FrozenSet, Iterable, List, Tuple

__all__ = ["CoverageMap", "signature_of"]


class CoverageMap:
    """Accumulated path-marker hit counts across episodes."""

    def __init__(self):
        self.counts: Dict[str, int] = {}
        #: (episode_index, size_after) checkpoints, appended per add
        self.growth: List[Tuple[int, int]] = []
        self.episodes = 0

    def __len__(self) -> int:
        return len(self.counts)

    def __contains__(self, marker: str) -> bool:
        return marker in self.counts

    def add(self, signature: Iterable[str]) -> int:
        """Fold one episode's signature in; returns how many markers
        were new.  The map only ever grows."""
        new = 0
        for marker in signature:
            if marker not in self.counts:
                self.counts[marker] = 0
                new += 1
            self.counts[marker] += 1
        self.episodes += 1
        self.growth.append((self.episodes, len(self.counts)))
        return new

    def novelty(self, signature: Iterable[str]) -> int:
        """How many markers of ``signature`` are unseen (no mutation)."""
        return sum(1 for m in set(signature) if m not in self.counts)

    def rarest(self, n: int = 10) -> List[Tuple[str, int]]:
        """The n least-hit markers -- what the fuzzer should chase."""
        return sorted(self.counts.items(),
                      key=lambda kv: (kv[1], kv[0]))[:n]

    def to_json(self) -> str:
        return json.dumps({"counts": self.counts, "growth": self.growth,
                           "episodes": self.episodes}, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CoverageMap":
        doc = json.loads(text)
        cm = cls()
        cm.counts = {str(k): int(v) for k, v in doc["counts"].items()}
        cm.growth = [tuple(g) for g in doc["growth"]]
        cm.episodes = int(doc["episodes"])
        return cm

    def __repr__(self) -> str:   # pragma: no cover - debug aid
        return (f"<CoverageMap markers={len(self.counts)} "
                f"episodes={self.episodes}>")


def signature_of(episode) -> FrozenSet[str]:
    """Harvest the path markers of one finished episode (see module
    docstring for the marker families)."""
    sig = set()
    site = episode.site
    admin = site.admin

    # sweep decisions + admin behaviour
    if admin is not None:
        for _t, action, _host, _reason in admin.decision_log:
            sig.add(f"decision:{action}")
        if admin.demand_wakes:
            sig.add("wake:demand")
        if admin.cron_repairs:
            sig.add("admin:cron-repair")
        if admin.hosts_escalated:
            sig.add("admin:escalated")
        if admin.failovers:
            sig.add("admin:failover")
        if admin.model_resyncs:
            sig.add("admin:resync")
        if admin.service_probe_failures:
            sig.add("admin:probe-failure")

    # condition kinds seen on the site ledger (push-collected live)
    for marker in episode.condition_markers:
        sig.add(marker)

    # relocation phase outcomes
    relocator = site.relocator
    if relocator is not None:
        for rec in relocator.records:
            sig.add(f"relocate:{rec.phase}")
            if rec.finished is not None:
                out = "ok" if rec.success else "rollback"
                sig.add(f"relocate:{out}")
                if rec.cold:
                    sig.add(f"relocate:{out}:cold")

    # escalation tier that resolved each incident
    for rep in episode.reports:
        sig.add(f"resolved:{rep.resolved_by}")
        if rep.category:
            sig.add(f"category:{rep.category}")

    # what the scenario actually broke
    for kind in episode.applied_kinds:
        sig.add(f"fault:{kind}")
    for kind in episode.fizzled_kinds:
        sig.add(f"fizzle:{kind}")

    # wake-policy depth reached anywhere in the fleet
    deepest = 0.0
    resets = 0
    for suite in site.suites.values():
        for agent in suite.agents:
            wake = getattr(agent, "wake", None)
            if wake is None:
                continue
            deepest = max(deepest, wake.current_period)
            resets += wake.resets
    if deepest > 0.0:
        sig.add(f"wake:depth:{int(deepest)}")
    if resets:
        sig.add("wake:reset")

    # notification behaviour
    for note in site.notifications.sent:
        sig.add(f"notify:{note.medium}:{note.severity}")
    if site.notifications.suppressed_total:
        sig.add("notify:suppressed")

    return frozenset(sig)
