"""Coverage-guided scenario fuzzer.

The loop is the classic greybox shape -- corpus, mutate, execute,
admit -- with the coverage map built from decision-path markers the
substrate already records (see :mod:`repro.chaos.coverage`):

1. seed the corpus (the committed builders by default);
2. pick parents, favouring recent additions (they hold the markers the
   map just learned about) and occasionally splicing two parents;
3. mutate: perturb event times (snapping toward wake-backoff
   boundaries, where the adaptive policy is softest), retarget to a
   sibling pool member, duplicate, drop, or insert an event --
   insertion prefers fault kinds the coverage map has never seen;
4. execute a batch through :func:`repro.parallel.replicate_outcomes`
   (workers return picklable :meth:`Episode.summary` dicts and never
   take the pool down);
5. admit any child whose signature adds unseen markers; collect any
   episode that tripped an oracle.

Everything draws from one named stream of the repo's
:class:`~repro.sim.rand.RandomStreams`, and batches are generated
*before* execution, so a fuzz run is fully determined by
``(seed, corpus, episodes, batch)`` -- the determinism test replays a
whole campaign twice and compares violation sets and coverage maps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.coverage import CoverageMap
from repro.chaos.scenario import (MAX_EVENTS, OPS, POOLS_FOR_KIND,
                                  WAKE_BASE, ChaosEvent, Scenario,
                                  build_corpus, make_target, parse_target,
                                  random_event, random_scenario)
from repro.parallel import replicate_outcomes
from repro.sim.rand import RandomStreams

__all__ = ["FuzzResult", "ScenarioFuzzer"]

#: fault kinds insertable by mutation (host power/repair ops excluded:
#: unpaired repairs mostly fizzle and teach the map nothing)
_INSERTABLE = tuple(sorted(k for k, kind in OPS.items()
                           if k not in ("host-boot", "lan-repair",
                                        "nic-repair", "dns-repair")))


def _run_packed(scenario_jsons: Sequence[str], planted_bug: bool,
                oracle_names, index: int) -> dict:
    """Pool worker: run the index-th scenario of a packed batch.

    Module-level (and driven through ``functools.partial``) so it
    pickles into worker processes; returns the picklable summary, not
    the episode (which holds the whole live site).
    """
    from repro.chaos.executor import run_episode

    scenario = Scenario.from_json(scenario_jsons[index])
    ep = run_episode(scenario, planted_bug=planted_bug,
                     oracle_names=oracle_names)
    return ep.summary()


@dataclass
class FuzzResult:
    """One fuzzing campaign's outcome."""

    seed: int
    episodes: int
    coverage: CoverageMap
    #: Episode.summary() dicts of every oracle-violating episode
    violations: List[dict] = field(default_factory=list)
    #: summaries of worker crashes (fuzzer bugs, not system bugs)
    errors: List[str] = field(default_factory=list)
    #: final corpus (seeds + admitted children)
    corpus: List[Scenario] = field(default_factory=list)
    #: scenario ids admitted for novelty, in admission order
    admitted: List[str] = field(default_factory=list)

    @property
    def violating_scenarios(self) -> List[Scenario]:
        return [Scenario.from_json(v["scenario_json"])
                for v in self.violations]

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "episodes": self.episodes,
            "coverage_markers": len(self.coverage),
            "coverage_growth": list(self.coverage.growth),
            "violations": self.violations,
            "errors": self.errors,
            "corpus_size": len(self.corpus),
            "admitted": list(self.admitted),
        }


class ScenarioFuzzer:
    """Mutate-execute-admit loop over chaos scenarios.

    ``episodes`` bounds total executions (corpus seeds included);
    ``max_violations`` stops the campaign early once enough distinct
    failures are in hand (shrinking them is the expensive part).
    """

    def __init__(self, seed: int = 0, *,
                 corpus: Optional[Sequence[Scenario]] = None,
                 episodes: int = 60, batch: int = 8,
                 planted_bug: bool = False,
                 oracle_names: Optional[Sequence[str]] = None,
                 max_violations: int = 5,
                 processes: Optional[int] = None):
        self.seed = int(seed)
        self.rng = RandomStreams(self.seed).get("chaos.fuzzer")
        if corpus is None:
            corpus = list(build_corpus(self.seed).values())
        # the fuzzer mutates single-site worlds; federated scenarios
        # replay through their own episode path, not through here
        self.corpus: List[Scenario] = [s.normalized() for s in corpus
                                       if s.sites == 1]
        if not self.corpus:
            self.corpus = [random_scenario(self.rng, f"gen{i:03d}",
                                           seed=self.seed)
                           for i in range(4)]
        self.episodes = int(episodes)
        self.batch = max(1, int(batch))
        self.planted_bug = bool(planted_bug)
        self.oracle_names = (list(oracle_names)
                             if oracle_names is not None else None)
        self.max_violations = int(max_violations)
        self.processes = processes
        self._children = 0

    # -- mutations -----------------------------------------------------------

    def _mut_perturb_time(self, sc: Scenario) -> Scenario:
        """Shift one event's time; half the time snap it onto a
        wake-base boundary (the adversarial-timing lever)."""
        i = int(self.rng.integers(len(sc.events)))
        ev = sc.events[i]
        if self.rng.random() < 0.5:
            k = int(self.rng.integers(1, int(sc.horizon / WAKE_BASE)))
            t = k * WAKE_BASE + float(self.rng.uniform(-60.0, 60.0))
        else:
            t = ev.time + float(self.rng.normal(0.0, 900.0))
        events = list(sc.events)
        events[i] = ChaosEvent(max(0.0, min(t, sc.horizon - 1.0)),
                               ev.op, ev.target, ev.params)
        return self._child(sc, events)

    def _mut_retarget(self, sc: Scenario) -> Scenario:
        """Point one event at a sibling: new index, or a different
        pool satisfying the same target kind."""
        i = int(self.rng.integers(len(sc.events)))
        ev = sc.events[i]
        pool, idx = parse_target(ev.target)
        pools = POOLS_FOR_KIND[OPS[ev.op]]
        if len(pools) > 1 and self.rng.random() < 0.5:
            pool = pools[int(self.rng.integers(len(pools)))]
        else:
            idx = int(self.rng.integers(4))
        events = list(sc.events)
        events[i] = ChaosEvent(ev.time, ev.op, make_target(pool, idx),
                               ev.params)
        return self._child(sc, events)

    def _mut_duplicate(self, sc: Scenario) -> Scenario:
        """Replay one event later -- repeated faults against the same
        target exercise the overlap/fizzle and flap paths."""
        i = int(self.rng.integers(len(sc.events)))
        ev = sc.events[i]
        t = ev.time + float(self.rng.uniform(WAKE_BASE, 4 * WAKE_BASE))
        events = list(sc.events)
        events.append(ChaosEvent(min(t, sc.horizon - 1.0), ev.op,
                                 ev.target, ev.params))
        return self._child(sc, events)

    def _mut_drop(self, sc: Scenario) -> Scenario:
        i = int(self.rng.integers(len(sc.events)))
        events = [e for j, e in enumerate(sc.events) if j != i]
        return self._child(sc, events)

    def _mut_insert(self, sc: Scenario) -> Scenario:
        """Add one event, preferring fault kinds the map never hit."""
        unseen = [k for k in _INSERTABLE
                  if f"fault:{k}" not in self.coverage]
        if unseen and self.rng.random() < 0.75:
            op = unseen[int(self.rng.integers(len(unseen)))]
            pools = POOLS_FOR_KIND[OPS[op]]
            pool = pools[int(self.rng.integers(len(pools)))]
            k = int(self.rng.integers(1, int(sc.horizon / WAKE_BASE)))
            t = min(sc.horizon - 1.0,
                    k * WAKE_BASE + float(self.rng.uniform(-60.0, 60.0)))
            ev = ChaosEvent(max(0.0, t), op,
                            make_target(pool, int(self.rng.integers(4))))
        else:
            ev = random_event(self.rng, sc.horizon)
        return self._child(sc, list(sc.events) + [ev])

    def _mut_splice(self, sc: Scenario) -> Scenario:
        """Cross-over: this parent's early events + another corpus
        member's late events."""
        other = self.corpus[int(self.rng.integers(len(self.corpus)))]
        cut = float(self.rng.uniform(0.0, max(sc.horizon, other.horizon)))
        events = ([e for e in sc.events if e.time <= cut]
                  + [e for e in other.events if e.time > cut])
        if not events:
            events = list(sc.events)
        return self._child(sc, events,
                           horizon=max(sc.horizon, other.horizon))

    def _child(self, parent: Scenario, events, *,
               horizon: Optional[float] = None) -> Scenario:
        self._children += 1
        return Scenario(
            name=f"fz{self._children:05d}", events=list(events),
            horizon=parent.horizon if horizon is None else horizon,
            seed=parent.seed, sites=parent.sites,
            notes=f"mutant of {parent.name}").normalized()

    def mutate(self, parent: Scenario) -> Scenario:
        """One mutation step (stacked 1-2 deep)."""
        muts = [self._mut_perturb_time, self._mut_retarget,
                self._mut_duplicate, self._mut_drop, self._mut_insert,
                self._mut_splice]
        child = parent
        for _ in range(1 + int(self.rng.integers(2))):
            if not child.events:
                child = self._mut_insert(child)
                continue
            fn = muts[int(self.rng.integers(len(muts)))]
            child = fn(child)
        if not child.events:
            child = self._mut_insert(child)
        return child

    def _pick_parent(self) -> Scenario:
        """Recent admissions half the time (they carry the newest
        markers), uniform otherwise."""
        n = len(self.corpus)
        if n > 4 and self.rng.random() < 0.5:
            lo = max(0, n - max(4, n // 4))
            return self.corpus[lo + int(self.rng.integers(n - lo))]
        return self.corpus[int(self.rng.integers(n))]

    # -- the campaign --------------------------------------------------------

    def run(self) -> FuzzResult:
        self.coverage = CoverageMap()
        result = FuzzResult(seed=self.seed, episodes=0,
                            coverage=self.coverage,
                            corpus=self.corpus)
        seen_violations: set = set()
        queue: List[Scenario] = list(self.corpus)

        while result.episodes < self.episodes and \
                len(result.violations) < self.max_violations:
            # fill the batch: drain seed queue first, then mutate
            room = min(self.batch, self.episodes - result.episodes)
            batch: List[Scenario] = []
            while queue and len(batch) < room:
                batch.append(queue.pop(0))
            while len(batch) < room:
                batch.append(self.mutate(self._pick_parent()))

            jsons = [sc.to_json() for sc in batch]
            worker = partial(_run_packed, jsons, self.planted_bug,
                             self.oracle_names)
            outcomes = replicate_outcomes(worker, range(len(batch)),
                                          processes=self.processes)

            for outcome in outcomes:
                result.episodes += 1
                if not outcome.ok:
                    result.errors.append(
                        f"episode {outcome.seed}: {outcome.error}")
                    continue
                summary = outcome.value
                new = self.coverage.add(summary["coverage"])
                if summary["violated"]:
                    key = (summary["scenario_id"],
                           tuple(summary["violated"]))
                    if key not in seen_violations:
                        seen_violations.add(key)
                        result.violations.append(summary)
                elif new > 0:
                    # novel and clean -> worth mutating further
                    sc = Scenario.from_json(summary["scenario_json"])
                    self.corpus.append(sc)
                    result.admitted.append(summary["scenario_id"])
        return result
