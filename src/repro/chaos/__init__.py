"""repro.chaos -- adversarial evaluation of the healing machinery.

The paper's headline claim (550 h -> 31 h downtime/year) rests on the
healing / relocation / wake pipeline behaving under *arbitrary* fault
timings, not just the handful of hand-written campaigns in
``faults/campaign.py``.  This package is the scenario-diversity
engine:

- :mod:`repro.chaos.scenario` -- a declarative scenario DSL (typed
  events over the structured fault catalog, JSON round-trip so
  scenarios are committable corpus files);
- :mod:`repro.chaos.executor` -- runs one scenario against a live
  paired-control-plane site and collects every guardrail's state;
- :mod:`repro.chaos.coverage` -- decision-path signatures harvested
  from the admin decision log, relocation records, ledger condition
  kinds and wake/notification behaviour;
- :mod:`repro.chaos.oracles` -- invariant oracles packaging the
  guardrails the repo already trusts, run after every episode;
- :mod:`repro.chaos.fuzzer` -- a generative, coverage-guided scenario
  mutator batch-executed through :mod:`repro.parallel`;
- :mod:`repro.chaos.shrink` -- delta-debugging reduction of violating
  scenarios to minimal committable reproducers.
"""

from repro.chaos.coverage import CoverageMap, signature_of
from repro.chaos.executor import Episode, run_episode
from repro.chaos.fuzzer import FuzzResult, ScenarioFuzzer
from repro.chaos.oracles import ORACLES, OracleVerdict, run_oracles
from repro.chaos.scenario import (BUILDERS, ChaosEvent, Scenario,
                                  build_corpus, random_scenario)
from repro.chaos.shrink import ShrinkResult, shrink, shrink_episode

__all__ = [
    "BUILDERS", "ChaosEvent", "CoverageMap", "Episode", "FuzzResult",
    "ORACLES", "OracleVerdict", "Scenario", "ScenarioFuzzer",
    "ShrinkResult", "build_corpus", "random_scenario", "run_episode",
    "run_oracles", "shrink", "shrink_episode", "signature_of",
]
