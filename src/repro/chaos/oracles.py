"""Invariant oracles: the guardrails the repo already trusts, packaged.

Each oracle inspects one finished :class:`~repro.chaos.executor.Episode`
and returns a list of violation strings (empty = clean).  None of them
encode new theory -- they are exactly the invariants earlier PRs
established as permanent regression guards, now run after *every*
fuzzed episode instead of only inside their home test files:

- **scan-ledger-parity** -- the paired control plane's scan-vs-ledger
  sweep and DGSPL plans must be byte-identical (PR 4's contract; the
  executor runs every episode in ``paired`` mode so the comparison is
  made on every sweep of every episode).
- **deadline-wheel** -- the watchdog's staleness wheel must never lose
  a watched agent key and never resurrect a dropped one.
- **stuck-relocations** -- every relocation that started with enough
  budget left must finish: cutover or rollback, never limbo.
- **downtime-reconciliation** -- per-incident report downtime must sum
  exactly to the DowntimeLedger's horizon-clamped total
  (:func:`repro.observe.incidents.reconcile`).
- **notification-storm** -- no recipient is paged more than a bounded
  number of times per simulated hour; a healing system that fixes the
  fault but melts the pager is a failure.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

__all__ = ["OracleVerdict", "ORACLES", "run_oracles",
           "NOTIFY_STORM_BOUND"]

#: max pages one recipient may receive per simulated hour
NOTIFY_STORM_BOUND = 30


@dataclass(frozen=True)
class OracleVerdict:
    """One oracle's view of one episode."""

    oracle: str
    ok: bool
    violations: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {"oracle": self.oracle, "ok": self.ok,
                "violations": list(self.violations)}


def scan_ledger_parity(ep) -> List[str]:
    admin = ep.site.admin
    if admin is None or admin.control_plane != "paired":
        return []
    out = []
    if admin.sweep_mismatches:
        out.append(f"{admin.sweep_mismatches} sweep plan(s) diverged "
                   f"between scan and ledger control planes")
    if admin.dgspl_mismatches:
        out.append(f"{admin.dgspl_mismatches} DGSPL build(s) diverged "
                   f"between scan and ledger control planes")
    return out


def deadline_wheel(ep) -> List[str]:
    admin = ep.site.admin
    if admin is None or admin.ledger is None:
        return []
    wheel = admin._wheel
    out = []
    tracked = set(wheel._deadline)
    # never lose: every agent of every registered suite stays tracked
    for host_name, suite in admin.suites.items():
        for agent in suite.agents:
            key = (host_name, agent.name)
            if key not in tracked:
                out.append(f"watched agent key {key} lost from the "
                           f"deadline wheel")
    # never resurrect: the due set only contains tracked keys
    for key in wheel._due:
        if key not in tracked:
            out.append(f"dropped key {key} resurrected in the due set")
    return out


def stuck_relocations(ep) -> List[str]:
    relocator = ep.site.relocator
    if relocator is None:
        return []
    out = []
    horizon = ep.horizon
    for rec in relocator.records:
        if rec.finished is None and \
                rec.started + relocator.budget < horizon:
            out.append(f"relocation of {rec.subject} stuck in phase "
                       f"{rec.phase!r} (started {rec.started:.0f}, "
                       f"budget long expired)")
    for subject in relocator.active:
        recs = [r for r in relocator.records if r.subject == subject]
        if recs and recs[-1].started + relocator.budget < horizon:
            out.append(f"relocation of {subject} still marked active "
                       f"at horizon")
    return out


def downtime_reconciliation(ep) -> List[str]:
    recon = ep.reconciliation
    if not recon:
        return []
    if recon.get("downtime_ok", True):
        return []
    return [f"incident-report downtime {recon['downtime_reports_h']:.6f} h "
            f"!= downtime-ledger {recon['downtime_ledger_h']:.6f} h"]


def notification_storm(ep) -> List[str]:
    """Pages per recipient per simulated hour stay bounded."""
    buckets: Dict[Tuple[str, int], int] = defaultdict(int)
    for note in ep.site.notifications.sent:
        buckets[(note.recipient, int(note.time // 3600.0))] += 1
    out = []
    for (recipient, hour), n in sorted(buckets.items()):
        if n > NOTIFY_STORM_BOUND:
            out.append(f"{recipient} paged {n}x in sim hour {hour} "
                       f"(bound {NOTIFY_STORM_BOUND})")
    return out


#: name -> oracle fn(episode) -> violations
ORACLES: Dict[str, Callable] = {
    "scan-ledger-parity": scan_ledger_parity,
    "deadline-wheel": deadline_wheel,
    "stuck-relocations": stuck_relocations,
    "downtime-reconciliation": downtime_reconciliation,
    "notification-storm": notification_storm,
}


def run_oracles(ep, names=None) -> List[OracleVerdict]:
    """Run every (or the named) oracle over a finished episode."""
    verdicts = []
    for name in (names if names is not None else ORACLES):
        violations = tuple(ORACLES[name](ep))
        verdicts.append(OracleVerdict(name, not violations, violations))
    return verdicts
