"""``repro-exp chaos`` -- the chaos toolbox from the terminal.

.. code-block:: text

    repro-exp chaos run --episodes 200 --seed 0
    repro-exp chaos run --planted-bug --max-violations 1
    repro-exp chaos corpus --dir tests/corpus
    repro-exp chaos replay tests/corpus
    repro-exp chaos replay tests/corpus/cascade.json --planted-bug
    repro-exp chaos replay failing.json --checkpoint-dir epochs
    repro-exp chaos replay failing.json --from-checkpoint epochs/ep-...json
    repro-exp chaos shrink failing.json --planted-bug --out minimal.json

``run`` drives a coverage-guided fuzz campaign and prints the coverage
growth curve, the rarest markers and any oracle violations; ``corpus``
(re)generates the committed builder scenarios; ``replay`` runs
scenario files (or every ``*.json`` in a directory) and exits non-zero
if any oracle fires; ``shrink`` reduces a violating scenario file to a
minimal reproducer that still trips the same oracles.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import List, Optional

from repro.chaos.scenario import Scenario, build_corpus

__all__ = ["main"]


def _load_scenarios(paths: List[str]) -> List[str]:
    """Expand files/directories into a sorted list of scenario files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            out.extend(os.path.join(path, fn)
                       for fn in sorted(os.listdir(path))
                       if fn.endswith(".json"))
        else:
            out.append(path)
    if not out:
        raise SystemExit("no scenario files found")
    return out


def _describe(sc: Scenario) -> str:
    lines = [f"{sc.scenario_id}  horizon={sc.horizon:.0f}s "
             f"seed={sc.seed}  {len(sc.events)} events"]
    for ev in sc.events:
        extra = "".join(f" {k}={v}" for k, v in ev.params)
        lines.append(f"    t={ev.time:7.0f}  {ev.op:18s} "
                     f"{ev.target}{extra}")
    return "\n".join(lines)


def _cmd_run(args) -> int:
    from repro.chaos.fuzzer import ScenarioFuzzer

    fuzzer = ScenarioFuzzer(
        seed=args.seed, episodes=args.episodes, batch=args.batch,
        planted_bug=args.planted_bug,
        max_violations=args.max_violations, processes=args.processes)
    result = fuzzer.run()

    print(f"chaos fuzz  seed={result.seed}  episodes={result.episodes}  "
          f"corpus={len(result.corpus)}  "
          f"admitted={len(result.admitted)}")
    growth = result.coverage.growth
    marks = sorted({0, len(growth) // 4, len(growth) // 2,
                    3 * len(growth) // 4, len(growth) - 1})
    curve = "  ".join(f"{growth[i][0]}ep:{growth[i][1]}"
                      for i in marks if 0 <= i < len(growth))
    print(f"coverage    {len(result.coverage)} markers  [{curve}]")
    print("rarest      " + ", ".join(
        f"{m}({n})" for m, n in result.coverage.rarest(6)))
    for err in result.errors:
        print(f"worker error: {err}")
    if not result.violations:
        print("violations  none -- every episode satisfied every oracle")
    for v in result.violations:
        print(f"\nVIOLATION  {v['scenario_id']}  "
              f"oracles={','.join(v['violated'])}")
        for verdict in v["verdicts"]:
            for msg in verdict["violations"]:
                print(f"    {msg}")
        print(_describe(Scenario.from_json(v["scenario_json"])))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\n[campaign result written to {args.out}]")
    return 1 if (result.violations or result.errors) else 0


def _cmd_corpus(args) -> int:
    os.makedirs(args.dir, exist_ok=True)
    for name, sc in sorted(build_corpus(args.seed).items()):
        path = os.path.join(args.dir, f"{name}.json")
        with open(path, "w") as fh:
            fh.write(sc.to_json())
        print(f"{path}  ({len(sc.events)} events, "
              f"horizon {sc.horizon:.0f}s)")
    return 0


def _cmd_replay(args) -> int:
    from repro.chaos.executor import run_episode

    paths = _load_scenarios(args.scenarios)
    if args.from_checkpoint and len(paths) != 1:
        raise SystemExit(
            "--from-checkpoint resumes exactly one scenario file")
    failures = 0
    for path in paths:
        with open(path) as fh:
            sc = Scenario.from_json(fh.read())
        ep = run_episode(sc, planted_bug=args.planted_bug,
                         checkpoint_dir=args.checkpoint_dir,
                         checkpoint_every=args.checkpoint_every,
                         from_checkpoint=args.from_checkpoint)
        status = "ok" if ep.ok else "VIOLATED"
        print(f"{status:9s} {sc.scenario_id:32s} "
              f"applied={len(ep.applied)} fizzled={len(ep.fizzled)} "
              f"coverage={len(ep.coverage)}")
        if not ep.ok:
            failures += 1
            for msg in ep.violations:
                print(f"    {msg}")
    return 1 if failures else 0


def _cmd_shrink(args) -> int:
    from repro.chaos.executor import run_episode
    from repro.chaos.shrink import shrink_episode

    with open(args.scenario) as fh:
        sc = Scenario.from_json(fh.read())
    ep = run_episode(sc, planted_bug=args.planted_bug)
    if ep.ok:
        print(f"{sc.scenario_id}: no oracle fires; nothing to shrink")
        return 1
    print(f"shrinking {sc.scenario_id} "
          f"(oracles: {', '.join(ep.violated)}) ...")
    res = shrink_episode(sc, ep.violated, planted_bug=args.planted_bug)
    print(f"{len(res.original.events)} -> {len(res.shrunk.events)} "
          f"events in {res.rounds} ddmin rounds "
          f"({res.tested} episodes executed)")
    print(_describe(res.shrunk))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(res.shrunk.to_json())
        print(f"[minimal reproducer written to {args.out}]")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-exp chaos",
        description="Coverage-guided chaos fuzzing of the healing "
                    "pipeline: scenario DSL, invariant oracles, "
                    "shrinking reproducers.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a fuzz campaign")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--episodes", type=int, default=60)
    p_run.add_argument("--batch", type=int, default=8)
    p_run.add_argument("--max-violations", type=int, default=5)
    p_run.add_argument("--processes", type=int, default=None)
    p_run.add_argument("--planted-bug", action="store_true",
                       help="arm the test-only planted regression")
    p_run.add_argument("--out", metavar="FILE", default=None,
                       help="write the campaign result as JSON")

    p_corpus = sub.add_parser("corpus",
                              help="write the builder corpus as JSON")
    p_corpus.add_argument("--dir", default="tests/corpus")
    p_corpus.add_argument("--seed", type=int, default=0)

    p_replay = sub.add_parser("replay",
                              help="replay scenario files against "
                                   "every oracle")
    p_replay.add_argument("scenarios", nargs="+",
                          help="scenario JSON files or directories")
    p_replay.add_argument("--planted-bug", action="store_true")
    p_replay.add_argument("--checkpoint-dir", default=None,
                          help="checkpoint the whole world every "
                               "--checkpoint-every simulated seconds "
                               "while replaying")
    p_replay.add_argument("--checkpoint-every", type=float, default=900.0,
                          metavar="SECONDS")
    p_replay.add_argument("--from-checkpoint", metavar="CKPT", default=None,
                          help="time-travel: restore the episode at a "
                               "saved epoch and replay only the "
                               "remainder (one scenario file)")

    p_shrink = sub.add_parser("shrink",
                              help="reduce a violating scenario to a "
                                   "minimal reproducer")
    p_shrink.add_argument("scenario", help="scenario JSON file")
    p_shrink.add_argument("--planted-bug", action="store_true")
    p_shrink.add_argument("--out", metavar="FILE", default=None)

    args = parser.parse_args(argv)
    return {"run": _cmd_run, "corpus": _cmd_corpus,
            "replay": _cmd_replay, "shrink": _cmd_shrink}[args.command](args)
