"""Episode execution: one scenario against one live site.

Every episode runs at test scale with the control plane in ``paired``
mode -- the scan-vs-ledger cross-check of PR 4 runs on every sweep, so
the strongest oracle comes for free -- plus one spare host so the
relocation tier is reachable, the tracer installed so incident reports
can be built, and a :class:`~repro.experiments.runner.FidelityHarness`
keeping the downtime books.

Events resolve their abstract target selectors against the built site
(indices wrap modulo pool size) and dispatch through the injector's
structured catalog.  An event whose target cannot take the fault --
already broken, host down, LAN already up on a repair -- **fizzles**:
it is recorded, counted, and the episode continues, exactly like
lightning striking a hole.  Fizzles are coverage markers too; the
fuzzer learns which compositions are even reachable.

``planted_bug`` is a test-only flag wiring in a deliberate regression
(the watchdog's deadline wheel mis-arms entries whose staleness gap is
deeper than one backoff level, pushing them to never-due) so the
fuzzer demo and the shrinker tests have a real defect to find.  It
only manifests when an agent goes silent *after* its host has
quiesced into deep backoff -- adversarial timing the fuzzer must
compose.  Production code paths never set it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Set

from repro.chaos.scenario import Scenario, parse_target, split_site
from repro.faults.injector import OverlappingFaultError

__all__ = ["Episode", "FederationEpisode", "run_episode",
           "run_federation_episode", "PLANTED_GAP"]

#: staleness gaps deeper than this get mis-armed when the planted bug
#: is on (base period + one backoff + grace = 900; deep backoff > 1500)
PLANTED_GAP = 1500.0

#: selector pool -> how to pull the pool out of a built site
_HOST_GROUPS = {"dbhost": "db", "tphost": "tp", "fehost": "frontend",
                "sphost": "spare", "admhost": "admin"}


@dataclass
class Episode:
    """One scenario's run: handles, outcomes, verdicts, coverage."""

    scenario: Scenario
    site: object
    harness: object
    horizon: float
    #: "t op target" lines for events that applied / fizzled
    applied: List[str] = field(default_factory=list)
    fizzled: List[str] = field(default_factory=list)
    applied_kinds: Set[str] = field(default_factory=set)
    fizzled_kinds: Set[str] = field(default_factory=set)
    #: cond:<kind>[:<status>] markers collected live off the ledger
    condition_markers: Set[str] = field(default_factory=set)
    reports: List = field(default_factory=list)
    reconciliation: dict = field(default_factory=dict)
    verdicts: List = field(default_factory=list)
    coverage: FrozenSet[str] = frozenset()

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def violated(self) -> List[str]:
        """Names of oracles that fired."""
        return [v.oracle for v in self.verdicts if not v.ok]

    @property
    def violations(self) -> List[str]:
        return [msg for v in self.verdicts for msg in v.violations]

    def summary(self) -> dict:
        """Picklable structured result for batch workers: scenario id
        + JSON, oracle verdicts, coverage signature, event outcomes."""
        return {
            "scenario_id": self.scenario.scenario_id,
            "scenario_json": self.scenario.to_json(),
            "verdicts": [v.to_dict() for v in self.verdicts],
            "violated": self.violated,
            "coverage": sorted(self.coverage),
            "applied": len(self.applied),
            "fizzled": len(self.fizzled),
        }


def _resolve(site, selector: str):
    """An abstract target selector -> the live object, or None when
    the pool is empty on this site."""
    pool, idx = parse_target(selector)
    if pool == "db":
        seq = site.databases
    elif pool == "fe":
        seq = site.frontends
    elif pool == "web":
        seq = site.webservers
    elif pool in _HOST_GROUPS:
        seq = site.dc.group(_HOST_GROUPS[pool])
    elif pool == "lan":
        seq = [site.dc.lans[name]
               for name in sorted(site.dc.lans) if name != "agentnet"]
    elif pool == "dns":
        return site.nameservice
    elif pool == "lsf":
        return site.lsf_master
    elif pool == "wan":
        return None     # a single site has no leased lines to cut
    else:
        raise ValueError(f"unknown target pool {pool!r}")
    if not seq:
        return None
    return seq[idx % len(seq)]


def _apply_event(site, injector, ev) -> None:
    """Apply one event; raises ValueError-family on fizzle."""
    target = _resolve(site, ev.target)
    if target is None:
        raise OverlappingFaultError(ev.op, ev.target,
                                    "empty pool on this site")
    if ev.op == "lan-repair":
        if target.up:
            raise OverlappingFaultError(ev.op, target.name, "LAN is up")
        target.repair()
    elif ev.op == "nic-repair":
        failed = [nic for _n, nic in sorted(target.nics.items())
                  if not nic.ok]
        if not failed:
            raise OverlappingFaultError(ev.op, target.name,
                                        "no failed interface")
        for nic in failed:
            nic.repair()
    elif ev.op == "dns-repair":
        if target.up:
            raise OverlappingFaultError(ev.op, "dns", "already up")
        target.repair()
    elif ev.op == "host-crash":
        if not target.is_up:
            raise OverlappingFaultError(ev.op, target.name,
                                        "host already down")
        target.crash("chaos: injected host crash")
    elif ev.op == "host-boot":
        if target.is_up:
            raise OverlappingFaultError(ev.op, target.name, "host is up")
        target.boot()
    else:
        injector.inject(ev.op, target, **ev.param_dict())


class _EpisodeBook:
    """Snapshottable episode bookkeeping: outcome lines, coverage
    markers and the *not-yet-fired* scenario events.

    Scenario events are scheduled up front as absolute-time closures;
    a checkpoint taken mid-episode serialises each pending event's heap
    token plus its index into the (canonical) scenario event list, so a
    restore re-arms ``fire(events[i])`` at the exact saved token and
    the resumed episode applies the remaining faults beat-for-beat.
    """

    def __init__(self, ep: Episode):
        self.ep = ep
        self.sim = ep.site.sim
        self.base = 0.0
        self.fire = None                # bound by run_episode
        self._pending: List[tuple] = []  # (event_handle, scenario index)

    def arm(self, base: float, fire) -> None:
        self.base = base
        self.fire = fire
        for i, ev in enumerate(self.ep.scenario.events):
            handle = self.sim.schedule_at(base + ev.time, fire, ev)
            self._pending.append((handle, i))

    def snapshot_state(self) -> dict:
        ep = self.ep
        return {
            "base": self.base,
            "applied": list(ep.applied),
            "fizzled": list(ep.fizzled),
            "applied_kinds": sorted(ep.applied_kinds),
            "fizzled_kinds": sorted(ep.fizzled_kinds),
            "condition_markers": sorted(ep.condition_markers),
            "pending": [[[h.time, h.priority, h.seq], i]
                        for h, i in self._pending if h.alive],
        }

    def restore_state(self, state: dict) -> None:
        ep = self.ep
        self.base = float(state["base"])
        ep.applied = list(state["applied"])
        ep.fizzled = list(state["fizzled"])
        ep.applied_kinds = set(state["applied_kinds"])
        ep.fizzled_kinds = set(state["fizzled_kinds"])
        ep.condition_markers = set(state["condition_markers"])
        for handle, _i in self._pending:
            handle.cancel()
        self._pending = []
        events = ep.scenario.events
        for (t, prio, seq), i in state["pending"]:
            handle = self.sim.schedule_exact(t, prio, seq, self.fire,
                                             events[int(i)])
            self._pending.append((handle, int(i)))

    def claimed_seqs(self) -> List[int]:
        return [h.seq for h, _i in self._pending if h.alive]


def _plant_bug(admin) -> None:
    """Test-only: wrap the watchdog wheel so deadlines implying a
    deep-backoff staleness gap are pushed to never-due.  The key stays
    tracked (the wheel-structure oracle passes); the *behaviour*
    diverges from the scan plan only once that agent goes silent."""
    wheel = admin._wheel
    orig = wheel.set_deadline
    sim = admin.sim

    def mis_arm(key, deadline):
        if deadline - sim.now > PLANTED_GAP:
            orig(key, deadline + 1e9)
        else:
            orig(key, deadline)

    wheel.set_deadline = mis_arm


@dataclass
class FederationEpisode:
    """One multi-site scenario's run: the federation, per-site shim
    episodes for the oracles, outcomes and coverage.  Exposes the same
    verdict surface as :class:`Episode` so replay tooling is agnostic."""

    scenario: Scenario
    fed: object
    episodes: dict = field(default_factory=dict)
    horizon: float = 0.0
    applied: List[str] = field(default_factory=list)
    fizzled: List[str] = field(default_factory=list)
    applied_kinds: Set[str] = field(default_factory=set)
    fizzled_kinds: Set[str] = field(default_factory=set)
    verdicts: List = field(default_factory=list)
    coverage: FrozenSet[str] = frozenset()

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def violated(self) -> List[str]:
        return [v.oracle for v in self.verdicts if not v.ok]

    @property
    def violations(self) -> List[str]:
        return [msg for v in self.verdicts for msg in v.violations]

    def summary(self) -> dict:
        return {
            "scenario_id": self.scenario.scenario_id,
            "scenario_json": self.scenario.to_json(),
            "verdicts": [v.to_dict() for v in self.verdicts],
            "violated": self.violated,
            "coverage": sorted(self.coverage),
            "applied": len(self.applied),
            "fizzled": len(self.fizzled),
        }


def run_federation_episode(scenario: Scenario,
                           oracle_names=None) -> FederationEpisode:
    """One multi-site scenario against a live federation.

    Builds the canonical 3-site federation (every site in ``paired``
    control-plane mode so the scan-ledger oracle bites), serves geo
    traffic throughout, applies the scenario's events at their absolute
    times -- site-scoped selectors resolve inside their named site,
    ``wan[i]`` selects the i-th site's leased lines -- and judges every
    site with the same oracle set as a single-site episode.
    """
    from repro.chaos.coverage import signature_of
    from repro.chaos.oracles import OracleVerdict, run_oracles
    from repro.experiments.runner import FidelityHarness
    from repro.federation import build_federation
    from repro.federation.config import three_site_config

    scenario = scenario.normalized()
    scenario.validate()
    if scenario.sites != 3:
        raise ValueError(
            f"federated episodes run the canonical 3-site world; "
            f"got sites={scenario.sites}")

    config = three_site_config(population=60_000, seed=scenario.seed)
    for spec in config.sites:
        spec.config.control_plane = "paired"
    fed = build_federation(config)
    names = sorted(fed.sites)

    fep = FederationEpisode(scenario=scenario, fed=fed)
    harnesses = {}
    for name in names:
        site = fed.sites[name]
        harnesses[name] = FidelityHarness(site)
        shim = Episode(scenario=scenario, site=site,
                       harness=harnesses[name], horizon=scenario.horizon)
        if site.ledger is not None:
            def collect(cond, _shim=shim):
                _shim.condition_markers.add(f"cond:{cond.kind}")
                if cond.status:
                    _shim.condition_markers.add(
                        f"cond:{cond.kind}:{cond.status}")
            site.ledger.on_append(collect)
        fep.episodes[name] = shim

    def apply_event(ev) -> None:
        line = f"{fed.now:.0f} {ev.op} {ev.target}"
        try:
            site_name, rest = split_site(ev.target)
            pool, idx = parse_target(rest)
            if pool == "wan":
                wan_site = names[idx % len(names)]
                if ev.op == "wan-repair":
                    if all(l.reachable() for l in
                           fed.wan.links_of(wan_site)):
                        raise OverlappingFaultError(
                            ev.op, f"wan:{wan_site}", "no cut lines")
                    fed.wan.repair_site(wan_site)
                else:
                    harnesses[names[0]].injector.inject(
                        ev.op, (fed.wan, wan_site), **ev.param_dict())
            else:
                if site_name not in fed.sites:
                    site_name = names[0]
                site = fed.sites[site_name]
                _apply_event(site, harnesses[site_name].injector, ev)
        except ValueError as exc:   # includes OverlappingFaultError
            fep.fizzled.append(f"{line} ({exc})")
            fep.fizzled_kinds.add(ev.op)
            return
        fep.applied.append(line)
        fep.applied_kinds.add(ev.op)

    fed.start_traffic()
    base = fed.now
    for ev in scenario.events:     # already time-sorted (normalized)
        at = base + ev.time
        if at > fed.now:
            fed.run(at - fed.now)
        apply_event(ev)
    end = base + scenario.horizon
    if end > fed.now:
        fed.run(end - fed.now)
    for name in names:
        harnesses[name].scan_flags_for_detection()

    fep.horizon = fed.now
    coverage = set()
    for name in names:
        shim = fep.episodes[name]
        shim.horizon = fed.sites[name].sim.now
        for v in run_oracles(shim, oracle_names):
            fep.verdicts.append(OracleVerdict(
                f"{name}:{v.oracle}", v.ok, v.violations))
        shim.coverage = signature_of(shim)
        coverage |= shim.coverage
    coverage |= {f"fault:{k}" for k in fep.applied_kinds}
    coverage |= {f"fizzle:{k}" for k in fep.fizzled_kinds}
    if fed.site_loss_events:
        coverage.add("fed:site-loss")
    if fed.site_recovery_events:
        coverage.add("fed:site-recovery")
    if fed.crosssite is not None and fed.crosssite.succeeded:
        coverage.add("fed:takeover:ok")
    if fed.geo is not None and fed.geo.remote_steered:
        coverage.add("fed:geo-steered")
    fep.coverage = frozenset(coverage)
    return fep


def run_episode(scenario: Scenario, *, planted_bug: bool = False,
                oracle_names=None, checkpoint_dir: str = None,
                checkpoint_every: float = 900.0,
                from_checkpoint: str = None) -> Episode:
    """Build the site, run the scenario, judge it.

    Deterministic for a fixed scenario (site seed + canonical events):
    two runs produce identical decision logs, verdicts and coverage.

    With ``checkpoint_dir`` the episode checkpoints the whole world
    (site, harness books, tracer, *and* the not-yet-fired scenario
    events) every ``checkpoint_every`` simulated seconds.  With
    ``from_checkpoint`` the episode time-travels: it restores the
    world at that epoch and replays only the remainder -- a violation
    found at the end of a long scenario reproduces identically from
    the last pre-incident checkpoint, without re-running the preamble.
    """
    if scenario.sites != 1:
        if planted_bug or checkpoint_dir or from_checkpoint:
            raise ValueError("multi-site episodes support neither the "
                             "planted bug nor checkpointing")
        return run_federation_episode(scenario, oracle_names)

    from repro.chaos.coverage import signature_of
    from repro.chaos.oracles import run_oracles
    from repro.experiments.runner import FidelityHarness
    from repro.experiments.site import SiteConfig, build_site
    from repro.observe.incidents import build_reports, reconcile
    from repro.trace import install_tracer

    scenario = scenario.normalized()
    scenario.validate()

    config = SiteConfig.test_scale(
        seed=scenario.seed, control_plane="paired", spare_servers=1,
        with_workload=False, with_feeds=False)
    site = build_site(config)
    tracer = install_tracer(site.sim)
    harness = FidelityHarness(site)
    if planted_bug:
        _plant_bug(site.admin)

    ep = Episode(scenario=scenario, site=site, harness=harness,
                 horizon=scenario.horizon)

    if site.ledger is not None:
        def collect(cond):
            ep.condition_markers.add(f"cond:{cond.kind}")
            if cond.status:
                ep.condition_markers.add(f"cond:{cond.kind}:{cond.status}")
        site.ledger.on_append(collect)

    injector = harness.injector
    book = _EpisodeBook(ep)

    def fire(ev):
        line = f"{site.sim.now:.0f} {ev.op} {ev.target}"
        try:
            _apply_event(site, injector, ev)
        except ValueError as exc:   # includes OverlappingFaultError
            ep.fizzled.append(f"{line} ({exc})")
            ep.fizzled_kinds.add(ev.op)
            return
        ep.applied.append(line)
        ep.applied_kinds.add(ev.op)

    book.fire = fire
    extras = dict(harness._extras())
    extras["episode"] = book

    if from_checkpoint is not None:
        from repro.persist import CheckpointManager, restore_site
        restore_site(CheckpointManager.load(from_checkpoint),
                     site=site, extras=extras)
    else:
        book.arm(site.sim.now, fire)  # warm-up already consumed ~400 s

    end = book.base + scenario.horizon
    if checkpoint_dir is not None:
        from repro.persist import CheckpointManager
        mgr = CheckpointManager(site, checkpoint_dir,
                                every_hours=checkpoint_every / 3600.0,
                                retain=1_000_000, extras=extras,
                                label=f"ep-{scenario.scenario_id}")
        while site.sim.now < end - 1e-9:
            site.sim.run(until=min(end, site.sim.now + checkpoint_every))
            if site.sim.now < end - 1e-9:
                mgr.epoch(force=True)
    else:
        site.sim.run(until=end)
    harness.scan_flags_for_detection()

    horizon = site.sim.now
    ep.horizon = horizon
    ep.reports = build_reports(
        tracer, downtime=harness.ledger, horizon=horizon,
        admin=site.admin, relocator=site.relocator)
    ep.reconciliation = reconcile(ep.reports, downtime=harness.ledger,
                                  horizon=horizon)
    ep.verdicts = run_oracles(ep, oracle_names)
    ep.coverage = signature_of(ep)
    return ep
