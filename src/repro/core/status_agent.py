"""Status intelliagents.

"Status intelliagents that dynamically generate status profiles for
servers, resources and services in terms of availability, load,
capacity and geographical location."  §3.4: the local status agent is
woken by cron, "compiles dynamically its local DLSP" (invoking the
local service probes), writes it under the agent log tree, and ships it
to the administration servers over the private network.

It also self-maintains "old local dynamic service profiles".
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.agent import Intelliagent
from repro.core.parts import Finding
from repro.ontology.dlsp import Dlsp, DlspBuilder, build_dlsp

__all__ = ["StatusAgent"]

DLSP_DIR = "/logs/intelliagents/dlsp"
DLSP_RETENTION = 3600.0     # keep an hour of profiles locally

#: every Nth profile is also built the exhaustive way and compared --
#: a live self-check that the incremental cache never drifts
FULL_REBUILD_EVERY = 8


class StatusAgent(Intelliagent):
    """One per host."""

    category = "status"
    RUN_CPU_SECONDS = 0.020

    def __init__(self, host, *, deliver: Optional[Callable[[Dlsp], None]] = None,
                 **kw):
        #: callback reaching the administration servers (wired by the
        #: suite; physically the bytes ride the agent channel)
        self.deliver = deliver
        self.profiles_built = 0
        self.profiles_delivered = 0
        self.rebuild_mismatches = 0
        super().__init__(host, "status", **kw)
        self._builder = DlspBuilder(host)
        host.fs.mkdir(DLSP_DIR)

    # status agents report, they do not repair
    def monitor(self) -> List[Finding]:
        return []

    def on_clean_run(self) -> None:
        self.build_and_ship()

    def build_and_ship(self) -> Optional[Dlsp]:
        dlsp = self._builder.build()
        self.profiles_built += 1
        if self.profiles_built % FULL_REBUILD_EVERY == 0:
            full = build_dlsp(self.host)
            if full.to_doc().render() != dlsp.to_doc().render():
                self.rebuild_mismatches += 1
                self._builder.invalidate()
                dlsp = full     # ground truth wins
                tracer = self.sim.tracer
                if tracer.enabled:
                    tracer.metrics.counter(
                        "status.rebuild_mismatches").inc()
        path = f"{DLSP_DIR}/{self.host.name}.{self.sim.now:.0f}"
        try:
            dlsp.write_to(self.host.fs, path)
        except Exception:
            pass        # a full disk must not stop the shipment
        self._prune_old_profiles()
        if self.deliver is not None and self.channel is not None:
            payload = sum(len(l) + 1 for l in dlsp.to_doc().render())
            for target in self.admin_targets:
                d = self.channel.send(self.host.name, target, payload)
                if d.ok:
                    self.deliver(dlsp)
                    self.profiles_delivered += 1
                    break       # one coordinator copy is enough (NFS-shared)
        elif self.deliver is not None:
            self.deliver(dlsp)
            self.profiles_delivered += 1
        return dlsp

    def _persist_extra(self) -> dict:
        """Counters plus the incremental builder's cache -- the cache
        determines which apps get re-probed (and probes have observable
        side effects, e.g. database transaction counts), so a resumed
        run must carry it over rather than rebuild cold."""
        b = self._builder
        return {
            "profiles_built": self.profiles_built,
            "profiles_delivered": self.profiles_delivered,
            "rebuild_mismatches": self.rebuild_mismatches,
            "builder": {
                "entries": {
                    name: [e.name, e.app_type, e.version, e.state,
                           e.port, e.healthy, e.response_ms]
                    for name, e in sorted(b._entries.items())},
                "fingerprints": {name: list(fp) for name, fp
                                 in sorted(b._fingerprints.items())},
                "load_key": b._load_key,
                "probes": b.probes,
                "reused": b.reused,
            },
        }

    def _restore_extra(self, extra: dict) -> None:
        from repro.ontology.dlsp import ServiceStatus
        self.profiles_built = int(extra["profiles_built"])
        self.profiles_delivered = int(extra["profiles_delivered"])
        self.rebuild_mismatches = int(extra["rebuild_mismatches"])
        b, saved = self._builder, extra["builder"]
        b._entries = {name: ServiceStatus(*row)
                      for name, row in saved["entries"].items()}
        b._fingerprints = {name: tuple(fp)
                           for name, fp in saved["fingerprints"].items()}
        b._load_key = saved["load_key"]
        b.probes = int(saved["probes"])
        b.reused = int(saved["reused"])

    def _prune_old_profiles(self) -> None:
        cutoff = self.sim.now - DLSP_RETENTION
        for path in self.host.fs.files_in_dir(DLSP_DIR):
            name = path.rsplit("/", 1)[-1]
            if not name.startswith(self.host.name + "."):
                continue
            try:
                stamp = float(name.rsplit(".", 1)[-1])
            except ValueError:
                continue
            if stamp < cutoff:
                self.host.fs.remove(path)
