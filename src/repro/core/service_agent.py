"""Application/service intelliagents.

One service agent per application.  "Application health is determined
by attempting to connect to them every Y minutes and run basic
commands" -- the agent's monitor is the application probe (HTTP get,
``select * from``, ...), read through its exit status.  "Their aim is
to ensure that local services run at all times and if not restart
them"; after a repair they "perform the prescribed connectivity tests
again and if there is a problem they cannot resolve they notify human
administrators".

Diagnosis order for a down service mirrors the paper's escalation of
remedies: recognise a configuration error (restore the known build),
recognise corruption (restore from backup), otherwise a plain crash
(restart).  A *hung* service -- processes present, probe dead -- is the
latent error §5 says restarts can clear.
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps.base import AppState
from repro.core.agent import Intelliagent
from repro.core.parts import Finding
from repro.core.reasoning import CausalRule, RuleEngine
from repro.ontology.slkt import Slkt

__all__ = ["ServiceAgent"]


def _grep_app_errors(host, app_name: str, contains: str,
                     window: float = 7200.0) -> bool:
    recs = host.syslog.grep(tag=app_name, min_severity="err",
                            since=host.sim.now - window,
                            contains=contains)
    return bool(recs)


class ServiceAgent(Intelliagent):
    """Looks after exactly one application."""

    category = "service"

    def __init__(self, host, app_name: str, *, slkt: Optional[Slkt] = None,
                 **kw):
        self.app_name = app_name
        self.slkt = slkt
        super().__init__(host, f"svc_{app_name}", **kw)

    @property
    def app(self):
        return self.host.apps.get(self.app_name)

    # -- monitoring ------------------------------------------------------------

    def monitor(self) -> List[Finding]:
        app = self.app
        if app is None:
            return [Finding("service-missing", self.app_name,
                            "application not installed")]
        if app.state is AppState.STARTING:
            return []       # let it finish; next wake re-checks
        if app.state is AppState.STOPPED and not app.auto_start:
            # an idle slot (a spare's cold standby) is stopped on
            # purpose; it only comes under watch once something (the
            # relocation orchestrator) starts it
            return []
        ok, ms, err = app.probe()
        if not ok:
            if err == "timeout" and app.processes_present():
                return [Finding("service-hung", self.app_name,
                                f"probe timeout after {ms:.0f} ms with "
                                "processes present")]
            return [Finding("service-down", self.app_name,
                            f"probe failed: {err or app.state.value}")]
        findings: List[Finding] = []
        # SLKT process-count constraint: running but missing daemons
        if self.slkt is not None and self.app_name in self.slkt.apps:
            for dev in self.slkt._check_app(self.host,
                                            self.slkt.apps[self.app_name]):
                if dev.kind == "proc-count":
                    findings.append(Finding("proc-missing", self.app_name,
                                            dev.detail))
        if ms > app.connect_timeout_ms * 0.5:
            findings.append(Finding("service-slow", self.app_name,
                                    f"response {ms:.0f} ms",
                                    severity="warning",
                                    metric=f"{self.app_name}_response_ms",
                                    value=ms))
        return findings

    # -- causal rules --------------------------------------------------------------

    def install_rules(self, engine: RuleEngine) -> None:
        name = self.app_name

        def is_misconfigured(host, finding) -> bool:
            # static diagnosis: the error log carries the startup abort
            return (_grep_app_errors(host, name, "configuration")
                    or _grep_app_errors(host, name, "startup parameters"))

        def is_corrupt(host, finding) -> bool:
            return (_grep_app_errors(host, name, "corrupt")
                    or _grep_app_errors(host, name, "corruption"))

        def is_crashed(host, finding) -> bool:
            app = host.apps.get(name)
            return app is not None and app.state in (AppState.CRASHED,
                                                     AppState.STOPPED)

        def is_hung(host, finding) -> bool:
            app = host.apps.get(name)
            return app is not None and app.state is AppState.HUNG

        def is_degraded_procs(host, finding) -> bool:
            app = host.apps.get(name)
            return app is not None and app.is_running()

        def host_overloaded(host, finding) -> bool:
            return host.load_average() > host.spec.max_load

        engine.extend([
            # ordered causes for a dead service
            CausalRule("service-down", "misconfiguration",
                       is_misconfigured, ("restore_config",)),
            CausalRule("service-down", "data-corruption",
                       is_corrupt, ("restore_data",)),
            CausalRule("service-down", "process-crash",
                       is_crashed, ("restart_app",)),
            # latent error: restart clears it
            CausalRule("service-hung", "latent-deadlock",
                       is_hung, ("restart_app",)),
            # missing worker daemons: bounce the app
            CausalRule("proc-missing", "partial-failure",
                       is_degraded_procs, ("restart_app",)),
            # slow service on an overloaded host: nothing to kill here,
            # the OS/resource agents own load problems; just report
            CausalRule("service-slow", "host-overload",
                       host_overloaded, ()),
        ])
