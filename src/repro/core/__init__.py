"""The paper's contribution: intelliagents, coordinators, reasoning.

- :mod:`flags` -- the flag-file protocol under ``/logs/intelliagents``.
- :mod:`thresholds` -- baselines ("min and max software and hardware
  related variables") with the paper's adjust-on-evidence rule.
- :mod:`reasoning` -- constraint-based causal reasoning over ontologies.
- :mod:`parts` -- the five agent parts (§3.3), each deactivatable.
- :mod:`agent` -- the Intelliagent base: cron-woken, non-resident,
  same-type lockout, flag production, self-maintenance.
- six agent categories -- :mod:`hardware_agent`, :mod:`os_agent`,
  :mod:`resource_agent`, :mod:`service_agent`, :mod:`status_agent`,
  :mod:`performance_agent`.
- :mod:`suite` -- installs the per-host agent complement and carries
  the Figures 3/4 overhead accounting.
- :mod:`admin` -- the HA administration-server pair: flag watchdog,
  DLSP collection, DGSPL generation, escalation.
- :mod:`jobmgr` -- LSF management and DGSPL/SLKT-driven resubmission.
"""

from repro.core.flags import FlagStore, FLAG_DIR
from repro.core.thresholds import Baselines, Breach
from repro.core.reasoning import CausalRule, Diagnosis, RuleEngine
from repro.core.parts import Finding, PartSwitches
from repro.core.agent import Intelliagent
from repro.core.hardware_agent import HardwareAgent
from repro.core.os_agent import OsNetworkAgent
from repro.core.resource_agent import ResourceAgent
from repro.core.service_agent import ServiceAgent
from repro.core.status_agent import StatusAgent
from repro.core.performance_agent import PerformanceAgent
from repro.core.suite import AgentSuite
from repro.core.admin import AdministrationServers
from repro.core.jobmgr import JobManager

__all__ = ["FlagStore", "FLAG_DIR", "Baselines", "Breach",
           "CausalRule", "Diagnosis", "RuleEngine", "Finding",
           "PartSwitches", "Intelliagent", "HardwareAgent",
           "OsNetworkAgent", "ResourceAgent", "ServiceAgent",
           "StatusAgent", "PerformanceAgent", "AgentSuite",
           "AdministrationServers", "JobManager"]
