"""Per-host agent complement.

"For each component there is one special intelliagent (such as one for
the CPU, one for the network card etc) ... All intelliagents run in
parallel, in a distributed manner and do not depend on each other."

The suite installs the standard complement on a host -- hardware, OS/
network, resource, performance, status, plus one service agent per
installed application -- staggered across the cron grid so wakes do not
pile up, and owns the Figures 3/4 overhead accounting: amortised CPU
(cron-run, non-resident) and the flat ~1.6 MB run-time footprint.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.agent import AGENT_PROC_MEM_MB, Intelliagent
from repro.core.hardware_agent import HardwareAgent
from repro.core.os_agent import OsNetworkAgent
from repro.core.performance_agent import PerformanceAgent
from repro.core.resource_agent import ResourceAgent
from repro.core.service_agent import ServiceAgent
from repro.core.status_agent import StatusAgent
from repro.core.thresholds import Baselines
from repro.ontology.slkt import Slkt, build_slkt
from repro.wake import TriggerBus

__all__ = ["AgentSuite"]


class AgentSuite:
    """All intelliagents installed on one host."""

    def __init__(self, host, *, period: float = 300.0, channel=None,
                 admin_targets: Optional[List[str]] = None,
                 notifications=None, nameservice=None,
                 deliver_dlsp: Optional[Callable] = None,
                 slkt: Optional[Slkt] = None, ledger=None,
                 wake_policy: str = "fixed",
                 wake_max_period: float = 1800.0):
        self.host = host
        self.period = float(period)
        self.wake_policy = wake_policy
        #: the host's static template, captured at installation time
        #: from the known-good build
        self.slkt = slkt or build_slkt(host)
        self.baselines = Baselines.for_host(host)
        self.agents: List[Intelliagent] = []

        common = dict(period=period, channel=channel,
                      admin_targets=admin_targets,
                      notifications=notifications, ledger=ledger,
                      wake_policy=wake_policy,
                      wake_max_period=wake_max_period)
        self.hardware = HardwareAgent(host, **common)
        self.osnet = OsNetworkAgent(host, baselines=self.baselines,
                                    nameservice=nameservice, **common)
        self.resource = ResourceAgent(host, baselines=self.baselines,
                                      **common)
        self.perf = PerformanceAgent(host, baselines=self.baselines,
                                     **common)
        self.status = StatusAgent(host, deliver=deliver_dlsp, **common)
        self.agents.extend([self.hardware, self.osnet, self.resource,
                            self.perf, self.status])
        self.service_agents: Dict[str, ServiceAgent] = {}
        for app_name in sorted(host.apps):
            agent = ServiceAgent(host, app_name, slkt=self.slkt, **common)
            self.service_agents[app_name] = agent
            self.agents.append(agent)
        self._stagger()
        #: host-local trigger bus (adaptive wakes only: the fixed grid
        #: is the A/B baseline and must keep pre-refactor behaviour)
        self.triggers: Optional[TriggerBus] = None
        if wake_policy == "adaptive":
            self.triggers = TriggerBus(host)
            self._wire_triggers()

    def _stagger(self) -> None:
        """Spread wakes across the grid; keeps each agent's detection
        bound at one period while avoiding a thundering herd."""
        n = len(self.agents)
        for i, agent in enumerate(self.agents):
            offset = (i * self.period / n) // 1.0
            self.host.crond.register(agent.name, agent.period, agent.run,
                                     offset=offset)
            agent.cron_job = self.host.crond.jobs[agent.name]

    def _wire_triggers(self) -> None:
        """Route each host-local signal class to the agents that own
        that aspect.  Predicates run in subscription order; dispatch is
        a demand-wake, de-bounced by the bus's per-agent cooldown."""
        bus = self.triggers
        bus.attach_syslog(min_severity="err")
        bus.watch_process_exits()
        for app in self.host.apps.values():
            bus.watch_app(app)
        bus.subscribe(self.hardware,
                      lambda t: t.kind == "syslog" and t.facility == "kern")
        bus.subscribe(self.osnet, lambda t: t.kind == "syslog")
        bus.subscribe(self.resource,
                      lambda t: t.kind in ("proc_exit", "threshold"))
        bus.subscribe(self.perf,
                      lambda t: t.kind in ("threshold",)
                      or (t.kind == "state" and t.detail == "degraded"))
        bus.subscribe(self.status,
                      lambda t: t.kind in ("state", "proc_exit"))
        for app_name, agent in self.service_agents.items():
            bus.subscribe(agent, lambda t, name=app_name: t.subject == name)

    # -- manual drive (tests, examples) ------------------------------------------

    def run_all_now(self) -> None:
        for agent in self.agents:
            agent.run()

    def demand_wake_all(self) -> int:
        """The admin watchdog's troubleshooting knock: wake the whole
        complement now.  Returns how many agents accepted the wake."""
        return sum(1 for agent in self.agents if agent.demand_wake())

    # -- Figures 3/4 accounting -------------------------------------------------------

    def cpu_pct(self) -> float:
        """Amortised CPU share of one CPU, percent: the sum of each
        agent's per-wake cost spread over its period, plus the cron
        dispatch overhead.  This is Fig. 3's intelliagent series."""
        cron_overhead = 0.002
        return sum(a.amortized_cpu_pct() for a in self.agents) + cron_overhead

    def memory_mb(self) -> float:
        """Run-time footprint: every agent process is tiny and short
        lived; the worst case is the whole complement awake at once.
        This is Fig. 4's flat intelliagent series (~1.6 MB for the
        standard 8-agent complement)."""
        return len(self.agents) * AGENT_PROC_MEM_MB

    # -- aggregate statistics -------------------------------------------------------------

    def totals(self) -> Dict[str, float]:
        out = {"runs": 0, "skipped": 0, "faults_found": 0,
               "heals_attempted": 0, "heals_succeeded": 0,
               "escalations": 0, "demand_wakes": 0, "cpu_seconds": 0.0}
        for a in self.agents:
            s = a.stats
            out["runs"] += s.runs
            out["skipped"] += s.skipped
            out["faults_found"] += s.faults_found
            out["heals_attempted"] += s.heals_attempted
            out["heals_succeeded"] += s.heals_succeeded
            out["escalations"] += s.escalations
            out["demand_wakes"] += s.demand_wakes
            out["cpu_seconds"] += s.cpu_seconds
        return out

    def agent(self, name: str) -> Intelliagent:
        for a in self.agents:
            if a.name == name:
                return a
        raise KeyError(f"no agent {name!r} on {self.host.name}")

    # -- persistence ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "agents": {a.name: a.snapshot_state() for a in self.agents},
            "triggers": (self.triggers.snapshot_state()
                         if self.triggers is not None else None),
        }

    def restore_state(self, state: dict) -> None:
        saved = state["agents"]
        names = {a.name for a in self.agents}
        if set(saved) != names:
            raise KeyError(
                f"{self.host.name}: suite snapshot agents {sorted(saved)} "
                f"!= rebuilt complement {sorted(names)}")
        for a in self.agents:
            a.restore_state(saved[a.name])
        if self.triggers is not None and state["triggers"] is not None:
            self.triggers.restore_state(state["triggers"])

    def claimed_seqs(self) -> List[int]:
        return [s for a in self.agents for s in a.claimed_seqs()]
