"""Hardware intelliagents.

"Hardware agents that look after hardware components (CPU, memory,
boards etc)."  Detection and pinpointing only: §4 concedes the software
"was unable to take care of ... hardware related errors", so the heal
path is a field-engineer request plus an immediate critical
notification -- the value is that the failed FRU is named within one
agent period instead of after hours of manual triage.
"""

from __future__ import annotations

from typing import List

from repro.core.agent import Intelliagent
from repro.core.parts import Finding
from repro.core.reasoning import CausalRule, RuleEngine

__all__ = ["HardwareAgent"]


class HardwareAgent(Intelliagent):
    """One per host."""

    category = "hardware"
    RUN_CPU_SECONDS = 0.012

    def __init__(self, host, **kw):
        super().__init__(host, "hardware", **kw)

    def monitor(self) -> List[Finding]:
        findings: List[Finding] = []
        res = self.host.shell.run("prtdiag")
        if res.ok:
            return findings
        # non-zero exit: parse the ASCII for the failed/degraded FRUs
        for line in res.stdout:
            name, _, state = line.partition(" ")
            if state == "failed":
                findings.append(Finding("hw-failed",
                                        f"{self.host.name}:{name}",
                                        "component failed"))
            elif state == "degraded":
                findings.append(Finding("hw-degraded",
                                        f"{self.host.name}:{name}",
                                        "correctable errors accumulating",
                                        severity="warning"))
        return findings

    def install_rules(self, engine: RuleEngine) -> None:
        engine.extend([
            CausalRule("hw-failed", "failed-fru", lambda h, f: True,
                       ("request_field_engineer",)),
            CausalRule("hw-degraded", "failing-fru", lambda h, f: True,
                       ("request_field_engineer",)),
        ])
