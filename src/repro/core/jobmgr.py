"""LSF management on the administration servers (§4).

"Intelliagents ... were also used to automatically monitor and
reschedule batch jobs if these failed ... If jobs failed, intelliagents
residing on the administration servers resubmitted them not based on
the manual LSF settings and rules for job submissions, but based on the
dynamically generated DGSPs."

Selection rule: prefer "a server of equal or higher in power than the
server that failed" (from the SLKT), exclude servers the job already
failed on, take the head of the load-ordered shortlist.  If nothing
qualifies the constraints relax (a degraded placement beats none), and
if no server can be found at all, humans get email -- all three
behaviours straight from §4.

The manager also runs the §4 five-minute LSF checks (master processes
up, databases up, per-server job counts, time left per job) and emails
the daily summary report.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.batch.jobs import BatchJob, JobState
from repro.sim.calendar import DAY

__all__ = ["JobManager"]


class JobManager:
    """DGSPL-driven batch-job babysitter."""

    MAX_RESUBMITS = 3
    CHECK_PERIOD = 300.0        # "checked every 5 minutes"

    def __init__(self, admin, lsf, *, notifications=None,
                 daily_report: bool = True):
        self.admin = admin
        self.lsf = lsf
        self.sim = admin.sim
        self.notifications = notifications
        self.resubmitted = 0
        self.gave_up = 0
        self.lsf_restarts_requested = 0
        self.checks_run = 0
        self.daily_reports_sent = 0
        lsf.on_job_exit(self._job_exited)
        for head in (admin.primary, admin.standby):
            head.crond.register("jobmgr_check", self.CHECK_PERIOD,
                                admin._make_guarded(head, self._check))
            if daily_report:
                head.crond.register(
                    "jobmgr_daily", DAY,
                    admin._make_guarded(head, self._daily_report))

    # -- resubmission ------------------------------------------------------------

    def _job_exited(self, job: BatchJob) -> None:
        if job.state is not JobState.FAILED:
            return
        if self.admin.active() is None:
            return              # both coordinators down: nothing watches
        tracer = self.sim.tracer
        with tracer.span("jobmgr.resubmit", job=job.job_id,
                         failed_on=",".join(job.failed_on)) as span:
            if job.resubmits >= self.MAX_RESUBMITS:
                span.set_attr("outcome", "gave-up")
                self._give_up(job,
                              f"{job.resubmits} resubmissions exhausted")
                return
            server = self._select_server(job)
            if server is None:
                span.set_attr("outcome", "gave-up")
                self._give_up(job, "no eligible database server")
                return
            job.requested_server = server
            span.set_attr("server", server)
            if self.lsf.resubmit(job):
                self.resubmitted += 1
                span.set_attr("outcome", "resubmitted")
                if tracer.enabled:
                    tracer.metrics.counter("jobmgr.resubmitted").inc()
            else:
                span.set_attr("outcome", "gave-up")
                self._give_up(job, "LSF master is down")

    def _select_server(self, job: BatchJob) -> Optional[str]:
        """The DGSPL shortlist with the SLKT power rule."""
        dgspl = self.admin.current_dgspl()
        if dgspl is None:
            return None
        min_power = 0.0
        if job.failed_on:
            min_power = dgspl.power_of(job.failed_on[-1])
        exclude = list(job.failed_on)
        shortlist = dgspl.shortlist("database", min_power=min_power,
                                    exclude_servers=exclude)
        if not shortlist:
            shortlist = dgspl.shortlist("database",
                                        exclude_servers=exclude)
        if not shortlist:
            shortlist = dgspl.shortlist("database")
        live = {db.host.name: db for db in self.lsf.servers}
        # first pass: healthy servers with a free slot right now.  The
        # DGSPL's load figures can be minutes stale (it regenerates
        # every ~15 min), so re-rank the eligible candidates by the
        # *live* state the five-minute checks also read -- otherwise a
        # burst of rescues herds onto whichever server looked idle in
        # the last snapshot.
        eligible = []
        for rank, entry in enumerate(shortlist):
            db = live.get(entry.server)
            if (db is not None and db.is_healthy()
                    and db.job_count() < db.max_job_slots):
                eligible.append((db.overload_factor(),
                                 db.job_count() / db.max_job_slots,
                                 rank, entry.server))
        if eligible:
            eligible.sort()
            return eligible[0][3]
        # everything is momentarily full: queue on the best healthy
        # server rather than giving up (LSF dispatches when a slot
        # frees; only a site with no live database is hopeless).
        # The DGSPL can lag a crash by up to a cycle, hence the
        # double-check against the live scheduler state.
        for entry in shortlist:
            db = live.get(entry.server)
            if db is not None and db.is_healthy():
                return entry.server
        return None

    def _give_up(self, job: BatchJob, reason: str) -> None:
        self.gave_up += 1
        if self.sim.tracer.enabled:
            self.sim.tracer.metrics.counter("jobmgr.gave_up").inc()
        if self.notifications is not None:
            self.notifications.email(
                "operators",
                f"job {job.job_id} ({job.name}) needs manual handling",
                body=f"{reason}; failed on: {', '.join(job.failed_on)}",
                severity="critical", sender="jobmgr")

    # -- the five-minute checks -----------------------------------------------------

    def _check(self) -> None:
        self.checks_run += 1
        if not self.lsf.up:
            self.lsf_restarts_requested += 1
            master = self.lsf.master
            if master.host.is_up:
                # the master host's own service agent will restart it;
                # the manager restarts it directly if nothing else did
                master.host.shell.run(f"{master.name}_ctl start")
            elif self.notifications is not None:
                self.notifications.sms(
                    "oncall-admin", "LSF master host is down",
                    severity="critical", sender="jobmgr")

    # -- persistence -------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Counters only; the five-minute checks and the daily report
        re-arm through the admin heads' crond snapshots."""
        return {
            "resubmitted": self.resubmitted,
            "gave_up": self.gave_up,
            "lsf_restarts_requested": self.lsf_restarts_requested,
            "checks_run": self.checks_run,
            "daily_reports_sent": self.daily_reports_sent,
        }

    def restore_state(self, state: dict) -> None:
        self.resubmitted = int(state["resubmitted"])
        self.gave_up = int(state["gave_up"])
        self.lsf_restarts_requested = int(state["lsf_restarts_requested"])
        self.checks_run = int(state["checks_run"])
        self.daily_reports_sent = int(state["daily_reports_sent"])

    def snapshot(self) -> Dict[str, object]:
        """What §4 says the agents recorded every cycle."""
        per_server = {db.host.name: db.job_count()
                      for db in self.lsf.servers}
        running = list(self.lsf.running.values())
        return {
            "lsf_up": self.lsf.up,
            "jobs_running": len(running),
            "jobs_pending": len(self.lsf.pending),
            "time_left_s": {j.job_id: j.time_left(self.sim.now)
                            for j in running},
            "jobs_per_server": per_server,
        }

    # -- daily summary ------------------------------------------------------------------

    def _daily_report(self) -> None:
        if self.notifications is None:
            return
        stats = self.lsf.queue_stats()
        self.daily_reports_sent += 1
        self.notifications.email(
            "administrators", "daily batch summary",
            body=(f"done={stats['done']} failed={stats['failed']} "
                  f"pending={stats['pending']} "
                  f"resubmitted={self.resubmitted} "
                  f"gave_up={self.gave_up}"),
            severity="info", sender="jobmgr")
