"""Baselines and thresholds (§3.6).

"Baselines were set based on the hardware configuration of each system
and the application type it was running ... Every time a baseline
setting was not proven to be correct, we adjusted it accordingly."

A :class:`Baselines` object holds per-metric (min, max) bands -- the
"minimum and maximum software and hardware related variables" the
static ontologies carry -- seeded from the host spec and installed
application types, and supports the paper's adjust-on-evidence rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Band", "Breach", "Baselines"]


@dataclass
class Band:
    """Acceptable range for one metric.  None = unbounded on that side."""

    lo: Optional[float]
    hi: Optional[float]
    adjustments: int = 0

    def violated_by(self, value: float) -> Optional[str]:
        if self.hi is not None and value > self.hi:
            return "high"
        if self.lo is not None and value < self.lo:
            return "low"
        return None


@dataclass(frozen=True)
class Breach:
    """One threshold violation."""

    metric: str
    value: float
    direction: str         # "high" | "low"
    limit: float


class Baselines:
    """Per-host metric bands."""

    def __init__(self):
        self.bands: Dict[str, Band] = {}

    def set_band(self, metric: str, lo: Optional[float],
                 hi: Optional[float]) -> Band:
        band = Band(lo, hi)
        self.bands[metric] = band
        return band

    def band(self, metric: str) -> Optional[Band]:
        return self.bands.get(metric)

    # -- checking ---------------------------------------------------------------

    def check(self, metrics: Dict[str, float]) -> List[Breach]:
        """Compare a metric snapshot against the bands."""
        breaches: List[Breach] = []
        for metric, value in metrics.items():
            band = self.bands.get(metric)
            if band is None:
                continue
            direction = band.violated_by(value)
            if direction is not None:
                limit = band.hi if direction == "high" else band.lo
                breaches.append(Breach(metric, value, direction,
                                       float(limit)))
        return breaches

    # -- the adjust-on-evidence rule ------------------------------------------------

    def adjust(self, metric: str, observed: float,
               margin: float = 0.2) -> None:
        """A human confirmed `observed` was actually fine: widen the
        violated side to cover it plus a margin.  "This happened quite
        often in the case of newly installed applications primarily."
        """
        band = self.bands.get(metric)
        if band is None:
            return
        if band.hi is not None and observed > band.hi:
            band.hi = observed * (1.0 + margin)
            band.adjustments += 1
        elif band.lo is not None and observed < band.lo:
            band.lo = observed * (1.0 - margin)
            band.adjustments += 1

    # -- seeding -----------------------------------------------------------------------

    @classmethod
    def for_host(cls, host) -> "Baselines":
        """Expert-informed defaults from the hardware spec and the
        application types installed (§3.6's measurement list)."""
        b = cls()
        spec = host.spec
        ram = float(spec.ram_mb)
        b.set_band("run_queue", None, spec.max_load * spec.cpus)
        b.set_band("scan_rate", None, 200.0)
        b.set_band("page_out", None, 100.0)
        b.set_band("page_faults", None, 500.0)
        b.set_band("free_mb", ram * 0.05, None)
        b.set_band("cpu_idle", 5.0, None)
        b.set_band("load_avg", None, spec.max_load)
        b.set_band("worst_asvc_t", None, 60.0)       # ms
        b.set_band("worst_user_cpu", None, 90.0)     # one user hogging
        b.set_band("total_errs", None, 50.0)
        for mount in host.fs.mounts:
            key = "root" if mount == "/" else mount.strip("/").replace("/", "_")
            b.set_band(f"fs_{key}_pct", None, 90.0)
        for app in host.apps.values():
            # application response bands from the developer-provided
            # connect timeouts (§3.2)
            b.set_band(f"{app.name}_response_ms", None,
                       app.connect_timeout_ms * 0.5)
        return b
