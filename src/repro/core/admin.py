"""Administration servers (§3.1.2).

"Dedicated administration servers that act as external agent
coordinators in a high-availability failover configuration and share a
common pool of NFS mounted disks, to avoid single points of failure."

Duties implemented here:

- **Flag watchdog** -- "Administration servers monitor the creation of
  these flags every X+5 minutes ... If these flags are not there, they
  start troubleshooting intelliagent processes."  A host whose agents
  stopped flagging gets its cron restarted remotely; a host that is
  down gets escalated to humans.
- **DLSP collection and DGSPL generation** -- profiles arrive from the
  status agents; "the administration servers generated dynamic global
  service profile lists per database type every 15 minutes on average",
  persisted to the shared NFS pool.
- **HA failover** -- both heads run the same cron jobs; only the active
  one (primary if up, else standby) acts.  State lives in the pool, so
  a failover loses nothing.

**Control-plane modes.**  The observation path behind both duties runs
in one of three modes (``control_plane=``):

- ``"scan"`` -- the paper-faithful full rescan: every sweep reads every
  agent's flag directory and every DGSPL build walks every DLSP.
  O(hosts x agents) per cycle; kept as the ``centralised``-style
  ablation arm.
- ``"ledger"`` (default) -- the incremental path: flag raises and DLSP
  arrivals append conditions to the site ledger
  (:mod:`repro.controlplane`); a sweep consumes only conditions newer
  than its cursor, staleness comes from the deadline wheel, and only
  *candidate* hosts (due, down, or latched) are examined.  O(changes).
- ``"paired"`` -- runs both every cycle, asserts the ledger plan equals
  the scan plan (``sweep_mismatches`` / ``dgspl_mismatches`` count any
  divergence) and applies the scan result.  The regression harness for
  the refactor.

Both watchdog paths produce a *sweep plan* -- an ordered list of
(action, host, reason) decisions -- through the identical per-host
judgement; they differ only in which hosts they examine and where the
flag-freshness numbers come from.  Every planned decision is appended
to :attr:`decisions`, so two runs of the same campaign in different
modes can be compared byte for byte.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.controlplane import ConditionLedger, DeadlineWheel
from repro.core.flags import FlagStore
from repro.core.healing import apply_action
from repro.ontology.dgspl import Dgspl, build_dgspl, host_entries
from repro.ontology.dlsp import Dlsp

__all__ = ["AdministrationServers"]

_NEG_INF = float("-inf")


class AdministrationServers:
    """The coordinator pair."""

    DGSPL_PERIOD = 900.0        # 15 minutes
    #: "every 15 to 30 minutes we initiated a dummy process to run
    #: through all application components, simulating a user" (§3.6)
    SVC_PROBE_PERIOD = 1800.0

    def __init__(self, dc, primary, standby, pool, *, channel=None,
                 notifications=None, relocator=None,
                 agent_period: float = 300.0,
                 ledger: Optional[ConditionLedger] = None,
                 control_plane: str = "ledger"):
        if control_plane not in ("scan", "ledger", "paired"):
            raise ValueError(
                f"unknown control plane mode {control_plane!r}")
        self.dc = dc
        self.sim = dc.sim
        self.primary = primary
        self.standby = standby
        self.pool = pool
        self.channel = channel
        self.notifications = notifications
        #: optional relocation tier (repro.relocate.ServiceRelocator);
        #: sits between local healing and paging the on-call human
        self.relocator = relocator
        #: which federation site this admin pair administers (single-site
        #: worlds keep the default; the federation stamps its site name)
        self.site_name = "london"
        #: optional cross-site escalation hook wired by the federation:
        #: ``cb(host_name, reason) -> int`` tries to land the host's
        #: services at another site and returns how many relocations it
        #: started.  It is the tier between local relocation and paging.
        self.cross_site_cb = None
        self.agent_period = float(agent_period)
        #: "every X+5 minutes, where X is the frequency intelliagent run"
        self.watch_period = self.agent_period + 300.0
        #: slack added to an agent's *current* wake interval before its
        #: flags count as stale.  With fixed-period agents the staleness
        #: gap (interval + grace) equals ``watch_period`` exactly, which
        #: is the pre-adaptive contract; adaptive agents publish their
        #: interval through the ledger so backed-off hosts are not
        #: falsely judged quiet.
        self.flag_grace = 300.0
        #: published wake interval per (host, agent); absent means the
        #: configured base period
        self._intervals: Dict[Tuple[str, str], float] = {}
        #: hosts knocked with a demand wake, awaiting the verdict sweep
        self._demand_woken: Dict[str, float] = {}
        self.demand_wakes = 0

        self.control_plane = control_plane
        if ledger is None and control_plane != "scan":
            ledger = ConditionLedger()
        self.ledger = ledger
        self._flag_cursor = (ledger.subscribe("admin-watchdog")
                             if ledger is not None else None)
        self._dlsp_cursor = (ledger.subscribe("admin-dgspl")
                             if ledger is not None else None)
        #: the evolving model: freshest flag time per (host, agent)
        self._latest_flags: Dict[Tuple[str, str], float] = {}
        self._wheel = DeadlineWheel()
        self._down_hosts: set = set()
        #: canonical sweep order (suite registration order, which is
        #: what the full scan iterates) -- both planners emit decisions
        #: in this order so the logs are comparable byte for byte
        self._suite_order: Dict[str, int] = {}
        #: applied-decision log: "t action host reason" per decision
        self.decisions: List[str] = []
        #: the same log as typed records (time, action, host, reason)
        #: for the incident-report joiner; the string form above stays
        #: byte-comparable across control-plane modes
        self.decision_log: List[Tuple[float, str, str, str]] = []
        self.sweep_mismatches = 0
        self.dgspl_mismatches = 0
        self.model_resyncs = 0
        #: per-host cached DGSPL contributions (ledger mode)
        self._dgspl_cache: Dict[str, list] = {}

        if pool is not None:
            pool.add_server(primary)
            pool.add_server(standby)

        #: monitored hosts -> their agent suites
        self.suites: Dict[str, object] = {}
        #: when each suite came under watch (warm-up grace)
        self._registered_at: Dict[str, float] = {}
        #: freshest DLSP per host
        self.dlsps: Dict[str, Dlsp] = {}
        self.dgspl: Optional[Dgspl] = None
        self.dgspl_generations = 0
        self.cron_repairs = 0
        self.hosts_escalated: set = set()
        #: escalated hosts that have come back up since their page; a
        #: further failure is a new incident, not the one already paged
        self._recovered_since: set = set()
        self.pool_write_failures = 0
        self.failovers = 0
        self._last_active: Optional[str] = None

        #: distributed services under end-to-end watch
        self.services: List[object] = []
        self.services_unhealthy: set = set()
        self.service_probes = 0
        self.service_probe_failures = 0

        for head in (primary, standby):
            head.crond.register("admin_watchdog", self.watch_period,
                                self._make_guarded(head, self._watchdog))
            head.crond.register("admin_dgspl", self.DGSPL_PERIOD,
                                self._make_guarded(head, self._build_dgspl))
            head.crond.register("admin_svcprobe", self.SVC_PROBE_PERIOD,
                                self._make_guarded(head,
                                                   self._probe_services))

    # -- HA -----------------------------------------------------------------------

    def active(self):
        """The coordinator currently in charge (primary unless down)."""
        head = (self.primary if self.primary.is_up
                else self.standby if self.standby.is_up else None)
        name = head.name if head is not None else None
        if name != self._last_active:
            if self._last_active is not None:
                self.failovers += 1
            self._last_active = name
        return head

    def _make_guarded(self, head, fn):
        def guarded():
            if self.active() is head:
                fn()
        return guarded

    # -- registration -----------------------------------------------------------------

    def register_suite(self, suite) -> None:
        host = suite.host
        self.suites[host.name] = suite
        self._suite_order[host.name] = len(self._suite_order)
        registered = self.sim.now
        self._registered_at[host.name] = registered
        # a boot re-arms the escalation latch even when the host flaps
        # faster than the watchdog can observe it green
        host.up_signal.subscribe(
            lambda _v, name=host.name: self._host_recovered(name))
        if self.ledger is not None:
            # bind the suite's flag stores to the ledger (idempotent if
            # the suite was already built with one) and bootstrap the
            # model from the flags already on disk
            for agent in suite.agents:
                agent.flags.bind(self.ledger, host.name,
                                 self._flag_reachable)
                key = (host.name, agent.name)
                latest = agent.flags.latest_time()
                self._latest_flags[key] = latest
                period = getattr(getattr(agent, "wake", None),
                                 "current_period", self.agent_period)
                if period != self.agent_period:
                    self._intervals[key] = period
                if latest > _NEG_INF:
                    deadline = latest + period + self.flag_grace
                else:
                    # never flagged: first judgeable the moment the
                    # warm-up grace expires
                    deadline = (registered + self.watch_period
                                + self.agent_period)
                self._wheel.set_deadline(key, deadline)
            host.up_signal.subscribe(
                lambda _v, name=host.name: self._host_state(name, True))
            host.down_signal.subscribe(
                lambda reason, name=host.name:
                self._host_state(name, False, str(reason or "")))
            if not host.is_up:
                self._down_hosts.add(host.name)

    def _host_state(self, host_name: str, up: bool,
                    reason: str = "") -> None:
        if up:
            self._down_hosts.discard(host_name)
        else:
            self._down_hosts.add(host_name)
        self.ledger.append("host", host_name,
                           status="up" if up else "down",
                           time=self.sim.now, detail=reason)

    def _flag_reachable(self, host_name: str) -> bool:
        """The delivery leg of a flag condition: can the host currently
        reach either coordinator?  (Without a channel the transport is
        assumed perfect, as for DLSP delivery.)"""
        if self.channel is None:
            return True
        for head in (self.primary, self.standby):
            if head.is_up and self.channel.reachable(host_name, head.name):
                return True
        return False

    def register_service(self, service) -> None:
        """Put a distributed service under dummy-user end-to-end watch."""
        self.services.append(service)

    def _probe_services(self) -> None:
        """The dummy user: walk every registered service end to end.
        Failures the local agents cannot see (network legs between
        components, cross-host dependency chains) surface here."""
        if self.active() is None:
            return
        tracer = self.sim.tracer
        probe_span = tracer.span("admin.service_probe",
                                 services=len(self.services))
        failures = 0
        for svc in self.services:
            self.service_probes += 1
            ok, ms, err = svc.end_to_end_probe()
            if ok:
                self.services_unhealthy.discard(svc.name)
                continue
            failures += 1
            self.service_probe_failures += 1
            if svc.name in self.services_unhealthy:
                continue        # already reported this outage
            self.services_unhealthy.add(svc.name)
            if self.notifications is not None:
                self.notifications.email(
                    "administrators",
                    f"service {svc.name} failing end-to-end: {err}",
                    severity="critical", sender="admin-servers")
            self._log_pool(f"{self.sim.now:.0f} SERVICE-DOWN "
                           f"{svc.name}: {err}")
        probe_span.finish(failures=failures)
        if tracer.enabled:
            tracer.metrics.counter("admin.service_probes").inc(
                len(self.services))
            if failures:
                tracer.metrics.counter("admin.probe_failures").inc(failures)

    def receive_dlsp(self, dlsp: Dlsp) -> None:
        """Called (over the agent channel) by the status agents."""
        self.dlsps[dlsp.hostname] = dlsp
        if self.ledger is not None:
            self.ledger.append("dlsp", dlsp.hostname,
                               time=dlsp.generated_at)
        head = self.active()
        if self.pool is not None and head is not None:
            try:
                self.pool.write(head, f"/dlsp/{dlsp.hostname}",
                                dlsp.to_doc().render())
            except Exception as exc:
                # pool outage: keep the in-memory copy, but observably
                self._pool_write_failed(head, f"dlsp/{dlsp.hostname}", exc)

    # -- the flag watchdog -----------------------------------------------------------------

    def _watchdog(self) -> None:
        head = self.active()
        if head is None:
            return
        now = self.sim.now
        mode = self.control_plane
        tracer = self.sim.tracer
        sweep_span = tracer.span("admin.flag_sweep", head=head.name,
                                 hosts=len(self.suites), mode=mode)
        if tracer.enabled:
            tracer.metrics.counter("admin.flag_sweeps").inc()
        if mode == "scan":
            plan = self._plan_sweep_scan(now, head)
            examined = len(self.suites)
        else:
            plan, examined = self._plan_sweep_ledger(now, head)
            if mode == "paired":
                scan_plan = self._plan_sweep_scan(now, head)
                if plan != scan_plan:
                    self.sweep_mismatches += 1
                    if tracer.enabled:
                        tracer.metrics.counter(
                            "admin.sweep_mismatches").inc()
                    plan = scan_plan    # full scan is ground truth
        stale_hosts = self._apply_sweep(now, plan)
        sweep_span.finish(stale_hosts=stale_hosts, examined=examined,
                          decisions=len(plan))

    def _judge_host(self, host_name: str, suite, now: float, head,
                    stale: Optional[List[str]]) -> Optional[tuple]:
        """The per-host decision, identical for both planners: the
        caller supplies the stale-agent list from its own source of
        truth (``None`` means "compute from the flag directories")."""
        host = self.dc.hosts.get(host_name)
        if host is None:
            return None
        # warm-up: a freshly registered suite has not had a full grid
        # of wakes yet; judging it stale would be a false alarm
        registered = self._registered_at.get(host_name, 0.0)
        if now - registered < self.watch_period + self.agent_period:
            return None
        if not host.is_up:
            return ("escalate", host_name, "host is down")
        # reach the host over the agent network first
        if self.channel is not None:
            d = self.channel.send(head.name, host_name, 256)
            if not d.ok:
                return ("escalate", host_name, f"unreachable: {d.error}")
        if stale is None:
            stale = self._stale_agents(host, suite, now)
        if not stale:
            # flags green again: a latched host gets its escalation
            # latch cleared so the next failure is a new incident
            if (host_name in self.hosts_escalated
                    or host_name in self._recovered_since
                    or host_name in self._demand_woken):
                return ("clear", host_name, "")
            return None
        # "they start troubleshooting intelliagent processes": the
        # usual cause of *all* flags stopping is a dead cron
        if len(stale) == len(suite.agents) and not host.crond.running:
            return ("cron_repair", host_name, "")
        reason = f"agents not flagging: {', '.join(sorted(stale))}"
        # first offence gets a troubleshooting knock: demand-wake the
        # complement and give it one sweep to flag before escalating
        if host_name not in self._demand_woken:
            return ("demand_wake", host_name, reason)
        return ("escalate", host_name, reason)

    def _plan_sweep_scan(self, now: float, head) -> List[tuple]:
        """The paper-faithful planner: examine every host, read every
        flag directory.  O(hosts x agents) per sweep."""
        plan = []
        for host_name, suite in self.suites.items():
            decision = self._judge_host(host_name, suite, now, head,
                                        stale=None)
            if decision is not None:
                plan.append(decision)
        return plan

    def _plan_sweep_ledger(self, now: float, head) -> tuple:
        """The incremental planner: consume new conditions, then
        examine only candidate hosts -- due on the deadline wheel,
        currently down, or still latched.  O(changes)."""
        conds, overrun = self._flag_cursor.poll()
        if overrun:
            self._resync_model(now)
        for c in conds:
            if c.kind == "wake":
                self._note_wake_condition(c)
                continue
            if c.kind != "flag":
                continue
            key = (c.host, c.agent)
            if key not in self._latest_flags:
                continue        # agent not under watch
            if c.time > self._latest_flags[key]:
                self._latest_flags[key] = c.time
                self._wheel.set_deadline(key,
                                         c.time + self._ledger_gap(key))
        candidates = {key[0] for key in self._wheel.due(now)}
        candidates |= self._down_hosts & self.suites.keys()
        candidates |= self.hosts_escalated
        candidates |= self._recovered_since
        candidates |= self._demand_woken.keys() & self.suites.keys()
        # the reachability leg: a host whose links all die emits no
        # condition (silence is not a delta), so the incremental model
        # alone cannot see it until the flag deadline fires -- under
        # deep adaptive-wake backoff that window is half an hour, and
        # the scan plan (which probes the channel on every host every
        # sweep) escalates immediately.  Probe liveness directly; the
        # probe is byte-free, and on a healthy site it adds no
        # candidates, keeping quiet sweeps at zero examined hosts.
        if self.channel is not None:
            for host_name in self.suites:
                if host_name in candidates:
                    continue
                host = self.dc.hosts.get(host_name)
                if (host is not None and host.is_up
                        and not self.channel.reachable(head.name,
                                                       host_name)):
                    candidates.add(host_name)
        order = self._suite_order
        plan = []
        for host_name in sorted(candidates,
                                key=lambda h: order.get(h, 1 << 30)):
            suite = self.suites.get(host_name)
            if suite is None:
                continue
            stale = [a.name for a in suite.agents
                     if now - self._latest_flags.get(
                         (host_name, a.name), _NEG_INF)
                     > self._ledger_gap((host_name, a.name))]
            decision = self._judge_host(host_name, suite, now, head,
                                        stale=stale)
            if decision is not None:
                plan.append(decision)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("admin.conditions_consumed").inc(
                len(conds))
            tracer.metrics.counter("admin.sweep_candidates").inc(
                len(candidates))
        return plan, len(candidates)

    def _live_gap(self, agent) -> float:
        """Staleness gap from the agent's live wake controller (the
        scan path's source of truth).  Agents without one -- fixtures,
        stubs -- judge at the configured base period."""
        period = getattr(getattr(agent, "wake", None), "current_period",
                         self.agent_period)
        return period + self.flag_grace

    def _ledger_gap(self, key: Tuple[str, str]) -> float:
        """Staleness gap from the published interval model (the ledger
        path's source of truth)."""
        return self._intervals.get(key, self.agent_period) + self.flag_grace

    def _note_wake_condition(self, c) -> None:
        """An agent published its wake interval: widen (or narrow) that
        agent's staleness gap and re-set its deadline accordingly."""
        if c.status != "interval":
            return              # "demand" markers are audit-only
        key = (c.host, c.agent)
        if key not in self._latest_flags:
            return              # agent not under watch
        try:
            interval = float(c.detail)
        except ValueError:
            return
        self._intervals[key] = interval
        latest = self._latest_flags[key]
        if latest > _NEG_INF:
            self._wheel.set_deadline(key,
                                     latest + interval + self.flag_grace)

    def _resync_model(self, now: float) -> None:
        """Cursor overrun: the ledger was trimmed past us, so deltas
        are gone.  Rebuild the model from ground truth (one full
        rescan), then resume incrementally."""
        self.model_resyncs += 1
        for host_name, suite in self.suites.items():
            host = self.dc.hosts.get(host_name)
            if host is None:
                continue
            registered = self._registered_at.get(host_name, 0.0)
            for agent in suite.agents:
                key = (host_name, agent.name)
                latest = FlagStore(host.fs, agent.name).latest_time()
                self._latest_flags[key] = latest
                period = getattr(getattr(agent, "wake", None),
                                 "current_period", self.agent_period)
                if period != self.agent_period:
                    self._intervals[key] = period
                else:
                    self._intervals.pop(key, None)
                if latest > _NEG_INF:
                    deadline = latest + period + self.flag_grace
                else:
                    deadline = (registered + self.watch_period
                                + self.agent_period)
                self._wheel.set_deadline(key, deadline)

    def _apply_sweep(self, now: float, plan: List[tuple]) -> int:
        stale_hosts = 0
        tracer = self.sim.tracer
        for action, host_name, reason in plan:
            self.decisions.append(
                f"{now:.0f} {action} {host_name} {reason}".rstrip())
            self.decision_log.append((now, action, host_name, reason))
            if action == "clear":
                self.hosts_escalated.discard(host_name)
                self._recovered_since.discard(host_name)
                self._demand_woken.pop(host_name, None)
            elif action == "demand_wake":
                stale_hosts += 1
                self._demand_woken[host_name] = now
                self.demand_wakes += 1
                if tracer.enabled:
                    tracer.metrics.counter("admin.demand_wakes").inc()
                if self.ledger is not None:
                    self.ledger.append("wake", host_name, status="demand",
                                       time=now, detail=reason)
                suite = self.suites.get(host_name)
                wake_all = getattr(suite, "demand_wake_all", None)
                woken = wake_all() if wake_all is not None else 0
                self._log_pool(f"{now:.0f} DEMAND-WAKE {host_name} "
                               f"({woken} agent(s)): {reason}")
            elif action == "cron_repair":
                stale_hosts += 1
                host = self.dc.hosts.get(host_name)
                if host is None:
                    continue
                apply_action("restart_cron", host, "crond")
                self.cron_repairs += 1
                if tracer.enabled:
                    tracer.metrics.counter("admin.cron_repairs").inc()
                self._log_pool(f"{now:.0f} restarted crond on {host_name}")
            else:
                if reason.startswith("agents not flagging"):
                    stale_hosts += 1
                self._escalate_host(host_name, reason)
        return stale_hosts

    def _stale_agents(self, host, suite, now: float) -> List[str]:
        stale = []
        for agent in suite.agents:
            latest = FlagStore(host.fs, agent.name).latest_time()
            if now - latest > self._live_gap(agent):
                stale.append(agent.name)
        return stale

    def _host_recovered(self, host_name: str) -> None:
        """The host booted; if it was escalated, mark the incident as
        over so a relapse escalates again (fired from ``up_signal``,
        which also covers flaps too fast for the watchdog to see)."""
        if host_name in self.hosts_escalated:
            self._recovered_since.add(host_name)

    def _escalate_host(self, host_name: str, reason: str) -> None:
        """Local healing failed: relocate if we can, else page a human.
        One escalation per incident -- a recovery re-arms the latch."""
        if host_name in self.hosts_escalated:
            if host_name not in self._recovered_since:
                return
            self._recovered_since.discard(host_name)
        self.hosts_escalated.add(host_name)
        if self.relocator is not None:
            started = self.relocator.relocate_host(host_name, reason)
            if started:
                self._log_pool(f"{self.sim.now:.0f} RELOCATING "
                               f"{host_name} ({started} service(s)): "
                               f"{reason}")
                return
        if self.cross_site_cb is not None:
            moved = self.cross_site_cb(host_name, reason)
            if moved:
                self._log_pool(f"{self.sim.now:.0f} CROSS-SITE RELOCATING "
                               f"{host_name} ({moved} service(s)) off "
                               f"{self.site_name}: {reason}")
                return
        self._page_human(host_name, reason)

    def _page_human(self, host_name: str, reason: str) -> None:
        """The last tier: SMS the on-call administrator."""
        if self.notifications is not None:
            self.notifications.sms(
                "oncall-admin",
                f"admin: {host_name} needs attention ({reason})",
                severity="critical", sender="admin-servers")
        self._log_pool(f"{self.sim.now:.0f} ESCALATED {host_name}: {reason}")

    # -- DGSPL generation ---------------------------------------------------------------------

    @property
    def dlsp_freshness_window(self) -> float:
        """The base-period window (kept for callers that want the
        configured floor; per-host staleness uses :meth:`_dlsp_window`)."""
        return 2 * self.agent_period + 60.0

    def _status_interval(self, host_name: str) -> float:
        """The status agent's current wake interval for a host: the
        published value in ledger modes, the live controller otherwise."""
        if self.ledger is not None:
            return self._intervals.get((host_name, "status"),
                                       self.agent_period)
        suite = self.suites.get(host_name)
        wake = getattr(getattr(suite, "status", None), "wake", None)
        if wake is not None:
            return wake.current_period
        return self.agent_period

    def _dlsp_window(self, host_name: str) -> float:
        """A backed-off status agent ships profiles less often; its
        host's DLSP stays serveable for two of *its* intervals, not two
        base periods, so quiescent-but-healthy hosts keep their routes."""
        return 2.0 * self._status_interval(host_name) + 60.0

    def _assemble_dgspl_incremental(self, now: float) -> Dgspl:
        """Recompute per-host entries only for hosts whose DLSP changed
        since the last build; assemble the list from the cache.  The
        iteration order (DLSP arrival order) matches the full rebuild,
        so the result is byte-identical."""
        conds, overrun = self._dlsp_cursor.poll()
        if overrun:
            dirty = set(self.dlsps)
        else:
            dirty = set()
            for c in conds:
                if c.kind == "dlsp":
                    dirty.add(c.host)
                elif c.kind == "wake":
                    # interval publications change freshness windows;
                    # both cursors consume them (idempotent)
                    self._note_wake_condition(c)
        cache = self._dgspl_cache
        for host in dirty:
            dlsp = self.dlsps.get(host)
            if dlsp is not None:
                cache[host] = host_entries(dlsp)
        out = Dgspl(now)
        for host, dlsp in self.dlsps.items():
            if dlsp.is_fresh(now, self._dlsp_window(host)):
                entries = cache.get(host)
                if entries is None:     # belt and braces: never stale-serve
                    entries = cache[host] = host_entries(dlsp)
                out.entries.extend(entries)
        return out

    def _build_dgspl(self) -> None:
        head = self.active()
        if head is None:
            return
        now = self.sim.now
        mode = self.control_plane
        tracer = self.sim.tracer
        build_span = tracer.span("admin.dgspl_build", head=head.name,
                                 mode=mode)
        if mode == "scan":
            fresh = [d for d in self.dlsps.values()
                     if d.is_fresh(now, self._dlsp_window(d.hostname))]
            self.dgspl = build_dgspl(fresh, now)
        else:
            self.dgspl = self._assemble_dgspl_incremental(now)
            if mode == "paired":
                fresh = [d for d in self.dlsps.values()
                         if d.is_fresh(now, self._dlsp_window(d.hostname))]
                full = build_dgspl(fresh, now)
                if (full.to_doc().render()
                        != self.dgspl.to_doc().render()):
                    self.dgspl_mismatches += 1
                    if tracer.enabled:
                        tracer.metrics.counter(
                            "admin.dgspl_mismatches").inc()
                    self.dgspl = full   # full rebuild is ground truth
        self.dgspl_generations += 1
        build_span.finish(entries=len(self.dgspl.entries))
        if tracer.enabled:
            tracer.metrics.counter("admin.dgspl_builds").inc()
        if self.pool is not None:
            # "per database type": one list per application type
            by_type: Dict[str, List[str]] = {}
            for entry in self.dgspl.entries:
                by_type.setdefault(entry.app_type, [])
            try:
                self.pool.write(head, "/dgspl/all",
                                self.dgspl.to_doc().render())
                for app_type in by_type:
                    sub = Dgspl(now)
                    sub.entries = self.dgspl.services_of_type(app_type)
                    self.pool.write(head, f"/dgspl/{app_type}",
                                    sub.to_doc().render())
            except Exception as exc:
                self._pool_write_failed(head, "dgspl", exc)

    def _log_pool(self, line: str) -> None:
        head = self.active()
        if self.pool is None or head is None:
            return
        try:
            self.pool.append(head, "/admin/actions.log", line)
        except Exception as exc:
            self._pool_write_failed(head, "actions.log", exc)

    def _pool_write_failed(self, head, where: str, exc: Exception) -> None:
        """A degraded shared pool must be observable: count it and leave
        a syslog line on the acting head (the pool itself is what just
        refused the write)."""
        self.pool_write_failures += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("admin.pool_write_failures").inc()
        head.syslog.warning(self.sim.now, "admin-servers",
                            f"pool write failed ({where}): {exc}")

    # -- persistence ----------------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """The coordinator pair's whole evolving model.  Cron jobs are
        re-armed through each head's crond snapshot; the ledger and its
        cursors (including this object's two) snapshot with the ledger
        itself.  DLSPs and the DGSPL ride the loss-free ontology codec;
        DLSP insertion order is preserved because the incremental DGSPL
        assembly iterates arrival order."""
        return {
            "intervals": [[list(k), v]
                          for k, v in sorted(self._intervals.items())],
            "demand_woken": dict(sorted(self._demand_woken.items())),
            "demand_wakes": self.demand_wakes,
            # -inf means "never flagged"; keep the snapshot strict-JSON
            "latest_flags": [
                [list(k), None if v == _NEG_INF else v]
                for k, v in sorted(self._latest_flags.items())],
            "wheel": self._wheel.snapshot_state(),
            "down_hosts": sorted(self._down_hosts),
            "suite_order": dict(sorted(self._suite_order.items())),
            "decisions": list(self.decisions),
            "decision_log": [list(d) for d in self.decision_log],
            "sweep_mismatches": self.sweep_mismatches,
            "dgspl_mismatches": self.dgspl_mismatches,
            "model_resyncs": self.model_resyncs,
            "dgspl_cache": {
                host: [[e.server, e.server_type, e.os, e.ram_mb, e.cpus,
                        e.app_name, e.app_type, e.app_version,
                        e.current_load, e.users, e.location, e.site]
                       for e in entries]
                for host, entries in sorted(self._dgspl_cache.items())},
            "registered_at": dict(sorted(self._registered_at.items())),
            "dlsps": [[host, dlsp.to_doc().render()]
                      for host, dlsp in self.dlsps.items()],
            "dgspl": (self.dgspl.to_doc().render()
                      if self.dgspl is not None else None),
            "dgspl_generations": self.dgspl_generations,
            "cron_repairs": self.cron_repairs,
            "hosts_escalated": sorted(self.hosts_escalated),
            "recovered_since": sorted(self._recovered_since),
            "pool_write_failures": self.pool_write_failures,
            "failovers": self.failovers,
            "last_active": self._last_active,
            "services_unhealthy": sorted(self.services_unhealthy),
            "service_probes": self.service_probes,
            "service_probe_failures": self.service_probe_failures,
        }

    def restore_state(self, state: dict) -> None:
        from repro.ontology.base import OntologyDoc
        from repro.ontology.dgspl import GlobalServiceEntry
        saved_suites = set(state["registered_at"])
        if saved_suites != set(self.suites):
            raise KeyError(
                f"admin snapshot watches {sorted(saved_suites)} != "
                f"rebuilt suites {sorted(self.suites)}")
        self._intervals = {tuple(k): float(v)
                           for k, v in state["intervals"]}
        self._demand_woken = {h: float(t)
                              for h, t in state["demand_woken"].items()}
        self.demand_wakes = int(state["demand_wakes"])
        self._latest_flags = {
            tuple(k): (_NEG_INF if v is None else float(v))
            for k, v in state["latest_flags"]}
        self._wheel.restore_state(state["wheel"])
        self._down_hosts = set(state["down_hosts"])
        self._suite_order = {h: int(i)
                             for h, i in state["suite_order"].items()}
        self.decisions = list(state["decisions"])
        self.decision_log = [(float(t), a, h, r)
                             for t, a, h, r in state["decision_log"]]
        self.sweep_mismatches = int(state["sweep_mismatches"])
        self.dgspl_mismatches = int(state["dgspl_mismatches"])
        self.model_resyncs = int(state["model_resyncs"])
        self._dgspl_cache = {
            host: [GlobalServiceEntry(*row) for row in rows]
            for host, rows in state["dgspl_cache"].items()}
        self._registered_at = {h: float(t)
                               for h, t in state["registered_at"].items()}
        self.dlsps = {host: Dlsp.from_doc(OntologyDoc.parse(lines))
                      for host, lines in state["dlsps"]}
        self.dgspl = (Dgspl.from_doc(OntologyDoc.parse(state["dgspl"]))
                      if state["dgspl"] is not None else None)
        self.dgspl_generations = int(state["dgspl_generations"])
        self.cron_repairs = int(state["cron_repairs"])
        self.hosts_escalated = set(state["hosts_escalated"])
        self._recovered_since = set(state["recovered_since"])
        self.pool_write_failures = int(state["pool_write_failures"])
        self.failovers = int(state["failovers"])
        self._last_active = state["last_active"]
        self.services_unhealthy = set(state["services_unhealthy"])
        self.service_probes = int(state["service_probes"])
        self.service_probe_failures = int(state["service_probe_failures"])

    # -- queries --------------------------------------------------------------------------------

    def current_dgspl(self, max_age: Optional[float] = None) -> Optional[Dgspl]:
        if self.dgspl is None:
            return None
        if max_age is not None and (
                self.sim.now - self.dgspl.generated_at) > max_age:
            return None
        return self.dgspl
