"""Administration servers (§3.1.2).

"Dedicated administration servers that act as external agent
coordinators in a high-availability failover configuration and share a
common pool of NFS mounted disks, to avoid single points of failure."

Duties implemented here:

- **Flag watchdog** -- "Administration servers monitor the creation of
  these flags every X+5 minutes ... If these flags are not there, they
  start troubleshooting intelliagent processes."  A host whose agents
  stopped flagging gets its cron restarted remotely; a host that is
  down gets escalated to humans.
- **DLSP collection and DGSPL generation** -- profiles arrive from the
  status agents; "the administration servers generated dynamic global
  service profile lists per database type every 15 minutes on average",
  persisted to the shared NFS pool.
- **HA failover** -- both heads run the same cron jobs; only the active
  one (primary if up, else standby) acts.  State lives in the pool, so
  a failover loses nothing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.flags import FlagStore
from repro.core.healing import apply_action
from repro.ontology.dgspl import Dgspl, build_dgspl
from repro.ontology.dlsp import Dlsp

__all__ = ["AdministrationServers"]


class AdministrationServers:
    """The coordinator pair."""

    DGSPL_PERIOD = 900.0        # 15 minutes
    #: "every 15 to 30 minutes we initiated a dummy process to run
    #: through all application components, simulating a user" (§3.6)
    SVC_PROBE_PERIOD = 1800.0

    def __init__(self, dc, primary, standby, pool, *, channel=None,
                 notifications=None, relocator=None,
                 agent_period: float = 300.0):
        self.dc = dc
        self.sim = dc.sim
        self.primary = primary
        self.standby = standby
        self.pool = pool
        self.channel = channel
        self.notifications = notifications
        #: optional relocation tier (repro.relocate.ServiceRelocator);
        #: sits between local healing and paging the on-call human
        self.relocator = relocator
        self.agent_period = float(agent_period)
        #: "every X+5 minutes, where X is the frequency intelliagent run"
        self.watch_period = self.agent_period + 300.0

        if pool is not None:
            pool.add_server(primary)
            pool.add_server(standby)

        #: monitored hosts -> their agent suites
        self.suites: Dict[str, object] = {}
        #: when each suite came under watch (warm-up grace)
        self._registered_at: Dict[str, float] = {}
        #: freshest DLSP per host
        self.dlsps: Dict[str, Dlsp] = {}
        self.dgspl: Optional[Dgspl] = None
        self.dgspl_generations = 0
        self.cron_repairs = 0
        self.hosts_escalated: set = set()
        #: escalated hosts that have come back up since their page; a
        #: further failure is a new incident, not the one already paged
        self._recovered_since: set = set()
        self.pool_write_failures = 0
        self.failovers = 0
        self._last_active: Optional[str] = None

        #: distributed services under end-to-end watch
        self.services: List[object] = []
        self.services_unhealthy: set = set()
        self.service_probes = 0
        self.service_probe_failures = 0

        for head in (primary, standby):
            head.crond.register("admin_watchdog", self.watch_period,
                                self._make_guarded(head, self._watchdog))
            head.crond.register("admin_dgspl", self.DGSPL_PERIOD,
                                self._make_guarded(head, self._build_dgspl))
            head.crond.register("admin_svcprobe", self.SVC_PROBE_PERIOD,
                                self._make_guarded(head,
                                                   self._probe_services))

    # -- HA -----------------------------------------------------------------------

    def active(self):
        """The coordinator currently in charge (primary unless down)."""
        head = (self.primary if self.primary.is_up
                else self.standby if self.standby.is_up else None)
        name = head.name if head is not None else None
        if name != self._last_active:
            if self._last_active is not None:
                self.failovers += 1
            self._last_active = name
        return head

    def _make_guarded(self, head, fn):
        def guarded():
            if self.active() is head:
                fn()
        return guarded

    # -- registration -----------------------------------------------------------------

    def register_suite(self, suite) -> None:
        self.suites[suite.host.name] = suite
        self._registered_at[suite.host.name] = self.sim.now
        # a boot re-arms the escalation latch even when the host flaps
        # faster than the watchdog can observe it green
        suite.host.up_signal.subscribe(
            lambda _v, name=suite.host.name: self._host_recovered(name))

    def register_service(self, service) -> None:
        """Put a distributed service under dummy-user end-to-end watch."""
        self.services.append(service)

    def _probe_services(self) -> None:
        """The dummy user: walk every registered service end to end.
        Failures the local agents cannot see (network legs between
        components, cross-host dependency chains) surface here."""
        if self.active() is None:
            return
        tracer = self.sim.tracer
        probe_span = tracer.span("admin.service_probe",
                                 services=len(self.services))
        failures = 0
        for svc in self.services:
            self.service_probes += 1
            ok, ms, err = svc.end_to_end_probe()
            if ok:
                self.services_unhealthy.discard(svc.name)
                continue
            failures += 1
            self.service_probe_failures += 1
            if svc.name in self.services_unhealthy:
                continue        # already reported this outage
            self.services_unhealthy.add(svc.name)
            if self.notifications is not None:
                self.notifications.email(
                    "administrators",
                    f"service {svc.name} failing end-to-end: {err}",
                    severity="critical", sender="admin-servers")
            self._log_pool(f"{self.sim.now:.0f} SERVICE-DOWN "
                           f"{svc.name}: {err}")
        probe_span.finish(failures=failures)
        if tracer.enabled:
            tracer.metrics.counter("admin.service_probes").inc(
                len(self.services))
            if failures:
                tracer.metrics.counter("admin.probe_failures").inc(failures)

    def receive_dlsp(self, dlsp: Dlsp) -> None:
        """Called (over the agent channel) by the status agents."""
        self.dlsps[dlsp.hostname] = dlsp
        head = self.active()
        if self.pool is not None and head is not None:
            try:
                self.pool.write(head, f"/dlsp/{dlsp.hostname}",
                                dlsp.to_doc().render())
            except Exception as exc:
                # pool outage: keep the in-memory copy, but observably
                self._pool_write_failed(head, f"dlsp/{dlsp.hostname}", exc)

    # -- the flag watchdog -----------------------------------------------------------------

    def _watchdog(self) -> None:
        head = self.active()
        if head is None:
            return
        now = self.sim.now
        tracer = self.sim.tracer
        sweep_span = tracer.span("admin.flag_sweep", head=head.name,
                                 hosts=len(self.suites))
        stale_hosts = 0
        if tracer.enabled:
            tracer.metrics.counter("admin.flag_sweeps").inc()
        for host_name, suite in self.suites.items():
            host = self.dc.hosts.get(host_name)
            if host is None:
                continue
            # warm-up: a freshly registered suite has not had a full
            # grid of wakes yet; judging it stale would be a false alarm
            registered = self._registered_at.get(host_name, 0.0)
            if now - registered < self.watch_period + self.agent_period:
                continue
            if not host.is_up:
                self._escalate_host(host_name, "host is down")
                continue
            # reach the host over the agent network first
            if self.channel is not None:
                d = self.channel.send(head.name, host_name, 256)
                if not d.ok:
                    self._escalate_host(host_name,
                                        f"unreachable: {d.error}")
                    continue
            stale = self._stale_agents(host, suite, now)
            if not stale:
                # flags green again: clear the escalation latch so the
                # next failure of this host is escalated as a new incident
                self.hosts_escalated.discard(host_name)
                self._recovered_since.discard(host_name)
                continue
            stale_hosts += 1
            # "they start troubleshooting intelliagent processes":
            # the usual cause of *all* flags stopping is a dead cron
            if len(stale) == len(suite.agents) and not host.crond.running:
                apply_action("restart_cron", host, "crond")
                self.cron_repairs += 1
                if tracer.enabled:
                    tracer.metrics.counter("admin.cron_repairs").inc()
                self._log_pool(f"{now:.0f} restarted crond on {host_name}")
            else:
                self._escalate_host(
                    host_name,
                    f"agents not flagging: {', '.join(sorted(stale))}")
        sweep_span.finish(stale_hosts=stale_hosts)

    def _stale_agents(self, host, suite, now: float) -> List[str]:
        stale = []
        for agent in suite.agents:
            latest = FlagStore(host.fs, agent.name).latest_time()
            if now - latest > self.watch_period:
                stale.append(agent.name)
        return stale

    def _host_recovered(self, host_name: str) -> None:
        """The host booted; if it was escalated, mark the incident as
        over so a relapse escalates again (fired from ``up_signal``,
        which also covers flaps too fast for the watchdog to see)."""
        if host_name in self.hosts_escalated:
            self._recovered_since.add(host_name)

    def _escalate_host(self, host_name: str, reason: str) -> None:
        """Local healing failed: relocate if we can, else page a human.
        One escalation per incident -- a recovery re-arms the latch."""
        if host_name in self.hosts_escalated:
            if host_name not in self._recovered_since:
                return
            self._recovered_since.discard(host_name)
        self.hosts_escalated.add(host_name)
        if self.relocator is not None:
            started = self.relocator.relocate_host(host_name, reason)
            if started:
                self._log_pool(f"{self.sim.now:.0f} RELOCATING "
                               f"{host_name} ({started} service(s)): "
                               f"{reason}")
                return
        self._page_human(host_name, reason)

    def _page_human(self, host_name: str, reason: str) -> None:
        """The last tier: SMS the on-call administrator."""
        if self.notifications is not None:
            self.notifications.sms(
                "oncall-admin",
                f"admin: {host_name} needs attention ({reason})",
                severity="critical", sender="admin-servers")
        self._log_pool(f"{self.sim.now:.0f} ESCALATED {host_name}: {reason}")

    # -- DGSPL generation ---------------------------------------------------------------------

    def _build_dgspl(self) -> None:
        head = self.active()
        if head is None:
            return
        now = self.sim.now
        tracer = self.sim.tracer
        build_span = tracer.span("admin.dgspl_build", head=head.name)
        fresh = [d for d in self.dlsps.values()
                 if now - d.generated_at <= 2 * self.agent_period + 60.0]
        self.dgspl = build_dgspl(fresh, now)
        self.dgspl_generations += 1
        build_span.finish(fresh_dlsps=len(fresh),
                          entries=len(self.dgspl.entries))
        if tracer.enabled:
            tracer.metrics.counter("admin.dgspl_builds").inc()
        if self.pool is not None:
            # "per database type": one list per application type
            by_type: Dict[str, List[str]] = {}
            for entry in self.dgspl.entries:
                by_type.setdefault(entry.app_type, [])
            try:
                self.pool.write(head, "/dgspl/all",
                                self.dgspl.to_doc().render())
                for app_type in by_type:
                    sub = Dgspl(now)
                    sub.entries = self.dgspl.services_of_type(app_type)
                    self.pool.write(head, f"/dgspl/{app_type}",
                                    sub.to_doc().render())
            except Exception as exc:
                self._pool_write_failed(head, "dgspl", exc)

    def _log_pool(self, line: str) -> None:
        head = self.active()
        if self.pool is None or head is None:
            return
        try:
            self.pool.append(head, "/admin/actions.log", line)
        except Exception as exc:
            self._pool_write_failed(head, "actions.log", exc)

    def _pool_write_failed(self, head, where: str, exc: Exception) -> None:
        """A degraded shared pool must be observable: count it and leave
        a syslog line on the acting head (the pool itself is what just
        refused the write)."""
        self.pool_write_failures += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("admin.pool_write_failures").inc()
        head.syslog.warning(self.sim.now, "admin-servers",
                            f"pool write failed ({where}): {exc}")

    # -- queries --------------------------------------------------------------------------------

    def current_dgspl(self, max_age: Optional[float] = None) -> Optional[Dgspl]:
        if self.dgspl is None:
            return None
        if max_age is not None and (
                self.sim.now - self.dgspl.generated_at) > max_age:
            return None
        return self.dgspl
