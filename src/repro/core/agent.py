"""The Intelliagent base class (§3.3).

An intelliagent is **not memory resident**: it is woken by the local
cron every X minutes, appears in the process table only for the span of
its run, writes a flag describing what happened, and exits.  "At
startup each intelliagent checks to see if any other of the same type
is running, if so it exits."

One wake runs the five parts in order:

1. *Self-maintenance* -- prune its own old flags and logs.
2. *Monitoring* -- look after its one resource/aspect; collect findings.
3. *Diagnosing* -- constraint-based causal reasoning per finding
   (static log parsing + dynamic shell commands inside the rule tests).
4. *Self-healing* -- apply the diagnosed actions; stay "running" (the
   lockout) for the repair duration.
5. *Communication/Logging* -- activity log, flag, message to the
   administration servers, email/SMS to humans when it cannot fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.flags import FlagStore
from repro.core.healing import ActionResult, apply_action
from repro.core.parts import Finding, PartSwitches
from repro.core.reasoning import Diagnosis, RuleEngine
from repro.metrics.circular_log import CircularLog
from repro.wake import WakePolicy

__all__ = ["Intelliagent", "RunStats"]

#: a few hours of flags is plenty (the watchdog only needs freshness,
#: humans only need the recent story); older ones are self-maintained away
FLAG_RETENTION = 4 * 3600.0

#: footprint of a running agent process (the paper's flat 1.6 MB is the
#: whole per-host complement; a single agent is a fraction of that)
AGENT_PROC_MEM_MB = 0.2

#: notification fan-out stops after this many failed heals of the same
#: subject (avoid email storms; humans are already on it)
MAX_HEAL_ATTEMPTS = 2


@dataclass
class RunStats:
    """Counters for one agent (Figures 3/4 feed off cpu_seconds)."""

    runs: int = 0
    skipped: int = 0
    faults_found: int = 0
    heals_attempted: int = 0
    heals_succeeded: int = 0
    escalations: int = 0
    demand_wakes: int = 0
    cpu_seconds: float = 0.0


class Intelliagent:
    """Base class for the six agent categories."""

    category = "generic"
    #: CPU cost of one wake, seconds of one CPU (shell-tool sweeps are
    #: cheap; this is what makes Fig. 3's ~0.045 % amortised cost)
    RUN_CPU_SECONDS = 0.018

    def __init__(self, host, name: str, *, period: float = 300.0,
                 channel=None, admin_targets: Optional[List[str]] = None,
                 notifications=None, switches: Optional[PartSwitches] = None,
                 ledger=None, wake_policy: str = "fixed",
                 wake_max_period: float = 1800.0):
        self.host = host
        self.sim = host.sim
        self.name = name
        self.command = f"ia_{name}"
        self.period = float(period)
        #: adaptive wake controller; "fixed" keeps the paper's rigid
        #: grid (and the exact pre-refactor behaviour) for A/B runs
        self.wake = WakePolicy(self.period, mode=wake_policy,
                               max_period=max(float(wake_max_period),
                                              self.period))
        self.channel = channel
        self.admin_targets = list(admin_targets or ())
        self.notifications = notifications
        self.parts = switches or PartSwitches()

        self.flags = FlagStore(host.fs, name, ledger=ledger,
                               host=host.name)
        self.activity = CircularLog(host.fs,
                                    f"/logs/intelliagents/{name}/activity",
                                    maxlen=500)
        self.engine = RuleEngine()
        self.install_rules(self.engine)
        self.stats = RunStats()
        self._proc = None
        self._busy_until = 0.0
        #: pending lockout-release event, retained for checkpoints
        self._busy_event = None
        #: last wake interval the control plane saw (base is implicit);
        #: re-offered every run until the transport accepts it
        self._published_interval = self.period
        #: per-subject consecutive failed heal attempts
        self._attempts: Dict[str, int] = {}
        #: subjects we already escalated (reset when healthy again)
        self._escalated: set = set()
        self.cron_job = host.crond.register(name, self.period, self.run)

    # -- subclass surface ------------------------------------------------------

    def monitor(self) -> List[Finding]:
        """Inspect the agent's one subject; return anomalies."""
        raise NotImplementedError

    def install_rules(self, engine: RuleEngine) -> None:
        """Populate the causal rules (constraints come from ontologies)."""

    def on_clean_run(self) -> None:
        """Hook: extra work on a no-fault wake (status agents rebuild
        profiles here)."""

    # -- the wake cycle ---------------------------------------------------------------

    def run(self) -> None:
        now = self.sim.now
        if not self.host.is_up:
            return
        tracer = self.sim.tracer
        # same-type lockout
        if self._proc is not None:
            if now < self._busy_until and self.host.ptable.get(self._proc.pid):
                self.stats.skipped += 1
                if tracer.enabled:
                    tracer.metrics.counter("agent.skipped").inc()
                self._flag("skipped", "previous instance still running")
                return
            self._end_proc()
        self._start_proc()
        self.stats.runs += 1
        self.stats.cpu_seconds += self.RUN_CPU_SECONDS
        if tracer.enabled:
            tracer.metrics.counter("agent.runs").inc()
        busy = 0.0
        findings: List[Finding] = []
        run_span = tracer.span("agent.run", agent=self.name,
                               host=self.host.name, category=self.category)
        try:
            with run_span:
                if self.parts.self_maintenance:
                    with tracer.span("agent.self_maintain"):
                        self._self_maintain(now)
                with tracer.span("agent.monitor") as mon_span:
                    findings = self.monitor() if self.parts.monitoring else []
                    mon_span.set_attr("findings", len(findings))
                if not findings:
                    with tracer.span("agent.communicate"):
                        self._recover_subjects()
                        self.on_clean_run()
                        self._flag("ok")
                    return
                self.stats.faults_found += len(findings)
                if tracer.enabled:
                    tracer.metrics.counter("agent.faults_found").inc(
                        len(findings))
                    for f in findings:
                        # the zero-length detection span carries the
                        # correlated fault id: this is the "detected"
                        # stamp in the incident trace
                        tracer.record_span(
                            "fault.detect", now, now,
                            fault_id=tracer.fault_id_for(f.subject),
                            subject=f.subject, kind=f.kind,
                            agent=self.name, host=self.host.name)
                with tracer.span("agent.communicate"):
                    self._log(
                        f"found {len(findings)} fault(s): "
                        + "; ".join(f"{f.kind}:{f.subject}"
                                    for f in findings))
                    self._flag("fault", "; ".join(
                        f"{f.kind} {f.subject} {f.detail}"
                        for f in findings))
                diagnoses = []
                for f in findings:
                    with tracer.span(
                            "agent.diagnose", subject=f.subject,
                            kind=f.kind, agent=self.name,
                            fault_id=tracer.fault_id_for(f.subject)
                            ) as diag_span:
                        if self.parts.diagnosing:
                            diag = self.engine.diagnose(self.host, f)
                        else:
                            diag = Diagnosis(f, f.kind, [], confirmed=False)
                        diag_span.set_attr("cause", diag.cause)
                    diagnoses.append(diag)
                for diag in diagnoses:
                    with tracer.span("agent.heal",
                                     subject=diag.finding.subject):
                        busy = max(busy, self._handle(diag))
        finally:
            if busy > 0.0:
                self._busy_until = self.sim.now + busy
                self._busy_event = self.sim.schedule(busy, self._end_proc)
            else:
                self._end_proc()
            self._adapt_period(found=bool(findings))

    # -- adaptive wakes ---------------------------------------------------------------

    def demand_wake(self, trigger=None) -> bool:
        """Wake now, off the grid (trigger bus or admin watchdog).  The
        wake policy snaps back to base first, so whatever caused the
        wake gets watched at full frequency afterwards."""
        if not self.host.is_up:
            return False
        self.wake.note_trigger()
        self._apply_period()
        ok = self.host.crond.demand_wake(self.name)
        if ok:
            self.stats.demand_wakes += 1
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.metrics.counter("agent.demand_wakes").inc()
        return ok

    def _adapt_period(self, found: bool) -> None:
        """End of a wake: feed the outcome to the policy and re-arm the
        cron job when the interval moved."""
        if found:
            self.wake.note_findings()
        else:
            self.wake.note_clean()
        self._apply_period()

    def _apply_period(self) -> None:
        period = self.wake.current_period
        crond = self.host.crond
        job = crond.jobs.get(self.name)
        if job is not None and job.period != period:
            crond.set_period(self.name, period)
        if period != self._published_interval:
            self._publish_interval(period)

    def _publish_interval(self, period: float) -> None:
        """Tell the control plane the expected wake interval changed,
        so the watchdog's staleness contract tracks the adaptive period
        instead of silently loosening.  Rides the same transport gate
        as flags; an undelivered change is re-offered next run."""
        store = self.flags
        if store.ledger is None:
            self._published_interval = period
            return
        if store.transport is not None and not store.transport(store.host):
            return              # partitioned: retry on a later wake
        store.ledger.append("wake", store.host, agent=self.name,
                            status="interval", time=self.sim.now,
                            detail=repr(period))
        self._published_interval = period

    # -- part implementations -----------------------------------------------------------

    def _self_maintain(self, now: float) -> None:
        """'Every time an intelliagent runs, it looks after its
        individual logs ... removes flags from previous runs.'"""
        self.flags.clear_before(now - FLAG_RETENTION)

    def _handle(self, diag: Diagnosis) -> float:
        """Heal if possible, otherwise escalate.  Returns busy time."""
        subject = diag.finding.subject
        self._log(f"diagnosis {subject}: {diag.cause} "
                  f"(evidence: {len(diag.evidence)} tests)")
        if not (self.parts.healing and diag.actionable):
            self._escalate(diag, reason="no automated repair")
            return 0.0
        attempts = self._attempts.get(subject, 0)
        if attempts >= MAX_HEAL_ATTEMPTS:
            self._escalate(diag, reason=f"{attempts} repairs failed")
            return 0.0
        self._attempts[subject] = attempts + 1
        busy = 0.0
        tracer = self.sim.tracer
        for action in diag.actions:
            self.stats.heals_attempted += 1
            if tracer.enabled:
                tracer.metrics.counter("agent.heals_attempted").inc()
            result = apply_action(action, self.host, subject)
            self._log(f"action {action} on {subject}: "
                      f"{'ok' if result.success else 'FAILED'} "
                      f"({result.detail})")
            if result.success:
                self.stats.heals_succeeded += 1
                if tracer.enabled:
                    tracer.metrics.counter("agent.heals_succeeded").inc()
                self._flag("fixed", f"{action} {subject}")
                self._tell_admins(f"fixed {subject} via {action}")
                busy = max(busy, result.busy_for)
                break
        else:
            self._escalate(diag, reason="all actions failed")
        return busy

    def _recover_subjects(self) -> None:
        """A clean run clears attempt/escalation state so a future
        recurrence is treated (and notified) as a fresh incident."""
        if self._attempts or self._escalated:
            self._attempts.clear()
            self._escalated.clear()

    def _escalate(self, diag: Diagnosis, reason: str) -> None:
        subject = diag.finding.subject
        if subject in self._escalated:
            return
        self._escalated.add(subject)
        self.stats.escalations += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("agent.escalations").inc()
            tracer.instant("fault.escalated", subject=subject,
                           agent=self.name, reason=reason,
                           fault_id=tracer.fault_id_for(subject))
        self._flag("failed", f"{subject}: {diag.cause} ({reason})")
        if self.parts.communication and self.notifications is not None:
            self.notifications.email(
                "administrators",
                f"{self.host.name}/{self.name}: cannot fix {subject}",
                body=f"cause={diag.cause}; {reason}; "
                     f"evidence={'; '.join(diag.evidence)}",
                severity="critical", sender=self.name)
        self._tell_admins(f"escalated {subject}: {diag.cause}")

    # -- communication helpers -------------------------------------------------------------

    def _flag(self, status: str, detail: str = "") -> None:
        try:
            self.flags.raise_flag(status, self.sim.now, detail)
        except Exception:
            # a full /logs mount must not kill the agent: the *absence*
            # of flags is itself the watchdog's signal
            pass

    def _log(self, message: str) -> None:
        if self.parts.communication:
            try:
                self.activity.append(f"{self.sim.now:.1f} {message}",
                                     now=self.sim.now)
            except Exception:
                pass

    def _tell_admins(self, message: str, nbytes: int = 1024) -> None:
        if not (self.parts.communication and self.channel):
            return
        for target in self.admin_targets:
            self.channel.send(self.host.name, target, nbytes)

    # -- process-table presence ------------------------------------------------------------------

    def _start_proc(self) -> None:
        self._proc = self.host.ptable.spawn(
            "root", self.command, cpu_pct=0.5, mem_mb=AGENT_PROC_MEM_MB,
            now=self.sim.now, owner=self)

    def _end_proc(self) -> None:
        if self._proc is not None:
            self.host.ptable.kill(self._proc.pid)
            self._proc = None
        self._busy_until = 0.0
        self._busy_event = None

    # -- persistence -----------------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Run counters, lockout state (process link by pid plus the
        pending release event) and the adaptive wake controller.
        Subclasses ride along via :meth:`_persist_extra`."""
        ev = self._busy_event if (self._busy_event is not None
                                  and self._busy_event.alive) else None
        s = self.stats
        return {
            "stats": [s.runs, s.skipped, s.faults_found, s.heals_attempted,
                      s.heals_succeeded, s.escalations, s.demand_wakes,
                      s.cpu_seconds],
            "proc_pid": self._proc.pid if self._proc is not None else None,
            "busy_until": self._busy_until,
            "busy_event": ([ev.time, ev.priority, ev.seq]
                           if ev is not None else None),
            "published_interval": self._published_interval,
            "attempts": dict(self._attempts),
            "escalated": sorted(self._escalated),
            "wake": self.wake.snapshot_state(),
            "extra": self._persist_extra(),
        }

    def restore_state(self, state: dict) -> None:
        """Runs after the host restored its process table; a mid-lockout
        agent relinks its process entry by pid."""
        (self.stats.runs, self.stats.skipped, self.stats.faults_found,
         self.stats.heals_attempted, self.stats.heals_succeeded,
         self.stats.escalations, self.stats.demand_wakes,
         self.stats.cpu_seconds) = state["stats"]
        pid = state["proc_pid"]
        if pid is None:
            self._proc = None
        else:
            proc = self.host.ptable.get(pid)
            if proc is None:
                raise KeyError(
                    f"{self.name}: snapshot agent pid {pid} missing from "
                    f"{self.host.name}'s restored table")
            proc.owner = self
            self._proc = proc
        self._busy_until = float(state["busy_until"])
        if self._busy_event is not None:
            self._busy_event.cancel()
            self._busy_event = None
        tok = state.get("busy_event")
        if tok is not None:
            t, prio, seq = tok
            self._busy_event = self.sim.schedule_exact(
                t, prio, seq, self._end_proc)
        self._published_interval = float(state["published_interval"])
        self._attempts = {k: int(v) for k, v in state["attempts"].items()}
        self._escalated = set(state["escalated"])
        self.wake.restore_state(state["wake"])
        self._restore_extra(state["extra"])

    def _persist_extra(self) -> dict:
        """Subclass state rider (perf/status agents carry counters)."""
        return {}

    def _restore_extra(self, extra: dict) -> None:
        pass

    def claimed_seqs(self) -> List[int]:
        if self._busy_event is not None and self._busy_event.alive:
            return [self._busy_event.seq]
        return []

    # -- introspection ---------------------------------------------------------------------------------

    def amortized_cpu_pct(self) -> float:
        """Average share of one CPU consumed by this agent's wakes."""
        return 100.0 * self.RUN_CPU_SECONDS / self.period

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<{type(self).__name__} {self.name}@{self.host.name} "
                f"runs={self.stats.runs}>")
