"""Operating system / network intelliagents.

Watches the §3.6 OS measurements (scan rate, page-outs, faults, free
memory, run queue, idle %, blocked processes) against the host's
baselines, plus the network items (interface errors, reachability of
the administration servers over the private network, name-server
response).

Memory and CPU anomalies are diagnosed down to leaking/runaway
processes and healed; network anomalies are detect-and-notify only --
the paper is explicit that the approach "cannot cater for network ...
errors".
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.agent import Intelliagent
from repro.core.parts import Finding
from repro.core.reasoning import CausalRule, RuleEngine
from repro.core.thresholds import Baselines

__all__ = ["OsNetworkAgent"]


class OsNetworkAgent(Intelliagent):
    """One per host."""

    category = "os-network"
    RUN_CPU_SECONDS = 0.022      # vmstat+netstat+ping sweep

    def __init__(self, host, *, baselines: Optional[Baselines] = None,
                 nameservice=None, **kw):
        self.baselines = baselines or Baselines.for_host(host)
        self.nameservice = nameservice
        super().__init__(host, "osnet", **kw)

    # -- monitoring ---------------------------------------------------------------

    def monitor(self) -> List[Finding]:
        findings: List[Finding] = []
        m = self.host.os_metrics()
        m["load_avg"] = self.host.load_average()
        for breach in self.baselines.check(m):
            findings.append(Finding(
                "os-threshold", self.host.name,
                f"{breach.metric}={breach.value:.1f} "
                f"{breach.direction} of {breach.limit:.1f}",
                metric=breach.metric, value=breach.value))
        findings.extend(self._check_processes())
        findings.extend(self._check_network())
        return findings

    def _check_processes(self) -> List[Finding]:
        """§3.6 item 5: per-process CPU and memory utilisation."""
        findings: List[Finding] = []
        ram = self.host.effective_ram_mb()
        for proc in self.host.ptable:
            if proc.user in ("root", "daemon"):
                continue
            if proc.cpu_pct > 90.0:
                findings.append(Finding(
                    "proc-hog", f"{self.host.name}:{proc.command}",
                    f"pid {proc.pid} ({proc.user}) at "
                    f"{proc.cpu_pct:.0f}% cpu",
                    metric="proc_cpu", value=proc.cpu_pct))
            elif proc.mem_mb > 0.3 * ram:
                findings.append(Finding(
                    "proc-hog", f"{self.host.name}:{proc.command}",
                    f"pid {proc.pid} ({proc.user}) holds "
                    f"{proc.mem_mb:.0f} MB",
                    metric="proc_mem", value=proc.mem_mb))
        return findings

    def _check_network(self) -> List[Finding]:
        findings: List[Finding] = []
        for nic in self.host.nics.values():
            if not nic.ok:
                findings.append(Finding("nic-failed",
                                        f"{self.host.name}:{nic.ifname}",
                                        "interface not responding"))
            elif nic.errors_in + nic.errors_out > 50:
                findings.append(Finding("nic-errors",
                                        f"{self.host.name}:{nic.ifname}",
                                        f"{nic.errors_in + nic.errors_out} "
                                        "errors", severity="warning"))
        # reachability of the coordinators over the agent network
        for target in self.admin_targets:
            res = self.host.shell.run(f"ping {target}")
            if not res.ok:
                findings.append(Finding("net-unreachable", target,
                                        "admin server unreachable"))
                break       # one is enough evidence of network trouble
        if self.nameservice is not None:
            ms = self.nameservice.response_ms()
            if ms < 0:
                findings.append(Finding("dns-down", "nameservice",
                                        "no answer from name server"))
            elif ms > 50.0:
                findings.append(Finding("dns-slow", "nameservice",
                                        f"response {ms:.0f} ms",
                                        severity="warning"))
        return findings

    # -- causal rules --------------------------------------------------------------------

    def install_rules(self, engine: RuleEngine) -> None:
        def leaking_process(host, finding) -> bool:
            if finding.metric not in ("free_mb", "scan_rate", "page_out",
                                      "page_faults"):
                return False
            ram = host.effective_ram_mb()
            return any(p.mem_mb > 0.3 * ram for p in host.ptable
                       if p.user != "root")

        def runaway_process(host, finding) -> bool:
            if finding.metric not in ("run_queue", "cpu_idle", "load_avg"):
                return False
            return any(p.cpu_pct > 90.0 for p in host.ptable
                       if p.user not in ("root", "daemon"))

        def memory_pressure_real(host, finding) -> bool:
            # genuine demand (no single culprit): notify capacity people
            return finding.metric in ("free_mb", "scan_rate", "page_out")

        def hog_is_cpu(host, finding) -> bool:
            return finding.metric == "proc_cpu"

        def hog_is_mem(host, finding) -> bool:
            return finding.metric == "proc_mem"

        engine.extend([
            CausalRule("proc-hog", "runaway-process",
                       hog_is_cpu, ("kill_runaway",)),
            CausalRule("proc-hog", "memory-leak",
                       hog_is_mem, ("kill_leaky",)),
            CausalRule("os-threshold", "memory-leak",
                       leaking_process, ("kill_leaky",)),
            CausalRule("os-threshold", "runaway-process",
                       runaway_process, ("kill_runaway",)),
            CausalRule("os-threshold", "genuine-memory-demand",
                       memory_pressure_real, ()),
            # network: detect, pinpoint, notify -- never auto-fix
            CausalRule("nic-failed", "interface-hardware",
                       lambda h, f: True, ()),
            CausalRule("nic-errors", "cabling-or-duplex",
                       lambda h, f: True, ()),
            CausalRule("net-unreachable", "lan-or-firewall",
                       lambda h, f: True, ()),
            CausalRule("dns-down", "name-server-outage",
                       lambda h, f: True, ()),
            CausalRule("dns-slow", "name-server-degraded",
                       lambda h, f: True, ()),
        ])
