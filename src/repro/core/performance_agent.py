"""Performance intelliagents (§3.5).

"Performance intelliagents that collect performance and availability
logs.  These intelliagents can suggest what may be wrong during service
degradation and have limited troubleshooting capabilities."

Every wake samples all five measurement workgroups into the circular
logs, compares the snapshot against the baselines, and on a breach
notifies administrators with a *report* that narrows the candidate
causes ("created comprehensive reports about what may have caused a
performance related problem and helped narrow down various
possibilities").  Healing is left to the OS/resource agents -- this one
only suggests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.agent import Intelliagent
from repro.core.parts import Finding
from repro.core.reasoning import CausalRule, RuleEngine
from repro.core.thresholds import Baselines
from repro.metrics.accounting import ProcessAccountant
from repro.metrics.circular_log import CircularLog
from repro.metrics.samplers import SamplerSuite

__all__ = ["PerformanceAgent"]


class PerformanceAgent(Intelliagent):
    """One per host."""

    category = "performance"
    RUN_CPU_SECONDS = 0.035      # the full five-group sweep

    def __init__(self, host, *, baselines: Optional[Baselines] = None, **kw):
        self.baselines = baselines or Baselines.for_host(host)
        self.samplers = SamplerSuite(host)
        self.accountant = ProcessAccountant(host)
        self.breaches_seen = 0
        self.reports_sent = 0
        super().__init__(host, "perf", **kw)
        self.report_log = CircularLog(
            host.fs, "/logs/intelliagents/perf/reports", maxlen=200)

    def _persist_extra(self) -> dict:
        return {"breaches_seen": self.breaches_seen,
                "reports_sent": self.reports_sent,
                "samples_taken": self.samplers.samples_taken}

    def _restore_extra(self, extra: dict) -> None:
        self.breaches_seen = int(extra["breaches_seen"])
        self.reports_sent = int(extra["reports_sent"])
        self.samplers.samples_taken = int(extra["samples_taken"])

    def monitor(self) -> List[Finding]:
        samples = self.samplers.sample_all()
        merged: Dict[str, float] = {}
        for s in samples:
            merged.update(s.metrics)
        findings: List[Finding] = []
        for breach in self.baselines.check(merged):
            self.breaches_seen += 1
            findings.append(Finding(
                "perf-threshold", self.host.name,
                f"{breach.metric}={breach.value:.1f} "
                f"{breach.direction} of {breach.limit:.1f}",
                severity="warning",
                metric=breach.metric, value=breach.value))
        return findings

    def install_rules(self, engine: RuleEngine) -> None:
        # limited troubleshooting: suggestions only, no actions
        def top_user_suspect(host, finding) -> bool:
            user, cpu = ProcessAccountant(host).heaviest_user()
            return cpu > 50.0

        def paging_suspect(host, finding) -> bool:
            return finding.metric in ("scan_rate", "page_out", "free_mb",
                                      "page_faults")

        def io_suspect(host, finding) -> bool:
            return "asvc_t" in finding.metric or "busy" in finding.metric

        engine.extend([
            CausalRule("perf-threshold", "user-workload-spike",
                       top_user_suspect, ()),
            CausalRule("perf-threshold", "memory-pressure",
                       paging_suspect, ()),
            CausalRule("perf-threshold", "io-bottleneck", io_suspect, ()),
        ])

    def _escalate(self, diag, reason: str) -> None:
        """A breach escalation carries the narrowed-down report."""
        self._write_report(diag)
        super()._escalate(diag, reason)

    def _write_report(self, diag) -> None:
        self.reports_sent += 1
        top = self.accountant.per_user()[:3]
        lines = [f"{self.sim.now:.0f} REPORT {diag.finding.detail} "
                 f"suspect={diag.cause} "
                 f"top_users={','.join(r.key for r in top) or 'none'}"]
        try:
            for line in lines:
                self.report_log.append(line, now=self.sim.now)
        except Exception:
            pass

    def timeline(self, group: str, metric: str):
        """Administrators 'can generate timelines of system behaviour'."""
        return self.samplers.get_series(group, metric)
