"""The five intelliagent parts (§3.3).

"Each intelliagent has 5 major parts: a) Monitoring, b) Diagnosing,
c) Self-Healing/Action/Repair, d) Communication/Logging, e)
Self-maintenance ... Each of the five intelliagent parts can get
activated or deactivated either during installation or subsequently."

The parts are small strategy objects owned by the agent; the base agent
drives them in order.  :class:`PartSwitches` is the activation state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["Finding", "PartSwitches"]


@dataclass(frozen=True)
class Finding:
    """One anomaly the monitoring part observed.

    ``kind`` is a stable symptom identifier the rule engine dispatches
    on (e.g. ``service-down``, ``service-timeout``, ``threshold``,
    ``hw-failed``); ``subject`` names the afflicted entity.
    """

    kind: str
    subject: str
    detail: str = ""
    severity: str = "err"        # err | warning
    metric: str = ""
    value: float = 0.0


@dataclass
class PartSwitches:
    """Which of the five parts are active on this agent."""

    monitoring: bool = True
    diagnosing: bool = True
    healing: bool = True
    communication: bool = True
    self_maintenance: bool = True

    def deactivate(self, part: str) -> None:
        self._flip(part, False)

    def activate(self, part: str) -> None:
        self._flip(part, True)

    def _flip(self, part: str, value: bool) -> None:
        if not hasattr(self, part):
            raise ValueError(f"unknown part {part!r}")
        setattr(self, part, value)
