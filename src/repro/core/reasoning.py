"""Constraint-based causal reasoning (§3.3, citing Pearl [13]).

"Intelliagents use constraint-based causal reasoning.  The data
structures they use are flat ASCII textual ontologies which contain
minimum and maximum software and hardware related variables, as well as
application information.  Our static ontologies represent the
constraints in the reasoning."

The engine is a compact cause-elimination loop: for a symptom
(:class:`~repro.core.parts.Finding`), candidate causes are tried in
order; each :class:`CausalRule` carries a *test* -- a discriminating
observation made through shell commands or log greps -- and the first
cause whose test confirms wins.  The constraints (thresholds, expected
process tables) come from the SLKT/baseline ontologies, not from code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.parts import Finding

__all__ = ["CausalRule", "Diagnosis", "RuleEngine"]


@dataclass(frozen=True)
class CausalRule:
    """symptom --(test)--> cause, with repair hints.

    ``test(host, finding) -> bool`` confirms or eliminates the cause;
    ``actions`` are healing-library action names, tried in order.
    """

    symptom: str
    cause: str
    test: Callable[[object, Finding], bool]
    actions: tuple
    confidence: float = 1.0


@dataclass
class Diagnosis:
    """The outcome of the diagnosing part for one finding."""

    finding: Finding
    cause: str
    actions: List[str]
    evidence: List[str] = field(default_factory=list)
    confirmed: bool = True

    @property
    def actionable(self) -> bool:
        return bool(self.actions)


class RuleEngine:
    """Ordered causal rules keyed by symptom kind."""

    def __init__(self):
        self._rules: Dict[str, List[CausalRule]] = {}

    def add_rule(self, rule: CausalRule) -> None:
        self._rules.setdefault(rule.symptom, []).append(rule)

    def extend(self, rules: Sequence[CausalRule]) -> None:
        for r in rules:
            self.add_rule(r)

    def rules_for(self, symptom: str) -> List[CausalRule]:
        return list(self._rules.get(symptom, ()))

    def diagnose(self, host, finding: Finding) -> Diagnosis:
        """Walk the candidate causes for this symptom; first confirmed
        test wins.  When no rule confirms, the diagnosis is the
        unconfirmed symptom itself with no actions -- the agent will
        escalate to humans ("notify human administrators")."""
        evidence: List[str] = []
        for rule in self._rules.get(finding.kind, ()):
            try:
                confirmed = bool(rule.test(host, finding))
            except Exception as exc:       # a probe itself can fail
                evidence.append(f"test for {rule.cause!r} errored: {exc}")
                continue
            evidence.append(
                f"{'confirmed' if confirmed else 'eliminated'}: {rule.cause}")
            if confirmed:
                return Diagnosis(finding, rule.cause, list(rule.actions),
                                 evidence)
        return Diagnosis(finding, f"unknown ({finding.kind})", [],
                         evidence, confirmed=False)

    def __len__(self) -> int:
        return sum(len(v) for v in self._rules.values())
