"""Resource intelliagents.

"Responsible for managing and configuring resources such as disks,
network cards, virtual memory etc."  This agent owns the disk estate:
filesystem fill levels (healed by pruning logs), failed spindles
(escalated to a field engineer), and I/O service-time blow-ups
(§3.6's asvc_t / wsvc_t watch).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.agent import Intelliagent
from repro.core.parts import Finding
from repro.core.reasoning import CausalRule, RuleEngine
from repro.core.thresholds import Baselines

__all__ = ["ResourceAgent"]


class ResourceAgent(Intelliagent):
    """One per host."""

    category = "resource"
    RUN_CPU_SECONDS = 0.015

    #: filesystem fill threshold, %
    FS_LIMIT = 90.0
    #: disk service time threshold, ms (30 s iostat intervals, §3.6)
    SVC_LIMIT = 60.0

    def __init__(self, host, *, baselines: Optional[Baselines] = None, **kw):
        self.baselines = baselines or Baselines.for_host(host)
        super().__init__(host, "resource", **kw)

    def monitor(self) -> List[Finding]:
        findings: List[Finding] = []
        for mount in self.host.fs.df():
            if not mount.online:
                findings.append(Finding("fs-offline", mount.point,
                                        "filesystem unavailable"))
            elif mount.pct_used > self.FS_LIMIT:
                findings.append(Finding(
                    "fs-full", mount.point,
                    f"{mount.pct_used:.0f}% used",
                    metric="fs_pct", value=mount.pct_used))
        for row in self.host.disk_metrics():
            if row["failed"]:
                findings.append(Finding("disk-failed",
                                        f"{self.host.name}:{row['device']}",
                                        "device not responding"))
            elif row["asvc_t"] > self.SVC_LIMIT:
                findings.append(Finding(
                    "disk-slow", f"{self.host.name}:{row['device']}",
                    f"asvc_t {row['asvc_t']:.1f} ms",
                    severity="warning",
                    metric="asvc_t", value=row["asvc_t"]))
        return findings

    def install_rules(self, engine: RuleEngine) -> None:
        def logs_grew(host, finding) -> bool:
            # the usual culprit for a full filesystem is log growth
            return finding.subject in ("/logs", "/var")

        def data_growth(host, finding) -> bool:
            return finding.subject in ("/data", "/apps")

        def io_saturated(host, finding) -> bool:
            return host.io_pressure() > 0.8

        engine.extend([
            CausalRule("fs-full", "log-growth", logs_grew, ("clean_logs",)),
            # /data filling is real growth: capacity decision for humans
            CausalRule("fs-full", "data-growth", data_growth, ()),
            CausalRule("fs-offline", "dead-spindle-or-controller",
                       lambda h, f: True, ("request_field_engineer",)),
            CausalRule("disk-failed", "dead-spindle",
                       lambda h, f: True, ("request_field_engineer",)),
            CausalRule("disk-slow", "io-saturation", io_saturated, ()),
        ])
