"""The self-healing action library.

Actions are the repair vocabulary causal rules refer to by name.  Each
action executes against the live simulated host ("wherever possible
automatically correct run-time operational faults with as little
downtime as possible") and returns how long the repair occupies the
agent -- during which the same-type lockout keeps a second instance
from starting.

Service recovery time is *not* instantaneous even when the action is:
restarting a database sets it STARTING and the sim delivers RUNNING
after its startup sequence, so measured downtime includes real restart
cost, exactly like the paper's restart-based recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = ["ActionResult", "ACTIONS", "apply_action"]


@dataclass(frozen=True)
class ActionResult:
    """Outcome of one healing action."""

    action: str
    success: bool            # the action itself executed
    busy_for: float          # seconds the agent stays busy
    detail: str = ""


def _find_app(host, subject: str):
    app = host.apps.get(subject)
    if app is None:
        # subject may be "host/app"
        _, _, name = subject.rpartition("/")
        app = host.apps.get(name)
    return app


# -- service actions ------------------------------------------------------------


def restart_app(host, subject: str) -> ActionResult:
    """Stop-and-start through the control script (the paper assumes
    startup/shutdown scripts exist for every application)."""
    app = _find_app(host, subject)
    if app is None:
        return ActionResult("restart_app", False, 0.0,
                            f"no app {subject!r}")
    res = host.shell.run(f"{app.name}_ctl restart")
    busy = app.shutdown_duration + app.startup_duration() + 30.0
    return ActionResult("restart_app", res.ok, busy,
                        f"restarted {app.name}")


def start_app(host, subject: str) -> ActionResult:
    app = _find_app(host, subject)
    if app is None:
        return ActionResult("start_app", False, 0.0, f"no app {subject!r}")
    res = host.shell.run(f"{app.name}_ctl start")
    return ActionResult("start_app", res.ok,
                        app.startup_duration() + 30.0,
                        f"started {app.name}")


def restore_config(host, subject: str) -> ActionResult:
    """Revert configuration to the SLKT's known-good build ("undoing
    old configurations") and restart."""
    app = _find_app(host, subject)
    if app is None:
        return ActionResult("restore_config", False, 0.0,
                            f"no app {subject!r}")
    app.config_ok = True
    host.syslog.info(host.sim.now, "intelliagent",
                     f"restored known-good config for {app.name}")
    res = host.shell.run(f"{app.name}_ctl restart")
    busy = 120.0 + app.shutdown_duration + app.startup_duration()
    return ActionResult("restore_config", res.ok, busy,
                        f"config restored for {app.name}")


def restore_data(host, subject: str) -> ActionResult:
    """Restore from the last backup, then start.  Slow but effective
    against corruption ("restoring old backups and overwriting current
    assumed 'invalid' settings")."""
    app = _find_app(host, subject)
    if app is None:
        return ActionResult("restore_data", False, 0.0,
                            f"no app {subject!r}")
    restore_time = 900.0        # pulling the backup back is the cost
    app.stop()
    app.data_ok = True

    def _start_later():
        if host.is_up:
            app.start()

    host.sim.schedule(restore_time, _start_later)
    return ActionResult("restore_data", True,
                        restore_time + app.startup_duration() + 60.0,
                        f"restore-from-backup for {app.name}")


# -- resource actions ----------------------------------------------------------------


def kill_runaway(host, subject: str) -> ActionResult:
    """Kill user processes monopolising a CPU."""
    victims = [p for p in host.ptable
               if p.cpu_pct > 90.0 and p.user not in ("root", "daemon")]
    for v in victims:
        host.ptable.kill(v.pid)
    ok = bool(victims)
    return ActionResult("kill_runaway", ok, 30.0,
                        f"killed {len(victims)} runaway process(es)")


def kill_leaky(host, subject: str) -> ActionResult:
    """Kill the process bloating memory (pager thrash remedy)."""
    ram = host.effective_ram_mb()
    victims = [p for p in host.ptable
               if p.mem_mb > 0.3 * ram and p.user not in ("root",)]
    for v in victims:
        host.ptable.kill(v.pid)
    ok = bool(victims)
    return ActionResult("kill_leaky", ok, 30.0,
                        f"killed {len(victims)} leaking process(es)")


def clean_logs(host, subject: str) -> ActionResult:
    """Prune old performance/agent logs to free the /logs filesystem."""
    mount = host.fs.mounts.get("/logs")
    if mount is None:
        return ActionResult("clean_logs", False, 0.0, "no /logs mount")
    before = mount.pct_used
    removed = 0
    for path in host.fs.glob_files("/logs/perf"):
        f = host.fs.stat(path)
        if len(f.lines) > 100:
            host.fs.write(path, f.lines[-100:], now=host.sim.now)
            removed += 1
    # emergency space recovery for bulk (non-file-tracked) usage
    if mount.pct_used > 80.0:
        mount.used_bytes = int(mount.capacity_bytes * 0.6)
    return ActionResult(
        "clean_logs", mount.pct_used < before or mount.pct_used < 80.0,
        60.0, f"pruned {removed} logs, {before:.0f}%→{mount.pct_used:.0f}%")


# -- infrastructure actions -----------------------------------------------------------


def restart_cron(host, subject: str) -> ActionResult:
    host.crond.restart()
    if not host.ptable.alive("crond"):
        host.ptable.spawn("root", "crond", cpu_pct=0.01, mem_mb=2.0,
                          now=host.sim.now)
    return ActionResult("restart_cron", True, 15.0, "crond restarted")


def reboot_host(host, subject: str) -> ActionResult:
    """The blunt instrument; the paper treats reboot as last resort."""
    host.reboot()
    return ActionResult("reboot_host", True, host.boot_duration + 120.0,
                        f"rebooted {host.name}")


def request_field_engineer(host, subject: str) -> ActionResult:
    """Not a repair: hardware needs hands.  Returns success=False so
    the agent escalates to humans."""
    return ActionResult("request_field_engineer", False, 0.0,
                        f"field engineer required for {subject}")


ACTIONS: Dict[str, Callable[[object, str], ActionResult]] = {
    "restart_app": restart_app,
    "start_app": start_app,
    "restore_config": restore_config,
    "restore_data": restore_data,
    "kill_runaway": kill_runaway,
    "kill_leaky": kill_leaky,
    "clean_logs": clean_logs,
    "restart_cron": restart_cron,
    "reboot_host": reboot_host,
    "request_field_engineer": request_field_engineer,
}


def apply_action(name: str, host, subject: str) -> ActionResult:
    fn = ACTIONS.get(name)
    if fn is None:
        return ActionResult(name, False, 0.0, f"unknown action {name!r}")
    tracer = host.sim.tracer
    with tracer.span(f"heal.{name}", subject=subject, host=host.name,
                     fault_id=tracer.fault_id_for(subject)) as span:
        result = fn(host, subject)
        span.set_attr("outcome", "ok" if result.success else "failed")
        span.set_attr("busy_for", result.busy_for)
    return result
