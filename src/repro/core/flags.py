"""The flag-file protocol.

"Whenever a local intelliagent runs, it produces a flag in the
dedicated '/logs/intelliagents/intelliagent_name' directory on the
local server disk to show the status of the run.  A number of flags are
produced with appropriate naming conventions that show what happened
and exactly where the agent found a fault.  Absence of these flags
means that we either have an internal intelliagent problem or that they
did not run at all."

Flag files are named ``<status>.<timestamp>`` with an optional detail
payload inside.  The administration servers' watchdog reads freshness;
humans read the detail; self-maintenance prunes old flags.

A store can additionally be bound to the site's condition ledger
(:mod:`repro.controlplane`): every successful flag write then also
appends a ``flag`` condition, which is how the incremental control
plane learns about agent activity without re-reading the directories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cluster.filesystem import FsError

__all__ = ["FLAG_DIR", "Flag", "FlagStore", "FLAG_STATUSES"]

FLAG_DIR = "/logs/intelliagents"

#: ok       -- ran, all clear
#: fault    -- ran, found a fault (detail says where)
#: fixed    -- ran, repaired a fault
#: failed   -- ran, could not repair; humans notified
#: skipped  -- woke but exited (same-type lockout)
FLAG_STATUSES = ("ok", "fault", "fixed", "failed", "skipped")


@dataclass(frozen=True)
class Flag:
    agent: str
    status: str
    time: float
    detail: str = ""
    #: disambiguates flags of the same status raised within the same
    #: 0.1 s filename bucket (they used to silently overwrite)
    seq: int = 0

    @property
    def filename(self) -> str:
        base = f"{self.status}.{self.time:.1f}"
        return base if self.seq == 0 else f"{base}.{self.seq}"


class FlagStore:
    """Reads and writes one agent's flag directory on a host fs."""

    def __init__(self, fs, agent_name: str, *, ledger=None,
                 host: str = "",
                 transport: Optional[Callable[[str], bool]] = None):
        self.fs = fs
        self.agent = agent_name
        self.dir = f"{FLAG_DIR}/{agent_name}"
        #: condition-ledger binding (see :meth:`bind`)
        self.ledger = ledger
        self.host = host
        self.transport = transport
        fs.mkdir(self.dir)

    def bind(self, ledger, host: str,
             transport: Optional[Callable[[str], bool]] = None) -> None:
        """Attach this store to a site condition ledger.  ``transport``
        models the delivery leg: called with the host name before each
        append, a False return drops the condition (the flag file still
        exists locally -- exactly a partitioned host's behaviour)."""
        self.ledger = ledger
        self.host = host
        self.transport = transport

    # -- writing ------------------------------------------------------------

    def raise_flag(self, status: str, now: float, detail: str = "") -> Flag:
        if status not in FLAG_STATUSES:
            raise ValueError(f"unknown flag status {status!r}")
        flag = Flag(self.agent, status, now, detail)
        path = f"{self.dir}/{flag.filename}"
        while self.fs.exists(path):
            flag = Flag(self.agent, status, now, detail, flag.seq + 1)
            path = f"{self.dir}/{flag.filename}"
        self.fs.write(path, [detail] if detail else [], now=now)
        if self.ledger is not None and (
                self.transport is None or self.transport(self.host)):
            self.ledger.append("flag", self.host, agent=self.agent,
                               status=status, time=now, detail=detail)
        return flag

    def clear_before(self, cutoff: float) -> int:
        """Self-maintenance: drop flags older than ``cutoff``."""
        removed = 0
        for path in self.fs.files_in_dir(self.dir):
            parsed = self._parse_name(path)
            if parsed is not None and parsed[1] < cutoff:
                self.fs.remove(path)
                removed += 1
        return removed

    def clear_all(self) -> int:
        return self.fs.remove_tree(self.dir)

    # -- reading --------------------------------------------------------------

    @staticmethod
    def _parse_name(path: str) -> Optional[tuple]:
        """(status, time, seq) straight from the filename -- the hot
        path never opens the file."""
        name = path.rsplit("/", 1)[-1]
        status, _, stamp = name.partition(".")
        if status not in FLAG_STATUSES:
            return None
        try:
            return (status, float(stamp), 0)
        except ValueError:
            pass
        base, _, seq = stamp.rpartition(".")
        try:
            return (status, float(base), int(seq))
        except ValueError:
            return None

    def _parse_path(self, path: str) -> Optional[Flag]:
        parsed = self._parse_name(path)
        if parsed is None:
            return None
        status, t, seq = parsed
        try:
            lines = self.fs.read(path)
        except FsError:
            lines = []
        return Flag(self.agent, status, t, lines[0] if lines else "", seq)

    def flags(self) -> List[Flag]:
        out = []
        for path in self.fs.files_in_dir(self.dir):
            flag = self._parse_path(path)
            if flag is not None:
                out.append(flag)
        out.sort(key=lambda f: (f.time, f.seq))
        return out

    def latest(self) -> Optional[Flag]:
        best: Optional[tuple] = None
        best_path: Optional[str] = None
        for path in self.fs.files_in_dir(self.dir):
            parsed = self._parse_name(path)
            if parsed is not None and (
                    best is None or parsed[1:] > best[1:]):
                best, best_path = parsed, path
        if best_path is None:
            return None
        return self._parse_path(best_path)

    def latest_time(self) -> float:
        """Freshest flag timestamp (-inf when none exist), the number
        the watchdog compares against the expected cron grid."""
        latest = self.latest()
        return latest.time if latest else float("-inf")

    @staticmethod
    def agents_on(fs) -> List[str]:
        """Agent names that have flag directories on this host."""
        try:
            return fs.listdir(FLAG_DIR)
        except FsError:
            return []
