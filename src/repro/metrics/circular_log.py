"""Circular-queue ASCII log files.

§3.5: "Each file produced by persistent state processes, was managed as
a circular queue, the length of which was configurable."  The log lives
in the host's simulated filesystem as a real flat-ASCII file, so disk
accounting and the agents' file-based workflows see it; the circular
discipline caps its length.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["CircularLog"]


class CircularLog:
    """A fixed-capacity append log backed by a SimFile."""

    def __init__(self, fs, path: str, maxlen: int = 1000):
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self.fs = fs
        self.path = path
        self.maxlen = maxlen
        if not fs.exists(path):
            fs.write(path, [], now=0.0)

    def append(self, line: str, now: float = 0.0) -> None:
        """Append, evicting the oldest line(s) beyond capacity."""
        f = self.fs.append(self.path, line, now=now)
        if len(f.lines) > self.maxlen:
            # rewrite keeps mount accounting consistent
            self.fs.write(self.path, f.lines[-self.maxlen:], now=now)

    def lines(self) -> List[str]:
        return self.fs.read(self.path)

    def last(self, n: int = 1) -> List[str]:
        return self.lines()[-n:]

    def __len__(self) -> int:
        return len(self.fs.read(self.path))

    def clear(self, now: float = 0.0) -> None:
        self.fs.write(self.path, [], now=now)
