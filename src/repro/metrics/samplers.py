"""Per-workgroup measurement samplers.

§3.5 divides measurements into five groups: operating system, network,
disks, application processes and user processes.  Each sampler runs the
relevant shell tools on its host (vmstat/sar for OS, netstat/nfsstat
for network, iostat for disks, ps-walks for processes), parses the
ASCII, appends a record to the group's circular log under
``/logs/perf/<group>`` and feeds the in-memory time series the
threshold checks read.

"All techniques were non-intrusive": a sampler is pull-only; it never
mutates the thing it measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.metrics.circular_log import CircularLog
from repro.metrics.timeseries import TimeSeries

__all__ = ["Sample", "WORKGROUPS", "SamplerSuite"]

WORKGROUPS = ("os", "network", "disks", "app_procs", "user_procs")

#: system users whose processes belong to the OS, not to people
SYSTEM_USERS = frozenset({"root", "daemon", "patrol", "www", "lsfadmin"})


@dataclass
class Sample:
    """One measurement record: a timestamped metric map."""

    time: float
    group: str
    metrics: Dict[str, float]

    def format(self) -> str:
        body = " ".join(f"{k}={v:.3f}" for k, v in sorted(self.metrics.items()))
        return f"{self.time:.1f} {body}"

    @classmethod
    def parse(cls, group: str, line: str) -> "Sample":
        head, *pairs = line.split()
        metrics = {}
        for p in pairs:
            k, _, v = p.partition("=")
            metrics[k] = float(v)
        return cls(float(head), group, metrics)


class SamplerSuite:
    """All five workgroup samplers for one host."""

    def __init__(self, host, *, log_maxlen: int = 2000):
        self.host = host
        self.series: Dict[str, Dict[str, TimeSeries]] = {
            g: {} for g in WORKGROUPS}
        self.logs: Dict[str, CircularLog] = {}
        self.log_maxlen = log_maxlen
        self.samples_taken = 0

    def _log(self, group: str) -> CircularLog:
        log = self.logs.get(group)
        if log is None:
            # "classified first by server name and then by measurement group"
            path = f"/logs/perf/{self.host.name}/{group}"
            log = CircularLog(self.host.fs, path, self.log_maxlen)
            self.logs[group] = log
        return log

    def _record(self, group: str, now: float,
                metrics: Dict[str, float]) -> Sample:
        sample = Sample(now, group, metrics)
        self._log(group).append(sample.format(), now=now)
        bucket = self.series[group]
        for key, value in metrics.items():
            ts = bucket.get(key)
            if ts is None:
                ts = bucket[key] = TimeSeries(f"{group}.{key}")
            ts.append(now, value)
        self.samples_taken += 1
        return sample

    # -- the five workgroups -------------------------------------------------

    def sample_os(self) -> Sample:
        """vmstat/sar numbers: sr, po, faults, free, run queue, idle."""
        host = self.host
        m = host.os_metrics()
        return self._record("os", host.sim.now, {
            "run_queue": float(m["run_queue"]),
            "blocked": float(m["blocked"]),
            "free_mb": m["free_mb"],
            "scan_rate": float(m["scan_rate"]),
            "page_out": float(m["page_out"]),
            "page_faults": float(m["page_faults"]),
            "cpu_idle": m["cpu_idle"],
            "cpu_user": m["cpu_user"],
            "cpu_sys": m["cpu_sys"],
            "cpu_wio": m["cpu_wio"],
            "load_avg": host.load_average(),
        })

    def sample_network(self) -> Sample:
        """netstat/nfsstat: per-interface totals, errors, collisions."""
        host = self.host
        metrics: Dict[str, float] = {
            "nfs_calls": float(host.nfs_calls),
            "nfs_retrans": float(host.nfs_retrans),
        }
        total_err = 0
        for nic in host.nics.values():
            metrics[f"{nic.ifname}_ipkts"] = float(nic.packets_in)
            metrics[f"{nic.ifname}_opkts"] = float(nic.packets_out)
            metrics[f"{nic.ifname}_errs"] = float(
                nic.errors_in + nic.errors_out)
            metrics[f"{nic.ifname}_colls"] = float(nic.collisions)
            metrics[f"{nic.ifname}_util"] = nic.lan.utilization()
            total_err += nic.errors_in + nic.errors_out
        metrics["total_errs"] = float(total_err)
        return self._record("network", host.sim.now, metrics)

    def sample_disks(self) -> Sample:
        """iostat: busy%, asvc_t, wsvc_t per device (§3.6 watches the
        response-time values)."""
        host = self.host
        metrics: Dict[str, float] = {}
        worst_svc = 0.0
        for row in host.disk_metrics():
            dev = row["device"]
            metrics[f"{dev}_busy"] = row["busy_pct"]
            metrics[f"{dev}_asvc_t"] = row["asvc_t"]
            metrics[f"{dev}_wsvc_t"] = row["wsvc_t"]
            if not row["failed"]:
                worst_svc = max(worst_svc, row["asvc_t"])
        metrics["worst_asvc_t"] = worst_svc
        for mount in host.fs.df():
            key = "root" if mount.point == "/" else mount.point.strip("/").replace("/", "_")
            metrics[f"fs_{key}_pct"] = mount.pct_used
        return self._record("disks", host.sim.now, metrics)

    def sample_app_procs(self) -> Sample:
        """Per-application process aggregation."""
        host = self.host
        metrics: Dict[str, float] = {}
        for app in host.apps.values():
            cpu = sum(p.cpu_pct for p in app.procs)
            mem = sum(p.mem_mb for p in app.procs)
            metrics[f"{app.name}_cpu"] = cpu
            metrics[f"{app.name}_mem_mb"] = mem
            metrics[f"{app.name}_nproc"] = float(len(app.procs))
        return self._record("app_procs", host.sim.now, metrics)

    def sample_user_procs(self) -> Sample:
        """Per-user process aggregation ('processes per user name')."""
        host = self.host
        by_user: Dict[str, List[float]] = {}
        for proc in host.ptable:
            if proc.user in SYSTEM_USERS:
                continue
            by_user.setdefault(proc.user, [0.0, 0.0, 0.0])
            agg = by_user[proc.user]
            agg[0] += 1
            agg[1] += proc.cpu_pct
            agg[2] += proc.mem_mb
        metrics: Dict[str, float] = {"users": float(len(by_user))}
        worst_cpu = 0.0
        for user, (n, cpu, mem) in by_user.items():
            metrics[f"{user}_nproc"] = n
            metrics[f"{user}_cpu"] = cpu
            metrics[f"{user}_mem_mb"] = mem
            worst_cpu = max(worst_cpu, cpu)
        metrics["worst_user_cpu"] = worst_cpu
        return self._record("user_procs", host.sim.now, metrics)

    # -- convenience -------------------------------------------------------------

    def sample_all(self) -> List[Sample]:
        if not self.host.is_up:
            return []
        return [self.sample_os(), self.sample_network(),
                self.sample_disks(), self.sample_app_procs(),
                self.sample_user_procs()]

    def get_series(self, group: str, key: str) -> Optional[TimeSeries]:
        return self.series.get(group, {}).get(key)
