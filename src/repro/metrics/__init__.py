"""Performance measurement substrate (§3.5 of the paper).

Five measurement workgroups -- operating system, network, disks,
application processes and user processes -- collected by standard-tool
samplers, kept in circular-queue ASCII files classified by server then
group, associated by timestamp and treated as time series.

- :mod:`samplers` -- per-workgroup samplers built on the shell tools.
- :mod:`microstate` -- per-process microstate accounting aggregation.
- :mod:`circular_log` -- the configurable-length circular ASCII logs.
- :mod:`timeseries` -- timestamp joins and aggregation (numpy).
- :mod:`accounting` -- per-user / per-command process accounting.
"""

from repro.metrics.circular_log import CircularLog
from repro.metrics.samplers import (Sample, SamplerSuite, WORKGROUPS)
from repro.metrics.microstate import MicrostateAccountant
from repro.metrics.timeseries import TimeSeries, merge_by_timestamp
from repro.metrics.timeline import (render_dashboard, render_timeline,
                                    sparkline)
from repro.metrics.accounting import ProcessAccountant

__all__ = ["CircularLog", "Sample", "SamplerSuite", "WORKGROUPS",
           "MicrostateAccountant", "TimeSeries", "merge_by_timestamp",
           "render_dashboard", "render_timeline", "sparkline",
           "ProcessAccountant"]
