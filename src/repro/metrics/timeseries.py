"""Time-series handling for collected measurements.

§3.5: "Different types of measurements were associated together by
matching their timestamps.  Measurements were ordered by timestamp and
treated as a time series."  Implemented over numpy for the campaign-
scale aggregations (vectorised joins beat per-row Python by orders of
magnitude; see the hpc-parallel guides).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["TimeSeries", "merge_by_timestamp"]


class TimeSeries:
    """An append-friendly (timestamp, value) series.

    With ``maxlen`` the series keeps ring-buffer semantics: only the
    newest ``maxlen`` samples are retained.  Trimming is amortised --
    the backing lists are sliced in blocks once they reach twice the
    cap, so appends stay O(1) amortised while the telemetry rollup
    loop appends to hundreds of series every tick.
    """

    def __init__(self, name: str = "", maxlen: Optional[int] = None):
        if maxlen is not None and maxlen <= 0:
            raise ValueError(f"maxlen must be positive, got {maxlen!r}")
        self.name = name
        self.maxlen = maxlen
        #: samples dropped by the ring cap (windows reaching further
        #: back than the retained history should know they are clipped)
        self.dropped = 0
        self._t: List[float] = []
        self._v: List[float] = []
        # list->ndarray conversion is O(n); campaign aggregations read
        # .times/.values thousands of times between appends, so cache
        # the arrays and invalidate on mutation
        self._t_arr: Optional[np.ndarray] = None
        self._v_arr: Optional[np.ndarray] = None

    def append(self, t: float, value: float) -> None:
        if self._t and t < self._t[-1]:
            raise ValueError(
                f"timestamps must be non-decreasing ({t} < {self._t[-1]})")
        self._t.append(float(t))
        self._v.append(float(value))
        if self.maxlen is not None and len(self._t) >= 2 * self.maxlen:
            cut = len(self._t) - self.maxlen
            del self._t[:cut]
            del self._v[:cut]
            self.dropped += cut
        self._t_arr = None
        self._v_arr = None

    def last(self) -> float:
        """Newest value (0.0 on an empty series)."""
        return self._v[-1] if self._v else 0.0

    def last_time(self) -> float:
        """Newest timestamp (-inf on an empty series)."""
        return self._t[-1] if self._t else float("-inf")

    def value_at(self, t: float) -> float:
        """Value of the newest sample with timestamp <= ``t``.

        Falls back to the oldest retained sample when ``t`` predates
        the (possibly ring-trimmed) history, and 0.0 on an empty
        series -- the lookup burn-rate windows use for "cumulative
        count as of ``now - window``"."""
        if not self._t:
            return 0.0
        i = bisect.bisect_right(self._t, t) - 1
        return self._v[max(0, i)]

    def __len__(self) -> int:
        return len(self._t)

    @property
    def times(self) -> np.ndarray:
        if self._t_arr is None:
            self._t_arr = np.asarray(self._t, dtype=np.float64)
        return self._t_arr

    @property
    def values(self) -> np.ndarray:
        if self._v_arr is None:
            self._v_arr = np.asarray(self._v, dtype=np.float64)
        return self._v_arr

    # -- persistence -----------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {"maxlen": self.maxlen, "dropped": self.dropped,
                "t": list(self._t), "v": list(self._v)}

    def restore_state(self, state: dict) -> None:
        self.maxlen = state["maxlen"]
        self.dropped = int(state["dropped"])
        self._t = [float(x) for x in state["t"]]
        self._v = [float(x) for x in state["v"]]
        self._t_arr = None
        self._v_arr = None

    # -- statistics -----------------------------------------------------------

    def mean(self) -> float:
        return float(np.mean(self.values)) if self._v else 0.0

    def max(self) -> float:
        return float(np.max(self.values)) if self._v else 0.0

    def min(self) -> float:
        return float(np.min(self.values)) if self._v else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.values, q)) if self._v else 0.0

    def window(self, t0: float, t1: float) -> "TimeSeries":
        """Sub-series with t0 <= t < t1."""
        t, v = self.times, self.values
        mask = (t >= t0) & (t < t1)
        out = TimeSeries(self.name)
        out._t = t[mask].tolist()
        out._v = v[mask].tolist()
        return out

    def resample(self, period: float) -> Tuple[np.ndarray, np.ndarray]:
        """Mean value per period bucket; returns (bucket_starts, means)."""
        if not self._t:
            return (np.empty(0), np.empty(0))
        t, v = self.times, self.values
        buckets = np.floor(t / period).astype(np.int64)
        uniq, inverse = np.unique(buckets, return_inverse=True)
        sums = np.bincount(inverse, weights=v)
        counts = np.bincount(inverse)
        return (uniq * period, sums / counts)

    def breaches(self, threshold: float, above: bool = True) -> np.ndarray:
        """Timestamps where the series crosses a threshold."""
        t, v = self.times, self.values
        mask = v > threshold if above else v < threshold
        return t[mask]


def merge_by_timestamp(series: Sequence[TimeSeries], *,
                       tolerance: float = 0.0) -> Dict[str, np.ndarray]:
    """Join several series on (approximately) matching timestamps.

    Returns a dict with key ``"t"`` (the common timestamps) and one key
    per series name holding the matched values.  A timestamp is kept
    when *every* series has a sample within ``tolerance`` of it.
    This is the paper's 'associated together by matching timestamps'.
    """
    if not series:
        return {"t": np.empty(0)}
    base = series[0]
    t0 = base.times
    keep = np.ones(len(t0), dtype=bool)
    matched: List[np.ndarray] = []
    for s in series[1:]:
        ts = s.times
        if len(ts) == 0:
            return {"t": np.empty(0), base.name: np.empty(0),
                    **{x.name: np.empty(0) for x in series[1:]}}
        idx = np.searchsorted(ts, t0)
        idx = np.clip(idx, 0, len(ts) - 1)
        # nearest of idx and idx-1
        left = np.clip(idx - 1, 0, len(ts) - 1)
        use_left = np.abs(ts[left] - t0) <= np.abs(ts[idx] - t0)
        nearest = np.where(use_left, left, idx)
        ok = np.abs(ts[nearest] - t0) <= tolerance
        keep &= ok
        matched.append(nearest)
    out: Dict[str, np.ndarray] = {"t": t0[keep], base.name: base.values[keep]}
    for s, nearest in zip(series[1:], matched):
        out[s.name] = s.values[nearest[keep]]
    return out
