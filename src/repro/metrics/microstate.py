"""Microstate accounting aggregation.

§3.5: "To determine accurately the behaviour of each process, we used
microstate measurements ... microsecond resolution and the overhead is
sub-microsecond."  The process model keeps per-process cumulative
user/system/wait/sleep clocks; this module advances and snapshots them
for "very accurate thread and process accounting".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["MicrostateSnapshot", "MicrostateAccountant"]


@dataclass(frozen=True)
class MicrostateSnapshot:
    """One process's cumulative microstates at a point in time."""

    time: float
    pid: int
    command: str
    user: str
    usr: float
    sys: float
    wait_io: float
    sleep: float

    @property
    def busy(self) -> float:
        return self.usr + self.sys

    def format(self) -> str:
        return (f"{self.time:.1f} pid={self.pid} cmd={self.command} "
                f"usr={self.usr:.6f} sys={self.sys:.6f} "
                f"wio={self.wait_io:.6f} slp={self.sleep:.6f}")


class MicrostateAccountant:
    """Snapshots microstate clocks for every process on a host."""

    def __init__(self, host):
        self.host = host
        self.snapshots: List[MicrostateSnapshot] = []

    def snapshot(self) -> List[MicrostateSnapshot]:
        host = self.host
        host.ptable.advance(host.sim.now)
        out = []
        for proc in host.ptable:
            snap = MicrostateSnapshot(
                host.sim.now, proc.pid, proc.command, proc.user,
                proc.micro.user, proc.micro.system,
                proc.micro.wait_io, proc.micro.sleep)
            out.append(snap)
        self.snapshots.extend(out)
        return out

    def busiest(self, n: int = 5) -> List[MicrostateSnapshot]:
        """Top-N processes by cumulative busy time at the last snapshot."""
        if not self.snapshots:
            return []
        last_t = self.snapshots[-1].time
        current = [s for s in self.snapshots if s.time == last_t]
        return sorted(current, key=lambda s: -s.busy)[:n]

    def delta(self, pid: int) -> Optional[Dict[str, float]]:
        """Change in microstates between the last two snapshots of a pid."""
        mine = [s for s in self.snapshots if s.pid == pid]
        if len(mine) < 2:
            return None
        a, b = mine[-2], mine[-1]
        dt = b.time - a.time
        if dt <= 0:
            return None
        return {
            "usr_frac": (b.usr - a.usr) / dt,
            "sys_frac": (b.sys - a.sys) / dt,
            "wio_frac": (b.wait_io - a.wait_io) / dt,
            "interval": dt,
        }
