"""ASCII timelines (§3.5).

"Measurements were ordered by timestamp and treated as a time series to
produce graphical representations of the system performance either as a
whole or by component/workgroup" -- and §5: "Administrators can
generate timelines of system behaviour and observe similar behavioural
patterns."

Everything in this system is flat ASCII, so the "graphics" are too:
a block-character sparkline per series, with aligned time axes so
workgroups can be eyeballed together.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.metrics.timeseries import TimeSeries

__all__ = ["sparkline", "render_timeline", "render_dashboard"]

_BLOCKS = " .:-=+*#%@"


def sparkline(values: Sequence[float], *, width: int = 60,
              lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Render values as a fixed-width ASCII sparkline.

    Values are bucket-averaged down (or sampled up) to ``width`` cells
    and mapped onto a 10-level block ramp.  ``lo``/``hi`` pin the scale
    (defaults: data min/max).
    """
    vals = np.asarray(list(values), dtype=np.float64)
    if vals.size == 0:
        return " " * width
    # resample to width cells by bucket means
    idx = np.floor(np.linspace(0, width, num=vals.size,
                               endpoint=False)).astype(np.int64)
    sums = np.bincount(idx, weights=vals, minlength=width)
    counts = np.bincount(idx, minlength=width)
    cells = np.divide(sums, counts, out=np.full(width, np.nan),
                      where=counts > 0)
    # forward-fill empty cells
    last = 0.0
    filled = []
    for c in cells:
        if not np.isnan(c):
            last = c
        filled.append(last)
    cells = np.asarray(filled)
    floor = float(np.min(vals)) if lo is None else lo
    ceil = float(np.max(vals)) if hi is None else hi
    span = max(1e-12, ceil - floor)
    levels = np.clip((cells - floor) / span, 0.0, 1.0)
    ramp = np.minimum((levels * (len(_BLOCKS) - 1)).round().astype(int),
                      len(_BLOCKS) - 1)
    return "".join(_BLOCKS[i] for i in ramp)


def render_timeline(series: TimeSeries, *, width: int = 60,
                    label: Optional[str] = None) -> List[str]:
    """One series as [header, sparkline, axis] lines."""
    name = label if label is not None else series.name
    vals = series.values
    if vals.size == 0:
        return [f"{name}: (no samples)"]
    t = series.times
    head = (f"{name}: min={vals.min():.1f} mean={vals.mean():.1f} "
            f"max={vals.max():.1f} (n={vals.size})")
    line = "|" + sparkline(vals, width=width) + "|"
    axis = (f" t=[{t[0]:.0f} .. {t[-1]:.0f}]s "
            f"({(t[-1] - t[0]) / 3600.0:.1f} h)")
    return [head, line, axis]


def render_dashboard(named_series: Dict[str, TimeSeries], *,
                     width: int = 60) -> str:
    """Several series stacked with aligned sparklines -- the
    'by component/workgroup' view."""
    out: List[str] = []
    pad = max((len(n) for n in named_series), default=0)
    for name in sorted(named_series):
        ts = named_series[name]
        vals = ts.values
        if vals.size == 0:
            out.append(f"{name:>{pad}} | (no samples)")
            continue
        out.append(f"{name:>{pad}} |{sparkline(vals, width=width)}| "
                   f"{vals.mean():8.1f} avg")
    return "\n".join(out)
