"""Process accounting views.

§3.5 item list: "processes per user name, per command name and
arguments, per user and command name, per CPU" -- the pivot tables the
performance intelliagents compare against baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["AccountRow", "ProcessAccountant"]


@dataclass(frozen=True)
class AccountRow:
    key: str
    nproc: int
    cpu_pct: float
    mem_mb: float


class ProcessAccountant:
    """Pivots over a host's process table."""

    def __init__(self, host):
        self.host = host

    def _pivot(self, keyfn) -> List[AccountRow]:
        agg: Dict[str, List[float]] = {}
        for proc in self.host.ptable:
            key = keyfn(proc)
            row = agg.setdefault(key, [0, 0.0, 0.0])
            row[0] += 1
            row[1] += proc.cpu_pct
            row[2] += proc.mem_mb
        return sorted(
            (AccountRow(k, int(v[0]), v[1], v[2]) for k, v in agg.items()),
            key=lambda r: -r.cpu_pct)

    def per_user(self) -> List[AccountRow]:
        return self._pivot(lambda p: p.user)

    def per_command(self) -> List[AccountRow]:
        return self._pivot(lambda p: p.command)

    def per_command_args(self) -> List[AccountRow]:
        return self._pivot(lambda p: p.cmdline)

    def per_user_command(self) -> List[AccountRow]:
        return self._pivot(lambda p: f"{p.user}:{p.command}")

    def per_cpu(self) -> List[AccountRow]:
        """Round-robin attribution of runnable processes to CPUs (the
        sim does not pin processes; this mirrors mpstat's view)."""
        cpus = max(1, self.host.effective_cpus())
        agg: Dict[str, List[float]] = {
            f"cpu{i}": [0, 0.0, 0.0] for i in range(cpus)}
        runnable = [p for p in self.host.ptable
                    if p.state.value == "R"]
        for i, proc in enumerate(sorted(runnable, key=lambda p: p.pid)):
            row = agg[f"cpu{i % cpus}"]
            row[0] += 1
            row[1] += proc.cpu_pct
            row[2] += proc.mem_mb
        return [AccountRow(k, int(v[0]), v[1], v[2])
                for k, v in sorted(agg.items())]

    def heaviest_user(self) -> Tuple[str, float]:
        """The user burning the most CPU (runaway hunting)."""
        rows = [r for r in self.per_user()
                if r.key not in ("root", "daemon")]
        if not rows:
            return ("", 0.0)
        top = rows[0]
        return (top.key, top.cpu_pct)
