"""The trigger bus: host-local signals become immediate demand-wakes.

Between cron wakes a host is full of cheap, already-modelled signals
that the fixed grid ignores until the next wake: syslog lines, daemon
exits, application state flips, metric threshold crossings.  The bus
bridges them to the agents that care, so a fault is looked at the
moment it becomes observable instead of up to a full period later.

Sources wired by :meth:`attach_syslog` / :meth:`watch_process_exits` /
:meth:`watch_app`; anything else (threshold crossings, admin-initiated
demand conditions) goes through :meth:`publish` directly.  State-flip
triggers stand in for the client-side symptom stream (the front door
and user traffic observe a hung service immediately even when nothing
reaches the error log).

Dispatch is deliberately dumb and deterministic: subscriptions are
checked in registration order, a per-agent cooldown de-bounces trigger
storms (one wake per agent per ``cooldown`` covers every signal that
arrived in that window -- the run looks at current state anyway), and
delivery is a :meth:`~repro.core.agent.Intelliagent.demand_wake`, which
snaps the agent's wake policy back to base and fires its cron job now.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.cluster.syslog import SEVERITIES

__all__ = ["Trigger", "TriggerBus"]


@dataclass(frozen=True)
class Trigger:
    """One demand-wake cause, as seen by subscribers."""

    kind: str           # syslog | proc_exit | state | threshold | demand
    subject: str        # app/tag the signal is about
    detail: str = ""
    severity: str = ""
    facility: str = ""
    time: float = 0.0


class TriggerBus:
    """Per-host bridge from local signals to agent demand-wakes."""

    def __init__(self, host, *, cooldown: float = 60.0):
        self.host = host
        self.sim = host.sim
        self.cooldown = float(cooldown)
        self.enabled = True
        self._subs: List[Tuple[object, Callable[[Trigger], bool]]] = []
        self._last_wake: Dict[str, float] = {}
        self.published = 0
        self.demand_wakes = 0
        self.suppressed = 0

    # -- sources -------------------------------------------------------------

    def attach_syslog(self, min_severity: str = "err") -> None:
        """Wake on syslog records at or above ``min_severity``."""
        if min_severity not in SEVERITIES:
            raise ValueError(f"unknown severity {min_severity!r}")
        threshold = SEVERITIES.index(min_severity)

        def on_record(rec):
            if SEVERITIES.index(rec.severity) <= threshold:
                self.publish("syslog", rec.tag, detail=rec.message,
                             severity=rec.severity, facility=rec.facility)
        self.host.syslog.subscribe(on_record)

    def watch_process_exits(self) -> None:
        """Wake on the exit of any application-owned process.  Agent
        and batch-job processes come and go by design; only daemons
        belonging to an installed application are symptoms."""
        def on_exit(proc):
            owner = proc.owner
            if owner is None or getattr(owner, "app_type", None) is None:
                return
            self.publish("proc_exit", owner.name, detail=proc.command)
        self.host.ptable.exit_listeners.append(on_exit)

    def watch_app(self, app) -> None:
        """Wake on an application flipping into a bad state.  This is
        the stand-in for the client-side error stream: a hang writes
        nothing to syslog, but its users notice instantly."""
        def on_state(state, app=app):
            if state.value in ("crashed", "hung", "degraded"):
                self.publish("state", app.name, detail=state.value)
        app.state_changed.subscribe(on_state)

    # -- subscriptions and dispatch -------------------------------------------

    def subscribe(self, agent,
                  predicate: Callable[[Trigger], bool]) -> None:
        """Demand-wake ``agent`` whenever a published trigger matches."""
        self._subs.append((agent, predicate))

    def publish(self, kind: str, subject: str, *, detail: str = "",
                severity: str = "", facility: str = "") -> int:
        """Offer a trigger to every subscriber; returns agents woken."""
        if not self.enabled or not self.host.is_up:
            return 0
        trigger = Trigger(kind, subject, detail, severity, facility,
                          self.sim.now)
        self.published += 1
        woken = 0
        for agent, predicate in self._subs:
            if not predicate(trigger):
                continue
            last = self._last_wake.get(agent.name)
            if last is not None and trigger.time - last < self.cooldown:
                self.suppressed += 1
                continue
            if agent.demand_wake(trigger):
                self._last_wake[agent.name] = trigger.time
                self.demand_wakes += 1
                woken += 1
        return woken

    # -- persistence -----------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Cooldown clocks and counters; subscriptions and source taps
        are structural (re-wired when the suite is rebuilt)."""
        return {"enabled": self.enabled,
                "last_wake": dict(sorted(self._last_wake.items())),
                "published": self.published,
                "demand_wakes": self.demand_wakes,
                "suppressed": self.suppressed}

    def restore_state(self, state: dict) -> None:
        self.enabled = bool(state["enabled"])
        self._last_wake = {k: float(v)
                           for k, v in state["last_wake"].items()}
        self.published = int(state["published"])
        self.demand_wakes = int(state["demand_wakes"])
        self.suppressed = int(state["suppressed"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TriggerBus {self.host.name} subs={len(self._subs)} "
                f"woken={self.demand_wakes}>")
