"""Adaptive, event-triggered agent wakes.

The paper's intelliagents are "awakened every X minutes ... by local
crons" -- a fixed grid that prices every healthy host the same as a
sick one and floors detection latency at ~period/2.  This package keeps
the cron grid as the safety net but makes it adaptive:

- :class:`WakePolicy` -- a per-agent controller: clean runs back the
  wake period off multiplicatively (base -> max) so healthy hosts go
  quiescent; any finding, heal or trigger snaps it back to base.
- :class:`TriggerBus` -- bridges host-local signals (syslog lines at or
  above a severity threshold, process exits, application state flips,
  threshold crossings) into immediate demand-wakes of the subscribed
  agents, so detection no longer waits out the grid.
"""

from repro.wake.policy import WakePolicy
from repro.wake.triggers import Trigger, TriggerBus

__all__ = ["WakePolicy", "Trigger", "TriggerBus"]
