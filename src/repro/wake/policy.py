"""The per-agent adaptive wake-period controller.

One :class:`WakePolicy` instance sits between an intelliagent and its
cron job.  The contract:

- a **clean** run (no findings) multiplies the period by ``backoff``,
  capped at ``max_period`` -- a healthy host converges to quiescence;
- any **finding**, heal or **trigger** (a demand-wake from the local
  TriggerBus or the admin watchdog) snaps the period back to base, so
  an incident is watched at full frequency until it stays clean;
- ``mode="fixed"`` is the paper's rigid grid: the period never moves.
  It exists so the pre-refactor behaviour stays available byte-for-byte
  for A/B benchmarking.

The policy itself never talks to the cron; the agent reads
:attr:`current_period` after notifying it and re-arms its own job.
"""

from __future__ import annotations

__all__ = ["WakePolicy"]

MODES = ("fixed", "adaptive")


class WakePolicy:
    """Adaptive wake interval for one agent."""

    def __init__(self, base_period: float, *, mode: str = "adaptive",
                 max_period: float = 1800.0, backoff: float = 2.0):
        if mode not in MODES:
            raise ValueError(f"unknown wake policy mode {mode!r}")
        if base_period <= 0:
            raise ValueError(f"base period must be positive: {base_period!r}")
        if max_period < base_period:
            raise ValueError(
                f"max period {max_period!r} below base {base_period!r}")
        if backoff <= 1.0:
            raise ValueError(f"backoff factor must exceed 1: {backoff!r}")
        self.mode = mode
        self.base_period = float(base_period)
        self.max_period = float(max_period)
        self.backoff = float(backoff)
        self.current_period = float(base_period)
        self.backoffs = 0
        self.resets = 0
        self.triggers = 0

    # -- run outcomes --------------------------------------------------------

    def note_clean(self) -> bool:
        """A run found nothing; back off.  Returns True if the period
        changed."""
        if self.mode == "fixed":
            return False
        new = min(self.max_period, self.current_period * self.backoff)
        if new == self.current_period:
            return False
        self.current_period = new
        self.backoffs += 1
        return True

    def note_findings(self) -> bool:
        """A run found (or healed) something; watch at full frequency."""
        return self._reset()

    def note_trigger(self) -> bool:
        """A demand-wake arrived (trigger bus or admin watchdog)."""
        self.triggers += 1
        return self._reset()

    def _reset(self) -> bool:
        if self.mode == "fixed" or self.current_period == self.base_period:
            return False
        self.current_period = self.base_period
        self.resets += 1
        return True

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {"current_period": self.current_period,
                "backoffs": self.backoffs,
                "resets": self.resets,
                "triggers": self.triggers}

    def restore_state(self, state: dict) -> None:
        self.current_period = float(state["current_period"])
        self.backoffs = int(state["backoffs"])
        self.resets = int(state["resets"])
        self.triggers = int(state["triggers"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<WakePolicy {self.mode} {self.current_period:g}s "
                f"[{self.base_period:g}..{self.max_period:g}]>")
