"""Simulated-time calendar arithmetic.

The simulation epoch (t = 0.0) is **Monday 00:00**.  The paper's
operator-coverage data distinguishes daytime, overnight and weekend
periods, and intelliagents run on a cron grid of X minutes, so the
experiments need cheap, exact calendar classification of simulated
timestamps.

All functions accept scalar floats; the vectorised variants used by the
campaign statistics accept numpy arrays.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

__all__ = [
    "MINUTE", "HOUR", "DAY", "WEEK", "YEAR",
    "time_of_day", "day_of_week", "is_weekend", "is_overnight",
    "is_business_hours", "period_of", "next_grid", "prev_grid",
    "grid_points", "format_time",
]

MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY
YEAR = 365 * DAY

#: Daytime operator shift (paper: "during day time" detection ~1 h).
BUSINESS_START = 8 * HOUR
BUSINESS_END = 18 * HOUR

ArrayLike = Union[float, np.ndarray]


def time_of_day(t: ArrayLike) -> ArrayLike:
    """Seconds since local midnight."""
    return t % DAY


def day_of_week(t: ArrayLike) -> ArrayLike:
    """0 = Monday ... 6 = Sunday."""
    if isinstance(t, np.ndarray):
        return ((t % WEEK) // DAY).astype(np.int64)
    return int((t % WEEK) // DAY)


def is_weekend(t: ArrayLike) -> ArrayLike:
    """Saturday or Sunday."""
    return day_of_week(t) >= 5


def is_overnight(t: ArrayLike) -> ArrayLike:
    """Weeknight outside business hours (the paper's 'overnight jobs'
    window).  Weekend timestamps are classified as weekend, not
    overnight."""
    tod = time_of_day(t)
    night = (tod < BUSINESS_START) | (tod >= BUSINESS_END)
    return night & ~is_weekend(t)


def is_business_hours(t: ArrayLike) -> ArrayLike:
    """Weekday, between BUSINESS_START and BUSINESS_END."""
    tod = time_of_day(t)
    day = (tod >= BUSINESS_START) & (tod < BUSINESS_END)
    return day & ~is_weekend(t)


def period_of(t: float) -> str:
    """Classify a scalar timestamp as 'day' | 'overnight' | 'weekend'."""
    if is_weekend(t):
        return "weekend"
    if is_business_hours(t):
        return "day"
    return "overnight"


def next_grid(t: float, period: float, offset: float = 0.0,
              strict: bool = True) -> float:
    """First cron-grid point after ``t``.

    Grid points are ``k * period + offset`` for integer ``k >= 0``.
    With ``strict`` (the default), a fault landing exactly on a grid
    point is seen only at the *next* point -- the agent waking at that
    instant has already sampled.
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period!r}")
    k = math.floor((t - offset) / period)
    point = k * period + offset
    if point > t or (not strict and point == t):
        return point
    nxt = (k + 1) * period + offset
    if nxt < t or (strict and nxt == t):
        # float rounding pushed the quotient a grid step low (tiny
        # subnormal offsets can underflow the division); step once more
        nxt += period
    return nxt


def prev_grid(t: float, period: float, offset: float = 0.0) -> float:
    """Last grid point at or before ``t``."""
    if period <= 0:
        raise ValueError(f"period must be positive, got {period!r}")
    k = math.floor((t - offset) / period)
    point = k * period + offset
    if point > t:
        # float rounding at the boundary (e.g. a subnormal offset whose
        # division underflows to zero) can land one step late; back up
        point -= period
    elif (k + 1) * period + offset <= t:
        # ...or one step early, when the next grid point collapses onto
        # t itself (k*period + offset rounding down to exactly t)
        point = (k + 1) * period + offset
    return point


def grid_points(t0: float, t1: float, period: float,
                offset: float = 0.0) -> np.ndarray:
    """All grid points in ``(t0, t1]`` as a numpy array (vectorised;
    used by the campaign fast path to materialise skipped agent wakes)."""
    first = next_grid(t0, period, offset)
    if first > t1:
        return np.empty(0, dtype=np.float64)
    n = int(math.floor((t1 - first) / period)) + 1
    return first + period * np.arange(n, dtype=np.float64)


_DAYS = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


def format_time(t: float) -> str:
    """Human-readable simulated timestamp, e.g. ``'w03 Tue 14:05:00'``."""
    week = int(t // WEEK)
    dow = _DAYS[day_of_week(t)]
    tod = time_of_day(t)
    h = int(tod // HOUR)
    m = int((tod % HOUR) // MINUTE)
    s = int(tod % MINUTE)
    return f"w{week:02d} {dow} {h:02d}:{m:02d}:{s:02d}"
