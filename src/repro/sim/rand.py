"""Named, seed-spawned random streams.

Every stochastic component in the reproduction (fault arrivals, job
sizes, operator response times, ...) draws from its *own* named
``numpy.random.Generator``.  Streams are derived from a root
``SeedSequence`` by hashing the stream name, so:

* the same root seed always reproduces the same simulation, and
* adding a new consumer does not perturb the draws of existing ones
  (unlike sharing one generator).

This mirrors the standard practice for reproducible Monte-Carlo fan-out
(`SeedSequence.spawn`) recommended for parallel workloads.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterator

import numpy as np

__all__ = ["RandomStreams", "stable_hash"]


def stable_hash(*parts) -> int:
    """A process-stable 32-bit hash of the given parts.

    Python's built-in ``hash`` is salted per process (PYTHONHASHSEED),
    so anything behavioural -- a user's 'habitual server', a stable
    tie-break -- must use this instead or runs stop being reproducible.
    """
    return zlib.crc32("|".join(str(p) for p in parts).encode("utf-8"))


def _name_key(name: str) -> int:
    """Stable 32-bit key for a stream name (crc32 is stable across runs,
    unlike ``hash`` which is salted per process)."""
    return zlib.crc32(name.encode("utf-8"))


class RandomStreams:
    """A namespace of deterministic random generators.

    >>> rs = RandomStreams(seed=7)
    >>> rs.get("faults.db") is rs.get("faults.db")
    True
    >>> rs2 = RandomStreams(seed=7)
    >>> rs.get("x").integers(1 << 30) == rs2.get("x").integers(1 << 30)
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(_name_key(name),),
            )
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def child(self, prefix: str) -> "ScopedStreams":
        """A view that prefixes every stream name with ``prefix.``."""
        return ScopedStreams(self, prefix)

    def spawn_seeds(self, n: int, name: str = "replications") -> list[int]:
        """Independent integer seeds for ``n`` parallel replications."""
        gen = self.get(f"__spawn__.{name}")
        return [int(s) for s in gen.integers(0, 2**63 - 1, size=n)]

    def names(self) -> Iterator[str]:
        return iter(self._streams)

    # -- explicit state (the persistence layer's prerequisite) ---------------

    def getstate(self) -> dict:
        """Seed plus the bit-generator state of every materialised
        stream, as plain dicts.  ``setstate(getstate())`` reproduces the
        exact draw sequence of every stream mid-run."""
        return {
            "seed": self.seed,
            "streams": {name: self._streams[name].bit_generator.state
                        for name in sorted(self._streams)},
        }

    def setstate(self, state: dict) -> None:
        """Restore from :meth:`getstate`.  Streams absent from the saved
        state are dropped back to unmaterialised (they will be re-derived
        from the root seed on first use, exactly as a fresh namespace
        would)."""
        if int(state["seed"]) != self.seed:
            raise ValueError(
                f"stream state was saved under seed {state['seed']!r}, "
                f"this namespace has seed {self.seed!r}")
        for name in list(self._streams):
            if name not in state["streams"]:
                del self._streams[name]
        for name, bg_state in state["streams"].items():
            self.get(name).bit_generator.state = bg_state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RandomStreams seed={self.seed} streams={len(self._streams)}>"


class ScopedStreams:
    """Prefix view over a :class:`RandomStreams` (shares the same pool)."""

    __slots__ = ("_parent", "_prefix")

    def __init__(self, parent: RandomStreams, prefix: str):
        self._parent = parent
        self._prefix = prefix

    def get(self, name: str) -> np.random.Generator:
        return self._parent.get(f"{self._prefix}.{name}")

    def child(self, prefix: str) -> "ScopedStreams":
        return ScopedStreams(self._parent, f"{self._prefix}.{prefix}")

    def spawn_seeds(self, n: int, name: str = "replications") -> list[int]:
        return self._parent.spawn_seeds(n, f"{self._prefix}.{name}")
