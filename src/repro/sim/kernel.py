"""Deterministic discrete-event simulation kernel.

A classic heap-ordered event scheduler plus a light generator-process
layer.  The kernel is deliberately small and allocation-lean: a whole
simulated year of a 215-server datacentre runs through this loop, so the
per-event cost matters (see the hpc-parallel guide note in DESIGN.md).

Two programming models coexist:

* **Callbacks** -- ``sim.schedule(delay, fn, *args)`` runs ``fn`` at
  ``sim.now + delay``.  This is what most substrate components use.
* **Generator processes** -- ``sim.spawn(gen)`` drives a generator that
  yields either a number (sleep that many simulated seconds) or a
  :class:`Signal` (sleep until the signal fires).  Long-lived workload
  drivers (batch jobs, market feeds, operators) are written this way.

Event ordering is total and deterministic: ties on time are broken by an
explicit priority, then by insertion sequence number.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Generator, Iterable, Optional

from repro.trace.tracer import NULL_TRACER

__all__ = ["Simulator", "Event", "Signal", "SimProcess", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a generator process by :meth:`SimProcess.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Cancellation is O(1): the heap entry is tombstoned and skipped when
    popped.  An event fires at most once.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "_alive", "_fired")

    def __init__(self, time: float, priority: int, seq: int,
                 fn: Callable[..., Any], args: tuple):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self._alive = True
        self._fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call repeatedly."""
        self._alive = False

    @property
    def alive(self) -> bool:
        """True until the event fires or is cancelled."""
        return self._alive and not self._fired

    @property
    def fired(self) -> bool:
        return self._fired

    def __lt__(self, other: "Event") -> bool:  # heap ordering
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)

    def __repr__(self) -> str:
        # a repr must never raise mid-debug, even on a half-built event
        fired = getattr(self, "_fired", False)
        alive = getattr(self, "_alive", False)
        state = "fired" if fired else ("alive" if alive else "cancelled")
        t = getattr(self, "time", None)
        ts = f"{t:.3f}" if isinstance(t, (int, float)) else "?"
        fn = getattr(self, "fn", None)
        return f"<Event t={ts} {getattr(fn, '__name__', fn)} {state}>"


class Signal:
    """A broadcast condition generator processes can wait on.

    ``yield signal`` suspends the process until someone calls
    :meth:`fire`; the fired value becomes the value of the yield
    expression.  A signal can fire many times; each firing wakes the
    waiters registered at that moment.
    """

    __slots__ = ("sim", "name", "_waiters", "_subscribers", "last_value",
                 "fire_count")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._waiters: list[SimProcess] = []
        self._subscribers: list[Callable[[Any], None]] = []
        self.last_value: Any = None
        self.fire_count = 0

    def fire(self, value: Any = None) -> None:
        """Wake every currently-waiting process with ``value`` and call
        the persistent subscribers (synchronously, in firing order)."""
        self.last_value = value
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim.schedule(0.0, proc._resume, value)
        for fn in list(self._subscribers):
            fn(value)

    def subscribe(self, fn: Callable[[Any], None]) -> None:
        """Register a persistent callback run synchronously on every
        fire (observers like ledgers; processes should ``yield`` the
        signal instead)."""
        self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[Any], None]) -> None:
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    def _add_waiter(self, proc: "SimProcess") -> None:
        self._waiters.append(proc)

    def _discard_waiter(self, proc: "SimProcess") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Signal {self.name!r} waiters={len(self._waiters)}>"


class SimProcess:
    """A generator driven by the kernel.

    The generator may yield:

    * ``float``/``int`` -- sleep that many simulated seconds;
    * :class:`Signal` -- sleep until the signal fires (the yield
      evaluates to the fired value);
    * ``None`` -- yield the floor (resume in the same timestep, after
      currently queued events).

    When the generator returns, :attr:`done` becomes true,
    :attr:`result` holds the return value, and :attr:`finished` (a
    Signal) fires with that value.
    """

    __slots__ = ("sim", "gen", "name", "done", "result", "finished",
                 "_pending_event", "_waiting_signal", "_interrupted")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "proc")
        self.done = False
        self.result: Any = None
        self.finished = Signal(sim, f"{self.name}.finished")
        self._pending_event: Optional[Event] = None
        self._waiting_signal: Optional[Signal] = None
        self._interrupted = False

    # -- lifecycle -------------------------------------------------------

    def _start(self) -> None:
        self._pending_event = self.sim.schedule(0.0, self._resume, None)

    def _resume(self, value: Any) -> None:
        if self.done:
            return
        tracer = self.sim.tracer
        if tracer.enabled and tracer.capture_resumes:
            with tracer.span("proc.resume", proc=self.name):
                self._advance(value)
        else:
            self._advance(value)

    def _advance(self, value: Any) -> None:
        self._pending_event = None
        self._waiting_signal = None
        try:
            if self._interrupted:
                self._interrupted = False
                target = self.gen.throw(Interrupt(value))
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # The process chose not to handle its interrupt: treat as exit.
            self._finish(None)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if target is None:
            self._pending_event = self.sim.schedule(0.0, self._resume, None)
        elif isinstance(target, Signal):
            self._waiting_signal = target
            target._add_waiter(self)
        elif isinstance(target, (int, float)):
            if target < 0 or math.isnan(target):
                raise ValueError(
                    f"process {self.name!r} yielded invalid delay {target!r}")
            self._pending_event = self.sim.schedule(float(target),
                                                    self._resume, None)
        else:
            raise TypeError(
                f"process {self.name!r} yielded unsupported {target!r}")

    def _finish(self, value: Any) -> None:
        self.done = True
        self.result = value
        self.finished.fire(value)

    # -- external control ------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if self.done:
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._waiting_signal is not None:
            self._waiting_signal._discard_waiter(self)
            self._waiting_signal = None
        self._interrupted = True
        self.sim.schedule(0.0, self._resume, cause)

    def stop(self) -> None:
        """Terminate the process without running any more of its body."""
        if self.done:
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
        if self._waiting_signal is not None:
            self._waiting_signal._discard_waiter(self)
        self.gen.close()
        self._finish(None)

    def __repr__(self) -> str:
        # safe on a partially initialised process (mid-debug aid)
        name = getattr(self, "name", "?")
        done = getattr(self, "done", False)
        return f"<SimProcess {name!r} done={done}>"


class Simulator:
    """The event loop.

    Time is a float number of seconds since the simulation epoch
    (defined by :mod:`repro.sim.calendar` as a Monday, 00:00).  The loop
    never moves time backwards; scheduling in the past raises.
    """

    def __init__(self, start: float = 0.0):
        self.now = float(start)
        self._heap: list[Event] = []
        #: next insertion sequence number (a plain int, not an
        #: itertools.count, so checkpoints can capture and restore it)
        self._seq = 0
        self._running = False
        self.events_processed = 0
        #: observability hook; the shared disabled tracer by default so
        #: instrumented components can call it unconditionally
        self.tracer = NULL_TRACER
        #: self-observability hook (repro.observe.profile.KernelProfiler);
        #: None keeps the dispatch a direct call -- the hot loop hoists
        #: this once per run, so attaching mid-run takes effect at the
        #: next run()/step() boundary
        self.profiler = None

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 priority: int = 0) -> Event:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0 or math.isnan(delay):
            raise ValueError(f"negative or NaN delay: {delay!r}")
        seq, self._seq = self._seq, self._seq + 1
        ev = Event(self.now + delay, priority, seq, fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any,
                    priority: int = 0) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before now={self.now}")
        seq, self._seq = self._seq, self._seq + 1
        ev = Event(float(time), priority, seq, fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_exact(self, time: float, priority: int, seq: int,
                       fn: Callable[..., Any], *args: Any) -> Event:
        """Re-arm a restored event at its exact original heap token.

        Checkpoint restore rebuilds pending events with the ``(time,
        priority, seq)`` they held when the snapshot was taken, so the
        resumed run pops them in byte-identical order.  The insertion
        counter is *not* consumed -- the kernel's own counter is restored
        separately -- but it is bumped past ``seq`` defensively so a
        partially restored kernel can never mint a duplicate token.
        """
        if time < self.now:
            raise ValueError(
                f"cannot re-arm at {time} before now={self.now}")
        if seq >= self._seq:
            self._seq = seq + 1
        ev = Event(float(time), int(priority), int(seq), fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    def spawn(self, gen: Generator, name: str = "") -> SimProcess:
        """Attach a generator process; it starts at the current time."""
        proc = SimProcess(self, gen, name)
        proc._start()
        return proc

    def signal(self, name: str = "") -> Signal:
        """Create a :class:`Signal` bound to this simulator."""
        return Signal(self, name)

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Run the next live event.  Returns False when the heap is empty."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if not ev._alive:
                continue
            if ev.time < self.now:  # pragma: no cover - invariant guard
                raise RuntimeError("event scheduled in the past")
            self.now = ev.time
            ev._fired = True
            self.events_processed += 1
            if self.tracer.enabled:
                self.tracer.metrics.counter("sim.events").inc()
            if self.profiler is None:
                ev.fn(*ev.args)
            else:
                self.profiler.record(ev.fn, ev.args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or
        ``max_events`` events have fired.

        With ``until`` set, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run``
        calls tile time cleanly.
        """
        if self._running:
            raise RuntimeError("Simulator.run is not reentrant")
        self._running = True
        budget = math.inf if max_events is None else max_events
        heap = self._heap
        # hoisted per-run: keeps the disabled-tracer loop branch-only
        count_event = (self.tracer.metrics.counter("sim.events").inc
                       if self.tracer.enabled else None)
        profiler = self.profiler
        try:
            while heap and budget > 0:
                ev = heap[0]
                if not ev._alive:
                    heapq.heappop(heap)
                    continue
                if until is not None and ev.time > until:
                    break
                heapq.heappop(heap)
                self.now = ev.time
                ev._fired = True
                self.events_processed += 1
                budget -= 1
                if count_event is not None:
                    count_event()
                if profiler is None:
                    ev.fn(*ev.args)
                else:
                    profiler.record(ev.fn, ev.args)
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = float(until)

    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if none is queued."""
        heap = self._heap
        while heap and not heap[0]._alive:
            heapq.heappop(heap)
        return heap[0].time if heap else math.inf

    def pending(self) -> int:
        """Number of live events still queued (O(n); for tests/debug)."""
        return sum(1 for ev in self._heap if ev.alive)

    # -- persistence -----------------------------------------------------

    def live_events(self) -> list[Event]:
        """The live heap entries in firing order (the persist layer walks
        this to verify every pending event is claimed by a component
        snapshot before a checkpoint is allowed)."""
        return sorted((ev for ev in self._heap if ev.alive),
                      key=lambda ev: (ev.time, ev.priority, ev.seq))

    def clear_events(self) -> None:
        """Tombstone and drop every queued event.  Restore uses this to
        wipe the freshly built world's schedule before re-arming the
        snapshot's pending events at their exact tokens."""
        for ev in self._heap:
            ev._alive = False
        self._heap.clear()

    def snapshot_state(self) -> dict:
        """Kernel scalars only; pending events are claimed and re-armed
        by the components that own them (see repro.persist)."""
        return {
            "now": self.now,
            "next_seq": self._seq,
            "events_processed": self.events_processed,
        }

    def restore_state(self, state: dict) -> None:
        self.now = float(state["now"])
        self._seq = int(state["next_seq"])
        self.events_processed = int(state["events_processed"])

    # -- conveniences ----------------------------------------------------

    def every(self, period: float, fn: Callable[..., Any], *args: Any,
              offset: float = 0.0, jitter_rng=None,
              jitter: float = 0.0) -> Event:
        """Run ``fn`` periodically, starting at ``now + offset``.

        Returns the first :class:`Event`; cancel the returned handle's
        chain via the callable's ``.cancel()`` on the *controller*
        object stashed on the function: use :class:`Periodic` instead
        when cancellation is needed.
        """
        controller = Periodic(self, period, fn, args, jitter_rng, jitter)
        controller.start(offset)
        return controller  # type: ignore[return-value]

    def process_all(self, gens: Iterable[Generator]) -> list[SimProcess]:
        """Spawn a batch of generator processes."""
        return [self.spawn(g) for g in gens]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator now={self.now:.3f} queued={len(self._heap)}>"


class Periodic:
    """A cancellable periodic callback (the engine behind crond ticks)."""

    __slots__ = ("sim", "period", "fn", "args", "jitter_rng", "jitter",
                 "_event", "cancelled", "fire_count")

    def __init__(self, sim: Simulator, period: float, fn: Callable[..., Any],
                 args: tuple, jitter_rng=None, jitter: float = 0.0):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        self.sim = sim
        self.period = float(period)
        self.fn = fn
        self.args = args
        self.jitter_rng = jitter_rng
        self.jitter = float(jitter)
        self._event: Optional[Event] = None
        self.cancelled = False
        self.fire_count = 0

    def start(self, offset: float = 0.0) -> "Periodic":
        self._event = self.sim.schedule(offset, self._tick)
        return self

    def _tick(self) -> None:
        if self.cancelled:
            return
        self.fire_count += 1
        self.fn(*self.args)
        delay = self.period
        if self.jitter and self.jitter_rng is not None:
            delay += float(self.jitter_rng.uniform(0.0, self.jitter))
        self._event = self.sim.schedule(delay, self._tick)

    def cancel(self) -> None:
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    # -- persistence -----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Counters plus the pending tick's heap token (fn/args are
        structural -- the rebuilt controller supplies them)."""
        ev = self._event if self._event is not None and self._event.alive \
            else None
        return {
            "fire_count": self.fire_count,
            "cancelled": self.cancelled,
            "event": ([ev.time, ev.priority, ev.seq]
                      if ev is not None else None),
        }

    def restore_state(self, state: dict) -> None:
        """Re-arm the next tick at its exact saved token (the fresh
        controller's own pending event is cancelled first)."""
        self.fire_count = int(state["fire_count"])
        self.cancelled = bool(state["cancelled"])
        if self._event is not None:
            self._event.cancel()
            self._event = None
        tok = state.get("event")
        if tok is not None:
            t, prio, seq = tok
            self._event = self.sim.schedule_exact(t, prio, seq, self._tick)

    def claimed_seqs(self) -> list[int]:
        if self._event is not None and self._event.alive:
            return [self._event.seq]
        return []
