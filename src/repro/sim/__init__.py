"""Discrete-event simulation substrate.

The paper's system ran against wall-clock Unix time on a production
datacentre.  Every other subsystem in this reproduction (hosts, networks,
applications, fault injection, agents) is driven by the deterministic
event kernel defined here instead, so that a whole simulated year is a
pure, repeatable computation.

Public surface:

- :class:`~repro.sim.kernel.Simulator` -- the event loop.
- :class:`~repro.sim.kernel.Event` -- a cancellable scheduled callback.
- :class:`~repro.sim.kernel.Signal` -- a wakeable condition for
  generator processes.
- :class:`~repro.sim.rand.RandomStreams` -- named, seed-spawned
  ``numpy.random.Generator`` streams.
- :mod:`repro.sim.calendar` -- simulated-time calendar arithmetic
  (cron grids, day/night/weekend classification).
"""

from repro.sim.kernel import Event, Interrupt, Signal, SimProcess, Simulator
from repro.sim.rand import RandomStreams
from repro.sim import calendar

__all__ = [
    "Event",
    "Interrupt",
    "Signal",
    "SimProcess",
    "Simulator",
    "RandomStreams",
    "calendar",
]
