"""Constraint-based placement planning.

Given a failed service, pick where it should live next.  Candidates
come from two places: the spare pool (idle app slots, cold start) and
the freshest DGSPL (healthy peers already running the same application
type, warm takeover).  Every candidate is pushed through the
SLKT-derived constraint set -- the deployment-constraint approach of
Dearle et al., with the constraints we already keep on disk:

- the target supports the application type *and version*;
- every filesystem the app requires is mounted and online;
- every external dependency (host, app) is up and healthy;
- memory and CPU headroom: the box can absorb the work now,
  not just on the spec sheet;
- anti-affinity: never place onto the failed host, nor onto any
  host known to be failing in the same incident.

Survivors are scored deterministically -- (load asc, power desc,
spares before busy peers, name) -- so the same datacentre state always
produces the same plan; the rejection reasons ride along for the
trace/pool log, making "why did it go *there*" answerable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ontology.slkt import AppTemplate

__all__ = ["PlacementPlan", "PlacementPlanner"]

#: fraction of a host's max load above which it has no CPU headroom
LOAD_HEADROOM = 0.8
#: fallback per-process memory need when the target app is not yet
#: installed and the template carries no sizes (MB)
DEFAULT_PROC_MB = 64.0


@dataclass
class PlacementPlan:
    """One placement decision, with its audit trail."""

    app_name: str
    app_type: str
    version: str
    source_host: str
    target_host: str
    #: name of the (installed) application slot on the target
    target_app: str
    #: True = spare-pool cold start; False = warm takeover by a peer
    cold: bool
    #: candidates that passed constraints, best first (host names)
    shortlist: List[str] = field(default_factory=list)
    #: candidate host -> first failed constraint
    rejections: Dict[str, str] = field(default_factory=dict)

    def describe(self) -> str:
        kind = "cold-start on spare" if self.cold else "warm takeover by"
        return (f"{self.app_name} ({self.app_type}/{self.version}) "
                f"{self.source_host} -> {self.target_host} ({kind})")


class PlacementPlanner:
    """Searches spares + DGSPL under SLKT constraints."""

    def __init__(self, dc, spares, dgspl_fn=None, *,
                 dgspl_staleness: float = 1800.0):
        self.dc = dc
        self.spares = spares
        #: returns the freshest DGSPL or None; typically
        #: ``admin.current_dgspl``
        self.dgspl_fn = dgspl_fn
        self.dgspl_staleness = float(dgspl_staleness)
        self.plans_made = 0
        self.plans_failed = 0

    # -- the constraint set --------------------------------------------------

    def _check_host(self, host_name: str, template: AppTemplate,
                    failed: set, failed_sites: set = frozenset()
                    ) -> Optional[str]:
        """First violated constraint for placing ``template`` on
        ``host_name``, or None if the host qualifies."""
        if host_name in failed:
            return "anti-affinity: host failing in this incident"
        host = self.dc.hosts.get(host_name)
        if host is None:
            return "unknown host"
        if host.site in failed_sites:
            return "anti-affinity: site failing in this incident"
        if not host.is_up:
            return "host down"
        for fs_point in template.filesystems:
            mount = host.fs.mounts.get(fs_point)
            if mount is None or not mount.online:
                return f"filesystem {fs_point} unavailable"
        for dep_host_name, dep_app_name in template.depends_on:
            dep_host = self.dc.hosts.get(dep_host_name)
            if dep_host is None or not dep_host.is_up:
                return f"dependency {dep_host_name} down"
            dep_app = dep_host.apps.get(dep_app_name)
            if dep_app is None or not dep_app.is_healthy():
                return f"dependency {dep_host_name}/{dep_app_name} unhealthy"
        if host.load_average() > LOAD_HEADROOM * host.spec.max_load:
            return (f"no CPU headroom (load {host.load_average():.1f} "
                    f"of max {host.spec.max_load:g})")
        if host.memory_free_mb() < self._memory_need(host, template):
            return (f"no memory headroom "
                    f"({host.memory_free_mb():.0f} MB free)")
        return None

    def _memory_need(self, host, template: AppTemplate) -> float:
        app = host.apps.get(template.name)
        if app is not None:
            return sum(ps.mem_mb * ps.count for ps in app.process_specs)
        return DEFAULT_PROC_MB * max(1, len(template.processes))

    # -- candidate discovery -------------------------------------------------

    def _spare_candidates(self, template: AppTemplate
                          ) -> List[Tuple[str, str]]:
        """(host, app-slot) pairs from the spare pool whose SLKT carries
        a matching idle slot."""
        out = []
        for name in self.spares.available():
            slkt = self.spares.slkt_of(name)
            for tmpl in slkt.apps.values():
                if (tmpl.app_type == template.app_type
                        and tmpl.version == template.version):
                    out.append((name, tmpl.name))
                    break
        return out

    def _peer_candidates(self, template: AppTemplate,
                         exclude: set) -> List[Tuple[str, str]]:
        """(host, app) pairs from the freshest DGSPL: healthy services
        of the same type and version already running elsewhere."""
        if self.dgspl_fn is None:
            return []
        dgspl = self.dgspl_fn()
        if dgspl is None:
            return []
        now = self.dc.sim.now
        if now - dgspl.generated_at > self.dgspl_staleness:
            return []
        out = []
        for e in dgspl.services_of_type(template.app_type):
            if e.server in exclude or self.spares.is_spare(e.server):
                continue
            if e.app_version != template.version:
                continue
            out.append((e.server, e.app_name))
        return out

    # -- planning ------------------------------------------------------------

    def plan(self, template: AppTemplate, source_host: str, *,
             failed_hosts: Sequence[str] = (),
             failed_sites: Sequence[str] = ()) -> Optional[PlacementPlan]:
        """Pick the best relocation target, or None when no host
        satisfies the constraints.  ``failed_sites`` is the cross-site
        tier's anti-affinity: never place back into a datacentre that
        is failing in this incident."""
        failed = set(failed_hosts) | {source_host}
        sites = set(failed_sites)
        spare_slots = dict(self._spare_candidates(template))
        peer_slots = dict(self._peer_candidates(template, failed))
        rejections: Dict[str, str] = {}
        scored: List[tuple] = []
        for host_name in sorted(set(spare_slots) | set(peer_slots)):
            why = self._check_host(host_name, template, failed, sites)
            if why is not None:
                rejections[host_name] = why
                continue
            host = self.dc.hosts[host_name]
            is_spare = host_name in spare_slots
            slot = spare_slots.get(host_name) or peer_slots[host_name]
            scored.append((round(host.load_average(), 6),
                           -host.spec.power, 0 if is_spare else 1,
                           host_name, slot, is_spare))
        scored.sort()
        if not scored:
            self.plans_failed += 1
            return None
        best = scored[0]
        self.plans_made += 1
        return PlacementPlan(
            app_name=template.name, app_type=template.app_type,
            version=template.version, source_host=source_host,
            target_host=best[3], target_app=best[4], cold=best[5],
            shortlist=[s[3] for s in scored], rejections=rejections)
