"""The relocation orchestrator.

One relocation is one :class:`~repro.sim.kernel.SimProcess` walking the
escalation tier the administration servers could not satisfy locally:

    plan -> drain -> start -> verify -> cutover

Each phase is stamped as a ``relocate.*`` span carrying the incident's
fault id, so an exported trace shows the whole failover as one
correlated tree next to the detection and healing spans.  The process
runs under a single **timeout budget**; blowing it at any phase rolls
back (spare claim released, front doors left shedding) and falls
through to the old behaviour -- page the on-call human by SMS.

Spans are recorded at phase *completion* with explicit timestamps
(:meth:`Tracer.record_span`) rather than held open across yields:
an open span would adopt every unrelated agent wake that fires during
the wait as a child and garble the trace tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.apps.base import AppState
from repro.core.healing import apply_action
from repro.ontology.slkt import app_template_of

__all__ = ["RelocationRecord", "ServiceRelocator"]


@dataclass
class RelocationRecord:
    """Ledger entry for one attempted relocation."""

    subject: str               # "host/app"
    source_host: str
    started: float
    target_host: str = ""
    fault_id: str = ""
    finished: Optional[float] = None
    success: bool = False
    cold: bool = False
    #: phase reached ("plan" | "drain" | "start" | "verify" | "done")
    phase: str = "plan"
    reason: str = ""

    @property
    def duration(self) -> Optional[float]:
        if self.finished is None:
            return None
        return self.finished - self.started


class ServiceRelocator:
    """Drives service failovers for the administration servers."""

    def __init__(self, dc, planner, spares, *, reroute=None,
                 notifications=None, page_cb: Optional[Callable] = None,
                 budget: float = 900.0, poll: float = 15.0,
                 drain_grace: float = 20.0):
        self.dc = dc
        self.sim = dc.sim
        self.planner = planner
        self.spares = spares
        self.reroute = reroute
        self.notifications = notifications
        #: called as ``page_cb(host_name, reason)`` when a relocation
        #: rolls back; the admin pair passes its SMS escalation here
        self.page_cb = page_cb
        self.budget = float(budget)
        self.poll = float(poll)
        self.drain_grace = float(drain_grace)

        #: subject -> source host of in-flight relocations
        self.active: Dict[str, str] = {}
        self.records: List[RelocationRecord] = []
        self.succeeded = 0
        self.failed = 0

    # -- entry points --------------------------------------------------------

    def relocate_host(self, host_name: str, reason: str) -> int:
        """Relocate every application of a failed host.  Returns how
        many relocations were spawned (0 = nothing to do; the caller
        should escalate the old way)."""
        host = self.dc.hosts.get(host_name)
        if host is None:
            return 0
        started = 0
        for app_name in sorted(host.apps):
            app = host.apps[app_name]
            if app.started_at is None:
                continue    # idle template slot: nothing ever ran here
            if self.relocate(app, reason) is not None:
                started += 1
        return started

    def relocate(self, app, reason: str):
        """Spawn the failover process for one service instance."""
        subject = f"{app.host.name}/{app.name}"
        if subject in self.active:
            return None
        tracer = self.sim.tracer
        fault_id = (tracer.fault_id_for(subject)
                    or tracer.fault_id_for(app.host.name))
        self.active[subject] = app.host.name
        rec = RelocationRecord(subject=subject, source_host=app.host.name,
                               started=self.sim.now, fault_id=fault_id,
                               reason=reason)
        self.records.append(rec)
        return self.sim.spawn(self._run(app, rec),
                              name=f"relocate:{subject}")

    # -- the SimProcess ------------------------------------------------------

    def _run(self, app, rec: RelocationRecord):
        tracer = self.sim.tracer
        deadline = self.sim.now + self.budget

        def phase_span(name: str, start: float, **attrs) -> None:
            tracer.record_span(f"relocate.{name}", start, self.sim.now,
                               subject=rec.subject, fault_id=rec.fault_id,
                               **attrs)

        # -- plan ------------------------------------------------------------
        t0 = self.sim.now
        template = app_template_of(app)
        failed = sorted(set(self.active.values()))
        plan = self.planner.plan(template, app.host.name,
                                 failed_hosts=failed)
        claimed = False
        if plan is not None and plan.cold:
            claimed = self.spares.claim(plan.target_host, rec.subject)
            if not claimed:
                plan = None
        phase_span("plan", t0,
                   outcome="ok" if plan is not None else "no-placement",
                   target=plan.target_host if plan else "",
                   candidates=len(plan.shortlist) if plan else 0,
                   rejected=len(plan.rejections) if plan else -1)
        if plan is None:
            yield from self._rollback(rec, "no feasible placement")
            return
        rec.target_host = plan.target_host
        rec.cold = plan.cold
        rec.phase = "drain"

        # -- drain -----------------------------------------------------------
        t0 = self.sim.now
        if self.reroute is not None:
            self.reroute.drain(app)
        if app.host.is_up:
            app.stop()
        yield self.drain_grace
        phase_span("drain", t0, host_up=app.host.is_up)
        rec.phase = "start"

        # -- start -----------------------------------------------------------
        t0 = self.sim.now
        target_host = self.dc.hosts[plan.target_host]
        target_app = target_host.apps[plan.target_app]
        # the target inherits the incident: its heal spans correlate too
        if rec.fault_id and tracer.enabled:
            tracer.correlate(f"{plan.target_host}/{plan.target_app}",
                             rec.fault_id)
        if plan.cold:
            result = apply_action("start_app", target_host,
                                  plan.target_app)
            if not result.success:
                phase_span("start", t0, outcome="start-script-failed")
                yield from self._rollback(rec, result.detail,
                                          claimed=plan.target_host)
                return
            while (self.sim.now < deadline
                   and target_app.state is AppState.STARTING):
                yield self.poll
        if not target_app.is_running():
            phase_span("start", t0, outcome="not-running")
            yield from self._rollback(
                rec, f"{plan.target_app} failed to start on "
                     f"{plan.target_host}",
                claimed=plan.target_host if claimed else None)
            return
        phase_span("start", t0, outcome="ok", cold=plan.cold)
        rec.phase = "verify"

        # -- verify ----------------------------------------------------------
        t0 = self.sim.now
        ok, _ms, err = target_app.probe()
        while not ok and self.sim.now + self.poll <= deadline:
            yield self.poll
            ok, _ms, err = target_app.probe()
        phase_span("verify", t0, outcome="ok" if ok else f"probe: {err}")
        if not ok:
            yield from self._rollback(
                rec, f"verification failed: {err}",
                claimed=plan.target_host if claimed else None)
            return

        # -- cutover ---------------------------------------------------------
        if self.reroute is not None:
            self.reroute.cutover(app, target_app)
        rec.phase = "done"
        rec.success = True
        rec.finished = self.sim.now
        self.succeeded += 1
        self.active.pop(rec.subject, None)
        tracer.instant("relocate.done", subject=rec.subject,
                       fault_id=rec.fault_id, target=plan.target_host,
                       cold=plan.cold)
        if tracer.enabled:
            tracer.metrics.counter("relocate.succeeded").inc()

    def _rollback(self, rec: RelocationRecord, why: str,
                  claimed: Optional[str] = None):
        """Give the spare back, page the human, close the ledger."""
        tracer = self.sim.tracer
        if claimed is not None:
            self.spares.release(claimed)
        rec.finished = self.sim.now
        rec.reason = why
        self.failed += 1
        self.active.pop(rec.subject, None)
        tracer.instant("relocate.rollback", subject=rec.subject,
                       fault_id=rec.fault_id, phase=rec.phase, reason=why)
        if tracer.enabled:
            tracer.metrics.counter("relocate.failed").inc()
        if self.page_cb is not None:
            self.page_cb(rec.source_host,
                         f"relocation of {rec.subject} failed: {why}")
        elif self.notifications is not None:
            self.notifications.sms(
                "oncall-admin",
                f"relocation of {rec.subject} failed: {why}",
                severity="critical", sender="relocator")
        return
        yield   # pragma: no cover - makes this a generator for delegation

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Refuses while a relocation is in flight: the failover is a
        live generator process and cannot be re-armed from state.  The
        checkpoint manager treats this as a non-quiescent barrier and
        defers to the next epoch."""
        if self.active:
            raise ValueError(
                f"cannot snapshot with in-flight relocations: "
                f"{sorted(self.active)}")
        return {
            "records": [[r.subject, r.source_host, r.started,
                         r.target_host, r.fault_id, r.finished,
                         r.success, r.cold, r.phase, r.reason]
                        for r in self.records],
            "succeeded": self.succeeded,
            "failed": self.failed,
        }

    def restore_state(self, state: dict) -> None:
        self.active = {}
        self.records = []
        for (subject, source, started, target, fid, finished, success,
             cold, phase, reason) in state["records"]:
            self.records.append(RelocationRecord(
                subject=subject, source_host=source, started=float(started),
                target_host=target, fault_id=fid, finished=finished,
                success=bool(success), cold=bool(cold), phase=phase,
                reason=reason))
        self.succeeded = int(state["succeeded"])
        self.failed = int(state["failed"])
