"""Campaign-level relocation model (the fast path).

The Fig. 2 campaign scores faults through sampled resolutions rather
than living through them; this module is the relocation tier restated
at that level, so year-scale experiments can price failover in user
terms without simulating 215 servers.

:func:`apply_relocation` post-processes an *escalation-only* agent-arm
:class:`~repro.faults.campaign.CampaignResult`.  Both arms therefore
share identical fault arrivals **and** identical base resolutions --
the comparison is perfectly paired; the only difference is what the
admin pair does when local healing has failed and a human would
otherwise be the next tier:

- faults that were prevented or auto-repaired are untouched
  (local healing already won; relocation never starts);
- faults in non-relocatable categories are untouched -- LSF has its own
  resubmission machinery, and a firewall/network fault follows the
  service to any host you move it to;
- the rest race the human: with probability ``success_prob`` the
  relocation lands inside its timeout budget and the outage ends at
  ``plan + drain + start + verify`` (minutes, not hours); when the
  sampled human would somehow have finished *faster*, the human wins
  and the record is untouched (counted ``superseded``);
- a failed or over-budget relocation *rolls back*: the on-call page
  goes out only after the budget burns, so the original human repair
  is delayed by the wasted attempt -- relocation is modelled with its
  honest cost, not as a free option.

Every modelled relocation records ``relocate.*`` spans with a fault id
(:meth:`Tracer.record_span`), so ``--trace``/``--timeline`` show the
failovers exactly like the live orchestrator's.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.faults.campaign import CampaignResult, FaultRecord, PipelineParams
from repro.faults.models import Category, Dist
from repro.trace.tracer import NULL_TRACER

__all__ = ["RelocationPolicy", "RelocationStats", "apply_relocation",
           "RELOCATABLE"]

#: Categories a relocation can end: the service (or its host) is the
#: problem, and a healthy host elsewhere fixes it.  LSF is excluded
#: (the batch tier resubmits instead) and so are firewall/network
#: faults (shared infrastructure moves with you).
RELOCATABLE = frozenset({
    Category.MID_CRASH, Category.HUMAN, Category.PERFORMANCE,
    Category.FRONT_END, Category.HARDWARE, Category.COMPLETELY_DOWN,
})


@dataclass(frozen=True)
class RelocationPolicy:
    """Phase-duration and success model of one relocation attempt."""

    plan: Dist = Dist(25.0, 0.3)        # DGSPL search + constraint checks
    drain: Dist = Dist(45.0, 0.3)       # flag down, stop the corpse
    start: Dist = Dist(240.0, 0.4)      # cold start on the spare
    verify: Dist = Dist(60.0, 0.3)      # service probes come back green
    #: the orchestrator's timeout budget; blowing it is a rollback
    budget: float = 900.0
    #: probability the placement + startup succeed, per category
    success_prob: Dict[Category, float] = field(default_factory=lambda: {
        Category.MID_CRASH: 0.92,
        Category.HUMAN: 0.90,           # clean build on the spare
        Category.PERFORMANCE: 0.90,     # move off the sick box
        Category.FRONT_END: 0.95,
        Category.HARDWARE: 0.85,
        Category.COMPLETELY_DOWN: 0.70,  # corruption may follow the data
    })

    def sample_phases(self, rng) -> Tuple[float, float, float, float]:
        return (float(self.plan.sample(rng)),
                float(self.drain.sample(rng)),
                float(self.start.sample(rng)),
                float(self.verify.sample(rng)))


@dataclass
class RelocationStats:
    """What the relocation tier did across one campaign."""

    candidates: int = 0
    succeeded: int = 0
    failed: int = 0
    #: human repair finished before the relocation would have
    superseded: int = 0
    hours_saved: float = 0.0
    hours_lost_to_rollbacks: float = 0.0

    def summary(self) -> dict:
        return {
            "candidates": self.candidates,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "superseded": self.superseded,
            "hours_saved": self.hours_saved,
            "hours_lost_to_rollbacks": self.hours_lost_to_rollbacks,
        }


def _record_spans(tracer, rec: FaultRecord, phases, outcome: str) -> None:
    fid = tracer.new_fault_id()
    t = rec.time + rec.detection
    names = ("plan", "drain", "start", "verify")
    for name, dur in zip(names, phases):
        tracer.record_span(f"relocate.{name}", t, t + dur,
                           fault_id=fid, category=rec.category.value,
                           outcome=outcome)
        t += dur


def apply_relocation(result: CampaignResult, rng, *,
                     policy: Optional[RelocationPolicy] = None,
                     tracer=NULL_TRACER, label: str = "relocate"
                     ) -> Tuple[CampaignResult, RelocationStats]:
    """Re-score an escalation-only campaign with the relocation tier.

    Deterministic given ``rng``: draws happen in record order, only for
    candidate records, so the same seed gives byte-identical results.
    """
    policy = policy or RelocationPolicy()
    stats = RelocationStats()
    out = CampaignResult(
        PipelineParams(True, result.pipeline.agent_period, label),
        result.horizon)
    for rec in result.records:
        if (rec.prevented or rec.auto
                or rec.category not in RELOCATABLE):
            out.records.append(replace(rec))
            continue
        stats.candidates += 1
        success = rng.random() < policy.success_prob.get(rec.category, 0.0)
        phases = policy.sample_phases(rng)
        total = sum(phases)
        if success and total <= policy.budget:
            if total >= rec.repair:
                # the human somehow won the race; keep their repair
                stats.superseded += 1
                out.records.append(replace(rec))
                continue
            stats.succeeded += 1
            stats.hours_saved += (rec.repair - total) / 3600.0
            _record_spans(tracer, rec, phases, "ok")
            if tracer.enabled:
                tracer.metrics.counter("relocate.succeeded").inc()
            out.records.append(replace(rec, repair=total, escalated=False,
                                       auto=True))
        else:
            # rollback: the budget burns, then the page goes out and
            # the original human repair runs late
            wasted = min(total, policy.budget)
            stats.failed += 1
            stats.hours_lost_to_rollbacks += wasted / 3600.0
            clipped, remaining = [], wasted
            for p in phases:
                clipped.append(min(p, remaining))
                remaining -= clipped[-1]
            _record_spans(tracer, rec, clipped, "rollback")
            if tracer.enabled:
                tracer.metrics.counter("relocate.failed").inc()
            out.records.append(replace(rec, repair=rec.repair + wasted))
    return out, stats
