"""The spare-server pool.

The paper's administration servers relocate services "to spare
capacity": machines racked, powered and templated, but carrying no
live user load.  A spare registers here with its SLKT -- the template
*is* the warm standby: every application the spare can host is already
installed (binaries, filesystems, control scripts) and sits STOPPED,
waiting for a cold start.

The pool is a plain claim ledger.  The planner reads it for candidate
targets; the orchestrator claims a spare for the duration of one
relocation so two concurrent failovers never race onto the same box,
and releases it on rollback (a successful relocation keeps the claim:
the spare is now a production server until an operator re-spares it).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ontology.slkt import Slkt, build_slkt

__all__ = ["SparePool"]


class SparePool:
    """Warm standby servers available as relocation targets."""

    def __init__(self, dc):
        self.dc = dc
        #: spare host name -> its SLKT (what the box can run)
        self.templates: Dict[str, Slkt] = {}
        #: spare host name -> subject it was claimed for
        self.claims: Dict[str, str] = {}
        self.claims_made = 0
        self.claims_released = 0

    # -- registration --------------------------------------------------------

    def register(self, host, slkt: Optional[Slkt] = None) -> None:
        """Put a host up as a spare.  Without an explicit SLKT the live
        host is captured as its own template (its idle app slots define
        what it can take over)."""
        self.templates[host.name] = slkt or build_slkt(host)

    def deregister(self, host_name: str) -> None:
        self.templates.pop(host_name, None)
        self.claims.pop(host_name, None)

    # -- queries -------------------------------------------------------------

    def is_spare(self, host_name: str) -> bool:
        return host_name in self.templates

    def slkt_of(self, host_name: str) -> Optional[Slkt]:
        return self.templates.get(host_name)

    def available(self) -> List[str]:
        """Unclaimed spares whose host is up, name-ordered (the order
        is part of the planner's determinism contract)."""
        out = []
        for name in sorted(self.templates):
            if name in self.claims:
                continue
            host = self.dc.hosts.get(name)
            if host is not None and host.is_up:
                out.append(name)
        return out

    # -- claims --------------------------------------------------------------

    def claim(self, host_name: str, subject: str) -> bool:
        """Reserve a spare for one relocation.  False if already taken
        (or not a spare at all)."""
        if host_name not in self.templates or host_name in self.claims:
            return False
        self.claims[host_name] = subject
        self.claims_made += 1
        return True

    def release(self, host_name: str) -> None:
        if self.claims.pop(host_name, None) is not None:
            self.claims_released += 1

    def claimed_for(self, host_name: str) -> Optional[str]:
        return self.claims.get(host_name)

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Claims only; templates are structural (registered at build
        from the same deterministic site construction)."""
        return {"claims": dict(sorted(self.claims.items())),
                "claims_made": self.claims_made,
                "claims_released": self.claims_released}

    def restore_state(self, state: dict) -> None:
        self.claims = dict(state["claims"])
        self.claims_made = int(state["claims_made"])
        self.claims_released = int(state["claims_released"])

    def __repr__(self) -> str:   # pragma: no cover - debug aid
        return (f"<SparePool spares={len(self.templates)} "
                f"claimed={len(self.claims)}>")
