"""Cross-site relocation: the escalation tier above local-relocate.

When a whole datacentre dies (or a site's own relocation tier has
nowhere left to place a service), the federation tries to land the
lost services on *another* site's spare pool before paging a human.
The placement reuses the same SLKT + DGSPL constraint machinery as
:class:`repro.relocate.PlacementPlanner` -- now with site
anti-affinity (never back into the failing datacentre) -- and the
verify/cutover deadline is WAN-aware: the control chatter to a far
site crosses the leased line many times, so remote takeovers get a
proportionally longer budget before the tier gives up and pages.

Unlike the local :class:`ServiceRelocator`, which is a SimProcess
inside one site's event loop, a cross-site relocation spans *two*
simulators.  It therefore runs as a federation-epoch state machine:
the start is issued into the target site's world at a barrier, and
each subsequent barrier advances plan -> start -> verify -> cutover
until the deadline.  A successful cutover registers the service alias
in the target site's name-service zone (which the federated delegation
makes visible everywhere) and records a *takeover*: the geo traffic
tier uses those to route the dead site's pinned demand to wherever its
services came back up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.healing import apply_action
from repro.ontology.slkt import app_template_of
from repro.relocate.reroute import service_alias

__all__ = ["CrossSiteRecord", "CrossSiteRelocator"]


@dataclass
class CrossSiteRecord:
    """One attempted cross-site takeover, start to finish."""

    subject: str                 # "<source-site>/<app>"
    app_name: str
    app_type: str
    version: str
    source_site: str
    source_host: str
    target_site: str = ""
    target_host: str = ""
    target_app: str = ""
    cold: bool = True
    reason: str = ""
    started: float = 0.0
    deadline: float = 0.0
    finished: Optional[float] = None
    phase: str = "plan"          # plan | start | verify | done | failed
    success: bool = False
    detail: str = ""

    def to_dict(self) -> dict:
        return {k: getattr(self, k) for k in (
            "subject", "app_name", "app_type", "version", "source_site",
            "source_host", "target_site", "target_host", "target_app",
            "cold", "reason", "started", "deadline", "finished", "phase",
            "success", "detail")}

    @classmethod
    def from_dict(cls, doc: dict) -> "CrossSiteRecord":
        return cls(**doc)


@dataclass
class _Takeover:
    """A completed cutover the geo tier can route pinned demand to."""

    source_site: str
    app_type: str
    target_site: str
    target_host: str
    target_app: str

    def to_dict(self) -> dict:
        return {"source_site": self.source_site, "app_type": self.app_type,
                "target_site": self.target_site,
                "target_host": self.target_host,
                "target_app": self.target_app}

    @classmethod
    def from_dict(cls, doc: dict) -> "_Takeover":
        return cls(**doc)


class CrossSiteRelocator:
    """Epoch-driven cross-site takeover state machines.

    ``sites`` maps site name -> the built :class:`Site` world; the
    federation registers them all and calls :meth:`tick` at every
    barrier.  ``page_cb(subject, reason)`` is the last tier -- wired by
    the federation to a surviving site's paging channel.
    """

    #: control-plane round trips a verify/cutover handshake costs; the
    #: WAN-aware budget adds this many RTTs to the base verify budget
    CHATTER_ROUNDS = 100

    def __init__(self, *, wan, nameservice=None, page_cb=None,
                 verify_budget: float = 600.0):
        self.wan = wan
        self.nameservice = nameservice
        self.page_cb = page_cb
        self.verify_budget = float(verify_budget)
        self.sites: Dict[str, object] = {}
        #: sites currently considered lost (no placements into them)
        self.lost_sites: set = set()
        self.records: List[CrossSiteRecord] = []
        self.active: List[CrossSiteRecord] = []
        self.takeovers: List[_Takeover] = []
        #: (source_site, app_type) -> how many services that tier had
        #: when the site was declared lost (the takeover denominator)
        self.tier_totals: Dict[Tuple[str, str], int] = {}
        self.attempted = 0
        self.succeeded = 0
        self.failed = 0
        self.paged = 0

    def register_site(self, name: str, site) -> None:
        self.sites[name] = site

    # -- queries -------------------------------------------------------------

    def takeovers_for(self, source_site: str,
                      app_type: str) -> List[_Takeover]:
        return [t for t in self.takeovers
                if t.source_site == source_site and t.app_type == app_type]

    def takeover_fraction(self, source_site: str, app_type: str) -> float:
        """What fraction of a lost site's tier is back up elsewhere --
        the share of its pinned demand the geo tier can recover."""
        total = self.tier_totals.get((source_site, app_type), 0)
        if total <= 0:
            return 0.0
        return min(1.0, len(self.takeovers_for(source_site, app_type))
                   / total)

    def _budget_for(self, source_site: str, target_site: str) -> float:
        rtt_s = 2.0 * self.wan.latency_ms(source_site, target_site) / 1000.0
        return self.verify_budget + self.CHATTER_ROUNDS * rtt_s

    # -- entry points --------------------------------------------------------

    def site_loss(self, source_site: str, now: float,
                  reason: str = "site loss") -> int:
        """Relocate every user-facing database service of a lost site.

        The databases are the *pinned* tier -- their region's demand
        cannot be geo-steered away -- so they are what cross-site
        relocation exists for.  Returns how many takeovers started.
        """
        site = self.sites.get(source_site)
        if site is None:
            return 0
        self.lost_sites.add(source_site)
        key = (source_site, "database")
        self.tier_totals.setdefault(key, len(site.databases))
        started = 0
        settled = {r.subject for r in self.active}
        settled |= {r.subject for r in self.records if r.success}
        for app in sorted(site.databases, key=lambda a: a.name):
            subject = f"{source_site}/{app.name}"
            if subject in settled:
                continue
            if self._start(app, source_site, now, reason):
                started += 1
        return started

    def relocate_host(self, source_site: str, host_name: str, now: float,
                      reason: str) -> int:
        """The per-host escalation hook: the site's own relocation tier
        had nowhere to place ``host_name``'s services, so try the other
        datacentres before anyone gets paged."""
        site = self.sites.get(source_site)
        if site is None:
            return 0
        host = site.dc.hosts.get(host_name)
        if host is None:
            return 0
        started = 0
        inflight = {r.subject for r in self.active}
        for app_name in sorted(host.apps):
            app = host.apps[app_name]
            if app.started_at is None:       # idle slot, nothing to move
                continue
            subject = f"{source_site}/{app.name}"
            if subject in inflight:
                continue
            if self._start(app, source_site, now, reason):
                started += 1
        return started

    # -- the state machine ---------------------------------------------------

    def _start(self, app, source_site: str, now: float,
               reason: str) -> bool:
        """Plan and issue the start at a target site.  Returns whether a
        takeover is now in flight."""
        template = app_template_of(app)
        rec = CrossSiteRecord(
            subject=f"{source_site}/{app.name}", app_name=app.name,
            app_type=app.app_type, version=app.version,
            source_site=source_site, source_host=app.host.name,
            reason=reason, started=now)
        self.attempted += 1

        candidates = sorted(
            (name for name in self.sites
             if name != source_site and name not in self.lost_sites),
            key=lambda name: (self.wan.latency_ms(source_site, name), name))
        plan = None
        target_site_name = None
        for name in candidates:
            target = self.sites[name]
            if target.relocator is None:
                continue
            plan = target.relocator.planner.plan(
                template, source_host=f"{source_site}:{app.host.name}",
                failed_sites=[source_site])
            if plan is not None:
                target_site_name = name
                break
        if plan is None:
            rec.phase, rec.finished = "failed", now
            rec.detail = "no site can place it"
            self.records.append(rec)
            self._fail(rec)
            return False

        target = self.sites[target_site_name]
        rec.target_site = target_site_name
        rec.target_host, rec.target_app = plan.target_host, plan.target_app
        rec.cold = plan.cold
        rec.deadline = now + self._budget_for(source_site, target_site_name)
        if plan.cold:
            if not target.spares.claim(plan.target_host, rec.subject):
                rec.phase, rec.finished = "failed", now
                rec.detail = f"spare {plan.target_host} already claimed"
                self.records.append(rec)
                self._fail(rec)
                return False
            host = target.dc.hosts[plan.target_host]
            result = apply_action("start_app", host, plan.target_app)
            if not result.success:
                target.spares.release(plan.target_host)
                rec.phase, rec.finished = "failed", now
                rec.detail = f"start script failed: {result.detail}"
                self.records.append(rec)
                self._fail(rec)
                return False
        rec.phase = "verify"
        self.records.append(rec)
        self.active.append(rec)
        return True

    def tick(self, now: float) -> None:
        """Advance every in-flight takeover one federation epoch."""
        still = []
        for rec in self.active:
            target = self.sites[rec.target_site]
            app = target.dc.hosts[rec.target_host].apps[rec.target_app]
            ok = app.is_running() and app.probe()[0]
            if ok:
                self._cutover(rec, app, now)
            elif now >= rec.deadline:
                if rec.cold:
                    target.spares.release(rec.target_host)
                rec.phase, rec.finished = "failed", now
                rec.detail = "verify deadline exceeded"
                self._fail(rec)
            else:
                still.append(rec)
        self.active = still

    def _cutover(self, rec: CrossSiteRecord, app, now: float) -> None:
        target = self.sites[rec.target_site]
        ip = next((n.ip for n in app.host.nics.values()), "0.0.0.0")
        target.nameservice.register(service_alias(rec.app_name), ip)
        rec.phase, rec.success, rec.finished = "done", True, now
        self.succeeded += 1
        self.takeovers.append(_Takeover(
            source_site=rec.source_site, app_type=rec.app_type,
            target_site=rec.target_site, target_host=rec.target_host,
            target_app=rec.target_app))

    def _fail(self, rec: CrossSiteRecord) -> None:
        self.failed += 1
        if self.page_cb is not None:
            self.paged += 1
            self.page_cb(rec.subject,
                         f"cross-site relocation failed: {rec.detail} "
                         f"({rec.reason})")

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "lost_sites": sorted(self.lost_sites),
            "records": [r.to_dict() for r in self.records],
            "active": [r.subject for r in self.active],
            "takeovers": [t.to_dict() for t in self.takeovers],
            "tier_totals": {f"{s}|{t}": v for (s, t), v
                            in sorted(self.tier_totals.items())},
            "attempted": self.attempted,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "paged": self.paged,
        }

    def restore_state(self, state: dict) -> None:
        self.lost_sites = set(state["lost_sites"])
        self.records = [CrossSiteRecord.from_dict(d)
                        for d in state["records"]]
        by_subject = {r.subject: r for r in self.records}
        self.active = [by_subject[s] for s in state["active"]]
        self.takeovers = [_Takeover.from_dict(d)
                          for d in state["takeovers"]]
        self.tier_totals = {}
        for key, value in state["tier_totals"].items():
            s, t = key.split("|", 1)
            self.tier_totals[(s, t)] = int(value)
        self.attempted = int(state["attempted"])
        self.succeeded = int(state["succeeded"])
        self.failed = int(state["failed"])
        self.paged = int(state["paged"])
