"""Constraint-based service failover and relocation (``repro.relocate``).

The escalation tier between local self-healing and paging a human: a
spare-server pool, an SLKT/DGSPL constraint-based placement planner, a
SimProcess relocation orchestrator (drain -> start -> verify -> cutover
under a timeout budget), front-door/name-service rerouting, and the
campaign-level relocation model the year-scale experiments use.
"""

from repro.relocate.crosssite import (CrossSiteRecord,
                                      CrossSiteRelocator)
from repro.relocate.model import (RELOCATABLE, RelocationPolicy,
                                  RelocationStats, apply_relocation)
from repro.relocate.orchestrator import RelocationRecord, ServiceRelocator
from repro.relocate.planner import PlacementPlan, PlacementPlanner
from repro.relocate.reroute import RerouteDirectory, service_alias
from repro.relocate.spares import SparePool

__all__ = [
    "CrossSiteRecord", "CrossSiteRelocator",
    "RELOCATABLE", "RelocationPolicy", "RelocationStats",
    "apply_relocation", "RelocationRecord", "ServiceRelocator",
    "PlacementPlan", "PlacementPlanner", "RerouteDirectory",
    "service_alias", "SparePool",
]
