"""Front-door and name-service rerouting.

A relocation is only finished when user demand follows the service to
its new home.  Two mechanisms, mirroring how the site actually routes:

- **front doors** (`traffic.frontdoor`): the failed instance is flagged
  down at drain time (stop shedding onto a corpse *now*, not at the
  next DGSPL refresh), and at cutover the new instance replaces the old
  one in the door's server set;
- **name service** (`net.nameservice`): the service alias
  ``svc.<app_name>`` is re-registered to the target host's address, so
  anything that resolves by name lands on the new endpoint.

When built with the site's condition ledger, each phase is also
published as a ``route`` condition (drain / cutover), so any ledger
subscriber -- front doors, the ops console -- learns about the move in
the same delivery that carries agent flags and host transitions.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["RerouteDirectory", "service_alias"]


def service_alias(app_name: str) -> str:
    """The name-service alias a relocatable service is published under."""
    return f"svc.{app_name}"


class RerouteDirectory:
    """Everything that must learn about a service's new address."""

    def __init__(self, nameservice=None, ledger=None):
        self.nameservice = nameservice
        self.ledger = ledger
        #: app_type -> front doors spreading demand over that tier
        self.doors: Dict[str, List[object]] = {}
        self.cutovers = 0
        self.drains = 0

    def register_door(self, door) -> None:
        self.doors.setdefault(door.app_type, []).append(door)
        if self.ledger is not None:
            door.attach_ledger(self.ledger)

    def publish(self, app) -> None:
        """Register a service alias for an app at its current host."""
        if self.nameservice is not None:
            ip = next((n.ip for n in app.host.nics.values()), "0.0.0.0")
            self.nameservice.register(service_alias(app.name), ip)

    # -- the two phases ------------------------------------------------------

    def drain(self, app) -> None:
        """Stop routing demand at the failing instance immediately."""
        self.drains += 1
        for door in self.doors.get(app.app_type, ()):
            door.flag_down(app.host.name)
        if self.ledger is not None:
            self.ledger.append("route", app.host.name, agent=app.name,
                               status="drain", detail=app.app_type)

    def cutover(self, old_app, new_app) -> None:
        """Point every route at the relocated instance."""
        self.cutovers += 1
        for door in self.doors.get(old_app.app_type, ()):
            door.replace(old_app, new_app)
            door.flag_up(new_app.host.name)
        if self.nameservice is not None:
            ip = next((n.ip for n in new_app.host.nics.values()), "0.0.0.0")
            self.nameservice.register(service_alias(old_app.name), ip)
        if self.ledger is not None:
            self.ledger.append("route", new_app.host.name,
                               agent=old_app.name, status="cutover",
                               detail=old_app.app_type)

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Counters only; doors re-register at rebuild and carry their
        own state."""
        return {"cutovers": self.cutovers, "drains": self.drains}

    def restore_state(self, state: dict) -> None:
        self.cutovers = int(state["cutovers"])
        self.drains = int(state["drains"])

    def __repr__(self) -> str:   # pragma: no cover - debug aid
        tiers = sum(len(v) for v in self.doors.values())
        return f"<RerouteDirectory doors={tiers} cutovers={self.cutovers}>"
