"""Trace exporters and incident reconstruction.

Three consumers, three formats:

- :func:`to_chrome` / :func:`write_chrome_trace` -- the Chrome
  ``trace_event`` JSON array format, loadable in ``chrome://tracing``
  or Perfetto.  Simulated seconds map to microseconds, span trees map
  to nested complete ("X") events, fault injections/detections to
  instant ("i") marks.
- :func:`incident_traces` -- joins every span and instant carrying the
  same ``fault_id`` into one :class:`IncidentTrace`: the injected ->
  detected -> diagnosed -> repaired -> restored timeline the paper's
  Fig. 2 / §4 claims are made of.
- :func:`format_timeline` -- those incidents as a flat-ASCII report in
  the repo's log idiom, for terminals and CHANGES-style artefacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.trace.tracer import Span, Tracer

__all__ = ["to_chrome", "write_chrome_trace", "IncidentTrace",
           "incident_traces", "format_timeline", "span_durations"]


def _tid(attrs: dict) -> str:
    """Chrome lane: group by host, then agent, then a catch-all."""
    return str(attrs.get("host") or attrs.get("agent")
               or attrs.get("target") or "site")


def to_chrome(tracer: Tracer) -> dict:
    """The trace as a Chrome ``trace_event`` JSON object."""
    events: List[dict] = []
    for sp in tracer.spans:
        if sp.end is None:
            continue        # still open: nothing meaningful to draw
        events.append({
            "name": sp.name,
            "ph": "X",
            "ts": sp.start * 1e6,
            "dur": (sp.end - sp.start) * 1e6,
            "pid": 0,
            "tid": _tid(sp.attrs),
            "args": dict(sp.attrs),
        })
    for inst in tracer.instants:
        events.append({
            "name": inst["name"],
            "ph": "i",
            "ts": inst["ts"] * 1e6,
            "pid": 0,
            "tid": _tid(inst["args"]),
            "s": "g",       # global scope: draw across all lanes
            "args": dict(inst["args"]),
        })
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(to_chrome(tracer), fh)


# -- incident reconstruction ----------------------------------------------------


@dataclass
class IncidentTrace:
    """One fault's lifecycle, rebuilt from correlated spans/instants."""

    fault_id: str
    kind: str = ""
    target: str = ""
    injected_at: Optional[float] = None
    detected_at: Optional[float] = None
    diagnosed_at: Optional[float] = None
    repaired_at: Optional[float] = None
    restored_at: Optional[float] = None
    repair_outcome: str = ""
    spans: List[Span] = field(default_factory=list)

    @property
    def detection_latency(self) -> Optional[float]:
        if self.injected_at is None or self.detected_at is None:
            return None
        return self.detected_at - self.injected_at

    @property
    def downtime(self) -> Optional[float]:
        if self.injected_at is None or self.restored_at is None:
            return None
        return self.restored_at - self.injected_at


def incident_traces(tracer: Tracer) -> Dict[str, IncidentTrace]:
    """Group everything carrying a ``fault_id`` into incident trees.

    Phase times are first-occurrence: re-detections on later agent
    wakes (the fault persisted) do not move ``detected_at``.
    """
    incidents: Dict[str, IncidentTrace] = {}

    def inc_for(fid: str) -> IncidentTrace:
        inc = incidents.get(fid)
        if inc is None:
            inc = incidents[fid] = IncidentTrace(fid)
        return inc

    for inst in tracer.instants:
        fid = inst["args"].get("fault_id")
        if not fid:
            continue
        inc = inc_for(fid)
        name, ts = inst["name"], inst["ts"]
        if name == "fault.inject":
            if inc.injected_at is None:
                inc.injected_at = ts
                inc.kind = inst["args"].get("kind", "")
                inc.target = inst["args"].get("target", "")
        elif name == "service.restored":
            if inc.restored_at is None or ts > inc.restored_at:
                inc.restored_at = ts

    for sp in tracer.spans:
        fid = sp.attrs.get("fault_id")
        if not fid or sp.end is None:
            continue
        inc = inc_for(fid)
        inc.spans.append(sp)
        if sp.name == "fault.detect":
            if inc.detected_at is None or sp.start < inc.detected_at:
                inc.detected_at = sp.start
        elif sp.name == "agent.diagnose":
            if inc.diagnosed_at is None or sp.start < inc.diagnosed_at:
                inc.diagnosed_at = sp.start
        elif sp.name.startswith("heal."):
            if sp.attrs.get("outcome") == "ok" and inc.repaired_at is None:
                inc.repaired_at = sp.end
                inc.repair_outcome = sp.name[len("heal."):]
    return incidents


def format_timeline(tracer: Tracer) -> str:
    """The incidents as a flat-ASCII report, one block per fault, in
    the repo's ``t=... <event>`` log idiom."""
    from repro.sim.calendar import format_time
    incidents = sorted(incident_traces(tracer).values(),
                       key=lambda i: (i.injected_at is None,
                                      i.injected_at or 0.0, i.fault_id))
    lines = [f"INCIDENT TIMELINE  ({len(incidents)} correlated fault(s))"]
    if not incidents:
        lines.append("  (no correlated incidents recorded)")

    def stamp(t: float, text: str) -> str:
        return f"    {format_time(t)}  {text}"

    for inc in incidents:
        lines.append(f"  {inc.fault_id} {inc.kind or '?'} "
                     f"-> {inc.target or '?'}")
        t0 = inc.injected_at
        if t0 is not None:
            lines.append(stamp(t0, f"fault injected ({inc.kind})"))
        if inc.detected_at is not None:
            delta = ("" if t0 is None
                     else f" (+{inc.detected_at - t0:.0f} s)")
            by = next((sp.attrs.get("agent", "") for sp in inc.spans
                       if sp.name == "fault.detect"), "")
            by = f" by {by}" if by else ""
            lines.append(stamp(inc.detected_at, f"detected{by}{delta}"))
        if inc.diagnosed_at is not None:
            cause = next((sp.attrs.get("cause", "") for sp in inc.spans
                          if sp.name == "agent.diagnose"), "")
            lines.append(stamp(inc.diagnosed_at,
                               f"diagnosed: {cause or 'unknown'}"))
        relocated = False
        for sp in inc.spans:
            if sp.name.startswith("heal."):
                lines.append(stamp(
                    sp.start,
                    f"{sp.name} {sp.attrs.get('outcome', '?')} "
                    f"(busy {sp.attrs.get('busy_for', 0):.0f} s)"))
            elif sp.name.startswith("relocate."):
                relocated = True
                outcome = sp.attrs.get("outcome")
                lines.append(stamp(
                    sp.start,
                    f"{sp.name} ({sp.end - sp.start:.0f} s)"
                    + (f" {outcome}" if outcome else "")))
        if inc.restored_at is not None:
            dt = inc.downtime
            dt_s = "" if dt is None else f" (downtime {dt:.0f} s)"
            lines.append(stamp(inc.restored_at, f"service restored{dt_s}"))
        elif inc.repaired_at is None and not relocated:
            lines.append("    ...  unresolved in trace window")
    return "\n".join(lines)


# -- span statistics ------------------------------------------------------------


def span_durations(tracer: Tracer, name: str, **attr_filter):
    """Durations (seconds) of finished spans matching name + attrs, as
    a numpy array -- the experiments' span-derived statistics input."""
    import numpy as np
    vals = [sp.end - sp.start
            for sp in tracer.spans_named(name, **attr_filter)]
    return np.asarray(vals, dtype=np.float64)
