"""Simulation-time tracing and metrics (the observability layer).

The paper's claims are timeline claims -- fault injected, agent
detects, diagnosis, repair, service restored -- so the reproduction
needs per-incident traces, not just end-of-run aggregates.  This
package provides:

- :mod:`tracer` -- :class:`Tracer` (sim-time spans and instants, fault
  correlation, near-zero disabled cost) and :func:`install_tracer`.
- :mod:`metrics` -- :class:`MetricsRegistry` with counters, gauges and
  fixed-bucket histograms, snapshot-able to a plain dict.
- :mod:`export` -- Chrome ``trace_event`` JSON, incident
  reconstruction by fault id, and the flat-ASCII incident timeline.

Usage::

    from repro.trace import install_tracer, write_chrome_trace
    site = build_site(...)
    tracer = install_tracer(site.sim)
    ... run, inject faults ...
    write_chrome_trace(tracer, "trace.json")
    print(format_timeline(tracer))
"""

from repro.trace.metrics import (Counter, Gauge, Histogram,
                                 MetricsRegistry, DEFAULT_BUCKETS)
from repro.trace.tracer import (NULL_SPAN, NULL_TRACER, Span, Tracer,
                                install_tracer)
from repro.trace.export import (IncidentTrace, format_timeline,
                                incident_traces, span_durations,
                                to_chrome, write_chrome_trace)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS",
    "NULL_SPAN", "NULL_TRACER", "Span", "Tracer", "install_tracer",
    "IncidentTrace", "format_timeline", "incident_traces",
    "span_durations", "to_chrome", "write_chrome_trace",
]
