"""Simulation-time-aware tracing.

A :class:`Tracer` stamps **spans** (timed operations: an agent wake,
one healing action, a DGSPL build) and **instants** (point events: a
fault injection, a detection) with the *simulated* clock, so a trace of
a fault's lifecycle reads in the same time base as the downtime ledger
and the paper's figures.

Design constraints, in order:

1. **Near-zero cost when disabled.**  Every simulator carries
   :data:`NULL_TRACER` by default; ``tracer.enabled`` is the one check
   hot paths make, and ``span()`` on a disabled tracer returns a shared
   no-op singleton -- no allocation, no timestamping.
2. **Nestable.**  Spans opened while another span is active record it
   as their parent, so one agent wake becomes a tree:
   ``agent.run > diagnose > heal.restart_app``.
3. **Correlated.**  The fault injector allocates a ``fault_id`` per
   injected fault and registers the target with the tracer; agent-side
   spans look the afflicted subject up and carry the same id, which is
   what stitches detection, diagnosis and repair into one incident
   trace (see :mod:`repro.trace.export`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.trace.metrics import MetricsRegistry

__all__ = ["Span", "Tracer", "NULL_SPAN", "NULL_TRACER", "install_tracer"]


class Span:
    """One timed operation.

    Usable as a context manager or via explicit :meth:`finish`;
    ``start``/``end`` are simulated seconds, ``end`` is ``None`` while
    the span is open.
    """

    __slots__ = ("tracer", "name", "start", "end", "attrs", "parent")

    def __init__(self, tracer: "Tracer", name: str, start: float,
                 attrs: Dict[str, Any], parent: Optional["Span"]):
        self.tracer = tracer
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        self.parent = parent

    def set_attr(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def finish(self, **attrs: Any) -> None:
        """Close the span at the current simulated time.  Idempotent."""
        if self.end is None:
            if attrs:
                self.attrs.update(attrs)
            self.end = self.tracer.now
            self.tracer._finished(self)

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.finish()
        return False

    def __repr__(self) -> str:
        dur = "open" if self.end is None else f"{self.end - self.start:.3f}s"
        return f"<Span {self.name} t={self.start:.3f} {dur} {self.attrs}>"


class _NullSpan:
    """The shared no-op span handed out by disabled tracers."""

    __slots__ = ()
    name = ""
    start = 0.0
    end = 0.0
    duration = 0.0
    parent = None

    def set_attr(self, key: str, value: Any) -> "_NullSpan":
        return self

    def finish(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __repr__(self) -> str:
        return "<NullSpan>"


NULL_SPAN = _NullSpan()


class Tracer:
    """Span/instant recorder plus the metrics registry.

    ``sim`` supplies the clock; a simless tracer (model-sampled
    experiments like MTTR) can pass ``clock`` or rely on
    :meth:`record_span`'s explicit timestamps.
    """

    def __init__(self, sim=None, *, enabled: bool = True,
                 metrics: Optional[MetricsRegistry] = None,
                 capture_resumes: bool = False,
                 clock: Optional[Callable[[], float]] = None):
        self.sim = sim
        self.enabled = enabled
        #: also span every generator-process resume (verbose; off by
        #: default so an enabled tracer stays affordable on long runs)
        self.capture_resumes = capture_resumes
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[Span] = []
        self.instants: List[dict] = []
        self._stack: List[Span] = []
        self._clock = clock
        self._correlations: Dict[str, str] = {}
        # plain int so checkpoints can capture and restore it
        self._fault_seq = 1

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        if self.sim is not None:
            return self.sim.now
        if self._clock is not None:
            return self._clock()
        return 0.0

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span at the current simulated time."""
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        sp = Span(self, name, self.now, attrs, parent)
        self.spans.append(sp)
        self._stack.append(sp)
        return sp

    def record_span(self, name: str, start: float, end: float,
                    **attrs: Any):
        """Record an already-complete span with explicit timestamps
        (used by model-sampled pipelines where phase durations are
        drawn, not lived through)."""
        if not self.enabled:
            return NULL_SPAN
        sp = Span(self, name, float(start), attrs, None)
        sp.end = float(end)
        self.spans.append(sp)
        return sp

    def _finished(self, sp: Span) -> None:
        if self._stack and self._stack[-1] is sp:
            self._stack.pop()
        else:       # closed out of order: drop it from wherever it sits
            try:
                self._stack.remove(sp)
            except ValueError:
                pass

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a point event at the current simulated time."""
        if not self.enabled:
            return
        self.instants.append({"name": name, "ts": self.now, "args": attrs})

    # -- fault correlation ---------------------------------------------------

    def new_fault_id(self) -> str:
        seq, self._fault_seq = self._fault_seq, self._fault_seq + 1
        return f"F{seq:04d}"

    def correlate(self, target: str, fault_id: str) -> None:
        """Bind an injection target to a fault id.  The target is also
        indexed under its leaf name (``host/app`` -> ``app``,
        ``host:/mount`` -> ``/mount``) because agent findings name the
        local subject, not the site-wide path."""
        self._correlations[target] = fault_id
        leaf = target.rpartition("/")[2]
        if leaf != target:
            self._correlations[leaf] = fault_id
        host, sep, mount = target.partition(":")
        if sep:
            self._correlations[mount] = fault_id
            self._correlations.setdefault(host, fault_id)

    def fault_id_for(self, subject: str) -> str:
        """The fault id correlated with a subject, or ``""``."""
        fid = self._correlations.get(subject)
        if fid is not None:
            return fid
        for target, fid in self._correlations.items():
            if target.endswith("/" + subject):
                return fid
        return ""

    # -- queries -------------------------------------------------------------

    def spans_named(self, name: str, **attr_filter: Any) -> List[Span]:
        """Finished spans matching a name and attribute values."""
        out = []
        for sp in self.spans:
            if sp.name != name or sp.end is None:
                continue
            if all(sp.attrs.get(k) == v for k, v in attr_filter.items()):
                out.append(sp)
        return out

    def clear(self) -> None:
        """Drop recorded spans/instants (metrics are kept)."""
        self.spans.clear()
        self.instants.clear()
        self._stack.clear()

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        """The full record -- spans (parents encoded as indices into
        the span list), instants, correlations and metrics -- so chaos
        reports and incident reconciliation built after a restore are
        byte-identical to the uninterrupted run.  Refuses to snapshot
        mid-operation: the open-span stack must be empty."""
        if self._stack:
            raise ValueError(
                f"cannot snapshot tracer with {len(self._stack)} open "
                f"span(s): {[sp.name for sp in self._stack]}")
        index = {id(sp): i for i, sp in enumerate(self.spans)}
        return {
            "enabled": self.enabled,
            "capture_resumes": self.capture_resumes,
            "next_fault_seq": self._fault_seq,
            # insertion order is load-bearing: fault_id_for scans for
            # the first suffix match
            "correlations": dict(self._correlations),
            "spans": [[sp.name, sp.start, sp.end, dict(sp.attrs),
                       index.get(id(sp.parent))] for sp in self.spans],
            "instants": [[i["name"], i["ts"], dict(i["args"])]
                         for i in self.instants],
            "metrics": self.metrics.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        self.enabled = bool(state["enabled"])
        self.capture_resumes = bool(state["capture_resumes"])
        self._fault_seq = int(state["next_fault_seq"])
        self._correlations = dict(state["correlations"])
        self.spans = []
        self._stack = []
        for name, start, end, attrs, parent_idx in state["spans"]:
            parent = self.spans[parent_idx] if parent_idx is not None else None
            sp = Span(self, name, float(start), dict(attrs), parent)
            sp.end = None if end is None else float(end)
            self.spans.append(sp)
        self.instants = [{"name": name, "ts": float(ts), "args": dict(args)}
                         for name, ts, args in state["instants"]]
        self.metrics.restore_state(state["metrics"])

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (f"<Tracer {state} spans={len(self.spans)} "
                f"instants={len(self.instants)}>")


#: The disabled tracer every Simulator starts with.  Shared and inert:
#: ``span()`` returns :data:`NULL_SPAN`, ``instant()`` is a no-op, and
#: instrumentation guards metric updates behind ``tracer.enabled``.
NULL_TRACER = Tracer(enabled=False)


def install_tracer(sim, **kwargs: Any) -> Tracer:
    """Create a tracer bound to a simulator and attach it, so every
    instrumented component reached from that simulator reports in."""
    tracer = Tracer(sim, **kwargs)
    sim.tracer = tracer
    return tracer
