"""Counters, gauges and fixed-bucket histograms.

The registry is the numbers side of the observability layer: cheap
monotonic counters for event/wake/heal rates, gauges for point-in-time
levels, and fixed-bucket histograms for latency-ish distributions.
Everything is plain Python floats -- the hot increments must not
allocate -- and :meth:`MetricsRegistry.snapshot` renders the whole
registry to a plain dict for ``experiments.report`` and the CLI.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

#: default histogram bucket upper bounds, seconds: spans sub-second
#: kernel work up to multi-hour repairs
DEFAULT_BUCKETS = (0.1, 1.0, 10.0, 60.0, 300.0, 1800.0, 3600.0, 14400.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """A point-in-time level (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound,
    plus an overflow bucket, total and count for the mean."""

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"buckets must be a sorted non-empty sequence, "
                             f"got {buckets!r}")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def observe_n(self, value: float, n: int) -> None:
        """Record ``n`` observations of ``value`` at once -- the hook
        the aggregated traffic engine uses to account a whole demand
        batch at its mean latency without per-request loops."""
        if n <= 0:
            return
        self.counts[bisect.bisect_left(self.bounds, value)] += n
        self.count += n
        self.total += value * n

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def count_at_or_below(self, value: float) -> int:
        """Observations known to be <= ``value`` (bucket granularity:
        only whole buckets whose upper bound fits are counted)."""
        return sum(self.counts[:bisect.bisect_right(self.bounds, value)])

    def quantile(self, q: float) -> float:
        """Approximate q-quantile by linear interpolation inside the
        containing bucket.  The overflow bucket reports its lower bound
        (the histogram does not know how far the tail reaches).

        Every in-range ``q`` has a defined value: an empty histogram
        answers 0.0, ``q=0`` the lower bound of the first occupied
        bucket and ``q=1`` the upper bound of the last one -- the
        alerting tier probes these extremes on freshly-created series,
        so none of them may raise."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            for i, c in enumerate(self.counts):
                if c:
                    return self.bounds[i - 1] if i > 0 else 0.0
            return 0.0
        if q == 1.0:
            for i in range(len(self.counts) - 1, -1, -1):
                if self.counts[i]:
                    return (self.bounds[-1] if i >= len(self.bounds)
                            else self.bounds[i])
            return 0.0
        target = q * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= target and c:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                if i >= len(self.bounds):      # overflow bucket
                    return self.bounds[-1]
                hi = self.bounds[i]
                frac = (target - (cum - c)) / c
                return lo + frac * (hi - lo)
        return self.bounds[-1]

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean():g}>"


class MetricsRegistry:
    """Named metrics, created on first use.

    ``registry.counter("agent.runs").inc()`` is the whole API surface
    at an instrumentation site; the registry guarantees one instance
    per name so call sites can cache the handle.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- access --------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, buckets)
        return h

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """The whole registry as a plain dict (stable key order)."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {"bounds": list(h.bounds), "counts": list(h.counts),
                    "count": h.count, "total": h.total, "mean": h.mean()}
                for n, h in sorted(self._histograms.items())},
        }

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Unlike :meth:`snapshot` (a rendered export), this is the
        loss-free form a checkpoint restores from."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {"bounds": list(h.bounds), "counts": list(h.counts),
                    "count": h.count, "total": h.total}
                for n, h in sorted(self._histograms.items())},
        }

    def restore_state(self, state: dict) -> None:
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        for name, value in state["counters"].items():
            self.counter(name).value = float(value)
        for name, value in state["gauges"].items():
            self.gauge(name).value = float(value)
        for name, h in state["histograms"].items():
            hist = self.histogram(name, h["bounds"])
            hist.counts = [int(c) for c in h["counts"]]
            hist.count = int(h["count"])
            hist.total = float(h["total"])

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))
