"""In-sim alerting: burn-rate rules, anomaly detectors, alert pages.

The SRE-workbook shape, run *inside* the simulation: each traffic
class is watched by multi-window multi-burn-rate rules (a long window
for significance, a short window so recovered problems stop paging),
and any hub series can carry an EWMA z-score anomaly detector.  Alert
instances move pending -> firing -> resolved with hold times on both
edges (flap suppression), page the on-call through the site
:class:`~repro.ops.notifications.NotificationChannel`, escalate
severity when they stay firing, and are attributed to the fault id the
tracer correlates with the damage -- the join key the incident
reports use.

The point of running this in-sim: the paper's detection story is a
cron grid (agents wake every ~300 s).  A burn-rate alert over 60 s
telemetry rollups pages within a tick or two of user impact, and the
``incidents`` experiment measures that gap against the cron bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.traffic.slo import burn_rate

__all__ = ["BurnRateRule", "DEFAULT_BURN_RULES", "EwmaAnomalyDetector",
           "Alert", "AlertManager"]


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate condition."""

    name: str
    long_window: float
    short_window: float
    #: burn-rate threshold both windows must exceed
    threshold: float
    severity: str = "critical"


#: The classic 99.9%-objective pair: page when 2% of a 30-day budget
#: burns in an hour (and the last 5 minutes agree the burn is live);
#: ticket on the slower 6 h / 30 min burn.
DEFAULT_BURN_RULES: Tuple[BurnRateRule, ...] = (
    BurnRateRule("fast-burn", 3600.0, 300.0, 14.4, "critical"),
    BurnRateRule("slow-burn", 6 * 3600.0, 1800.0, 6.0, "warning"),
)


class EwmaAnomalyDetector:
    """Exponentially-weighted mean/variance z-score detector.

    Feed it one sample per rollup; it answers whether the sample sits
    more than ``z`` deviations from the running mean.  ``warmup``
    samples are consumed before it may trigger, and ``min_std`` floors
    the deviation so a perfectly flat warmup does not make every later
    wiggle infinite sigma.
    """

    def __init__(self, *, alpha: float = 0.3, z: float = 4.0,
                 warmup: int = 10, min_std: float = 1e-3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
        self.alpha = float(alpha)
        self.z = float(z)
        self.warmup = int(warmup)
        self.min_std = float(min_std)
        self.mean = 0.0
        self.var = 0.0
        self.samples = 0
        self.last_score = 0.0

    def observe(self, value: float) -> bool:
        """Update with one sample; True when it is anomalous."""
        v = float(value)
        self.samples += 1
        if self.samples == 1:
            self.mean = v
            self.last_score = 0.0
            return False
        diff = v - self.mean
        std = max(self.min_std, math.sqrt(self.var))
        self.last_score = abs(diff) / std
        anomalous = (self.samples > self.warmup
                     and self.last_score > self.z)
        if not anomalous:
            # anomalies are excluded from the baseline, else one spike
            # teaches the detector that spikes are normal
            self.mean += self.alpha * diff
            self.var = (1.0 - self.alpha) * (self.var
                                             + self.alpha * diff * diff)
        return anomalous


@dataclass
class Alert:
    """One alert instance through its lifecycle."""

    key: str
    subject: str
    severity: str
    opened_at: float
    state: str = "pending"       # pending | firing | resolved
    fired_at: Optional[float] = None
    resolved_at: Optional[float] = None
    #: last time the condition was observed active
    last_active: float = 0.0
    fault_id: str = ""
    value: float = 0.0
    threshold: float = 0.0
    pages: int = 0
    escalated: bool = False
    notes: List[str] = field(default_factory=list)

    @property
    def firing(self) -> bool:
        return self.state == "firing"


class AlertManager:
    """Evaluates rules on every hub rollup and owns alert lifecycles."""

    def __init__(self, sim, hub, *, channel=None, objective: float = 0.999,
                 rules: Tuple[BurnRateRule, ...] = DEFAULT_BURN_RULES,
                 recipient: str = "oncall-sre",
                 hold: float = 0.0, resolve_hold: float = 300.0,
                 escalate_after: float = 1800.0,
                 fault_lookback: float = 3600.0):
        self.sim = sim
        self.hub = hub
        self.channel = channel
        self.objective = float(objective)
        self.rules = tuple(rules)
        self.recipient = recipient
        #: seconds a condition must stay active before paging (0 = the
        #: multi-window rule itself is the flap guard)
        self.hold = float(hold)
        #: seconds a firing condition must stay quiet before resolving
        self.resolve_hold = float(resolve_hold)
        #: firing this long at sub-critical severity escalates the page
        self.escalate_after = float(escalate_after)
        self.fault_lookback = float(fault_lookback)
        self.ledger = None
        #: (series_key, detector) anomaly watches
        self._detectors: Dict[str, EwmaAnomalyDetector] = {}
        self._det_seen: Dict[str, float] = {}
        self._active: Dict[str, Alert] = {}
        self.history: List[Alert] = []
        self.pages_sent = 0
        self.flaps_suppressed = 0
        hub.on_rollup(self.evaluate)

    # -- wiring --------------------------------------------------------------

    def attach_ledger(self, ledger) -> None:
        """Publish alert transitions as ``alert`` conditions, so the
        control plane and console see pages in the same stream as
        flags and host state."""
        self.ledger = ledger

    def add_detector(self, series_key: str,
                     detector: Optional[EwmaAnomalyDetector] = None
                     ) -> EwmaAnomalyDetector:
        det = detector or EwmaAnomalyDetector()
        self._detectors[series_key] = det
        return det

    # -- evaluation (rollup listener) ----------------------------------------

    def evaluate(self, now: float, hub) -> None:
        for svc in hub.service_names():
            att_key = f"svc/{svc}/attempted"
            bad_key = f"svc/{svc}/bad"
            for rule in self.rules:
                br_long = burn_rate(
                    hub.window_delta(att_key, rule.long_window, now),
                    hub.window_delta(bad_key, rule.long_window, now),
                    self.objective)
                br_short = burn_rate(
                    hub.window_delta(att_key, rule.short_window, now),
                    hub.window_delta(bad_key, rule.short_window, now),
                    self.objective)
                active = (br_long > rule.threshold
                          and br_short > rule.threshold)
                self._transition(
                    f"burn:{rule.name}:{svc}", active, now,
                    subject=f"slo-burn {svc} {rule.name}",
                    severity=rule.severity,
                    value=min(br_long, br_short),
                    threshold=rule.threshold)

        for key, det in self._detectors.items():
            s = hub._series.get(key)
            if s is None or not len(s):
                continue
            t_last = s.last_time()
            if t_last <= self._det_seen.get(key, float("-inf")):
                continue
            self._det_seen[key] = t_last
            anomalous = det.observe(s.last())
            self._transition(
                f"anomaly:{key}", anomalous, now,
                subject=f"anomaly {key}", severity="warning",
                value=det.last_score, threshold=det.z)

        self._escalate(now)

    # -- state machine -------------------------------------------------------

    def _transition(self, key: str, active: bool, now: float, *,
                    subject: str, severity: str, value: float,
                    threshold: float) -> None:
        alert = self._active.get(key)
        if active:
            if alert is None:
                alert = Alert(key=key, subject=subject, severity=severity,
                              opened_at=now, last_active=now,
                              value=value, threshold=threshold)
                self._active[key] = alert
                self.history.append(alert)
            alert.last_active = now
            alert.value = value
            if alert.state == "pending" and now - alert.opened_at >= self.hold:
                self._fire(alert, now)
        elif alert is not None:
            if alert.state == "pending":
                # never fired: a flap the hold time swallowed
                self.flaps_suppressed += 1
                del self._active[key]
                self.history.remove(alert)
            elif alert.state == "firing" \
                    and now - alert.last_active >= self.resolve_hold:
                self._resolve(alert, now)

    def _fire(self, alert: Alert, now: float) -> None:
        alert.state = "firing"
        alert.fired_at = now
        alert.fault_id = self._attribute(now)
        self._page(alert, now)
        if self.ledger is not None:
            self.ledger.append("alert", alert.subject, agent="alertmgr",
                               status="firing", time=now,
                               detail=alert.fault_id)

    def _resolve(self, alert: Alert, now: float) -> None:
        alert.state = "resolved"
        alert.resolved_at = now
        del self._active[alert.key]
        if self.ledger is not None:
            self.ledger.append("alert", alert.subject, agent="alertmgr",
                               status="resolved", time=now,
                               detail=alert.fault_id)

    def _escalate(self, now: float) -> None:
        for alert in list(self._active.values()):
            if (alert.state == "firing" and not alert.escalated
                    and alert.severity != "critical"
                    and alert.fired_at is not None
                    and now - alert.fired_at >= self.escalate_after):
                alert.severity = "critical"
                alert.escalated = True
                alert.notes.append(f"{now:.0f} escalated to critical")
                self._page(alert, now)

    def _page(self, alert: Alert, now: float) -> None:
        alert.pages += 1
        self.pages_sent += 1
        if self.channel is not None:
            fid = f" [{alert.fault_id}]" if alert.fault_id else ""
            self.channel.sms(
                self.recipient, f"ALERT {alert.subject}{fid}",
                body=(f"value={alert.value:.2f} "
                      f"threshold={alert.threshold:.2f}"),
                severity=alert.severity, sender="alertmgr")

    def _attribute(self, now: float) -> str:
        """Best-effort fault-id attribution: the newest injected fault
        within the lookback window (service-level burn cannot name its
        host; the injector's correlation can)."""
        tracer = getattr(self.sim, "tracer", None)
        if tracer is None or not tracer.enabled:
            return ""
        for inst in reversed(tracer.instants):
            if inst["name"] != "fault.inject":
                continue
            if inst["ts"] < now - self.fault_lookback:
                break
            fid = inst["args"].get("fault_id", "")
            if fid:
                return fid
        return ""

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Alert lifecycles, detector baselines and counters.  Active
        alerts are saved as indices into the history list so
        ``_transition``'s ``history.remove`` keeps operating on the
        same objects after a restore."""
        index = {id(a): i for i, a in enumerate(self.history)}
        return {
            "detectors": {key: [det.mean, det.var, det.samples,
                                det.last_score]
                          for key, det in sorted(self._detectors.items())},
            "det_seen": dict(sorted(self._det_seen.items())),
            "history": [[a.key, a.subject, a.severity, a.opened_at,
                         a.state, a.fired_at, a.resolved_at,
                         a.last_active, a.fault_id, a.value, a.threshold,
                         a.pages, a.escalated, list(a.notes)]
                        for a in self.history],
            "active": {key: index[id(a)]
                       for key, a in sorted(self._active.items())},
            "pages_sent": self.pages_sent,
            "flaps_suppressed": self.flaps_suppressed,
        }

    def restore_state(self, state: dict) -> None:
        saved = state["detectors"]
        if set(saved) != set(self._detectors):
            raise KeyError(
                f"alert snapshot detectors {sorted(saved)} != rebuilt "
                f"{sorted(self._detectors)}")
        for key, det in self._detectors.items():
            mean, var, samples, last_score = saved[key]
            det.mean = float(mean)
            det.var = float(var)
            det.samples = int(samples)
            det.last_score = float(last_score)
        self._det_seen = {k: float(v)
                          for k, v in state["det_seen"].items()}
        self.history = []
        for (key, subject, severity, opened_at, st, fired_at,
             resolved_at, last_active, fault_id, value, threshold, pages,
             escalated, notes) in state["history"]:
            self.history.append(Alert(
                key=key, subject=subject, severity=severity,
                opened_at=float(opened_at), state=st, fired_at=fired_at,
                resolved_at=resolved_at, last_active=float(last_active),
                fault_id=fault_id, value=float(value),
                threshold=float(threshold), pages=int(pages),
                escalated=bool(escalated), notes=list(notes)))
        self._active = {key: self.history[int(i)]
                        for key, i in state["active"].items()}
        self.pages_sent = int(state["pages_sent"])
        self.flaps_suppressed = int(state["flaps_suppressed"])

    # -- queries -------------------------------------------------------------

    def firing(self) -> List[Alert]:
        out = [a for a in self._active.values() if a.state == "firing"]
        out.sort(key=lambda a: (a.fired_at or 0.0, a.key))
        return out

    def first_fired_at(self, *, fault_id: str = "") -> Optional[float]:
        """Earliest page time (optionally only alerts attributed to one
        fault id) -- the detection-latency probe the experiments use."""
        times = [a.fired_at for a in self.history
                 if a.fired_at is not None
                 and (not fault_id or a.fault_id == fault_id)]
        return min(times) if times else None

    def alerts_for(self, fault_id: str) -> List[Alert]:
        return [a for a in self.history if a.fault_id == fault_id]
