"""repro.observe: telemetry, alerting, incident reports, profiling.

The observability subsystem built over the substrate's existing
surfaces: :class:`TelemetryHub` turns the metrics registry, condition
ledger and traffic SLIs into windowed ring-buffer series;
:class:`AlertManager` runs multi-window burn-rate and anomaly rules
over them and pages through the notification channel;
:func:`build_reports` joins every ledger into per-fault causal
incident reports; :class:`KernelProfiler` attributes the kernel's own
wall-clock by subsystem.
"""

from repro.observe.alerts import (Alert, AlertManager, BurnRateRule,
                                  DEFAULT_BURN_RULES, EwmaAnomalyDetector)
from repro.observe.incidents import (IncidentReport, build_reports,
                                     reconcile, render_markdown,
                                     render_markdown_all, reports_to_json,
                                     write_json)
from repro.observe.pipeline import DEFAULT_COUNTERS, TelemetryHub
from repro.observe.profile import (KernelProfiler, format_profile,
                                   install_profiler)

__all__ = [
    "TelemetryHub", "DEFAULT_COUNTERS",
    "Alert", "AlertManager", "BurnRateRule", "DEFAULT_BURN_RULES",
    "EwmaAnomalyDetector",
    "IncidentReport", "build_reports", "reconcile", "render_markdown",
    "render_markdown_all", "reports_to_json", "write_json",
    "KernelProfiler", "format_profile", "install_profiler",
]
