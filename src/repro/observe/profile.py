"""Self-observability: who is the kernel spending wall-clock on?

The simulator's hot loop hands every fired event to
:meth:`KernelProfiler.record`, which buckets real (``perf_counter``)
time and event counts by the *owner* of the callback -- the
:class:`~repro.sim.kernel.SimProcess` subclass or component class a
bound method belongs to, else the defining module.  That attribution
is what the ROADMAP's sharded-kernel work will be measured against:
before sharding anything, know which subsystem the events belong to.

Cost model: ``sim.profiler`` is ``None`` by default and the kernel
dispatches events directly (one hoisted ``is None`` check per event);
with the profiler attached each event pays two ``perf_counter`` calls
and one dict upsert.  ``bench_observe_overhead.py`` keeps both numbers
honest.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Tuple

__all__ = ["KernelProfiler", "install_profiler", "format_profile"]


def _owner_key(fn) -> str:
    """Attribution bucket for a callback: the class of the object a
    bound method lives on, else the defining module's leaf name."""
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        return type(owner).__name__
    mod = getattr(fn, "__module__", "") or "?"
    return mod.rpartition(".")[2]


class KernelProfiler:
    """Wall-clock and event-count attribution per callback owner."""

    __slots__ = ("wall", "events", "started_at")

    def __init__(self):
        self.wall: Dict[str, float] = {}
        self.events: Dict[str, int] = {}
        self.started_at = perf_counter()

    def record(self, fn, args: tuple) -> None:
        """Run one event callback under the stopwatch."""
        # no fn->key memo: bound-method objects are ephemeral, so an
        # id()-keyed cache could alias a recycled id to the wrong
        # owner.  _owner_key is two getattrs and a split -- cheap
        # enough to pay per event on the profiled (opt-in) path.
        key = _owner_key(fn)
        t0 = perf_counter()
        try:
            fn(*args)
        finally:
            dt = perf_counter() - t0
            if key in self.wall:
                self.wall[key] += dt
                self.events[key] += 1
            else:
                self.wall[key] = dt
                self.events[key] = 1

    # -- reporting -----------------------------------------------------------

    @property
    def total_events(self) -> int:
        return sum(self.events.values())

    @property
    def total_wall(self) -> float:
        return sum(self.wall.values())

    def report(self) -> List[Tuple[str, float, int, float]]:
        """``(owner, wall_seconds, events, events_per_sec)`` rows,
        costliest owner first."""
        rows = []
        for key, wall in self.wall.items():
            n = self.events[key]
            rows.append((key, wall, n, (n / wall) if wall > 0 else 0.0))
        rows.sort(key=lambda r: -r[1])
        return rows

    def snapshot(self) -> Dict[str, dict]:
        return {key: {"wall_s": wall, "events": self.events[key]}
                for key, wall in sorted(self.wall.items())}

    def reset(self) -> None:
        self.wall.clear()
        self.events.clear()
        self.started_at = perf_counter()


def install_profiler(sim) -> KernelProfiler:
    """Attach a fresh profiler to a simulator (next ``run()`` picks it
    up) and return it."""
    prof = KernelProfiler()
    sim.profiler = prof
    return prof


def format_profile(profiler: KernelProfiler, *, top: int = 12) -> str:
    """The attribution table in the repo's flat-ASCII report idiom."""
    rows = profiler.report()
    total = profiler.total_wall
    lines = [f"KERNEL PROFILE  ({profiler.total_events} events, "
             f"{total * 1e3:.1f} ms attributed)"]
    if not rows:
        lines.append("  (no events recorded)")
    for key, wall, n, eps in rows[:top]:
        share = (wall / total * 100.0) if total > 0 else 0.0
        lines.append(f"  {key:<28s} {wall * 1e3:9.2f} ms  {share:5.1f}%  "
                     f"{n:>9d} ev  {eps:>12.0f} ev/s")
    if len(rows) > top:
        rest = sum(r[1] for r in rows[top:])
        lines.append(f"  ... {len(rows) - top} more owner(s), "
                     f"{rest * 1e3:.2f} ms")
    return "\n".join(lines)
