"""Causal incident reports: one post-mortem per fault id.

Everything the substrate already records about a fault lives in
different ledgers: the injector stamps ``fault.inject``, agents stamp
detection/diagnosis/heal spans, the condition ledger streams state
deltas, the admin pair logs sweep decisions, the relocator keeps phase
records, the downtime ledger prices the outage and ``traffic/slo.py``
prices the users.  :func:`build_reports` joins all of them on the
fault id (and its correlated target) into :class:`IncidentReport`
objects -- a detection -> diagnose -> heal/relocate -> cutover
timeline with user-minutes attribution and the tier that resolved it.

Accounting discipline: every downtime-ledger incident is attributed to
exactly one report (unattributable ones land in a catch-all), and each
report's downtime is the sum of its incidents' horizon-clamped
durations -- so the report total reconciles with
``DowntimeLedger.total_hours`` by construction, and the user-minutes
totals reconcile with a single :func:`~repro.traffic.slo.join_demand`
pass over the same windows.  :func:`reconcile` checks both.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.sim.calendar import MINUTE, format_time
from repro.trace.export import incident_traces
from repro.traffic.slo import IncidentWindow, join_demand

__all__ = ["IncidentReport", "build_reports", "reconcile",
           "render_markdown", "render_markdown_all", "reports_to_json",
           "write_json"]


@dataclass
class IncidentReport:
    """One fault's full story, joined across the substrate's ledgers."""

    fault_id: str
    kind: str = ""
    target: str = ""
    host: str = ""
    category: str = ""
    injected_at: Optional[float] = None
    first_alert_at: Optional[float] = None
    detected_at: Optional[float] = None
    diagnosed_at: Optional[float] = None
    repaired_at: Optional[float] = None
    restored_at: Optional[float] = None
    #: which tier ended it: agent-heal | relocation | human | unresolved
    resolved_by: str = "unresolved"
    downtime_s: float = 0.0
    user_minutes: float = 0.0
    impact: Dict[str, float] = field(default_factory=dict)
    alerts: List[str] = field(default_factory=list)
    conditions: List[str] = field(default_factory=list)
    decisions: List[str] = field(default_factory=list)
    relocations: List[str] = field(default_factory=list)
    #: (time, what) entries, time-ordered
    timeline: List[Tuple[float, str]] = field(default_factory=list)

    @property
    def detection_latency(self) -> Optional[float]:
        if self.injected_at is None:
            return None
        marks = [t for t in (self.first_alert_at, self.detected_at)
                 if t is not None]
        return min(marks) - self.injected_at if marks else None

    def to_dict(self) -> dict:
        return {
            "fault_id": self.fault_id, "kind": self.kind,
            "target": self.target, "host": self.host,
            "category": self.category,
            "injected_at": self.injected_at,
            "first_alert_at": self.first_alert_at,
            "detected_at": self.detected_at,
            "diagnosed_at": self.diagnosed_at,
            "repaired_at": self.repaired_at,
            "restored_at": self.restored_at,
            "detection_latency_s": self.detection_latency,
            "resolved_by": self.resolved_by,
            "downtime_s": self.downtime_s,
            "user_minutes": self.user_minutes,
            "impact": dict(sorted(self.impact.items())),
            "alerts": list(self.alerts),
            "conditions": list(self.conditions),
            "decisions": list(self.decisions),
            "relocations": list(self.relocations),
            "timeline": [[t, what] for t, what in self.timeline],
        }


def _host_of(target: str) -> str:
    return target.partition("/")[0].partition(":")[0]


def build_reports(tracer, *, downtime=None, horizon: Optional[float] = None,
                  hub=None, admin=None, relocator=None, alerts=None,
                  curve=None,
                  impact_of: Optional[Mapping[str, Mapping[str, float]]]
                  = None,
                  qos_step: float = MINUTE) -> List[IncidentReport]:
    """Join every ledger onto the tracer's correlated incidents.

    ``impact_of`` maps a downtime category *name* to per-class demand
    impact fractions (defaults to the user-QoS experiment's
    calibration); ``horizon`` clamps open incidents, defaulting to the
    tracer's current clock.
    """
    horizon = tracer.now if horizon is None else float(horizon)
    traces = incident_traces(tracer)
    reports: Dict[str, IncidentReport] = {}

    for fid, inc in sorted(traces.items()):
        rep = IncidentReport(
            fault_id=fid, kind=inc.kind, target=inc.target,
            host=_host_of(inc.target),
            injected_at=inc.injected_at, detected_at=inc.detected_at,
            diagnosed_at=inc.diagnosed_at, repaired_at=inc.repaired_at,
            restored_at=inc.restored_at)
        reports[fid] = rep

    # -- downtime attribution: every ledger incident lands somewhere ---------
    windows: Dict[str, List[IncidentWindow]] = {}
    if downtime is not None:
        if impact_of is None:
            from repro.experiments.userqos import CATEGORY_IMPACT
            impact_of = {cat.name: imp
                         for cat, imp in CATEGORY_IMPACT.items()}
        catchall: Optional[IncidentReport] = None
        for inc in downtime.incidents:
            fid = tracer.fault_id_for(inc.target)
            rep = reports.get(fid)
            if rep is None:
                if catchall is None:
                    catchall = reports[""] = IncidentReport(
                        fault_id="", target="(unattributed)",
                        category="mixed")
                rep = catchall
            dur = inc.duration_until(horizon)
            rep.downtime_s += dur
            if not rep.category:
                rep.category = inc.category.name
            if inc.start < horizon and dur > 0:
                imp = dict(impact_of.get(inc.category.name, {}))
                if imp:
                    windows.setdefault(rep.fault_id, []).append(
                        IncidentWindow(start=inc.start, duration=dur,
                                       impact=imp))
                    for name, frac in imp.items():
                        rep.impact[name] = max(rep.impact.get(name, 0.0),
                                               frac)

    # -- user-minutes: price each report's windows on the demand curve -------
    if curve is not None:
        for fid, wins in windows.items():
            outcome = join_demand(curve, wins, horizon=horizon,
                                  step=qos_step)
            reports[fid].user_minutes = outcome.user_minutes_lost

    # -- the other ledgers ---------------------------------------------------
    for rep in reports.values():
        if alerts is not None and rep.fault_id:
            mine = alerts.alerts_for(rep.fault_id)
            rep.alerts = [a.subject for a in mine]
            fired = [a.fired_at for a in mine if a.fired_at is not None]
            if fired:
                rep.first_alert_at = min(fired)
        if hub is not None and rep.host:
            rep.conditions = [
                f"{c.time:.0f} {c.kind} {c.host} {c.status} "
                f"{c.detail}".rstrip()
                for c in hub.condition_log if c.host == rep.host]
        if admin is not None and rep.host:
            rep.decisions = [f"{t:.0f} {action} {host} {reason}".rstrip()
                             for t, action, host, reason
                             in admin.decision_log if host == rep.host]
        if relocator is not None:
            recs = [r for r in relocator.records
                    if (rep.fault_id and r.fault_id == rep.fault_id)
                    or (rep.host and r.source_host == rep.host)]
            rep.relocations = [
                f"{r.started:.0f} {r.subject} -> {r.target_host or '?'} "
                f"phase={r.phase} "
                f"{'ok' if r.success else 'rolled-back'}"
                for r in recs]
            if recs and any(r.success for r in recs):
                rep.resolved_by = "relocation"
        _finish_report(rep)

    out = list(reports.values())
    out.sort(key=lambda r: (r.injected_at is None, r.injected_at or 0.0,
                            r.fault_id))
    return out


def _finish_report(rep: IncidentReport) -> None:
    """Resolution attribution + the merged timeline."""
    if rep.resolved_by == "unresolved":
        if rep.repaired_at is not None:
            rep.resolved_by = "agent-heal"
        elif any("escalate" in d for d in rep.decisions):
            rep.resolved_by = "human"

    tl: List[Tuple[float, str]] = []
    if rep.injected_at is not None:
        tl.append((rep.injected_at, f"fault injected ({rep.kind})"))
    if rep.first_alert_at is not None:
        tl.append((rep.first_alert_at,
                   "burn-rate alert paged "
                   + (", ".join(rep.alerts) if rep.alerts else "")))
    if rep.detected_at is not None:
        tl.append((rep.detected_at, "detected by agents"))
    if rep.diagnosed_at is not None:
        tl.append((rep.diagnosed_at, "diagnosed"))
    if rep.repaired_at is not None:
        tl.append((rep.repaired_at, "healed"))
    for line in rep.relocations:
        t = float(line.split(" ", 1)[0])
        tl.append((t, f"relocation: {line.split(' ', 1)[1]}"))
    for line in rep.decisions:
        parts = line.split(" ", 2)
        tl.append((float(parts[0]), f"admin: {parts[1]} "
                   + (parts[2] if len(parts) > 2 else "")))
    if rep.restored_at is not None:
        tl.append((rep.restored_at, "service restored (cutover complete)"))
    tl.sort(key=lambda e: e[0])
    rep.timeline = tl


# -- reconciliation -----------------------------------------------------------


def reconcile(reports: List[IncidentReport], *, downtime, curve=None,
              horizon: float, qos_step: float = MINUTE,
              impact_of: Optional[Mapping[str, Mapping[str, float]]] = None
              ) -> dict:
    """Check the reports against the books they were built from.

    Downtime: the per-report sum must equal the downtime ledger's
    horizon-clamped total.  User-minutes: the per-report sum must equal
    one :func:`join_demand` pass over the union of windows (exact when
    incident windows do not overlap; overlapping windows saturate in
    the joined pass, which the ``user_minutes_overlap`` flag records).
    """
    reports_h = sum(r.downtime_s for r in reports) / 3600.0
    ledger_h = downtime.total_hours(as_of=horizon)

    out = {
        "horizon_s": horizon,
        "reports": len(reports),
        "downtime_reports_h": reports_h,
        "downtime_ledger_h": ledger_h,
        "downtime_diff_h": reports_h - ledger_h,
        "downtime_ok": abs(reports_h - ledger_h) < 1e-6,
    }
    if curve is not None:
        if impact_of is None:
            from repro.experiments.userqos import CATEGORY_IMPACT
            impact_of = {cat.name: imp
                         for cat, imp in CATEGORY_IMPACT.items()}
        wins = []
        for inc in downtime.incidents:
            dur = inc.duration_until(horizon)
            imp = dict(impact_of.get(inc.category.name, {}))
            if inc.start < horizon and dur > 0 and imp:
                wins.append(IncidentWindow(start=inc.start, duration=dur,
                                           impact=imp))
        joined = join_demand(curve, wins, horizon=horizon, step=qos_step)
        um_reports = sum(r.user_minutes for r in reports)
        um_joined = joined.user_minutes_lost
        out.update({
            "user_minutes_reports": um_reports,
            "user_minutes_joined": um_joined,
            "user_minutes_diff": um_reports - um_joined,
            # per-report pricing double-counts instants where two
            # reports' windows overlap; equal means none overlapped
            "user_minutes_overlap": um_reports > um_joined + 1e-6,
            "user_minutes_ok": abs(um_reports - um_joined)
                               <= max(1e-6, 1e-9 * max(um_reports,
                                                       um_joined)),
        })
    return out


# -- rendering -----------------------------------------------------------------


def render_markdown(rep: IncidentReport) -> str:
    """One report as a markdown post-mortem section."""
    title = rep.fault_id or "unattributed"
    lines = [f"## Incident {title}: {rep.kind or rep.category or '?'} "
             f"on `{rep.target or '?'}`", ""]
    lines.append(f"- **category**: {rep.category or '?'}")
    lines.append(f"- **resolved by**: {rep.resolved_by}")
    lines.append(f"- **downtime**: {rep.downtime_s:.0f} s "
                 f"({rep.downtime_s / 3600.0:.2f} h)")
    lines.append(f"- **user-minutes lost**: {rep.user_minutes:,.0f}")
    dl = rep.detection_latency
    if dl is not None:
        lines.append(f"- **detection latency**: {dl:.0f} s")
    if rep.impact:
        imp = ", ".join(f"{k}={v:.3f}"
                        for k, v in sorted(rep.impact.items()))
        lines.append(f"- **demand impact**: {imp}")
    if rep.alerts:
        lines.append(f"- **alerts**: {', '.join(rep.alerts)}")
    lines.append("")
    if rep.timeline:
        lines.append("| time | event |")
        lines.append("| --- | --- |")
        for t, what in rep.timeline:
            lines.append(f"| {format_time(t)} | {what} |")
        lines.append("")
    if rep.conditions:
        lines.append(f"<details><summary>{len(rep.conditions)} condition "
                     f"delta(s)</summary>")
        lines.append("")
        for c in rep.conditions:
            lines.append(f"- `{c}`")
        lines.append("")
        lines.append("</details>")
        lines.append("")
    return "\n".join(lines)


def render_markdown_all(reports: List[IncidentReport],
                        recon: Optional[Mapping] = None) -> str:
    """All reports plus the reconciliation footer as one document."""
    parts = ["# Incident reports", ""]
    parts.append(f"{len(reports)} incident(s).")
    parts.append("")
    for rep in reports:
        parts.append(render_markdown(rep))
    if recon is not None:
        parts.append("## Reconciliation")
        parts.append("")
        parts.append(f"- downtime: reports "
                     f"{recon['downtime_reports_h']:.4f} h vs ledger "
                     f"{recon['downtime_ledger_h']:.4f} h "
                     f"({'OK' if recon['downtime_ok'] else 'MISMATCH'})")
        if "user_minutes_joined" in recon:
            parts.append(
                f"- user-minutes: reports "
                f"{recon['user_minutes_reports']:,.0f} vs joined "
                f"{recon['user_minutes_joined']:,.0f} "
                f"({'OK' if recon['user_minutes_ok'] else 'MISMATCH'})")
        parts.append("")
    return "\n".join(parts)


def reports_to_json(reports: List[IncidentReport],
                    recon: Optional[Mapping] = None) -> dict:
    doc: dict = {"incidents": [r.to_dict() for r in reports]}
    if recon is not None:
        doc["reconciliation"] = dict(recon)
    return doc


def write_json(reports: List[IncidentReport], path: str,
               recon: Optional[Mapping] = None) -> None:
    with open(path, "w") as fh:
        json.dump(reports_to_json(reports, recon), fh, indent=2,
                  sort_keys=True)
