"""The telemetry pipeline: one hub, many sources, windowed series.

:class:`TelemetryHub` is the push/pull seam between the substrate's
existing observability surfaces and the alerting/incident tiers built
on top:

- **push**: a :class:`~repro.controlplane.ledger.ConditionLedger`
  attached via :meth:`attach_ledger` streams conditions in as they are
  appended -- each one costs O(1) (a tally bump and at most one ring
  append), never a scan.
- **pull**: a periodic rollup tick (default 60 s simulated) snapshots
  watched :class:`~repro.trace.metrics.MetricsRegistry` counters into
  cumulative + rate series, and cumulative attempted/bad per traffic
  class from the engine's :class:`~repro.traffic.slo.Sli` objects --
  the exact inputs multi-window burn-rate math needs.

Everything lands in :class:`~repro.metrics.timeseries.TimeSeries` ring
buffers (``maxlen`` bounded), so a week-long run holds hours of
history per series, not the whole run.  Rollup listeners registered
with :meth:`on_rollup` (the alert manager) fire after each tick.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.metrics.timeseries import TimeSeries

__all__ = ["TelemetryHub", "DEFAULT_COUNTERS"]

#: registry counters the hub tracks by default -- the site-health set
#: the operator console already surfaces, plus the traffic ledger the
#: burn-rate rules ride on
DEFAULT_COUNTERS = (
    "sim.events", "faults.injected", "agent.faults_found",
    "agent.heals_succeeded", "agent.escalations", "agent.demand_wakes",
    "traffic.attempted", "traffic.served", "traffic.failed",
    "traffic.shed",
)


class TelemetryHub:
    """Windowed per-host / per-service telemetry over ring buffers."""

    def __init__(self, sim, *, interval: float = 60.0, maxlen: int = 720,
                 registry=None,
                 counters: Tuple[str, ...] = DEFAULT_COUNTERS):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self.sim = sim
        self.interval = float(interval)
        #: ring cap per series: 720 x 60 s = 12 h of history
        self.maxlen = int(maxlen)
        #: metrics source; defaults to the installed tracer's registry
        self.registry = registry
        self.watched: List[str] = list(counters)
        self._series: Dict[str, TimeSeries] = {}
        self._slis: Dict[str, object] = {}
        self._ledgers: List[object] = []
        self._rollup_fns: List[Callable[[float, "TelemetryHub"], None]] = []
        self._prev_counters: Dict[str, float] = {}
        #: per-kind condition tallies (push path)
        self.conditions_by_kind: Dict[str, int] = {}
        #: retained condition deltas (the ledger itself trims eagerly;
        #: incident reports need the recent history, ring-bounded here)
        self.condition_log: deque = deque(maxlen=16 * self.maxlen)
        #: deltas the ring cap pushed out -- reports reaching further
        #: back than the retained history should know they are clipped
        self.condition_log_dropped = 0
        #: hosts currently down according to ledger host conditions
        self.hosts_down: set = set()
        self.ticks = 0
        self.events_in = 0
        self._event = None
        self._running = False

    # -- sources -------------------------------------------------------------

    def attach_ledger(self, ledger) -> None:
        """Stream condition deltas in as they are appended.  Idempotent."""
        if any(led is ledger for led in self._ledgers):
            return
        self._ledgers.append(ledger)
        ledger.on_append(self._on_condition)

    def attach_slis(self, slis: Mapping[str, object]) -> None:
        """Track a traffic engine's per-class SLIs (``engine.slis``)."""
        self._slis.update(slis)

    def watch_counter(self, name: str) -> None:
        if name not in self.watched:
            self.watched.append(name)

    def on_rollup(self, fn: Callable[[float, "TelemetryHub"], None]) -> None:
        """Run ``fn(now, hub)`` after every rollup tick."""
        self._rollup_fns.append(fn)

    # -- push path -----------------------------------------------------------

    def _on_condition(self, cond) -> None:
        self.events_in += 1
        self.conditions_by_kind[cond.kind] = (
            self.conditions_by_kind.get(cond.kind, 0) + 1)
        if len(self.condition_log) == self.condition_log.maxlen:
            self.condition_log_dropped += 1
        self.condition_log.append(cond)
        now = self.sim.now
        if cond.kind == "host":
            if cond.status == "down":
                self.hosts_down.add(cond.host)
            elif cond.status == "up":
                self.hosts_down.discard(cond.host)
            self.series(f"host/{cond.host}/up").append(
                now, 0.0 if cond.status == "down" else 1.0)
        elif cond.kind == "flag" and cond.status == "fault":
            s = self.series(f"host/{cond.host}/faults")
            s.append(now, s.last() + 1.0)

    def record(self, key: str, value: float) -> None:
        """Push one sample at the current simulated time (ad-hoc
        producers: experiments, detectors under test)."""
        self.series(key).append(self.sim.now, value)

    # -- rollup tick ---------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._event = self.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _registry(self):
        if self.registry is not None:
            return self.registry
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None and tracer.enabled:
            return tracer.metrics
        return None

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        self.ticks += 1

        reg = self._registry()
        if reg is not None:
            for name in self.watched:
                cur = reg.counter(name).value
                prev = self._prev_counters.get(name, 0.0)
                self._prev_counters[name] = cur
                self.series(f"metric/{name}").append(now, cur)
                self.series(f"metric/{name}/rate").append(
                    now, max(0.0, cur - prev) / self.interval)

        for name, sli in sorted(self._slis.items()):
            attempted = sli.attempted
            bad = attempted - sli.served
            self.series(f"svc/{name}/attempted").append(now, attempted)
            self.series(f"svc/{name}/bad").append(now, bad)

        for fn in list(self._rollup_fns):
            fn(now, self)

        self._event = self.sim.schedule(self.interval, self._tick)

    # -- reading -------------------------------------------------------------

    def series(self, key: str) -> TimeSeries:
        """The named ring series, created on first use."""
        s = self._series.get(key)
        if s is None:
            s = self._series[key] = TimeSeries(key, maxlen=self.maxlen)
        return s

    def names(self) -> List[str]:
        return sorted(self._series)

    def window_delta(self, key: str, window: float,
                     now: Optional[float] = None) -> float:
        """Increase of a cumulative series over the trailing window
        (clamped at 0; counters only move forward)."""
        s = self._series.get(key)
        if s is None or not len(s):
            return 0.0
        t = self.sim.now if now is None else now
        return max(0.0, s.last() - s.value_at(t - window))

    def service_names(self) -> List[str]:
        return sorted(self._slis)

    def snapshot(self) -> Dict[str, dict]:
        """Summary dict for reports: per-series length and newest value."""
        return {key: {"len": len(s), "last": s.last(),
                      "dropped": s.dropped}
                for key, s in sorted(self._series.items())}

    # -- persistence -----------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Ring series, tallies and the rollup tick.  Sources (ledger,
        SLIs, rollup listeners) are structural wiring."""
        return {
            "series": {key: s.snapshot_state()
                       for key, s in sorted(self._series.items())},
            "prev_counters": dict(sorted(self._prev_counters.items())),
            "conditions_by_kind": dict(
                sorted(self.conditions_by_kind.items())),
            "condition_log": [[c.version, c.kind, c.host, c.agent,
                               c.status, c.time, c.detail]
                              for c in self.condition_log],
            "condition_log_dropped": self.condition_log_dropped,
            "hosts_down": sorted(self.hosts_down),
            "ticks": self.ticks,
            "events_in": self.events_in,
            "running": self._running,
            "event": ([self._event.time, self._event.priority,
                       self._event.seq]
                      if self._event is not None and self._event.alive
                      else None),
        }

    def restore_state(self, state: dict) -> None:
        from repro.controlplane.ledger import Condition
        self._series = {}
        for key, s in state["series"].items():
            ts = self._series[key] = TimeSeries(key, maxlen=self.maxlen)
            ts.restore_state(s)
        self._prev_counters = {k: float(v)
                               for k, v in state["prev_counters"].items()}
        self.conditions_by_kind = {k: int(v) for k, v
                                   in state["conditions_by_kind"].items()}
        self.condition_log = deque(
            (Condition(int(v), kind, host, agent, status, float(t), detail)
             for v, kind, host, agent, status, t, detail
             in state["condition_log"]),
            maxlen=16 * self.maxlen)
        self.condition_log_dropped = int(state["condition_log_dropped"])
        self.hosts_down = set(state["hosts_down"])
        self.ticks = int(state["ticks"])
        self.events_in = int(state["events_in"])
        self._running = bool(state["running"])
        if self._event is not None:
            self._event.cancel()
            self._event = None
        token = state["event"]
        if token is not None:
            t, prio, seq = token
            self._event = self.sim.schedule_exact(t, prio, seq, self._tick)

    def claimed_seqs(self) -> List[int]:
        if self._event is not None and self._event.alive:
            return [self._event.seq]
        return []
