"""repro -- reproduction of Corsava & Getov, *Improving Quality of
Service in Application Clusters* (IPDPS 2003).

The paper's system -- cron-woken "intelliagents" with flat-ASCII
ontologies, HA administration servers, a private agent network and
DGSPL-driven batch-job resubmission -- implemented against a
deterministic discrete-event simulation of the pilot site (a financial
datacentre of Sun/HP/IBM/Linux servers running Oracle/Sybase-like
databases, web servers, financial front-ends and an LSF-like batch
scheduler).

Quick start::

    from repro.experiments.site import build_site, SiteConfig

    site = build_site(SiteConfig.test_scale(seed=1))
    site.databases[0].crash("demo")
    site.run(900)                       # 15 simulated minutes
    assert site.databases[0].is_healthy()   # an agent restarted it

Packages:

- :mod:`repro.sim` -- discrete-event kernel, RNG streams, calendar.
- :mod:`repro.cluster` -- simulated Unix hosts and the datacentre.
- :mod:`repro.net` -- LANs, TCP, agent-channel routing, DNS, NFS.
- :mod:`repro.apps` -- databases, web servers, front-ends, services.
- :mod:`repro.batch` -- the LSF-like scheduler and workloads.
- :mod:`repro.faults` -- fault taxonomy, injection, campaigns.
- :mod:`repro.metrics` -- samplers, microstates, circular logs.
- :mod:`repro.ops` -- the human-operations baseline (BMC + on-call).
- :mod:`repro.ontology` -- ISSL / SLKT / DLSP / DGSPL.
- :mod:`repro.core` -- the intelliagents and administration servers.
- :mod:`repro.experiments` -- drivers for every table and figure.
- :mod:`repro.grid` -- the §5 grid resource broker over DGSPLs.
- :mod:`repro.parallel` -- process-pool Monte-Carlo helpers.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
