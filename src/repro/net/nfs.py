"""NFS-shared state pool for the administration servers.

The coordinators run "in a high-availability failover configuration and
share a common pool of NFS mounted disks, to avoid single points of
failure" (§3.1).  :class:`SharedPool` is that pool: one filesystem
visible from every admin server, available as long as at least one of
the serving heads is up.  Clients' ``nfsstat`` counters tick on access.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.filesystem import FileSystem, FsOfflineError

__all__ = ["SharedPool"]


class SharedPool:
    """A dual-headed NFS filesystem."""

    def __init__(self, sim, capacity_bytes: int = 8 * 1024**3):
        self.sim = sim
        self.fs = FileSystem(mounts={"/": capacity_bytes})
        #: hosts that can serve the pool (the admin pair)
        self.servers: List[object] = []
        self.calls = 0
        self.failed_calls = 0

    def add_server(self, host) -> None:
        self.servers.append(host)

    def available(self) -> bool:
        """At least one serving head must be up (the HA property)."""
        return any(h.is_up for h in self.servers) if self.servers else True

    def _access(self, client) -> None:
        self.calls += 1
        if client is not None:
            client.nfs_calls += 1
        if not self.available():
            self.failed_calls += 1
            if client is not None:
                client.nfs_retrans += 1
            raise FsOfflineError("nfs: server not responding")

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Pool contents plus the nfsstat counters; serving heads are
        structural (re-attached at rebuild)."""
        return {
            "fs": self.fs.snapshot_state(),
            "calls": self.calls,
            "failed_calls": self.failed_calls,
        }

    def restore_state(self, state: dict) -> None:
        self.fs.restore_state(state["fs"])
        self.calls = int(state["calls"])
        self.failed_calls = int(state["failed_calls"])

    # -- proxied file operations --------------------------------------------

    def write(self, client, path: str, lines) -> None:
        self._access(client)
        self.fs.write(path, lines, now=self.sim.now)

    def append(self, client, path: str, line: str) -> None:
        self._access(client)
        self.fs.append(path, line, now=self.sim.now)

    def read(self, client, path: str) -> List[str]:
        self._access(client)
        return self.fs.read(path)

    def exists(self, client, path: str) -> bool:
        self._access(client)
        return self.fs.exists(path)

    def listdir(self, client, path: str) -> List[str]:
        self._access(client)
        return self.fs.listdir(path)

    def remove(self, client, path: str) -> bool:
        self._access(client)
        return self.fs.remove(path)
