"""TCP-style connection establishment.

Service intelliagents confirm application health "by attempting to
connect to them ... and run basic commands", with per-application
connect timeouts "provided by specialized application developers"
(§3.2).  ``tcp_connect`` models that handshake: name resolution,
reachability over some shared LAN, a listening application on the port,
and the application's willingness to accept (a hung app accepts
nothing; an overloaded one is slow).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ConnectResult", "tcp_connect", "find_listener"]


@dataclass
class ConnectResult:
    """Outcome of a connection attempt."""

    ok: bool
    latency_ms: float = 0.0
    error: str = ""
    app: object = None
    lan_name: str = ""

    @property
    def timed_out(self) -> bool:
        return self.error == "timeout"


def find_listener(host, port: int):
    """The application on ``host`` listening on ``port``, if any."""
    for app in host.apps.values():
        if getattr(app, "port", None) == port and app.is_running():
            return app
    return None


def tcp_connect(dc, src_name: str, dst_name: str, port: int, *,
                timeout_ms: float = 5000.0,
                prefer_kind: str = "public",
                restrict_kind: str = "") -> ConnectResult:
    """Attempt a connection from ``src`` to ``dst``:``port``.

    ``prefer_kind`` selects which LAN class to try first ("public" for
    user/application traffic, "private" for agent traffic), with the
    other class as a fall-back.  ``restrict_kind`` forbids the
    fall-back entirely: application traffic is *never* allowed onto the
    private agent network (its whole point is isolation), so service
    probes pass ``restrict_kind="public"``.  The
    connection fails with a distinguishable error string for each stage
    so diagnosis can tell *network* trouble from *service* trouble:

    - ``"unknown-host"``  -- destination not in the registry
    - ``"host-down"``     -- destination machine is down
    - ``"unreachable"``   -- no healthy shared LAN
    - ``"refused"``       -- machine up, nothing listening on the port
    - ``"timeout"``       -- app listening but too slow / hung
    """
    if dst_name not in dc.hosts:
        return ConnectResult(False, error="unknown-host")
    dst = dc.hosts[dst_name]
    src = dc.hosts.get(src_name)
    if src is None or not src.is_up:
        return ConnectResult(False, error="source-down")
    if not dst.is_up:
        return ConnectResult(False, error="host-down")

    lans = dc.shared_lans(src_name, dst_name)
    if restrict_kind:
        lans = [l for l in lans if l.kind == restrict_kind]
    lans.sort(key=lambda l: (l.kind != prefer_kind, l.name))
    chosen = None
    latency = 0.0
    for lan in lans:
        ok, rtt = lan.path_ok(src, dst)
        if ok:
            chosen, latency = lan, rtt
            break
    if chosen is None:
        return ConnectResult(False, error="unreachable")

    app = find_listener(dst, port)
    if app is None:
        return ConnectResult(False, latency, "refused", lan_name=chosen.name)

    # SYN/SYN-ACK + the app's accept delay
    accept_ms = app.accept_latency_ms()
    total = 3 * latency + accept_ms
    if accept_ms < 0 or total > timeout_ms:
        return ConnectResult(False, min(total, timeout_ms) if total > 0
                             else timeout_ms, "timeout",
                             lan_name=chosen.name)
    chosen.send(src, dst, 512)
    return ConnectResult(True, total, app=app, lan_name=chosen.name)
