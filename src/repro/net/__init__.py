"""Simulated network substrate.

Models the figure-1 topology: one or more public LANs carrying user and
application traffic, plus the dedicated **private intelliagent
network**.  The routing layer implements the paper's fallback rule: "if
the private network fails, intelliagents can automatically re-route
their communication traffic over the public LAN".

- :mod:`network` -- LANs and NICs with failure states and counters.
- :mod:`tcp` -- connection establishment with application timeouts.
- :mod:`routing` -- the agent channel with private→public failover.
- :mod:`nameservice` -- DNS/NIS-style name lookup (§3.6 item 7).
- :mod:`nfs` -- the administration servers' shared NFS pool.
"""

from repro.net.network import Lan, Nic
from repro.net.tcp import ConnectResult, tcp_connect
from repro.net.routing import AgentChannel, Delivery
from repro.net.nameservice import NameService
from repro.net.nfs import SharedPool

__all__ = ["Lan", "Nic", "ConnectResult", "tcp_connect", "AgentChannel",
           "Delivery", "NameService", "SharedPool"]
