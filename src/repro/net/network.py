"""LANs and NICs.

A :class:`Lan` is a shared segment (the site used 100 Base-T Ethernet).
Hosts attach through :class:`Nic` objects which carry the per-interface
counters that ``netstat`` reports and the network agents watch
(packets, errors, collisions, utilisation).

Failure modes: a whole LAN can fail (switch death / firewall
misconfiguration), and an individual NIC can fail (hardware fault).
Either breaks reachability for paths that depend on it.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

__all__ = ["Lan", "Nic"]


class Nic:
    """One network interface attached to one LAN."""

    __slots__ = ("host", "lan", "ifname", "ip", "ok",
                 "packets_in", "packets_out", "bytes_in", "bytes_out",
                 "errors_in", "errors_out", "collisions")

    def __init__(self, host, lan: "Lan", ifname: str, ip: str):
        self.host = host
        self.lan = lan
        self.ifname = ifname
        self.ip = ip
        self.ok = True
        self.packets_in = 0
        self.packets_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.errors_in = 0
        self.errors_out = 0
        self.collisions = 0

    def fail(self) -> None:
        self.ok = False

    def repair(self) -> None:
        self.ok = True

    # -- persistence ----------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {"ok": self.ok,
                "packets_in": self.packets_in,
                "packets_out": self.packets_out,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "errors_in": self.errors_in,
                "errors_out": self.errors_out,
                "collisions": self.collisions}

    def restore_state(self, state: dict) -> None:
        self.ok = bool(state["ok"])
        self.packets_in = int(state["packets_in"])
        self.packets_out = int(state["packets_out"])
        self.bytes_in = int(state["bytes_in"])
        self.bytes_out = int(state["bytes_out"])
        self.errors_in = int(state["errors_in"])
        self.errors_out = int(state["errors_out"])
        self.collisions = int(state["collisions"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Nic {self.host.name}:{self.ifname} on {self.lan.name}>"


class Lan:
    """A shared network segment.

    ``base_latency_ms`` is the unloaded round-trip; effective latency
    grows with utilisation.  Utilisation decays between observations
    via an exponential window so agents polling every few minutes see a
    recent-average picture rather than an instantaneous spike.
    """

    #: window (seconds) over which traffic counts toward utilisation
    UTIL_WINDOW = 300.0

    def __init__(self, sim, name: str, *, kind: str = "public",
                 bandwidth_mbps: float = 100.0,
                 base_latency_ms: float = 0.5,
                 subnet: str = "192.168.1"):
        self.sim = sim
        self.name = name
        self.kind = kind
        self.bandwidth_mbps = bandwidth_mbps
        self.base_latency_ms = base_latency_ms
        self.subnet = subnet
        self.up = True
        self.nics: Dict[str, Nic] = {}      # keyed by host name
        self._ip_counter = itertools.count(10)
        self._window_bytes = 0.0
        self._window_start = sim.now
        self.total_bytes = 0
        self.total_messages = 0

    # -- membership -----------------------------------------------------------

    def attach(self, host, ifname: Optional[str] = None) -> Nic:
        if host.name in self.nics:
            raise ValueError(f"{host.name} already on LAN {self.name}")
        ifname = ifname or f"hme{len(host.nics)}"
        ip = f"{self.subnet}.{next(self._ip_counter)}"
        nic = Nic(host, self, ifname, ip)
        self.nics[host.name] = nic
        host.nics[ifname] = nic
        return nic

    def nic_of(self, host) -> Optional[Nic]:
        return self.nics.get(host.name)

    # -- failure ------------------------------------------------------------------

    def fail(self) -> None:
        self.up = False

    def repair(self) -> None:
        self.up = True

    # -- traffic --------------------------------------------------------------------

    def _decay_window(self) -> None:
        now = self.sim.now
        if now - self._window_start >= self.UTIL_WINDOW:
            self._window_bytes = 0.0
            self._window_start = now

    def utilization(self) -> float:
        """Fraction of capacity consumed over the recent window, 0..1."""
        self._decay_window()
        window = max(1.0, self.sim.now - self._window_start,
                     self.UTIL_WINDOW / 10.0)
        capacity_bytes = self.bandwidth_mbps * 125_000 * window
        return min(1.0, self._window_bytes / capacity_bytes)

    def latency_ms(self) -> float:
        """Effective RTT: grows hyperbolically as the segment saturates."""
        util = self.utilization()
        return self.base_latency_ms / max(0.05, 1.0 - min(0.95, util))

    def path_ok(self, src, dst) -> Tuple[bool, float]:
        """Can ``src`` reach ``dst`` across this LAN right now?"""
        if not self.up:
            return (False, 0.0)
        nsrc, ndst = self.nics.get(src.name), self.nics.get(dst.name)
        if nsrc is None or ndst is None or not (nsrc.ok and ndst.ok):
            return (False, 0.0)
        return (True, self.latency_ms())

    def send(self, src, dst, nbytes: int) -> Tuple[bool, float]:
        """Move ``nbytes`` from ``src`` to ``dst``; updates counters.
        Returns (delivered, latency_ms)."""
        ok, latency = self.path_ok(src, dst)
        nsrc, ndst = self.nics.get(src.name), self.nics.get(dst.name)
        if not ok:
            if nsrc is not None:
                nsrc.errors_out += 1
            return (False, 0.0)
        self._decay_window()
        packets = max(1, nbytes // 1460)
        nsrc.packets_out += packets
        nsrc.bytes_out += nbytes
        ndst.packets_in += packets
        ndst.bytes_in += nbytes
        if self.utilization() > 0.8:
            nsrc.collisions += 1
        self._window_bytes += nbytes
        self.total_bytes += nbytes
        self.total_messages += 1
        return (True, latency)

    # -- persistence ----------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Segment state only; per-NIC counters snapshot with their
        hosts (membership itself is structural)."""
        return {"up": self.up,
                "window_bytes": self._window_bytes,
                "window_start": self._window_start,
                "total_bytes": self.total_bytes,
                "total_messages": self.total_messages}

    def restore_state(self, state: dict) -> None:
        self.up = bool(state["up"])
        self._window_bytes = float(state["window_bytes"])
        self._window_start = float(state["window_start"])
        self.total_bytes = int(state["total_bytes"])
        self.total_messages = int(state["total_messages"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "DOWN"
        return f"<Lan {self.name} ({self.kind}) {state} hosts={len(self.nics)}>"
