"""LANs and NICs.

A :class:`Lan` is a shared segment (the site used 100 Base-T Ethernet).
Hosts attach through :class:`Nic` objects which carry the per-interface
counters that ``netstat`` reports and the network agents watch
(packets, errors, collisions, utilisation).

Failure modes: a whole LAN can fail (switch death / firewall
misconfiguration), and an individual NIC can fail (hardware fault).
Either breaks reachability for paths that depend on it.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

__all__ = ["Lan", "Nic", "Wan", "WanLink"]


class Nic:
    """One network interface attached to one LAN."""

    __slots__ = ("host", "lan", "ifname", "ip", "ok",
                 "packets_in", "packets_out", "bytes_in", "bytes_out",
                 "errors_in", "errors_out", "collisions")

    def __init__(self, host, lan: "Lan", ifname: str, ip: str):
        self.host = host
        self.lan = lan
        self.ifname = ifname
        self.ip = ip
        self.ok = True
        self.packets_in = 0
        self.packets_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.errors_in = 0
        self.errors_out = 0
        self.collisions = 0

    def fail(self) -> None:
        self.ok = False

    def repair(self) -> None:
        self.ok = True

    # -- persistence ----------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {"ok": self.ok,
                "packets_in": self.packets_in,
                "packets_out": self.packets_out,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "errors_in": self.errors_in,
                "errors_out": self.errors_out,
                "collisions": self.collisions}

    def restore_state(self, state: dict) -> None:
        self.ok = bool(state["ok"])
        self.packets_in = int(state["packets_in"])
        self.packets_out = int(state["packets_out"])
        self.bytes_in = int(state["bytes_in"])
        self.bytes_out = int(state["bytes_out"])
        self.errors_in = int(state["errors_in"])
        self.errors_out = int(state["errors_out"])
        self.collisions = int(state["collisions"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Nic {self.host.name}:{self.ifname} on {self.lan.name}>"


class Lan:
    """A shared network segment.

    ``base_latency_ms`` is the unloaded round-trip; effective latency
    grows with utilisation.  Utilisation decays between observations
    via an exponential window so agents polling every few minutes see a
    recent-average picture rather than an instantaneous spike.
    """

    #: window (seconds) over which traffic counts toward utilisation
    UTIL_WINDOW = 300.0

    def __init__(self, sim, name: str, *, kind: str = "public",
                 bandwidth_mbps: float = 100.0,
                 base_latency_ms: float = 0.5,
                 subnet: str = "192.168.1"):
        self.sim = sim
        self.name = name
        self.kind = kind
        self.bandwidth_mbps = bandwidth_mbps
        self.base_latency_ms = base_latency_ms
        self.subnet = subnet
        self.up = True
        self.nics: Dict[str, Nic] = {}      # keyed by host name
        self._ip_counter = itertools.count(10)
        self._window_bytes = 0.0
        self._window_start = sim.now
        self.total_bytes = 0
        self.total_messages = 0

    # -- membership -----------------------------------------------------------

    def attach(self, host, ifname: Optional[str] = None) -> Nic:
        if host.name in self.nics:
            raise ValueError(f"{host.name} already on LAN {self.name}")
        ifname = ifname or f"hme{len(host.nics)}"
        ip = f"{self.subnet}.{next(self._ip_counter)}"
        nic = Nic(host, self, ifname, ip)
        self.nics[host.name] = nic
        host.nics[ifname] = nic
        return nic

    def nic_of(self, host) -> Optional[Nic]:
        return self.nics.get(host.name)

    # -- failure ------------------------------------------------------------------

    def fail(self) -> None:
        self.up = False

    def repair(self) -> None:
        self.up = True

    # -- traffic --------------------------------------------------------------------

    def _decay_window(self) -> None:
        now = self.sim.now
        if now - self._window_start >= self.UTIL_WINDOW:
            self._window_bytes = 0.0
            self._window_start = now

    def utilization(self) -> float:
        """Fraction of capacity consumed over the recent window, 0..1."""
        self._decay_window()
        window = max(1.0, self.sim.now - self._window_start,
                     self.UTIL_WINDOW / 10.0)
        capacity_bytes = self.bandwidth_mbps * 125_000 * window
        return min(1.0, self._window_bytes / capacity_bytes)

    def latency_ms(self) -> float:
        """Effective RTT: grows hyperbolically as the segment saturates."""
        util = self.utilization()
        return self.base_latency_ms / max(0.05, 1.0 - min(0.95, util))

    def path_ok(self, src, dst) -> Tuple[bool, float]:
        """Can ``src`` reach ``dst`` across this LAN right now?"""
        if not self.up:
            return (False, 0.0)
        nsrc, ndst = self.nics.get(src.name), self.nics.get(dst.name)
        if nsrc is None or ndst is None or not (nsrc.ok and ndst.ok):
            return (False, 0.0)
        return (True, self.latency_ms())

    def send(self, src, dst, nbytes: int) -> Tuple[bool, float]:
        """Move ``nbytes`` from ``src`` to ``dst``; updates counters.
        Returns (delivered, latency_ms)."""
        ok, latency = self.path_ok(src, dst)
        nsrc, ndst = self.nics.get(src.name), self.nics.get(dst.name)
        if not ok:
            if nsrc is not None:
                nsrc.errors_out += 1
            return (False, 0.0)
        self._decay_window()
        packets = max(1, nbytes // 1460)
        nsrc.packets_out += packets
        nsrc.bytes_out += nbytes
        ndst.packets_in += packets
        ndst.bytes_in += nbytes
        if self.utilization() > 0.8:
            nsrc.collisions += 1
        self._window_bytes += nbytes
        self.total_bytes += nbytes
        self.total_messages += 1
        return (True, latency)

    # -- persistence ----------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Segment state only; per-NIC counters snapshot with their
        hosts (membership itself is structural)."""
        return {"up": self.up,
                "window_bytes": self._window_bytes,
                "window_start": self._window_start,
                "total_bytes": self.total_bytes,
                "total_messages": self.total_messages}

    def restore_state(self, state: dict) -> None:
        self.up = bool(state["up"])
        self._window_bytes = float(state["window_bytes"])
        self._window_start = float(state["window_start"])
        self.total_bytes = int(state["total_bytes"])
        self.total_messages = int(state["total_messages"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "DOWN"
        return f"<Lan {self.name} ({self.kind}) {state} hosts={len(self.nics)}>"


class WanLink:
    """One long-haul link between two named sites.

    Where a :class:`Lan` is a shared segment inside a datacentre, a
    ``WanLink`` is the leased line between two of them.  Its failure
    modes are deliberately distinct:

    * ``partition()`` -- the link is *unreachable*: every send fails.
    * ``degrade()``   -- the link is *slow*: sends still deliver, at
      ``DEGRADED_FACTOR`` times the base latency.

    Unreachable and slow must never be conflated: a partitioned site
    drops out of digest exchange entirely (its state goes stale at the
    federation), while a degraded one merely answers late.
    """

    DEGRADED_FACTOR = 8.0

    __slots__ = ("a", "b", "name", "base_latency_ms", "up", "degraded",
                 "total_bytes", "total_messages", "drops")

    def __init__(self, a: str, b: str, *, base_latency_ms: float = 70.0):
        if a == b:
            raise ValueError(f"WAN link needs two distinct sites, got {a!r}")
        self.a, self.b = sorted((a, b))
        self.name = f"wan:{self.a}<->{self.b}"
        self.base_latency_ms = float(base_latency_ms)
        self.up = True
        self.degraded = False
        self.total_bytes = 0
        self.total_messages = 0
        self.drops = 0

    # -- failure model --------------------------------------------------------

    def partition(self) -> None:
        self.up = False

    def degrade(self) -> None:
        self.degraded = True

    def repair(self) -> None:
        self.up = True
        self.degraded = False

    def reachable(self) -> bool:
        return self.up

    def latency_ms(self) -> float:
        if not self.up:
            return 0.0
        if self.degraded:
            return self.base_latency_ms * self.DEGRADED_FACTOR
        return self.base_latency_ms

    def send(self, nbytes: int) -> Tuple[bool, float]:
        """Move ``nbytes`` across the link.  Returns (delivered,
        latency_ms); a partitioned link drops the message."""
        if not self.up:
            self.drops += 1
            return (False, 0.0)
        self.total_bytes += nbytes
        self.total_messages += 1
        return (True, self.latency_ms())

    # -- persistence ----------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {"up": self.up, "degraded": self.degraded,
                "total_bytes": self.total_bytes,
                "total_messages": self.total_messages,
                "drops": self.drops}

    def restore_state(self, state: dict) -> None:
        self.up = bool(state["up"])
        self.degraded = bool(state["degraded"])
        self.total_bytes = int(state["total_bytes"])
        self.total_messages = int(state["total_messages"])
        self.drops = int(state["drops"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "PARTITIONED"
        if self.up and self.degraded:
            state = "degraded"
        return f"<WanLink {self.a}<->{self.b} {state}>"


class Wan:
    """The full mesh of :class:`WanLink` segments between named sites.

    Intra-site paths (``a == b``) are always reachable at zero WAN
    latency -- the LANs model those.  Links are keyed by the sorted
    site pair, so lookups are direction-free.
    """

    def __init__(self):
        self.links: Dict[Tuple[str, str], WanLink] = {}

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return tuple(sorted((a, b)))       # type: ignore[return-value]

    def connect(self, a: str, b: str, *,
                base_latency_ms: float = 70.0) -> WanLink:
        link = WanLink(a, b, base_latency_ms=base_latency_ms)
        self.links[self._key(a, b)] = link
        return link

    def link(self, a: str, b: str) -> Optional[WanLink]:
        return self.links.get(self._key(a, b))

    def links_of(self, site: str) -> List[WanLink]:
        return [ln for key, ln in sorted(self.links.items()) if site in key]

    def reachable(self, a: str, b: str) -> bool:
        if a == b:
            return True
        link = self.link(a, b)
        return link is not None and link.reachable()

    def latency_ms(self, a: str, b: str) -> float:
        if a == b:
            return 0.0
        link = self.link(a, b)
        return link.latency_ms() if link is not None else 0.0

    def send(self, a: str, b: str, nbytes: int) -> Tuple[bool, float]:
        if a == b:
            return (True, 0.0)
        link = self.link(a, b)
        if link is None:
            return (False, 0.0)
        return link.send(nbytes)

    # -- site-scoped failure helpers (split-brain / site isolation) ----------

    def partition_site(self, site: str) -> int:
        """Partition every link touching ``site``; returns how many."""
        touched = self.links_of(site)
        for link in touched:
            link.partition()
        return len(touched)

    def repair_site(self, site: str) -> int:
        touched = self.links_of(site)
        for link in touched:
            link.repair()
        return len(touched)

    # -- persistence ----------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {"links": {f"{a}|{b}": link.snapshot_state()
                          for (a, b), link in sorted(self.links.items())}}

    def restore_state(self, state: dict) -> None:
        for name, link_state in state["links"].items():
            a, b = name.split("|", 1)
            link = self.link(a, b)
            if link is None:
                raise ValueError(f"snapshot names unknown WAN link {name!r}")
            link.restore_state(link_state)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Wan links={len(self.links)}>"
