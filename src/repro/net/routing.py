"""Agent-traffic routing with private→public fallback.

All intelliagent communication "goes through the private agent network
to avoid putting any performance/load overheads to the public LANs";
when the private network fails, agents "automatically re-route their
communication traffic over the public LAN, using Unix administration
commands" (§3.3).  :class:`AgentChannel` encodes exactly that policy
and keeps the counters the A-net ablation reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["AgentChannel", "Delivery", "WanCourier"]


@dataclass
class Delivery:
    """Result of one agent-network send."""

    ok: bool
    lan_name: str = ""
    lan_kind: str = ""
    latency_ms: float = 0.0
    rerouted: bool = False
    error: str = ""


class AgentChannel:
    """Datacentre-wide message channel for agent traffic."""

    def __init__(self, dc, private_lan: str, public_lans: List[str]):
        self.dc = dc
        self.private_lan = private_lan
        self.public_lans = list(public_lans)
        self.sent = 0
        self.delivered = 0
        self.rerouted = 0
        self.failed = 0
        self.bytes_by_lan: Dict[str, int] = {}

    def send(self, src_name: str, dst_name: str,
             nbytes: int = 2048) -> Delivery:
        """Send ``nbytes`` of agent traffic from ``src`` to ``dst``.

        Tries the private LAN first; on failure, walks the public LANs
        in order (the re-route).  A delivery over a public LAN is
        flagged ``rerouted`` so the overhead it imposes there is
        attributable.
        """
        self.sent += 1
        src = self.dc.hosts.get(src_name)
        dst = self.dc.hosts.get(dst_name)
        if src is None or dst is None:
            self.failed += 1
            return Delivery(False, error="unknown-host")
        if not (src.is_up and dst.is_up):
            self.failed += 1
            return Delivery(False, error="host-down")

        for i, lan_name in enumerate([self.private_lan] + self.public_lans):
            lan = self.dc.lans.get(lan_name)
            if lan is None:
                continue
            ok, latency = lan.send(src, dst, nbytes)
            if ok:
                rerouted = i > 0
                self.delivered += 1
                if rerouted:
                    self.rerouted += 1
                self.bytes_by_lan[lan_name] = (
                    self.bytes_by_lan.get(lan_name, 0) + nbytes)
                return Delivery(True, lan_name, lan.kind, latency, rerouted)
        self.failed += 1
        return Delivery(False, error="unreachable")

    def reachable(self, src_name: str, dst_name: str) -> bool:
        """Whether a send would currently succeed, without moving any
        bytes or touching the delivery counters.  The condition-ledger
        transport uses this to decide if a delta physically arrives."""
        src = self.dc.hosts.get(src_name)
        dst = self.dc.hosts.get(dst_name)
        if src is None or dst is None or not (src.is_up and dst.is_up):
            return False
        for lan_name in [self.private_lan] + self.public_lans:
            lan = self.dc.lans.get(lan_name)
            if lan is not None and lan.path_ok(src, dst)[0]:
                return True
        return False

    def broadcast(self, src_name: str, dst_names: List[str],
                  nbytes: int = 2048) -> List[Delivery]:
        return [self.send(src_name, d, nbytes) for d in dst_names]

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "rerouted": self.rerouted,
            "failed": self.failed,
            "bytes_by_lan": dict(sorted(self.bytes_by_lan.items())),
        }

    def restore_state(self, state: dict) -> None:
        self.sent = int(state["sent"])
        self.delivered = int(state["delivered"])
        self.rerouted = int(state["rerouted"])
        self.failed = int(state["failed"])
        self.bytes_by_lan = {k: int(v)
                             for k, v in state["bytes_by_lan"].items()}

    def stats(self) -> Dict[str, float]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "rerouted": self.rerouted,
            "failed": self.failed,
            "delivery_rate": self.delivered / self.sent if self.sent else 1.0,
            "bytes_private": self.bytes_by_lan.get(self.private_lan, 0),
            "bytes_public": sum(v for k, v in self.bytes_by_lan.items()
                                if k != self.private_lan),
        }


class WanCourier:
    """Site-to-site control-plane transport (digest exchange, cross-site
    escalation chatter) over the :class:`repro.net.network.Wan` mesh.

    The WAN analogue of :class:`AgentChannel`: there is no private/public
    fallback between datacentres -- one leased line per site pair -- so
    a partitioned link simply fails the delivery and the caller's
    freshness window does the rest.
    """

    def __init__(self, wan):
        self.wan = wan
        self.sent = 0
        self.delivered = 0
        self.failed = 0
        self.bytes_by_pair: Dict[str, int] = {}

    def send(self, src_site: str, dst_site: str,
             nbytes: int = 4096) -> Delivery:
        self.sent += 1
        ok, latency_ms = self.wan.send(src_site, dst_site, nbytes)
        if not ok:
            self.failed += 1
            return Delivery(False, error="wan-partitioned")
        self.delivered += 1
        pair = "|".join(sorted((src_site, dst_site)))
        self.bytes_by_pair[pair] = self.bytes_by_pair.get(pair, 0) + nbytes
        return Delivery(True, lan_name=pair, lan_kind="wan",
                        latency_ms=latency_ms)

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {"sent": self.sent, "delivered": self.delivered,
                "failed": self.failed,
                "bytes_by_pair": dict(sorted(self.bytes_by_pair.items()))}

    def restore_state(self, state: dict) -> None:
        self.sent = int(state["sent"])
        self.delivered = int(state["delivered"])
        self.failed = int(state["failed"])
        self.bytes_by_pair = {k: int(v)
                              for k, v in state["bytes_by_pair"].items()}
