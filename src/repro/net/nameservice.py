"""Name service (DNS / NIS / NIS+ / LDAP).

§3.6 lists "name server response (DNS, NIS, NIS+, LDAP)" among the
network measurements.  The model is a registry with a configurable
response time that the network agents probe; an outage makes lookups
fail, which is one of the firewall/network fault flavours in Fig. 2.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["FederatedNameService", "NameService"]


class NameService:
    """A single logical name server for the site."""

    def __init__(self, sim, base_response_ms: float = 2.0):
        self.sim = sim
        self.base_response_ms = base_response_ms
        self.records: Dict[str, str] = {}
        self.up = True
        self.degraded = False      # slow but answering
        self.lookups = 0
        self.failures = 0

    def register(self, name: str, ip: str) -> None:
        self.records[name] = ip

    def register_host(self, host, lan_name: Optional[str] = None) -> None:
        """Register every NIC address of a host (or just one LAN's)."""
        for nic in host.nics.values():
            if lan_name is None or nic.lan.name == lan_name:
                self.records[f"{host.name}.{nic.lan.name}"] = nic.ip
        self.records.setdefault(host.name, next(
            (n.ip for n in host.nics.values()), "0.0.0.0"))

    def lookup(self, name: str) -> Tuple[Optional[str], float]:
        """Resolve ``name``.  Returns (ip-or-None, response_ms)."""
        self.lookups += 1
        if not self.up:
            self.failures += 1
            return (None, 0.0)
        response = self.base_response_ms * (50.0 if self.degraded else 1.0)
        ip = self.records.get(name)
        if ip is None:
            self.failures += 1
        return (ip, response)

    def response_ms(self) -> float:
        """What a health probe of the name server observes (negative
        means no answer)."""
        if not self.up:
            return -1.0
        return self.base_response_ms * (50.0 if self.degraded else 1.0)

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Records too, not just health: spare promotion and cutovers
        can register names after build, so the table is state."""
        return {
            "records": dict(sorted(self.records.items())),
            "up": self.up,
            "degraded": self.degraded,
            "lookups": self.lookups,
            "failures": self.failures,
        }

    def restore_state(self, state: dict) -> None:
        self.records = dict(state["records"])
        self.up = bool(state["up"])
        self.degraded = bool(state["degraded"])
        self.lookups = int(state["lookups"])
        self.failures = int(state["failures"])

    def fail(self) -> None:
        self.up = False

    def slow(self) -> None:
        self.degraded = True

    def repair(self) -> None:
        self.up = True
        self.degraded = False


class FederatedNameService:
    """Cross-site delegation over the per-site authoritative servers.

    Each site keeps its own :class:`NameService` as the authority for
    its zone.  A federated lookup of ``"name@site"`` from ``from_site``
    delegates to that zone over the WAN: a *partitioned* link fails the
    lookup outright (unreachable), a *degraded* link (or a degraded
    remote server) merely inflates the response time -- the two must
    stay distinguishable.  Unqualified names resolve in the caller's
    home zone, and :meth:`resolve_service` searches all zones
    home-first, which is how a cross-site cutover becomes visible: the
    takeover site registers the ``svc.<app>`` alias in *its* zone and
    every other site finds it there on the next resolution.
    """

    def __init__(self, wan):
        self.wan = wan
        self.zones: Dict[str, NameService] = {}
        self.lookups = 0
        self.delegations = 0
        self.wan_failures = 0

    def delegate(self, site: str, ns: NameService) -> None:
        """Install ``ns`` as the authority for ``site``'s zone."""
        self.zones[site] = ns

    def lookup(self, name: str, from_site: str
               ) -> Tuple[Optional[str], float, Optional[str]]:
        """Resolve ``name`` (optionally ``name@site``) as seen from
        ``from_site``.  Returns (ip-or-None, response_ms, authority)."""
        self.lookups += 1
        target = from_site
        if "@" in name:
            name, target = name.rsplit("@", 1)
        return self._ask(name, from_site, target)

    def _ask(self, name: str, from_site: str, target: str
             ) -> Tuple[Optional[str], float, Optional[str]]:
        zone = self.zones.get(target)
        if zone is None:
            return (None, 0.0, None)
        wan_ms = 0.0
        if target != from_site:
            self.delegations += 1
            delivered, wan_ms = self.wan.send(from_site, target, 512)
            if not delivered:
                self.wan_failures += 1
                return (None, 0.0, None)
        ip, response_ms = zone.lookup(name)
        if ip is None:
            return (None, 2.0 * wan_ms + response_ms, target)
        return (ip, 2.0 * wan_ms + response_ms, target)

    def resolve_service(self, alias: str, from_site: str
                        ) -> Tuple[Optional[str], float, Optional[str]]:
        """Find a service alias wherever it lives: the caller's own
        zone first, then every reachable peer zone in name order."""
        self.lookups += 1
        order = [from_site] + [s for s in sorted(self.zones)
                               if s != from_site]
        spent_ms = 0.0
        for site in order:
            ip, ms, authority = self._ask(alias, from_site, site)
            spent_ms += ms
            if ip is not None:
                return (ip, spent_ms, authority)
        return (None, spent_ms, None)

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Counters only: zone records snapshot with their sites and
        the WAN snapshots with the federation."""
        return {"lookups": self.lookups,
                "delegations": self.delegations,
                "wan_failures": self.wan_failures}

    def restore_state(self, state: dict) -> None:
        self.lookups = int(state["lookups"])
        self.delegations = int(state["delegations"])
        self.wan_failures = int(state["wan_failures"])
