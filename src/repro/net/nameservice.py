"""Name service (DNS / NIS / NIS+ / LDAP).

§3.6 lists "name server response (DNS, NIS, NIS+, LDAP)" among the
network measurements.  The model is a registry with a configurable
response time that the network agents probe; an outage makes lookups
fail, which is one of the firewall/network fault flavours in Fig. 2.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["NameService"]


class NameService:
    """A single logical name server for the site."""

    def __init__(self, sim, base_response_ms: float = 2.0):
        self.sim = sim
        self.base_response_ms = base_response_ms
        self.records: Dict[str, str] = {}
        self.up = True
        self.degraded = False      # slow but answering
        self.lookups = 0
        self.failures = 0

    def register(self, name: str, ip: str) -> None:
        self.records[name] = ip

    def register_host(self, host, lan_name: Optional[str] = None) -> None:
        """Register every NIC address of a host (or just one LAN's)."""
        for nic in host.nics.values():
            if lan_name is None or nic.lan.name == lan_name:
                self.records[f"{host.name}.{nic.lan.name}"] = nic.ip
        self.records.setdefault(host.name, next(
            (n.ip for n in host.nics.values()), "0.0.0.0"))

    def lookup(self, name: str) -> Tuple[Optional[str], float]:
        """Resolve ``name``.  Returns (ip-or-None, response_ms)."""
        self.lookups += 1
        if not self.up:
            self.failures += 1
            return (None, 0.0)
        response = self.base_response_ms * (50.0 if self.degraded else 1.0)
        ip = self.records.get(name)
        if ip is None:
            self.failures += 1
        return (ip, response)

    def response_ms(self) -> float:
        """What a health probe of the name server observes (negative
        means no answer)."""
        if not self.up:
            return -1.0
        return self.base_response_ms * (50.0 if self.degraded else 1.0)

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Records too, not just health: spare promotion and cutovers
        can register names after build, so the table is state."""
        return {
            "records": dict(sorted(self.records.items())),
            "up": self.up,
            "degraded": self.degraded,
            "lookups": self.lookups,
            "failures": self.failures,
        }

    def restore_state(self, state: dict) -> None:
        self.records = dict(state["records"])
        self.up = bool(state["up"])
        self.degraded = bool(state["degraded"])
        self.lookups = int(state["lookups"])
        self.failures = int(state["failures"])

    def fail(self) -> None:
        self.up = False

    def slow(self) -> None:
        self.degraded = True

    def repair(self) -> None:
        self.up = True
        self.degraded = False
