"""Build and drive a geo-federation of single-site worlds.

Design: every :class:`~repro.experiments.site.Site` keeps its *own*
simulator and RNG namespace, exactly as built by ``build_site`` --
the federation never schedules events inside a site.  Sites advance
in **lockstep** to each federation epoch boundary (sorted site order),
and all cross-site coupling happens at the barrier, in deterministic
order, driven by federation-level state and a federation-level RNG:

1. digest exchange -- each site's DGSPL is aggregated to a
   :class:`~repro.ontology.dgspl.SiteDigest` and shipped over the WAN
   (partitioned sites drop out; the freshness windows do the rest);
2. the site-loss monitor -- a site whose user-facing tiers are all
   dark is flagged down at the geo door and handed to the cross-site
   relocation tier;
3. cross-site relocation state machines advance (verify/cutover);
4. the geo traffic tier samples and serves one epoch of per-region
   demand.

Because the coupling is strictly at the barrier and reads are
side-effect-free, an N=1 federation with traffic off is byte-identical
to a standalone ``build_site`` world run for the same duration -- the
parity regression the tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.site import Site, build_site
from repro.federation.config import FederationConfig, SiteSpec
from repro.federation.traffic import GeoTrafficDriver
from repro.net.nameservice import FederatedNameService
from repro.net.network import Wan
from repro.net.routing import WanCourier
from repro.ontology.dgspl import FederatedDgspl, digest_of
from repro.relocate.crosssite import CrossSiteRelocator
from repro.sim.rand import RandomStreams
from repro.traffic.engine import doors_for_site
from repro.traffic.frontdoor import GeoFrontDoor
from repro.traffic.slo import rollup_slis
from repro.traffic.workload import regional_curves

__all__ = ["Federation", "build_federation"]


@dataclass
class Federation:
    """Handles to the federated world."""

    config: FederationConfig
    #: site name -> its Site world, insertion-ordered by name
    sites: Dict[str, Site]
    wan: Wan
    courier: WanCourier
    nameservice: FederatedNameService
    fed_dgspl: FederatedDgspl
    streams: RandomStreams
    geo: Optional[GeoFrontDoor] = None
    traffic: Optional[GeoTrafficDriver] = None
    crosssite: Optional[CrossSiteRelocator] = None
    now: float = 0.0
    #: sites the monitor currently believes lost
    lost_sites: set = field(default_factory=set)
    traffic_on: bool = False
    _next_digest: float = 0.0
    site_loss_events: int = 0
    site_recovery_events: int = 0

    # -- lifecycle -----------------------------------------------------------

    def site(self, name: str) -> Site:
        return self.sites[name]

    def start_traffic(self) -> None:
        """Begin serving user demand from the next :meth:`run` epoch
        (kept explicit so warm-up runs don't pollute the SLIs)."""
        if self.traffic is None:
            raise RuntimeError("federation built with with_traffic=False")
        self.traffic_on = True

    def run(self, seconds: float) -> None:
        """Advance the whole federation ``seconds`` forward in
        lockstep epochs."""
        end = self.now + seconds
        epoch = self.config.epoch
        while self.now < end - 1e-9:
            dt = min(epoch, end - self.now)
            self._barrier(self.now)
            if self.traffic is not None and self.traffic_on:
                self.traffic.tick(self.now, dt)
            target = self.now + dt
            for name in sorted(self.sites):
                self.sites[name].sim.run(until=target)
            self.now = target

    # -- the barrier control plane -------------------------------------------

    def _barrier(self, now: float) -> None:
        if now >= self._next_digest - 1e-9:
            self._exchange_digests(now)
            self._next_digest = now + self.config.digest_period
        self._monitor(now)
        if self.crosssite is not None:
            self.crosssite.tick(now)

    def _exchange_digests(self, now: float) -> None:
        """Ship every site's DGSPL digest over the WAN.  A site's
        digest reaches the merged view iff at least one peer can still
        talk to it (single-site federations short-circuit: the digest
        is local)."""
        for name in sorted(self.sites):
            site = self.sites[name]
            dgspl = (site.admin.current_dgspl()
                     if site.admin is not None else None)
            if dgspl is None:
                continue
            if len(self.sites) > 1:
                delivered = any(
                    self.courier.send(name, peer).ok
                    for peer in sorted(self.sites) if peer != name)
                if not delivered:
                    continue
            digest = digest_of(dgspl, name,
                               hosts_up=len(site.dc.up_hosts()))
            self.fed_dgspl.ingest(digest, now)

    def _site_dark(self, site: Site) -> bool:
        """All user-facing tiers down -- the site-loss predicate."""
        dc = site.dc
        for group in ("db", "frontend"):
            if any(h.is_up for h in dc.group(group)):
                return False
        return True

    def _monitor(self, now: float) -> None:
        """Detect site-loss and recovery transitions."""
        for name in sorted(self.sites):
            dark = self._site_dark(self.sites[name])
            if dark and name not in self.lost_sites:
                self.lost_sites.add(name)
                self.site_loss_events += 1
                if self.geo is not None:
                    self.geo.flag_down(name)
                if self.crosssite is not None:
                    self.crosssite.site_loss(name, now)
            elif not dark and name in self.lost_sites:
                self.lost_sites.discard(name)
                self.site_recovery_events += 1
                if self.geo is not None:
                    self.geo.flag_up(name)
                if self.crosssite is not None:
                    self.crosssite.lost_sites.discard(name)

    def _page(self, subject: str, reason: str) -> None:
        """Page through the first surviving site's channel."""
        for name in sorted(self.sites):
            if name in self.lost_sites:
                continue
            self.sites[name].notifications.sms(
                "oncall-admin", f"federation: {subject}: {reason}",
                severity="critical", sender="federation")
            return

    # -- reporting -----------------------------------------------------------

    def site_summary(self, name: str) -> dict:
        site = self.sites[name]
        dc = site.dc
        hosts_total = len(dc.hosts)
        hosts_up = len(dc.up_hosts())
        out = {
            "hosts_up": hosts_up,
            "hosts_total": hosts_total,
            "open_conditions": hosts_total - hosts_up,
            "lost": name in self.lost_sites,
        }
        if self.traffic is not None:
            roll = self.traffic.site_rollup(name)
            out["attempted"] = round(roll["attempted"], 6)
            out["served"] = round(roll["served"], 6)
            out["availability"] = round(roll["availability"], 9)
            out["user_minutes_lost"] = round(
                self.traffic.user_minutes_lost.get(name, 0.0), 6)
        if self.crosssite is not None:
            out["takeovers_hosted"] = sum(
                1 for t in self.crosssite.takeovers
                if t.target_site == name)
        return out

    def summary(self) -> dict:
        out = {
            "now": self.now,
            "sites": {name: self.site_summary(name)
                      for name in sorted(self.sites)},
            "site_loss_events": self.site_loss_events,
            "site_recovery_events": self.site_recovery_events,
            "wan": {"delivered": self.courier.delivered,
                    "failed": self.courier.failed},
        }
        if self.traffic is not None:
            out["global"] = self.traffic.global_rollup()
            out["global"]["availability"] = round(
                out["global"]["availability"], 9)
            out["geo"] = {"steered": self.geo.steered,
                          "remote_steered": self.geo.remote_steered,
                          "shed": self.geo.shed_total}
        if self.crosssite is not None:
            out["crosssite"] = {
                "attempted": self.crosssite.attempted,
                "succeeded": self.crosssite.succeeded,
                "failed": self.crosssite.failed,
                "paged": self.crosssite.paged,
            }
        return out


def build_federation(config: Optional[FederationConfig] = None
                     ) -> Federation:
    """Assemble the federated world from a :class:`FederationConfig`."""
    from repro.federation.config import three_site_config
    config = config or three_site_config()

    sites: Dict[str, Site] = {}
    for spec in sorted(config.sites, key=lambda s: s.name):
        sites[spec.name] = build_site(spec.config)

    wan = Wan()
    names = sorted(sites)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            wan.connect(a, b, base_latency_ms=config.pair_latency_ms(a, b))
    courier = WanCourier(wan)

    nameservice = FederatedNameService(wan)
    for name, site in sites.items():
        nameservice.delegate(name, site.nameservice)

    fed_dgspl = FederatedDgspl(freshness=config.digest_freshness)
    streams = RandomStreams(config.seed)

    fed = Federation(config=config, sites=sites, wan=wan, courier=courier,
                     nameservice=nameservice, fed_dgspl=fed_dgspl,
                     streams=streams)
    # build_site ends with an in-simulator warm-up, so a freshly built
    # site's clock is already past zero.  The federation clock must pick
    # up from there (and every site must reach the same origin) or an
    # N=1 run would advance the site less than a standalone run of the
    # same duration -- breaking the parity contract.
    fed.now = max(site.sim.now for site in sites.values())
    for name in sorted(sites):
        sites[name].sim.run(until=fed.now)
    fed._next_digest = fed.now

    if config.cross_site_relocation:
        crosssite = CrossSiteRelocator(wan=wan, nameservice=nameservice,
                                       page_cb=fed._page)
        for name, site in sites.items():
            crosssite.register_site(name, site)
            if site.admin is not None:
                site.admin.cross_site_cb = (
                    lambda host, reason, _name=name, _site=site:
                    crosssite.relocate_host(_name, host,
                                            _site.sim.now, reason))
        fed.crosssite = crosssite

    if config.with_traffic:
        by_region = {spec.region: spec for spec in config.sites}
        home_site = {region.name: by_region[region.name].name
                     for region in config.regions}
        latency = {}
        for region in config.regions:
            for spec in config.sites:
                latency[(region.name, spec.name)] = spec.latency_for(
                    region.name)
        geo = GeoFrontDoor(fed_dgspl, home_site=home_site,
                           region_latency_ms=latency,
                           geo_steering=config.geo_steering)
        curves = regional_curves(config.population,
                                 regions=config.regions)
        traffic = GeoTrafficDriver(
            curves, geo, fed.crosssite, streams,
            pinned_fraction=config.pinned_fraction)
        for name, site in sites.items():
            geo.register_site(name)
            doors = doors_for_site(site)
            if site.reroute is not None:
                for door in doors.values():
                    site.reroute.register_door(door)
            if site.ledger is not None:
                for door in doors.values():
                    door.attach_ledger(site.ledger)
            traffic.attach_site(name, doors)
        fed.geo = geo
        fed.traffic = traffic

    return fed
