"""The federation's follow-the-sun traffic tier.

Each user region has its own :class:`~repro.traffic.workload.DemandCurve`
(same diurnal shape, shifted by the region's timezone), so global
demand literally follows the sun around the federation.  At every
federation barrier the driver Poisson-samples each (region, class)
batch from a *federation-level* RNG -- the site simulators' streams
are never touched, which is what keeps an N=1 federation byte-identical
to a standalone site -- then splits it in two:

* the **steerable** share goes through the :class:`GeoFrontDoor`
  (capacity- and latency-weighted across healthy sites, shed when all
  are dark) and lands on each chosen site's normal per-tier front door;
* the **pinned** share (data gravity: the db tier) can only be served
  by its home site -- or, after the cross-site tier has cut a takeover
  over, by the services that came back up elsewhere, in proportion to
  the recovered fraction.

Everything is accounted into one :class:`~repro.traffic.slo.Sli` per
(site, class) plus per-site user-minutes, and rolled up globally with
:func:`~repro.traffic.slo.rollup_slis` -- the request-weighted view
the bench prices.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.traffic.engine import dispatch_fluid
from repro.traffic.slo import Sli, rollup_slis
from repro.traffic.workload import MINUTE, DemandCurve

__all__ = ["GeoTrafficDriver"]


class GeoTrafficDriver:
    """Epoch-driven demand against the whole federation."""

    def __init__(self, curves: Dict[str, DemandCurve], geo, crosssite,
                 streams, *, pinned_fraction: Dict[str, float] = None):
        self.curves = dict(curves)
        self.geo = geo
        self.crosssite = crosssite
        self.rng = streams.get("federation.arrivals")
        self.pinned_fraction = dict(pinned_fraction or {})
        #: site -> class name -> its per-tier FrontDoor
        self.doors: Dict[str, Dict[str, object]] = {}
        #: one SLI per (site, class), keyed "<site>/<class>"
        self.slis: Dict[str, Sli] = {}
        #: per-site user-minutes lost (shed demand priced in concurrent
        #: users, attributed to the users' home site)
        self.user_minutes_lost: Dict[str, float] = {}
        self.ticks = 0

    def attach_site(self, name: str, doors: Dict[str, object]) -> None:
        self.doors[name] = dict(doors)
        self.user_minutes_lost.setdefault(name, 0.0)
        for cls_name in doors:
            self.slis.setdefault(f"{name}/{cls_name}", Sli(cls_name))

    # -- accounting ----------------------------------------------------------

    def _sli(self, site: str, cls_name: str) -> Sli:
        key = f"{site}/{cls_name}"
        if key not in self.slis:
            self.slis[key] = Sli(cls_name)
        return self.slis[key]

    def _serve_at(self, site: str, cls_name: str, n: int,
                  now: float) -> int:
        """Serve ``n`` requests at one site's door; returns how many
        were lost (failed or shed at the door)."""
        sli = self._sli(site, cls_name)
        before = sli.served
        door = self.doors.get(site, {}).get(cls_name)
        if door is None:
            sli.record_shed(n)
            return n
        dispatch_fluid(
            door, n, now,
            lambda served, failed, ms: sli.record_batch(served, failed, ms),
            lambda shed: sli.record_shed(shed))
        return n - int(sli.served - before)

    def _serve_takeover(self, home: str, cls, n: int, now: float) -> int:
        """Serve a dead site's pinned demand on its cross-site
        takeovers.  Returns how many requests were lost."""
        if n <= 0:
            return 0
        if self.crosssite is None:
            self._sli(home, cls.name).record_shed(n)
            return n
        fraction = self.crosssite.takeover_fraction(home, cls.app_type)
        recoverable = int(n * fraction)
        takeovers = sorted(
            self.crosssite.takeovers_for(home, cls.app_type),
            key=lambda t: (t.target_site, t.target_host, t.target_app))
        lost = n - recoverable
        if not takeovers or recoverable <= 0:
            self._sli(home, cls.name).record_shed(n)
            return n
        base, extra = divmod(recoverable, len(takeovers))
        for i, takeover in enumerate(takeovers):
            count = base + (1 if i < extra else 0)
            if count <= 0:
                continue
            site = self.crosssite.sites[takeover.target_site]
            app = (site.dc.hosts[takeover.target_host]
                   .apps[takeover.target_app])
            served, failed, ms = app.serve_batch(count)
            sli = self._sli(takeover.target_site, cls.name)
            sli.record_batch(served, failed, ms)
            lost += failed
        if n - recoverable > 0:
            self._sli(home, cls.name).record_shed(n - recoverable)
        return lost

    # -- the barrier tick ----------------------------------------------------

    def tick(self, now: float, dt: float) -> None:
        """Sample and serve one epoch's demand, every region."""
        for region in sorted(self.curves):
            curve = self.curves[region]
            home = self.geo.home_site.get(region)
            attempted = 0
            lost = 0
            for cls in sorted(curve.classes, key=lambda c: c.name):
                expected = curve.expected_requests(cls, now, now + dt)
                n = int(self.rng.poisson(expected)) if expected > 0 else 0
                if n <= 0:
                    continue
                attempted += n
                pinned = int(n * self.pinned_fraction.get(cls.name, 0.0))
                free = n - pinned

                if free > 0:
                    split, shed = self.geo.steer(region, cls.app_type,
                                                 free, now)
                    for site, count in split:
                        lost += self._serve_at(site, cls.name, count, now)
                    if shed:
                        self._sli(home, cls.name).record_shed(shed)
                        lost += shed

                if pinned > 0:
                    if home in self.geo.flagged_down:
                        lost += self._serve_takeover(home, cls, pinned,
                                                     now)
                    else:
                        lost += self._serve_at(home, cls.name, pinned,
                                               now)

            if attempted > 0 and lost > 0 and home is not None:
                fraction = lost / attempted
                users = float(curve.active_users(now))
                self.user_minutes_lost[home] = (
                    self.user_minutes_lost.get(home, 0.0)
                    + users * fraction * (dt / MINUTE))
        self.ticks += 1

    # -- rollups -------------------------------------------------------------

    def site_rollup(self, site: str) -> dict:
        return rollup_slis(sli for key, sli in sorted(self.slis.items())
                           if key.split("/", 1)[0] == site)

    def global_rollup(self) -> dict:
        out = rollup_slis(self.slis.values())
        out["user_minutes_lost"] = round(
            sum(self.user_minutes_lost.values()), 6)
        return out

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "ticks": self.ticks,
            "slis": {key: sli.snapshot_state()
                     for key, sli in sorted(self.slis.items())},
            "user_minutes_lost": {k: v for k, v in sorted(
                self.user_minutes_lost.items())},
            "doors": {site: {name: door.snapshot_state()
                             for name, door in sorted(doors.items())}
                      for site, doors in sorted(self.doors.items())},
        }

    def restore_state(self, state: dict, resolve_app_for) -> None:
        """``resolve_app_for(site)`` returns that site's
        ``resolve_app(host, app)`` rebinder for its doors."""
        self.ticks = int(state["ticks"])
        self.slis = {}
        for key, sli_state in state["slis"].items():
            sli = Sli(key.split("/", 1)[1])
            sli.restore_state(sli_state)
            self.slis[key] = sli
        self.user_minutes_lost = {k: float(v) for k, v in
                                  state["user_minutes_lost"].items()}
        for site, doors in self.doors.items():
            saved = state["doors"][site]
            resolve = resolve_app_for(site)
            for name, door in doors.items():
                door.restore_state(saved[name], resolve)
