"""Federation configuration: N sites, their regions, and the WAN.

The single-site :class:`repro.experiments.site.SiteConfig` stays the
unit of construction -- a :class:`FederationConfig` is a list of
:class:`SiteSpec` wrappers around it plus the couplings that only
exist *between* datacentres: WAN latency, digest cadence and freshness,
geo steering and the cross-site relocation tier.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.site import SiteConfig
from repro.traffic.workload import FINANCIAL_REGIONS, Region

__all__ = ["SiteSpec", "FederationConfig", "three_site_config"]


@dataclass
class SiteSpec:
    """One datacentre of the federation."""

    name: str
    #: the user region this site is home to (lowest-latency)
    region: str
    config: SiteConfig
    #: region name -> user-path latency to this site (ms); absent
    #: regions default to ``remote_latency_ms``
    region_latency_ms: Dict[str, float] = field(default_factory=dict)
    remote_latency_ms: float = 150.0

    def latency_for(self, region: str) -> float:
        if region == self.region:
            return self.region_latency_ms.get(region, 10.0)
        return self.region_latency_ms.get(region, self.remote_latency_ms)

    def to_dict(self) -> dict:
        return {"name": self.name, "region": self.region,
                "config": asdict(self.config),
                "region_latency_ms": dict(sorted(
                    self.region_latency_ms.items())),
                "remote_latency_ms": self.remote_latency_ms}

    @classmethod
    def from_dict(cls, doc: dict) -> "SiteSpec":
        return cls(name=str(doc["name"]), region=str(doc["region"]),
                   config=SiteConfig(**doc["config"]),
                   region_latency_ms={k: float(v) for k, v in
                                      doc["region_latency_ms"].items()},
                   remote_latency_ms=float(doc["remote_latency_ms"]))


@dataclass
class FederationConfig:
    """The whole geo-federation."""

    sites: List[SiteSpec]
    regions: Tuple[Region, ...] = FINANCIAL_REGIONS
    #: total users across all regions (split by region share)
    population: int = 1_000_000
    #: federation barrier interval: sites advance in lockstep to each
    #: epoch boundary, then the WAN-coupled control plane runs
    epoch: float = 60.0
    #: how often sites exchange DGSPL digests over the WAN
    digest_period: float = 300.0
    #: per-site digest freshness window (both clocks: generated and
    #: received); a site outside it drops out of the merged view
    digest_freshness: float = 1800.0
    #: pairwise WAN latency (ms); keys "a|b" with a < b override the
    #: default for specific site pairs
    wan_latency_ms: float = 70.0
    wan_latency_overrides: Dict[str, float] = field(default_factory=dict)
    #: the federation's traffic tier (off for parity/persistence tests)
    with_traffic: bool = True
    #: geo-aware steering of stateless demand (the A/B arm)
    geo_steering: bool = True
    #: cross-site relocation of pinned services (the other A/B arm)
    cross_site_relocation: bool = True
    #: fraction of each class's demand pinned to its home site (data
    #: gravity: the db tier cannot be steered away)
    pinned_fraction: Dict[str, float] = field(
        default_factory=lambda: {"db": 1.0})
    #: federation-level RNG seed (site worlds keep their own seeds)
    seed: int = 0

    def __post_init__(self):
        names = [s.name for s in self.sites]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate site names: {names}")
        homes = {s.region for s in self.sites}
        for region in self.regions:
            if region.name not in homes:
                raise ValueError(
                    f"region {region.name!r} has no home site")

    def pair_latency_ms(self, a: str, b: str) -> float:
        key = "|".join(sorted((a, b)))
        return float(self.wan_latency_overrides.get(
            key, self.wan_latency_ms))

    def to_dict(self) -> dict:
        return {
            "sites": [s.to_dict() for s in self.sites],
            "regions": [[r.name, r.share, r.utc_offset_hours]
                        for r in self.regions],
            "population": self.population,
            "epoch": self.epoch,
            "digest_period": self.digest_period,
            "digest_freshness": self.digest_freshness,
            "wan_latency_ms": self.wan_latency_ms,
            "wan_latency_overrides": dict(sorted(
                self.wan_latency_overrides.items())),
            "with_traffic": self.with_traffic,
            "geo_steering": self.geo_steering,
            "cross_site_relocation": self.cross_site_relocation,
            "pinned_fraction": dict(sorted(self.pinned_fraction.items())),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FederationConfig":
        return cls(
            sites=[SiteSpec.from_dict(s) for s in doc["sites"]],
            regions=tuple(Region(str(n), float(s), float(o))
                          for n, s, o in doc["regions"]),
            population=int(doc["population"]),
            epoch=float(doc["epoch"]),
            digest_period=float(doc["digest_period"]),
            digest_freshness=float(doc["digest_freshness"]),
            wan_latency_ms=float(doc["wan_latency_ms"]),
            wan_latency_overrides={k: float(v) for k, v in
                                   doc["wan_latency_overrides"].items()},
            with_traffic=bool(doc["with_traffic"]),
            geo_steering=bool(doc["geo_steering"]),
            cross_site_relocation=bool(doc["cross_site_relocation"]),
            pinned_fraction={k: float(v) for k, v in
                             doc["pinned_fraction"].items()},
            seed=int(doc["seed"]),
        )


def three_site_config(*, population: int = 1_000_000, seed: int = 0,
                      scale: str = "test", spare_servers: int = 2,
                      **overrides) -> FederationConfig:
    """The canonical 3-site follow-the-sun federation: London (emea),
    New York (amer), Hong Kong (apac)."""
    def site_cfg(name: str, offset: int) -> SiteConfig:
        kw = dict(site_name=name, seed=seed + offset,
                  spare_servers=spare_servers,
                  with_workload=False, with_feeds=False)
        if scale == "test":
            return SiteConfig.test_scale(**kw)
        return SiteConfig(**kw)

    sites = [
        SiteSpec("hkg", "apac", site_cfg("hkg", 3),
                 region_latency_ms={"apac": 12.0, "emea": 180.0,
                                    "amer": 210.0}),
        SiteSpec("lon", "emea", site_cfg("lon", 1),
                 region_latency_ms={"emea": 8.0, "amer": 75.0,
                                    "apac": 180.0}),
        SiteSpec("nyc", "amer", site_cfg("nyc", 2),
                 region_latency_ms={"amer": 10.0, "emea": 75.0,
                                    "apac": 210.0}),
    ]
    return FederationConfig(
        sites=sites, population=population, seed=seed,
        wan_latency_overrides={"lon|nyc": 35.0, "hkg|lon": 90.0,
                               "hkg|nyc": 100.0},
        **overrides)
