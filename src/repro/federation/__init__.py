"""Multi-site geo-federation (``repro.federation``).

Lifts the single-site world into N federated datacentres: each site
keeps its own admin pair, condition ledger, spare pool and telemetry,
while WAN links, a federated DGSPL assembled from per-site digests, a
geo-aware global front door, and cross-site relocation couple them at
deterministic lockstep barriers.
"""

from repro.federation.build import Federation, build_federation
from repro.federation.config import (FederationConfig, SiteSpec,
                                     three_site_config)
from repro.federation.traffic import GeoTrafficDriver

__all__ = ["Federation", "FederationConfig", "GeoTrafficDriver",
           "SiteSpec", "build_federation", "three_site_config"]
