"""BMC-Patrol-style centralised monitor.

Figures 3 and 4 compare per-server CPU and memory consumed by "BMC
Patrol" against the intelliagents.  The paper measured 0.17-1.1 % CPU
and 32-58 MB of memory for BMC versus ~0.045 % CPU and a flat 1.6 MB
for the agents, on the same server at peak time.

The difference the paper attributes it to: BMC-style monitors are
**memory resident** (a long-lived agent daemon holding per-entity state
and history caches, polling continuously) while intelliagents are
cron-run processes that exit after each pass ("they are not memory
resident ... do not tax the system they look after because of their
size and simplicity").

:class:`BaselineMonitor` is that cost model plus detect-only alerting.
It spawns a real process in the host's table (so ``ps`` shows it, and
its footprint participates in host memory accounting) and exposes
``cpu_pct()`` / ``memory_mb()`` for the overhead experiments.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

__all__ = ["BaselineMonitor"]


class BaselineMonitor:
    """A memory-resident monitoring daemon on one host."""

    #: daemon poll interval, seconds (commercial defaults were seconds,
    #: not minutes -- that is where the CPU cost comes from)
    POLL_INTERVAL = 30.0

    def __init__(self, host, *, notifications=None,
                 recipient: str = "operators",
                 base_mem_mb: float = 28.0,
                 cache_mb_per_hour: float = 2.5,
                 cache_flush_hours: float = 8.0):
        self.host = host
        self.sim = host.sim
        self.notifications = notifications
        self.recipient = recipient
        self.base_mem_mb = base_mem_mb
        self.cache_mb_per_hour = cache_mb_per_hour
        self.cache_flush_hours = cache_flush_hours
        self.started_at = self.sim.now
        self.alerts_raised = 0
        self._known_down: set[str] = set()
        self.proc = host.ptable.spawn(
            "patrol", "PatrolAgent", cpu_pct=self.cpu_pct(),
            mem_mb=self.memory_mb(), now=self.sim.now, owner=self)
        self._poll = self.sim.every(self.POLL_INTERVAL, self._tick)

    # -- cost model -----------------------------------------------------------

    def monitored_entities(self) -> int:
        """Processes + disks + NICs + filesystems + apps under watch."""
        host = self.host
        return (len(host.ptable) + host.spec.disks + len(host.nics)
                + len(host.fs.mounts) + len(host.apps))

    def cpu_pct(self) -> float:
        """Average CPU share of one CPU, percent.

        Polling cost scales with entity count and inversely with the
        poll interval; a busy process table costs more to walk.  The
        shape lands in the paper's 0.2-1.1 % band for a loaded server.
        """
        entities = self.monitored_entities()
        per_poll_ms = 40.0 + 1.2 * entities        # walk + evaluate rules
        busy_factor = 1.0 + self.host.cpu_utilization() / 80.0
        pct = (per_poll_ms * busy_factor / 10.0) / self.POLL_INTERVAL
        return pct

    def memory_mb(self) -> float:
        """Resident set: base + per-entity state + a history cache that
        grows until its periodic flush (the 32-58 MB sawtooth)."""
        entities = self.monitored_entities()
        hours_up = max(0.0, (self.sim.now - self.started_at) / 3600.0)
        cache = (hours_up % self.cache_flush_hours) * self.cache_mb_per_hour
        return self.base_mem_mb + 0.12 * entities + cache

    # -- detect-only alerting ------------------------------------------------------

    def _tick(self) -> None:
        if not self.host.is_up:
            return
        # keep the visible process footprint in sync with the model
        self.proc.cpu_pct = self.cpu_pct()
        self.proc.mem_mb = self.memory_mb()
        for app in self.host.apps.values():
            if app is self:
                continue
            healthy = app.is_healthy()
            if not healthy and app.name not in self._known_down:
                # BMC alerts on *visible* failures only: a hung app whose
                # processes still exist does not trip a process-count rule.
                if not app.processes_present() or app.state.value == "crashed":
                    self._known_down.add(app.name)
                    self.alerts_raised += 1
                    if self.notifications is not None:
                        self.notifications.email(
                            self.recipient,
                            f"ALERT {self.host.name}/{app.name} down",
                            severity="critical", sender="patrol")
            elif healthy:
                self._known_down.discard(app.name)

    def stop(self) -> None:
        self._poll.cancel()
        self.host.ptable.kill(self.proc.pid)
