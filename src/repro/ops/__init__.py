"""Human operations baseline.

Before the intelliagents, the site ran BMC Patrol + SystemEdge for
monitoring and relied on operators and on-call administrators for every
repair (§4).  This package models that world:

- :mod:`notifications` -- the email/SMS channel both pipelines use.
- :mod:`operators` -- detection and manual-repair timing: operator
  coverage by time of week, escalation, expert call-out.  Also scores
  the *agent* pipeline's timing so the two share one implementation.
- :mod:`bmc` -- the memory-resident centralised monitor cost model
  (Figures 3 and 4's baseline) and its detect-only alerting.
- :mod:`downtime` -- the downtime ledger Fig. 2 aggregates.
"""

from repro.ops.notifications import Notification, NotificationChannel
from repro.ops.operators import OperatorModel, Resolution
from repro.ops.bmc import BaselineMonitor
from repro.ops.console import Alarm, OperatorConsole
from repro.ops.downtime import DowntimeLedger, Incident

__all__ = ["Notification", "NotificationChannel", "OperatorModel",
           "Resolution", "BaselineMonitor", "Alarm", "OperatorConsole",
           "DowntimeLedger", "Incident"]
