"""Operator coverage and resolution timing.

§4 describes the manual pipeline in detail:

- detection (customer's own BMC Patrol data): ~1 h during the day,
  ~10 h for overnight-job faults, ~25 h over weekends;
- operators often did not understand severity, had to locate on-call
  people at night, and "a number of people had to be notified ... before
  any decisive action was taken";
- a service/server restart "could take up to 2 hours" because the fault
  first had to be diagnosed across distributed services;
- when remote diagnosis failed, experts "were obliged to come in", and
  the full procedure averaged ~4 hours.

:class:`OperatorModel` turns those observations into sampling functions
used by the fault campaign, the latency experiment and the MTTR
experiment -- for *both* pipelines, so they differ only where the paper
says they differ (detection grid and automated repair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, TYPE_CHECKING

from repro.sim.calendar import HOUR, MINUTE, next_grid, period_of

if TYPE_CHECKING:  # pragma: no cover - type-only; avoids a cycle with
    from repro.faults.models import CategoryProfile  # repro.faults.campaign

__all__ = ["Resolution", "OperatorModel"]


@dataclass
class Resolution:
    """Sampled outcome of handling one fault."""

    detection: float          # fault -> someone/something knows
    repair: float             # knows -> service healthy again
    escalated: bool = False   # experts had to come in
    auto: bool = False        # automation performed the repair
    prevented: bool = False   # never became an incident

    @property
    def downtime(self) -> float:
        return 0.0 if self.prevented else self.detection + self.repair


class OperatorModel:
    """Timing model for manual and agent-assisted fault handling."""

    #: mean human detection delay by period (the customer's BMC data)
    DETECTION_MEAN = {"day": 1.0 * HOUR,
                      "overnight": 10.0 * HOUR,
                      "weekend": 25.0 * HOUR}

    #: travel time when an expert must come to the machine room
    EXPERT_TRAVEL_MEAN = 1.0 * HOUR

    def __init__(self, rng, agent_period: float = 5 * MINUTE):
        self.rng = rng
        self.agent_period = agent_period

    # -- detection ------------------------------------------------------------

    def manual_detection_delay(self, fault_time: float,
                               scale: float = 1.0) -> float:
        """Fault to human-awareness delay under monitor-and-operator
        coverage.  Exponential around the per-period mean, floored at
        five minutes (someone staring at a console can be quick).
        ``scale`` is the category's visibility: user-facing failures
        get shouted about; latent overnight crashes sit for hours."""
        mean = self.DETECTION_MEAN[period_of(fault_time)] * scale
        return max(5 * MINUTE, float(self.rng.exponential(mean)))

    def agent_detection_delay(self, fault_time: float) -> float:
        """Fault to agent-flag delay: the next cron wake plus the run
        itself (seconds)."""
        wake = next_grid(fault_time, self.agent_period) - fault_time
        run_time = float(self.rng.uniform(2.0, 20.0))
        return wake + run_time

    # -- repair ------------------------------------------------------------------

    def _night_tax(self, t: float) -> float:
        """Everything human is slower off-hours (locating on-call staff,
        conference-calling the right experts)."""
        return 1.0 if period_of(t) == "day" else 1.6

    def manual_repair_time(self, profile: CategoryProfile,
                           fault_time: float, *,
                           pinpointed: bool = False) -> Tuple[float, bool]:
        """Sample diagnosis + repair (+ escalation).  Returns
        (seconds, escalated)."""
        tax = self._night_tax(fault_time)
        diag = float(profile.manual_diagnosis.sample(self.rng)) * tax
        if pinpointed:
            diag *= profile.pinpoint_factor
        repair = float(profile.manual_repair.sample(self.rng)) * tax
        escalated = self.rng.random() >= profile.manual_first_fix_prob
        if escalated:
            # experts called in: travel plus a second, longer attempt
            travel = float(self.rng.exponential(self.EXPERT_TRAVEL_MEAN))
            repair += travel + float(
                profile.manual_repair.sample(self.rng)) * tax
        return (diag + repair, escalated)

    # -- full pipelines --------------------------------------------------------------

    def resolve_manual(self, profile: CategoryProfile,
                       fault_time: float) -> Resolution:
        """Score one fault under the pre-agent pipeline."""
        detection = self.manual_detection_delay(fault_time,
                                                profile.detection_scale)
        repair, escalated = self.manual_repair_time(profile, fault_time)
        return Resolution(detection, repair, escalated=escalated)

    def resolve_agent(self, profile: CategoryProfile,
                      fault_time: float) -> Resolution:
        """Score one fault under the intelliagent pipeline.

        Prevention may stop the incident entirely (SLKT checks catching
        a bad config before it bites).  Otherwise detection happens on
        the cron grid; if the category is auto-fixable the agent repair
        usually works, and when automation fails the human fallback
        starts from a pinpointed diagnosis.
        """
        if profile.prevention_prob and self.rng.random() < profile.prevention_prob:
            return Resolution(0.0, 0.0, prevented=True)
        detection = self.agent_detection_delay(fault_time)
        if profile.auto_fixable and self.rng.random() < profile.auto_fix_prob:
            repair = float(profile.auto_repair.sample(self.rng))
            return Resolution(detection, repair, auto=True)
        human_start = fault_time + detection
        repair, escalated = self.manual_repair_time(
            profile, human_start, pinpointed=True)
        return Resolution(detection, repair, escalated=escalated)
