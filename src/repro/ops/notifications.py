"""Email / SMS notification channel.

Both pipelines notify humans the same way: "they notify human
administrators (usually via email or SMS)".  The channel is a plain
ledger -- experiments assert on what was sent and when.

Alert storms are first-class: with ``dedup_window`` set, repeats of the
same (medium, recipient, subject) inside the window collapse into the
already-sent page, whose ``suppressed`` count is bumped instead; with
``rate_limit`` set, a recipient who has already received that many
pages inside ``rate_window`` stops getting new ones (also counted as
suppressed).  Both knobs default to off so the channel stays a faithful
1:1 ledger unless an alerting tier asks otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from collections import defaultdict, deque

__all__ = ["Notification", "NotificationChannel"]


@dataclass(frozen=True)
class Notification:
    time: float
    medium: str          # "email" | "sms"
    recipient: str
    subject: str
    body: str = ""
    severity: str = "warning"    # "info" | "warning" | "critical"
    sender: str = ""
    #: later identical pages folded into this one (dedup window)
    suppressed: int = 0


class NotificationChannel:
    """Site-wide message ledger with optional live subscribers."""

    def __init__(self, sim, *, dedup_window: float = 0.0,
                 rate_limit: Optional[int] = None,
                 rate_window: float = 3600.0):
        self.sim = sim
        self.sent: List[Notification] = []
        self._subscribers: List[Callable[[Notification], None]] = []
        #: collapse repeats of one (medium, recipient, subject) within
        #: this many seconds into the original page (0 = off)
        self.dedup_window = float(dedup_window)
        #: max pages per recipient per rate_window (None = unlimited)
        self.rate_limit = rate_limit
        self.rate_window = float(rate_window)
        self.suppressed_total = 0
        #: per-recipient suppression counters (dedup + rate-limit)
        self.suppressed_by_recipient: Dict[str, int] = defaultdict(int)
        self._last_sent: Dict[Tuple[str, str, str], Notification] = {}
        self._recent: Dict[str, Deque[float]] = defaultdict(deque)

    def subscribe(self, fn: Callable[[Notification], None]) -> None:
        self._subscribers.append(fn)

    def _suppress(self, recipient: str) -> None:
        self.suppressed_total += 1
        self.suppressed_by_recipient[recipient] += 1

    def send(self, medium: str, recipient: str, subject: str, *,
             body: str = "", severity: str = "warning",
             sender: str = "") -> Notification:
        if medium not in ("email", "sms"):
            raise ValueError(f"unknown medium {medium!r}")
        now = self.sim.now

        if self.dedup_window > 0:
            key = (medium, recipient, subject)
            prev = self._last_sent.get(key)
            if prev is not None and (now - prev.time) < self.dedup_window:
                # fold into the page already on the wire; the frozen
                # dataclass is the ledger record, so poke the counter
                # through object.__setattr__ rather than re-sending
                object.__setattr__(prev, "suppressed", prev.suppressed + 1)
                self._suppress(recipient)
                return prev

        if self.rate_limit is not None:
            recent = self._recent[recipient]
            while recent and (now - recent[0]) >= self.rate_window:
                recent.popleft()
            if len(recent) >= self.rate_limit:
                self._suppress(recipient)
                last = self._last_for(recipient)
                if last is not None:
                    object.__setattr__(last, "suppressed",
                                       last.suppressed + 1)
                    return last
                return Notification(now, medium, recipient, subject, body,
                                    severity, sender, suppressed=1)

        note = Notification(now, medium, recipient, subject, body,
                            severity, sender)
        self.sent.append(note)
        if self.dedup_window > 0:
            self._last_sent[(medium, recipient, subject)] = note
        if self.rate_limit is not None:
            self._recent[recipient].append(now)
        for fn in self._subscribers:
            fn(note)
        return note

    def _last_for(self, recipient: str) -> Optional[Notification]:
        for n in reversed(self.sent):
            if n.recipient == recipient:
                return n
        return None

    def email(self, recipient: str, subject: str, **kw) -> Notification:
        return self.send("email", recipient, subject, **kw)

    def sms(self, recipient: str, subject: str, **kw) -> Notification:
        return self.send("sms", recipient, subject, **kw)

    # -- persistence ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        """The whole ledger; dedup bookkeeping references are saved as
        indices into the sent list so folding keeps mutating the same
        records after a restore."""
        index = {id(n): i for i, n in enumerate(self.sent)}
        return {
            "sent": [[n.time, n.medium, n.recipient, n.subject, n.body,
                      n.severity, n.sender, n.suppressed]
                     for n in self.sent],
            "suppressed_total": self.suppressed_total,
            "suppressed_by_recipient": dict(
                sorted(self.suppressed_by_recipient.items())),
            "last_sent": [[list(key), index[id(n)]]
                          for key, n in self._last_sent.items()],
            "recent": {r: list(times)
                       for r, times in sorted(self._recent.items())},
        }

    def restore_state(self, state: dict) -> None:
        self.sent = [Notification(float(t), medium, recipient, subject,
                                  body, severity, sender,
                                  suppressed=int(sup))
                     for t, medium, recipient, subject, body, severity,
                     sender, sup in state["sent"]]
        self.suppressed_total = int(state["suppressed_total"])
        self.suppressed_by_recipient = defaultdict(int)
        for r, n in state["suppressed_by_recipient"].items():
            self.suppressed_by_recipient[r] = int(n)
        self._last_sent = {tuple(key): self.sent[int(i)]
                           for key, i in state["last_sent"]}
        self._recent = defaultdict(deque)
        for r, times in state["recent"].items():
            self._recent[r] = deque(float(t) for t in times)

    # -- queries -------------------------------------------------------------

    def since(self, t: float) -> List[Notification]:
        return [n for n in self.sent if n.time >= t]

    def by_severity(self, severity: str) -> List[Notification]:
        return [n for n in self.sent if n.severity == severity]

    def count(self) -> int:
        return len(self.sent)
