"""Email / SMS notification channel.

Both pipelines notify humans the same way: "they notify human
administrators (usually via email or SMS)".  The channel is a plain
ledger -- experiments assert on what was sent and when.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Notification", "NotificationChannel"]


@dataclass(frozen=True)
class Notification:
    time: float
    medium: str          # "email" | "sms"
    recipient: str
    subject: str
    body: str = ""
    severity: str = "warning"    # "info" | "warning" | "critical"
    sender: str = ""


class NotificationChannel:
    """Site-wide message ledger with optional live subscribers."""

    def __init__(self, sim):
        self.sim = sim
        self.sent: List[Notification] = []
        self._subscribers: List[Callable[[Notification], None]] = []

    def subscribe(self, fn: Callable[[Notification], None]) -> None:
        self._subscribers.append(fn)

    def send(self, medium: str, recipient: str, subject: str, *,
             body: str = "", severity: str = "warning",
             sender: str = "") -> Notification:
        if medium not in ("email", "sms"):
            raise ValueError(f"unknown medium {medium!r}")
        note = Notification(self.sim.now, medium, recipient, subject,
                            body, severity, sender)
        self.sent.append(note)
        for fn in self._subscribers:
            fn(note)
        return note

    def email(self, recipient: str, subject: str, **kw) -> Notification:
        return self.send("email", recipient, subject, **kw)

    def sms(self, recipient: str, subject: str, **kw) -> Notification:
        return self.send("sms", recipient, subject, **kw)

    # -- queries -------------------------------------------------------------

    def since(self, t: float) -> List[Notification]:
        return [n for n in self.sent if n.time >= t]

    def by_severity(self, severity: str) -> List[Notification]:
        return [n for n in self.sent if n.severity == severity]

    def count(self) -> int:
        return len(self.sent)
